"""DMLL quickstart: write a parallel-pattern program, compile it for a
distributed target, inspect what the compiler did, and run it on the
simulated 4-socket NUMA machine.

Run:  python examples/quickstart.py
"""

from repro import frontend as F
from repro.core import pretty
from repro.core import types as T
from repro.pipeline import compile_program
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, simulate


def program(xs):
    """Mean of the squares of the positive elements — three patterns that
    the compiler fuses into a single traversal."""
    pos = xs.filter(lambda x: x > 0.0)
    total = pos.map(lambda x: x * x).sum()
    return total / pos.count()


def main():
    # 1. stage: the function runs once against symbolic collections and is
    #    recorded as a DMLL multiloop program
    prog = F.build(program, [F.vector_input("xs", partitioned=True)])
    print("=== staged program (one loop per pattern)")
    print(pretty(prog))

    # 2. compile: fusion + analyses; the partitioned input is chunked by
    #    the runtime directory, all three patterns share one traversal
    compiled = compile_program(prog, target="distributed")
    print("\n=== after the compiler pipeline")
    print(pretty(compiled.program))
    print("\napplied rewrites:", compiled.report.applied_rules or "fusion only")
    print("warnings:", compiled.warnings or "none")

    # 3. execute on the simulated 4-socket machine: the data is real, the
    #    clock is the machine model
    data = [float(x % 17 - 5) for x in range(10_000)]
    result = simulate(compiled, {"xs": data}, NUMA_BOX, DMLL_CPP,
                      ExecOptions(cores=48))
    print("\n=== execution on the 48-core NUMA box")
    print("result:", result.results[0])
    print(result.breakdown())

    expected = (sum(x * x for x in data if x > 0)
                / sum(1 for x in data if x > 0))
    assert abs(result.results[0] - expected) < 1e-9
    print("\nmatches the plain-Python oracle: OK")


if __name__ == "__main__":
    main()
