"""Data querying with DMLL: TPC-H Query 1 plus the generated backends.

Shows the data-structure optimizations in action — the lineitem table of
record structs becomes flat primitive columns (AoS→SoA), unread columns
disappear (dead field elimination), the groupBy-aggregate collapses into
one BucketReduce traversal — and prints the C++/CUDA/Scala sources the
backends emit for the optimized query.

Run:  python examples/tpch_analytics.py
"""

from repro.apps.tpch import q1_oracle, q1_program
from repro.codegen import generate_cpp, generate_cuda, generate_scala
from repro.core.ops import InputSource
from repro.data.tpch_gen import generate_lineitems
from repro.pipeline import compile_program
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, simulate


def main():
    rows = generate_lineitems(5000)

    compiled = compile_program(q1_program(), "distributed")
    print("=== optimizations:", compiled.report.applied_rules)

    cols = [d.op.label for d in compiled.program.body.stmts
            if isinstance(d.op, InputSource)]
    print("surviving columns after SoA + DFE:", cols)
    assert "lineitems.orderkey" not in cols  # dead field eliminated

    res = simulate(compiled, {"lineitems": rows}, NUMA_BOX, DMLL_CPP,
                   ExecOptions(cores=48, scale=6000.0))  # model SF5
    print(f"\nsimulated Q1 (SF5-scale, 48 cores): "
          f"{res.total_seconds * 1e3:.2f} ms")

    oracle = q1_oracle(rows)
    got = {len(oracle): None}
    assert len(res.results[0]) == len(oracle)
    print("result groups:", len(res.results[0]), "(matches oracle)")

    print("\n=== generated C++ (excerpt)")
    print("\n".join(generate_cpp(compiled.program).splitlines()[:40]))
    print("\n=== generated CUDA (excerpt)")
    print("\n".join(generate_cuda(compiled.program).splitlines()[:25]))
    print("\n=== generated Scala (excerpt)")
    print("\n".join(generate_scala(compiled.program).splitlines()[:25]))


if __name__ == "__main__":
    main()
