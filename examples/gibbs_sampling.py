"""Gibbs sampling on a factor graph — the §6.3 case study.

The DMLL program exploits *nested parallelism*: the outer pattern maps
over per-socket model replicas, the inner pattern over the variables of a
replica (DimmWitted's strategy). This example estimates marginals of an
Ising grid and compares throughput with the mini-DimmWitted engine.

Run:  python examples/gibbs_sampling.py
"""

from repro.apps.gibbs import gibbs_sample, gibbs_sweep_program
from repro.baselines import DimmWittedEngine
from repro.data.factor_graphs import grid_ising
from repro.pipeline import compile_program
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, capture_run, Simulator


def main():
    fg = grid_ising(12, weight_scale=0.8)
    print(f"factor graph: {fg.n_vars} variables, {fg.n_factors} factors")

    print("\n=== marginals from the DMLL sampler (4 replicas, 12 sweeps)")
    marg = gibbs_sample(fg, sweeps=12, replicas=4)
    strong = [v for v, p in enumerate(marg) if p > 0.9 or p < 0.1]
    print(f"  {len(strong)}/{fg.n_vars} variables have near-deterministic "
          f"marginals under the sampled couplings")

    print("\n=== throughput vs DimmWitted (simulated, per sweep)")
    compiled = compile_program(gibbs_sweep_program(), "distributed")
    from repro.data.factor_graphs import random_states, random_uniforms
    states = random_states(fg.n_vars, 4, seed=7)
    rand = random_uniforms(fg.n_vars, 4, seed=8)
    inputs = {"nbr_vars": fg.nbr_vars, "nbr_weights": fg.nbr_weights,
              "states": states, "rand": rand}
    cap = capture_run(compiled, inputs)
    samples = 4 * fg.n_vars
    for cores in (12, 48):
        t_dmll = Simulator(compiled, NUMA_BOX, DMLL_CPP,
                           ExecOptions(cores=cores, scale=10_000.0,
                                       data_scale=10_000.0)
                           ).price(cap).total_seconds
        dw = DimmWittedEngine(fg, NUMA_BOX, cores=cores, scale=10_000.0)
        dw.run(sweeps=1, replicas=max(1, cores // 12))
        t_dw = dw.stats.sim_seconds
        print(f"  {cores:2d} cores: DMLL "
              f"{samples * 10_000 / t_dmll / 1e6:8.1f} Msamples/s   "
              f"DimmWitted {dw.stats.variable_samples * 10_000 / t_dw / 1e6:8.1f} "
              f"Msamples/s")
    print("\nDMLL's unwrapped primitive arrays beat the pointer-linked "
          "factor graph (§6.3)")


if __name__ == "__main__":
    main()
