"""Graph analytics with OptiGraph (the DSL layered on DMLL, §6.2).

Runs PageRank in both the pull formulation (shared memory) and the push
formulation (distributed), shows the domain-specific model selection, and
counts triangles — comparing against the mini-PowerGraph baseline.

Run:  python examples/graph_analytics.py
"""

from repro.baselines import powergraph_pagerank, powergraph_triangles
from repro.core import run_program
from repro.core.values import deep_eq
from repro.data.graphs import power_law_graph
from repro.graph.optigraph import (pagerank_pull_program,
                                   pagerank_push_program, pagerank_run,
                                   select_model, triangle_oracle,
                                   triangle_program)
from repro.pipeline import compile_program
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, simulate


def main():
    g = power_law_graph(2000, 5)
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"max degree {max(g.degrees())}")

    print("\n=== PageRank: pull vs push give identical ranks")
    inputs = {"adj": g.adj, "ranks": [1.0] * g.n, "degrees": g.degrees()}
    (pull,), _ = run_program(pagerank_pull_program(), inputs)
    (push,), _ = run_program(pagerank_push_program(), inputs)
    assert deep_eq(pull, push)
    print("one iteration agrees across formulations: OK")

    print("\nOptiGraph model selection:")
    print("  shared memory ->", "pull" if select_model("numa") else "?")
    print("  cluster       ->", "push" if select_model("cluster") else "?")

    print("\n=== ten iterations on the NUMA box (simulated, 48 cores)")
    compiled = compile_program(pagerank_pull_program(), "distributed")
    print("compiler warnings (remote graph reads are fundamental):",
          len(compiled.warnings))
    res = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                   ExecOptions(cores=48, scale=1000.0))
    print(f"  per-iteration simulated time: {res.total_seconds * 1e3:.2f} ms")

    ranks = pagerank_run(g, iterations=10)
    top = sorted(range(g.n), key=lambda v: -ranks[v])[:5]
    print("  top-5 vertices by rank:", top)

    print("\n=== triangle counting vs mini-PowerGraph")
    (count,), _ = run_program(triangle_program(), {"adj": g.adj})
    assert count == triangle_oracle(g)
    pg_count, pg_stats = powergraph_triangles(g, NUMA_BOX)
    assert pg_count == count
    print(f"  triangles: {count} (DMLL == PowerGraph == oracle)")


if __name__ == "__main__":
    main()
