"""k-means end to end: the paper's running example (Figs. 1, 4, 5).

Shows the headline compiler story: the shared-memory formulation (with
its data-dependent `matrix(as)` access) is automatically rewritten by the
Conditional Reduce rule + fusion into the distribution-friendly single
traversal of Fig. 5, then executed on three simulated machines.

Run:  python examples/kmeans_clustering.py
"""

from repro.apps.kmeans import kmeans_oracle, kmeans_shared_program
from repro.core import pretty
from repro.core.values import deep_eq
from repro.data.datasets import gaussian_clusters
from repro.pipeline import compile_program
from repro.runtime import (DMLL_CPP, EC2_CLUSTER, GPU_CLUSTER, NUMA_BOX,
                           ExecOptions, simulate)


def main():
    matrix, _ = gaussian_clusters(1000, 16, k=4)
    clusters = matrix[:4]
    inputs = {"matrix": matrix, "clusters": clusters}

    print("=== compiling the shared-memory k-means (Fig. 1 top)")
    compiled = compile_program(kmeans_shared_program(), "distributed")
    print("rewrites applied:", compiled.report.applied_rules)
    print("partitioning warnings:", compiled.warnings or "none")
    print("\n=== the Fig. 5 form (one traversal, fused sums+counts):")
    print(pretty(compiled.program))

    print("\n=== one iteration on three machines (simulated)")
    # scale=500 models a dataset 500x larger than the example's
    for label, cluster, opts in [
        ("4-socket NUMA box, 48 cores", NUMA_BOX,
         ExecOptions(cores=48, scale=500.0)),
        ("20-node EC2 cluster", EC2_CLUSTER, ExecOptions(scale=500.0)),
        ("4-node GPU cluster", GPU_CLUSTER,
         ExecOptions(use_gpu=True, gpu_transposed=True, scale=500.0)),
    ]:
        res = simulate(compiled, inputs, cluster, DMLL_CPP, opts)
        print(f"  {label:30s} {res.total_seconds * 1e3:9.3f} ms (simulated)")
        assert deep_eq(res.results[0], kmeans_oracle(matrix, clusters))

    print("\nall three give the oracle-identical clusters: OK")


if __name__ == "__main__":
    main()
