"""Synthetic dense datasets for the ML benchmarks.

Stand-ins for the paper's 500k x 100 matrices (835 MB): Gaussian cluster
mixtures for k-means/GDA and separable logistic data for LogReg, at
configurable scale. Scaling factors are recorded by the benchmark harness
so simulated times refer to paper-sized inputs.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def gaussian_clusters(n_rows: int, n_cols: int, k: int = 4,
                      spread: float = 0.6, seed: int = 7
                      ) -> Tuple[List[List[float]], List[int]]:
    """Rows drawn from k well-separated Gaussians; returns (matrix, labels)."""
    rng = random.Random(seed)
    centers = [[rng.uniform(-10.0, 10.0) for _ in range(n_cols)]
               for _ in range(k)]
    matrix: List[List[float]] = []
    labels: List[int] = []
    for i in range(n_rows):
        c = i % k
        matrix.append([centers[c][j] + rng.gauss(0.0, spread)
                       for j in range(n_cols)])
        labels.append(c)
    return matrix, labels


def logistic_data(n_rows: int, n_cols: int, seed: int = 11
                  ) -> Tuple[List[List[float]], List[float]]:
    """Linearly separable-ish binary data; returns (x, y)."""
    rng = random.Random(seed)
    true_w = [rng.uniform(-1.0, 1.0) for _ in range(n_cols)]
    x: List[List[float]] = []
    y: List[float] = []
    for _ in range(n_rows):
        row = [rng.gauss(0.0, 1.0) for _ in range(n_cols)]
        score = sum(w * v for w, v in zip(true_w, row))
        x.append(row)
        y.append(1.0 if score + rng.gauss(0.0, 0.3) > 0 else 0.0)
    return x, y


def binary_labeled(n_rows: int, n_cols: int, seed: int = 13
                   ) -> Tuple[List[List[float]], List[int]]:
    """Two Gaussian classes for GDA / naive Bayes; returns (x, labels)."""
    rng = random.Random(seed)
    mu0 = [rng.uniform(-2.0, 0.0) for _ in range(n_cols)]
    mu1 = [rng.uniform(0.0, 2.0) for _ in range(n_cols)]
    x: List[List[float]] = []
    labels: List[int] = []
    for i in range(n_rows):
        c = i % 2
        mu = mu1 if c else mu0
        x.append([m + rng.gauss(0.0, 1.0) for m in mu])
        labels.append(c)
    return x, labels
