"""Synthetic pairwise factor graphs (Ising-style) for the Gibbs-sampling
case study (§6.3). Stands in for DeepDive's production factor graphs: a
grid topology with random coupling weights exercises the same
random-access sampling kernel."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class FactorGraph:
    """Pairwise factor graph in per-variable adjacency form."""

    n_vars: int
    nbr_vars: List[List[int]]        # per variable: coupled variables
    nbr_weights: List[List[float]]   # per variable: coupling weights

    @property
    def n_factors(self) -> int:
        return sum(len(a) for a in self.nbr_vars) // 2


def grid_ising(side: int, weight_scale: float = 0.5,
               seed: int = 17) -> FactorGraph:
    """A side x side grid with N/E couplings of random sign and magnitude."""
    rng = random.Random(seed)
    n = side * side
    nbr_vars: List[List[int]] = [[] for _ in range(n)]
    nbr_weights: List[List[float]] = [[] for _ in range(n)]

    def add(u: int, v: int) -> None:
        w = rng.uniform(-weight_scale, weight_scale)
        nbr_vars[u].append(v)
        nbr_weights[u].append(w)
        nbr_vars[v].append(u)
        nbr_weights[v].append(w)

    for r in range(side):
        for c in range(side):
            u = r * side + c
            if c + 1 < side:
                add(u, u + 1)
            if r + 1 < side:
                add(u, u + side)
    return FactorGraph(n, nbr_vars, nbr_weights)


def random_states(n_vars: int, replicas: int, seed: int = 23
                  ) -> List[List[int]]:
    rng = random.Random(seed)
    return [[rng.choice((-1, 1)) for _ in range(n_vars)]
            for _ in range(replicas)]


def random_uniforms(n_vars: int, replicas: int, seed: int
                    ) -> List[List[float]]:
    rng = random.Random(seed)
    return [[rng.random() for _ in range(n_vars)] for _ in range(replicas)]
