"""Synthetic graph generation — the LiveJournal stand-in.

Preferential-attachment (Barabási–Albert-style) graphs reproduce the
degree skew that drives the paper's graph results (load imbalance, cache
behavior of triangle counting, communication volume of PageRank) at a
configurable scale. Graphs are returned in adjacency-list form with
sorted neighbor lists, ready for the OptiGraph apps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class Graph:
    """Undirected graph as sorted adjacency lists."""

    n: int
    adj: List[List[int]]

    @property
    def m(self) -> int:
        return sum(len(a) for a in self.adj) // 2

    def degrees(self) -> List[int]:
        return [len(a) for a in self.adj]

    def edges(self) -> List[Tuple[int, int]]:
        out = []
        for u, nbrs in enumerate(self.adj):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out


def power_law_graph(n: int, m_per_node: int = 4, seed: int = 3) -> Graph:
    """Preferential attachment: each new node links to ``m_per_node``
    existing nodes chosen proportionally to degree."""
    rng = random.Random(seed)
    adj: List[set] = [set() for _ in range(n)]
    targets: List[int] = []   # repeated-node pool for degree-proportional picks
    m0 = max(2, m_per_node)
    # seed clique
    for u in range(m0):
        for v in range(u + 1, m0):
            adj[u].add(v)
            adj[v].add(u)
            targets.extend((u, v))
    for u in range(m0, n):
        chosen = set()
        while len(chosen) < min(m_per_node, u):
            if targets and rng.random() < 0.9:
                v = rng.choice(targets)
            else:
                v = rng.randrange(u)
            if v != u:
                chosen.add(v)
        for v in chosen:
            adj[u].add(v)
            adj[v].add(u)
            targets.extend((u, v))
    return Graph(n, [sorted(s) for s in adj])


def uniform_graph(n: int, m_edges: int, seed: int = 5) -> Graph:
    """Erdős–Rényi-style control graph (no skew)."""
    rng = random.Random(seed)
    adj: List[set] = [set() for _ in range(n)]
    added = 0
    while added < m_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and v not in adj[u]:
            adj[u].add(v)
            adj[v].add(u)
            added += 1
    return Graph(n, [sorted(s) for s in adj])
