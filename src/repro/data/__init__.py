"""Synthetic dataset generators standing in for the paper's datasets
(DESIGN.md §3 documents each substitution)."""

from .datasets import binary_labeled, gaussian_clusters, logistic_data
from .factor_graphs import (FactorGraph, grid_ising, random_states,
                            random_uniforms)
from .graphs import Graph, power_law_graph, uniform_graph
from .tpch_gen import ROWS_PER_SF, generate_lineitems

__all__ = [
    "binary_labeled", "gaussian_clusters", "logistic_data",
    "FactorGraph", "grid_ising", "random_states", "random_uniforms",
    "Graph", "power_law_graph", "uniform_graph",
    "ROWS_PER_SF", "generate_lineitems",
]
