"""Synthetic sequencing reads for the gene barcoding benchmark — the
3.5M-gene dataset stand-in (689 MB). Row order matches
``repro.apps.gene.READ``: (barcode, gene, quality, flowcell, position)."""

from __future__ import annotations

import random
from typing import List, Tuple


def generate_reads(n: int, n_barcodes: int = 2000, n_genes: int = 500,
                   seed: int = 31) -> List[Tuple]:
    rng = random.Random(seed)
    rows: List[Tuple] = []
    for i in range(n):
        barcode = rng.randrange(n_barcodes)
        gene = rng.randrange(n_genes)
        quality = rng.random()
        rows.append((barcode, gene, quality, rng.randrange(8), i))
    return rows
