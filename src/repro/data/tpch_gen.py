"""Deterministic synthetic TPC-H lineitem generator.

Stands in for the paper's TPC-H SF5 dataset (5.3 GB): cardinalities and
value distributions of the Q1-relevant columns are preserved — four
(returnflag, linestatus) groups with the standard skew, ~99% of rows
passing the shipdate predicate — at a configurable scale.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: coded returnflag / linestatus characters
RF_A, RF_N, RF_R = 0, 1, 2
LS_F, LS_O = 0, 1

#: rows per TPC-H scale factor (the real generator emits ~6M rows/SF)
ROWS_PER_SF = 6_000_000


def generate_lineitems(n_rows: int, seed: int = 42) -> List[Tuple]:
    """Rows are tuples in ``repro.apps.tpch.LINEITEM`` field order:
    (orderkey, quantity, extendedprice, discount, tax, returnflag,
    linestatus, shipdate, suppkey)."""
    rng = random.Random(seed)
    rows: List[Tuple] = []
    for i in range(n_rows):
        qty = float(rng.randint(1, 50))
        price = round(rng.uniform(900.0, 105000.0), 2)
        disc = round(rng.uniform(0.0, 0.10), 2)
        tax = round(rng.uniform(0.0, 0.08), 2)
        # TPC-H group mix: ~25% A/F, ~25% R/F, ~49% N/O, ~1% N/F
        u = rng.random()
        if u < 0.25:
            rf, ls = RF_A, LS_F
        elif u < 0.50:
            rf, ls = RF_R, LS_F
        elif u < 0.51:
            rf, ls = RF_N, LS_F
        else:
            rf, ls = RF_N, LS_O
        # ~99% of rows pass the shipdate predicate
        shipdate = rng.randint(8000, 10100)
        rows.append((i // 4 + 1, qty, price, disc, tax, rf, ls, shipdate,
                     rng.randint(1, 1000)))
    return rows
