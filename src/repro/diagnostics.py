"""Structured diagnostics event stream — alias for :mod:`repro.obs.diagnostics`.

Importing ``repro.diagnostics`` is the documented spelling for consumers
of the typed event stream; the implementation lives inside the
observability package.
"""

from .obs.diagnostics import DiagCategory, Diagnostic

__all__ = ["DiagCategory", "Diagnostic"]
