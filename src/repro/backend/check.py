"""CI gate: every bundled app must execute fully vectorized.

Runs each bundled application's ``opt`` variant on the numpy backend and
exits non-zero if any loop fell back to the reference interpreter — a
fallback is correct but silent in results, so only this gate (and the
``backend.fallback`` metric) keeps vectorization coverage from rotting.

Usage::

    python -m repro.backend.check            # all bundled apps
    python -m repro.backend.check kmeans q1  # a subset
"""

from __future__ import annotations

import sys

from .executor import run_program_numpy


def check_apps(names=None) -> int:
    from ..bench.apps import _FACTORIES, get_bundle
    from ..core.interp import run_program
    from ..core.values import deep_eq
    names = list(names) if names else sorted(_FACTORIES)
    bad = 0
    for name in names:
        if name not in _FACTORIES:
            print(f"unknown app {name!r}; bundled: "
                  f"{', '.join(sorted(_FACTORIES))}", file=sys.stderr)
            return 2
        bundle = get_bundle(name)
        compiled = bundle.compiled("opt")
        prepared = compiled.prepare_inputs(bundle.inputs)
        results, stats, fallbacks = run_program_numpy(compiled.program,
                                                      prepared)
        ref_results, ref_stats = run_program(compiled.program, prepared)
        problems = []
        for fb in fallbacks:
            problems.append(f"fallback {fb.loop} ({fb.op}): {fb.reason}")
        if not deep_eq(results, ref_results):
            problems.append("results diverge from reference interpreter")
        if stats.total_cycles != ref_stats.total_cycles:
            problems.append(
                f"cycle accounting diverges ({stats.total_cycles} vs "
                f"{ref_stats.total_cycles})")
        if problems:
            bad += 1
            print(f"FAIL {name}")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"ok   {name}: {stats.loops_executed} loop executions "
                  f"vectorized, results + cycles identical")
    if bad:
        print(f"{bad}/{len(names)} apps not fully vectorized",
              file=sys.stderr)
    return 1 if bad else 0


def main(argv=None) -> int:
    return check_apps(sys.argv[1:] if argv is None else argv)


if __name__ == "__main__":
    raise SystemExit(main())
