"""Block vectorizer: evaluate DMLL blocks over whole index vectors.

The reference interpreter (``repro.core.interp``) evaluates generator
blocks once per element; this module evaluates them once per *loop* on
NumPy lane vectors — one lane per loop index — under a boolean activity
mask. Values flow through a small vocabulary of representations:

- ``numpy.ndarray`` of shape ``(L,)`` — a per-lane scalar;
- ``SVec``   — a per-lane struct, stored as columnar fields;
- ``ArrVec`` — a per-lane nested array, stored padded with optional
  per-lane lengths (ragged rows);
- ``Rows``   — a lazy per-lane gather of rows from one host collection
  (adjacency lists, bucket values) that keeps the original row objects
  reachable for collection primitives;
- any other Python value — lane-invariant ("uniform"), evaluated once.

Cost accounting stays *analytic* and matches the interpreter cycle for
cycle: every operation adds its cost to per-lane essential/overhead
vectors under the current mask, and global tallies (op counts, elements
read, bytes) accumulate in a ``StatsDelta`` that the caller commits only
after the whole loop vectorized successfully — a mid-loop ``VecError``
therefore leaves the interpreter's stats untouched and the loop can fall
back to reference execution. All cycle constants are dyadic rationals, so
the vectorized sums are bit-identical to the interpreter's sequential
accumulation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import types as T
from ..core.interp import (BRANCH_CYCLES, BUCKET_CYCLES, READ_CYCLES,
                           WRITE_CYCLES, loop_share_plan)
from ..core.ir import Block, Const, Def, Exp, Sym
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..core.ops import (COLL_PRIMS, PRIMS, ArrayApply, ArrayLength, ArrayLit,
                        BucketKeys, BucketLookup, CollPrim, IfThenElse,
                        InputSource, MakeKeyed, Prim, StructField, StructNew)
from ..core.values import Buckets


class VecError(Exception):
    """A construct (or runtime value shape) this backend cannot vectorize.

    Raised before any stats are committed; the caller records the reason
    and re-executes the loop on the reference interpreter.
    """


# ---------------------------------------------------------------------------
# Lane-vector value representations
# ---------------------------------------------------------------------------

class SVec:
    """Per-lane struct: a tuple of columnar fields (each a lane vector or
    a uniform value)."""

    __slots__ = ("fields",)

    def __init__(self, fields: Tuple[Any, ...]):
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SVec({self.fields!r})"


class ArrVec:
    """Per-lane nested array: ``data`` has shape ``(L, W, ...)``; rows may
    be ragged, in which case ``lengths`` gives each lane's true length and
    the tail of every row is padding."""

    __slots__ = ("data", "lengths")

    def __init__(self, data: np.ndarray, lengths: Optional[np.ndarray]):
        self.data = data
        self.lengths = lengths

    def length_vec(self):
        if self.lengths is not None:
            return self.lengths
        return self.data.shape[1]  # uniform width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrVec{self.data.shape}"


class Rows:
    """Per-lane rows gathered from one uniform host collection: lane ``l``
    holds ``base[idx[l]]``. Padding/length caches live on ``host`` (the
    executing interpreter) so one host collection is columnarized at most
    once per run."""

    __slots__ = ("base", "idx", "host")

    def __init__(self, base: Sequence[Any], idx: np.ndarray, host=None):
        self.base = base
        self.idx = idx
        self.host = host

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Rows(n={len(self.base)}, L={len(self.idx)})"


def _materialize(v: Any) -> Any:
    """Rows → padded ArrVec (needed when a select/concat mixes a gather
    with a computed array, e.g. a vector-add reduction over input rows)."""
    if not isinstance(v, Rows):
        return v
    if v.host is None:
        raise VecError("cannot materialize detached row gather")
    lens, pad = v.host.row_cache(v.base)
    if pad is None:
        raise VecError("cannot materialize non-scalar rows")
    l = lens[v.idx]
    data = pad[v.idx]
    if l.size and int(l.min()) == int(l.max()):
        return ArrVec(data[:, : int(l[0])], None)
    return ArrVec(data, l)


def is_vec(v: Any) -> bool:
    return isinstance(v, (np.ndarray, SVec, ArrVec, Rows))


def _np_dtype(tpe: T.Type):
    if tpe is T.DOUBLE:
        return np.float64
    if tpe in (T.INT, T.LONG):
        return np.int64
    if tpe is T.BOOL:
        return np.bool_
    return object


# ---------------------------------------------------------------------------
# Structural recombination helpers
# ---------------------------------------------------------------------------

def as_lane_vec(v: Any, L: int) -> Any:
    """Broadcast a uniform value to a full lane vector (vectors pass
    through)."""
    if is_vec(v):
        return v
    if isinstance(v, tuple):
        return SVec(tuple(as_lane_vec(f, L) for f in v))
    if isinstance(v, list):
        row = np.asarray(v)
        if row.dtype == object:
            raise VecError("cannot broadcast heterogeneous row")
        return ArrVec(np.tile(row, (L,) + (1,) * max(row.ndim, 1)), None)
    if isinstance(v, (bool, np.bool_)):
        return np.full(L, bool(v), dtype=np.bool_)
    if isinstance(v, (int, np.integer)):
        return np.full(L, int(v), dtype=np.int64)
    if isinstance(v, (float, np.floating)):
        return np.full(L, float(v), dtype=np.float64)
    return np.full(L, v, dtype=object)


def vec_take(v: Any, idx: np.ndarray) -> Any:
    """Reindex a lane vector by lane indices (uniforms pass through)."""
    if isinstance(v, np.ndarray):
        return v[idx]
    if isinstance(v, SVec):
        return SVec(tuple(vec_take(f, idx) for f in v.fields))
    if isinstance(v, ArrVec):
        return ArrVec(v.data[idx],
                      None if v.lengths is None else v.lengths[idx])
    if isinstance(v, Rows):
        return Rows(v.base, v.idx[idx], v.host)
    return v


def vec_concat(a: Any, b: Any, La: int, Lb: int) -> Any:
    """Concatenate two lane vectors along the lane axis."""
    if not is_vec(a):
        a = as_lane_vec(a, La)
    if not is_vec(b):
        b = as_lane_vec(b, Lb)
    if isinstance(a, Rows) and isinstance(b, Rows) and a.base is b.base:
        return Rows(a.base, np.concatenate([a.idx, b.idx]), a.host)
    if isinstance(a, Rows) or isinstance(b, Rows):
        a = _materialize(a)
        b = _materialize(b)
    if isinstance(a, SVec) and isinstance(b, SVec):
        return SVec(tuple(vec_concat(x, y, La, Lb)
                          for x, y in zip(a.fields, b.fields)))
    if isinstance(a, ArrVec) and isinstance(b, ArrVec):
        a, b = _pad_pair(a, b)
        la = a.length_vec() if a.lengths is not None else \
            np.full(La, a.data.shape[1], dtype=np.int64)
        lb = b.length_vec() if b.lengths is not None else \
            np.full(Lb, b.data.shape[1], dtype=np.int64)
        return ArrVec(np.concatenate([a.data, b.data]),
                      np.concatenate([la, lb]))
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return np.concatenate([a, b])
    raise VecError("mixed value shapes in concatenation")


def _pad_pair(a: ArrVec, b: ArrVec) -> Tuple[ArrVec, ArrVec]:
    """Pad two ArrVecs to a common inner width."""
    wa, wb = a.data.shape[1], b.data.shape[1]
    if wa == wb:
        return a, b
    w = max(wa, wb)

    def pad(v: ArrVec) -> ArrVec:
        if v.data.shape[1] == w:
            return v
        shape = (v.data.shape[0], w) + v.data.shape[2:]
        out = np.zeros(shape, dtype=v.data.dtype)
        out[:, : v.data.shape[1]] = v.data
        lens = v.lengths
        if lens is None:
            lens = np.full(v.data.shape[0], v.data.shape[1], dtype=np.int64)
        return ArrVec(out, lens)

    return pad(a), pad(b)


def vec_where(cond: np.ndarray, tv: Any, ev: Any, L: int) -> Any:
    """Per-lane select. ``cond`` is a boolean lane vector."""
    if not is_vec(tv) and not is_vec(ev) and type(tv) is type(ev) and tv == ev:
        return tv
    tv = as_lane_vec(tv, L)
    ev = as_lane_vec(ev, L)
    if isinstance(tv, Rows) and isinstance(ev, Rows) and tv.base is ev.base:
        return Rows(tv.base, np.where(cond, tv.idx, ev.idx), tv.host)
    if isinstance(tv, Rows) or isinstance(ev, Rows):
        tv = _materialize(tv)
        ev = _materialize(ev)
    if isinstance(tv, np.ndarray) and isinstance(ev, np.ndarray):
        return np.where(cond, tv, ev)
    if isinstance(tv, SVec) and isinstance(ev, SVec):
        if len(tv.fields) != len(ev.fields):
            raise VecError("struct arity mismatch in select")
        return SVec(tuple(vec_where(cond, a, b, L)
                          for a, b in zip(tv.fields, ev.fields)))
    if isinstance(tv, ArrVec) and isinstance(ev, ArrVec):
        tv, ev = _pad_pair(tv, ev)
        sel = cond.reshape((L,) + (1,) * (tv.data.ndim - 1))
        lt = tv.length_vec() if tv.lengths is not None else \
            np.full(L, tv.data.shape[1], dtype=np.int64)
        le = ev.length_vec() if ev.lengths is not None else \
            np.full(L, ev.data.shape[1], dtype=np.int64)
        lens = np.where(cond, lt, le)
        if tv.lengths is None and ev.lengths is None and \
                tv.data.shape[1] == ev.data.shape[1]:
            lens = None
        return ArrVec(np.where(sel, tv.data, ev.data), lens)
    raise VecError("mixed value shapes in select")


# ---------------------------------------------------------------------------
# Vectorized primitive table
# ---------------------------------------------------------------------------

def _guard_div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.true_divide(a, b)
    return np.where(np.asarray(b) != 0, r, 0.0)


def _guard_idiv(a, b):
    bz = np.asarray(b) != 0
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.floor_divide(a, np.where(bz, b, 1))
    return np.where(bz, r, 0)


def _guard_mod(a, b):
    bz = np.asarray(b) != 0
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.mod(a, np.where(bz, b, 1))
    return np.where(bz, r, 0)


def _bool_op(fn):
    def op(*args):
        for a in args:
            if isinstance(a, np.ndarray) and a.dtype != np.bool_:
                raise VecError("logical primitive on non-boolean operand")
            if not isinstance(a, (np.ndarray, bool, np.bool_)):
                raise VecError("logical primitive on non-boolean operand")
        return fn(*args)
    return op


def _pyfunc(fn, out_dtype):
    """Element-wise application of the interpreter's own evaluator.

    Used for transcendentals so the backend is *bit-identical* to
    ``math.exp``/``math.log`` (NumPy's SIMD routines may differ in the
    last ulp, which could flip a downstream comparison), and for string /
    hash primitives NumPy has no kernel for."""
    ufn = np.frompyfunc(fn, _arity_of(fn), 1)

    def op(*args):
        return ufn(*args).astype(out_dtype)
    return op


def _arity_of(fn) -> int:
    return fn.__code__.co_argcount if hasattr(fn, "__code__") else 1


_EXP = _pyfunc(math.exp, np.float64)
_LOG = _pyfunc(PRIMS["log"].eval_fn, np.float64)
_POW = _pyfunc(PRIMS["pow"].eval_fn, np.float64)
_SIGMOID = _pyfunc(PRIMS["sigmoid"].eval_fn, np.float64)

VEC_PRIMS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _guard_div,
    "idiv": _guard_idiv,
    "mod": _guard_mod,
    "neg": lambda a: -a,
    "min": np.minimum,
    "max": np.maximum,
    "eq": lambda a, b: np.equal(a, b),
    "ne": lambda a, b: np.not_equal(a, b),
    "lt": lambda a, b: np.less(a, b),
    "le": lambda a, b: np.less_equal(a, b),
    "gt": lambda a, b: np.greater(a, b),
    "ge": lambda a, b: np.greater_equal(a, b),
    "and": _bool_op(np.logical_and),
    "or": _bool_op(np.logical_or),
    "not": _bool_op(np.logical_not),
    "exp": _EXP,
    "log": _LOG,
    # np.sqrt is IEEE correctly rounded, identical to math.sqrt
    "sqrt": lambda a: np.where(np.asarray(a) >= 0,
                               np.sqrt(np.abs(a)), 0.0),
    "abs": np.abs,
    "pow": _POW,
    "sigmoid": _SIGMOID,
    "to_double": lambda a: np.asarray(a, dtype=np.float64),
    "to_int": lambda a: _truncate(a),
    "to_long": lambda a: _truncate(a),
    "str_concat": _pyfunc(lambda a, b: a + b, object),
    "str_len": _pyfunc(len, np.int64),
    "str_char_at": _pyfunc(PRIMS["str_char_at"].eval_fn, object),
    "hash": _pyfunc(PRIMS["hash"].eval_fn, np.int64),
}

#: scalar reducers safe for ufunc-tree evaluation (associative; ``sub``
#: and friends are rejected, which is the associativity check the paper's
#: reduce contract calls for)
ASSOC_UFUNCS = {
    "add": np.add,
    "mul": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.logical_and,
    "or": np.logical_or,
}


def _truncate(a):
    a = np.asarray(a)
    if a.dtype == np.bool_:
        return a.astype(np.int64)
    return np.trunc(a).astype(np.int64) if a.dtype.kind == "f" \
        else a.astype(np.int64)


def recognize_assoc_prim(block: Block) -> Optional[str]:
    """``(a, b) => prim(a, b)`` with an associative prim, in either
    argument order — the shape a ufunc reduction can execute directly."""
    if len(block.params) != 2 or len(block.stmts) != 1:
        return None
    if len(block.results) != 1:
        return None
    d = block.stmts[0]
    op = d.op
    if not isinstance(op, Prim) or op.name not in ASSOC_UFUNCS:
        return None
    if len(d.syms) != 1 or not isinstance(block.results[0], Sym) \
            or block.results[0].id != d.syms[0].id:
        return None
    a, b = block.params
    ids = {x.id for x in op.args if isinstance(x, Sym)}
    if len(op.args) == 2 and ids == {a.id, b.id}:
        return op.name
    return None


# ---------------------------------------------------------------------------
# Static vectorizability scan
# ---------------------------------------------------------------------------

def plan_loop(loop: MultiLoop) -> Optional[str]:
    """Static scan of one top-level loop; returns a fallback reason or
    ``None`` when every construct has a vectorized lowering."""
    share_keys, need_memo = loop_share_plan(loop.gens)
    if need_memo:
        # generators that share a key probe must also share the active
        # mask, otherwise the first-probe/sibling-write cost split cannot
        # be reproduced lane-wise
        by_key: Dict[Any, Any] = {}
        for g, (ck, kk) in zip(loop.gens, share_keys):
            if kk is None:
                continue
            if kk in by_key and by_key[kk] != ck:
                return "bucket key shared across generators with " \
                       "differing conditions"
            by_key.setdefault(kk, ck)
    for g in loop.gens:
        for b in g.blocks():
            reason = _plan_block(b)
            if reason is not None:
                return reason
        if g.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE):
            reason = _plan_reducer(g.reducer)
            if reason is not None:
                return reason
    return None


def plan_program(prog) -> Dict[str, Optional[str]]:
    """Static backend plan for every top-level loop, without executing.

    Maps ``repr(loop sym)`` to the fallback reason ``plan_loop`` would
    report (``None`` = fully vectorizable), and emits one BACKEND_PLAN
    decision per loop into the active provenance ledger — this is how
    ``repro explain`` shows plan-vs-fallback without running the program.
    (Runtime-only fallbacks, from value shapes the static scan cannot see,
    still surface when the program is actually run.)
    """
    from ..obs.provenance import FALLBACK, VECTORIZED, DecisionKind, emit
    out: Dict[str, Optional[str]] = {}
    for d in prog.body.stmts:
        if not isinstance(d.op, MultiLoop):
            continue
        reason = plan_loop(d.op)
        out[repr(d.syms[0])] = reason
        emit(DecisionKind.BACKEND_PLAN, repr(d.syms[0]),
             VECTORIZED if reason is None else FALLBACK,
             reason if reason is not None
             else "all constructs have a vectorized lowering",
             op=d.op.op_name(), static=True)
    return out


def _plan_reducer(block: Block) -> Optional[str]:
    if recognize_assoc_prim(block) is not None:
        return None
    if len(block.stmts) == 1 and isinstance(block.stmts[0].op, Prim):
        # a single non-associative prim (sub, div, ...) would change
        # meaning under tree reduction
        return (f"non-associative scalar reducer "
                f"prim.{block.stmts[0].op.name}")
    return None  # compound reducers are associative by the reduce contract


def _plan_block(block: Block, nested: bool = False) -> Optional[str]:
    for d in block.stmts:
        op = d.op
        if isinstance(op, (MakeKeyed, InputSource)):
            return f"op {op.op_name()} inside a generator block"
        if isinstance(op, CollPrim) and op.name not in COLL_PRIMS:
            return f"unknown collection primitive {op.name}"
        if isinstance(op, Prim) and op.name not in VEC_PRIMS:
            return f"no vectorized lowering for prim.{op.name}"
        if isinstance(op, IfThenElse):
            for b in (op.then_block, op.else_block):
                reason = _plan_block(b, nested)
                if reason is not None:
                    return reason
        if isinstance(op, MultiLoop):
            for g in op.gens:
                if g.kind not in (GenKind.COLLECT, GenKind.REDUCE):
                    return f"nested {g.kind.value} generator"
                if g.flatten:
                    return "nested flatten-Collect (ragged concatenation)"
                for b in g.blocks():
                    reason = _plan_block(b, nested=True)
                    if reason is not None:
                        return reason
    return None


# ---------------------------------------------------------------------------
# Stats accumulation
# ---------------------------------------------------------------------------

@dataclass
class StatsDelta:
    """Loop-local global tallies, committed into ``ExecStats`` only after
    the whole loop vectorized successfully."""

    op_counts: Counter = field(default_factory=Counter)
    loop_iterations: int = 0
    loops_executed: int = 0
    elements_read: int = 0
    bytes_read: int = 0
    elements_emitted: int = 0
    bytes_alloc: int = 0

    def merge_into(self, stats) -> None:
        stats.op_counts.update(self.op_counts)
        stats.loop_iterations += self.loop_iterations
        stats.loops_executed += self.loops_executed
        stats.elements_read += self.elements_read
        stats.bytes_read += self.bytes_read
        stats.elements_emitted += self.elements_emitted
        stats.bytes_alloc += self.bytes_alloc


class _GenState:
    """Accumulator of one nested generator across sequential trips."""

    __slots__ = ("cols", "keeps", "acc", "seen")

    def __init__(self):
        self.cols: List[Any] = []
        self.keeps: List[Any] = []
        self.acc: Any = None
        self.seen: Optional[np.ndarray] = None


# ---------------------------------------------------------------------------
# The vectorizer
# ---------------------------------------------------------------------------

class LoopVectorizer:
    """Evaluates blocks over ``L`` lanes, tracking per-lane cost vectors.

    ``host`` is the executing ``NumpyInterp``: uniform free symbols
    resolve through its environment, and per-host caches (padded rows,
    columnarized structs) live on it so they are shared across loops.
    """

    def __init__(self, host, L: int, delta: StatsDelta):
        self.host = host
        self.L = L
        self.delta = delta
        self.env: Dict[int, Any] = {}
        self.ess = np.zeros(L, dtype=np.float64)
        self.ovh = np.zeros(L, dtype=np.float64)
        self.in_reducer = 0
        self.in_reduce_value = 0
        # single-slot popcount cache: consecutive defs in a block share the
        # same mask object. Pinning the object (_mobj) keeps its id from
        # being recycled by a later, different mask.
        self._mobj: Optional[np.ndarray] = None
        self._mn = L

    # -- mask / cost helpers ---------------------------------------------

    def count(self, mask: Optional[np.ndarray]) -> int:
        if mask is None:
            return self.L
        if mask is not self._mobj:
            self._mobj = mask
            self._mn = int(mask.sum())
        return self._mn

    def full_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        return np.ones(self.L, dtype=np.bool_) if mask is None else mask

    def add_ess(self, c, mask: Optional[np.ndarray]) -> None:
        if mask is None:
            self.ess += c
        else:
            np.add(self.ess, c, out=self.ess, where=mask)

    def add_ovh(self, c, mask: Optional[np.ndarray]) -> None:
        if mask is None:
            self.ovh += c
        else:
            np.add(self.ovh, c, out=self.ovh, where=mask)

    def count_read(self, tpe: T.Type, mask: Optional[np.ndarray],
                   n: int) -> None:
        c = READ_CYCLES * 0.5 if self.in_reducer else READ_CYCLES
        self.add_ess(c, mask)
        self.delta.elements_read += n
        self.delta.bytes_read += tpe.byte_size * n

    def count_alloc(self, tpe: T.Type, mask: Optional[np.ndarray],
                    n=1) -> None:
        if self.in_reduce_value:
            return
        if np.isscalar(n):
            self.add_ess(WRITE_CYCLES * n, mask)
            total = n * self.count(mask)
        else:
            self.add_ess(WRITE_CYCLES * n.astype(np.float64), mask)
            total = int(n.sum() if mask is None else n[mask].sum())
        if self.in_reducer:
            return
        self.delta.elements_emitted += total
        self.delta.bytes_alloc += tpe.byte_size * total

    # -- expression / block evaluation -----------------------------------

    def lookup(self, e: Exp) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Sym):
            if e.id in self.env:
                return self.env[e.id]
            if e.id in self.host.env:
                return self.host.env[e.id]  # uniform host value
            raise VecError(f"unbound symbol {e!r} in vectorized block")
        raise VecError(f"cannot evaluate {e!r}")

    def eval_block(self, block: Block, args: Sequence[Any],
                   mask: Optional[np.ndarray]) -> Any:
        if len(args) != len(block.params):
            raise VecError("block arity mismatch")
        if len(block.results) != 1:
            raise VecError("multi-result block")
        for p, a in zip(block.params, args):
            self.env[p.id] = a
        for d in block.stmts:
            self.eval_def(d, mask)
        return self.lookup(block.results[0])

    # -- statement dispatch ----------------------------------------------

    def eval_def(self, d: Def, mask: Optional[np.ndarray]) -> None:
        op = d.op
        n = self.count(mask)
        names = self.host.opname_cache
        nm = names.get(id(op))
        if nm is None:
            nm = names[id(op)] = op.op_name()
        self.delta.op_counts[nm] += n
        if isinstance(op, Prim):
            spec = PRIMS[op.name]
            args = [self.lookup(a) for a in op.args]
            self.add_ess(spec.cost, mask)
            if not any(is_vec(a) for a in args):
                val = spec.eval_fn(*args)
            else:
                val = VEC_PRIMS[op.name](*args)
            self.env[d.sym.id] = val
        elif isinstance(op, ArrayApply):
            rt = op.result_types()[0]
            arr = self.lookup(op.arr)
            idx = self.lookup(op.idx)
            self.count_read(rt, mask, n)
            self.env[d.sym.id] = self._apply(arr, idx, rt)
        elif isinstance(op, ArrayLength):
            self.add_ess(1.0, mask)
            self.env[d.sym.id] = self._length(self.lookup(op.arr))
        elif isinstance(op, MultiLoop):
            self._nested_loop(d, op, mask)
        elif isinstance(op, IfThenElse):
            self.add_ovh(BRANCH_CYCLES, mask)
            self.env[d.sym.id] = self._if_then_else(op, mask)
        elif isinstance(op, StructNew):
            self.add_ovh(len(op.values) * 0.5, mask)
            vals = tuple(self.lookup(v) for v in op.values)
            if not any(is_vec(v) for v in vals):
                self.env[d.sym.id] = vals
            else:
                self.env[d.sym.id] = SVec(vals)
        elif isinstance(op, StructField):
            st = op.struct.tpe
            fidx = st.field_names().index(op.fname)
            self.add_ovh(0.5, mask)
            v = self.lookup(op.struct)
            if isinstance(v, SVec):
                self.env[d.sym.id] = v.fields[fidx]
            elif isinstance(v, tuple):
                self.env[d.sym.id] = v[fidx]
            else:
                raise VecError("field access on non-struct value")
        elif isinstance(op, BucketLookup):
            self.env[d.sym.id] = self._bucket_lookup(op, mask, n)
        elif isinstance(op, BucketKeys):
            coll = self.lookup(op.coll)
            if not isinstance(coll, Buckets):
                raise VecError("BucketKeys on per-lane buckets")
            self.env[d.sym.id] = list(coll.keys)
        elif isinstance(op, CollPrim):
            self.env[d.sym.id] = self._coll_prim(op, mask, n)
        elif isinstance(op, ArrayLit):
            elems = [self.lookup(e) for e in op.elems]
            self.count_alloc(op.elem_type, mask, len(elems))
            if not any(is_vec(e) for e in elems):
                self.env[d.sym.id] = list(elems)
            elif elems:
                cols = [as_lane_vec(e, self.L) for e in elems]
                if not all(isinstance(c, np.ndarray) for c in cols):
                    raise VecError("array literal of non-scalar elements")
                self.env[d.sym.id] = ArrVec(np.stack(cols, axis=1), None)
            else:
                self.env[d.sym.id] = []
        else:
            raise VecError(f"unvectorizable op {op.op_name()}")

    # -- array access -----------------------------------------------------

    def _apply(self, arr: Any, idx: Any, rt: T.Type) -> Any:
        if isinstance(arr, SVec):
            # per-lane array of structs, stored columnar
            return SVec(tuple(self._apply(f, idx, ft)
                              for f, (_, ft) in zip(
                                  arr.fields,
                                  rt.fields if isinstance(rt, T.Struct)
                                  else ((None, rt),) * len(arr.fields))))
        if isinstance(arr, Rows):
            lens, pad = self.host.row_cache(arr.base)
            if pad is None:
                raise VecError("gathered rows have non-scalar elements")
            j = np.clip(idx, 0, pad.shape[1] - 1) if pad.shape[1] else None
            if j is None:
                raise VecError("indexing into empty rows")
            return pad[arr.idx, j]
        if isinstance(arr, ArrVec):
            w = arr.data.shape[1]
            if w == 0:
                raise VecError("indexing into empty rows")
            j = np.clip(idx, 0, w - 1)
            if isinstance(j, np.ndarray):
                rows = arr.data[np.arange(self.L), j]
            else:
                rows = arr.data[:, int(j)]
            if rows.ndim == 1:
                return rows
            return ArrVec(rows, None)
        if is_vec(arr):
            raise VecError("positional read of a scalar lane vector")
        # uniform host collection
        if not is_vec(idx):
            try:
                return arr[idx]
            except (IndexError, KeyError, TypeError) as e:
                raise VecError(f"host read failed: {e}") from None
        base = arr.values if isinstance(arr, Buckets) else arr
        return self._gather(base, idx, rt)

    def _gather(self, base: Sequence[Any], idx: np.ndarray,
                rt: T.Type) -> Any:
        if len(base) == 0:
            raise VecError("gather from an empty collection")
        idx = np.clip(idx, 0, len(base) - 1)
        if isinstance(rt, T.Struct):
            cols = self.host.col_cache(base, rt)
            return SVec(tuple(
                c[idx] if isinstance(c, np.ndarray)
                else Rows(c, idx, self.host)
                for c in cols))
        if isinstance(rt, (T.Coll, T.KeyedColl)):
            return Rows(base, idx, self.host)
        return self.host.np_cache(base)[idx]

    def _length(self, arr: Any) -> Any:
        if isinstance(arr, Rows):
            lens, _ = self.host.row_cache(arr.base)
            return lens[arr.idx]
        if isinstance(arr, ArrVec):
            return arr.length_vec()
        if isinstance(arr, SVec):
            return self._length(arr.fields[0])
        if is_vec(arr):
            raise VecError("length of a scalar lane vector")
        try:
            return len(arr)
        except TypeError as e:
            raise VecError(f"length failed: {e}") from None

    # -- control flow ------------------------------------------------------

    def _if_then_else(self, op: IfThenElse, mask: Optional[np.ndarray]):
        cond = self.lookup(op.cond)
        if not is_vec(cond):
            branch = op.then_block if cond else op.else_block
            return self.eval_block(branch, (), mask)
        cond = cond.astype(np.bool_, copy=False)
        mt = cond if mask is None else (mask & cond)
        me = ~cond if mask is None else (mask & ~cond)
        has_t = bool(mt.any())
        has_e = bool(me.any())
        tv = self.eval_block(op.then_block, (), mt) if has_t else None
        ev = self.eval_block(op.else_block, (), me) if has_e else None
        if not has_e:
            return tv
        if not has_t:
            return ev
        return vec_where(cond, tv, ev, self.L)

    # -- keyed / collection ops -------------------------------------------

    def _bucket_lookup(self, op: BucketLookup, mask: Optional[np.ndarray],
                       n: int) -> Any:
        rt = op.result_types()[0]
        coll = self.lookup(op.coll)
        key = self.lookup(op.key)
        self.add_ess(BUCKET_CYCLES, mask)
        self.count_read(rt, mask, n)
        if not isinstance(coll, Buckets):
            raise VecError("BucketLookup on per-lane buckets")
        if not is_vec(key):
            return coll.lookup(key)
        if not isinstance(key, np.ndarray):
            raise VecError("bucket lookup with non-scalar keys")
        miss = len(coll.values)
        index = coll._index
        pos = np.fromiter((index.get(k, miss) for k in key.tolist()),
                          dtype=np.int64, count=self.L)
        ext = list(coll.values) + [coll.default]
        return self._gather(ext, pos, rt)

    def _coll_prim(self, op: CollPrim, mask: Optional[np.ndarray],
                   n: int) -> Any:
        spec = COLL_PRIMS[op.name]
        rt = op.result_types()[0]
        args = [self.lookup(a) for a in op.args]
        if not any(is_vec(a) for a in args):
            cycles, reads = spec.cost_fn(*args)
            self.add_ess(cycles, mask)
            self.delta.elements_read += reads * n
            self.delta.bytes_read += reads * 8 * n
            return spec.eval_fn(*args)
        lanes = (np.arange(self.L) if mask is None
                 else np.nonzero(mask)[0])
        out = np.zeros(self.L, dtype=_np_dtype(rt))
        ev, cf = spec.eval_fn, spec.cost_fn
        er = br = 0
        for l in lanes.tolist():
            vals = [self._row_at(a, l) for a in args]
            c, r = cf(*vals)
            self.ess[l] += c
            er += r
            out[l] = ev(*vals)
        self.delta.elements_read += er
        self.delta.bytes_read += er * 8
        return out

    def _row_at(self, a: Any, l: int) -> Any:
        """One lane's concrete value, as a host object."""
        if isinstance(a, Rows):
            return a.base[a.idx[l]]
        if isinstance(a, ArrVec):
            row = a.data[l]
            if a.lengths is not None:
                row = row[: a.lengths[l]]
            return row.tolist()
        if isinstance(a, SVec):
            return tuple(self._row_at(f, l) for f in a.fields)
        if isinstance(a, np.ndarray):
            return a[l].item() if a.dtype != object else a[l]
        return a  # uniform

    # -- nested multiloops -------------------------------------------------

    def _nested_loop(self, d: Def, loop: MultiLoop,
                     mask: Optional[np.ndarray]) -> None:
        gens = loop.gens
        sizes = self.lookup(loop.size)
        n = self.count(mask)
        self.delta.loops_executed += n
        if is_vec(sizes):
            if not isinstance(sizes, np.ndarray):
                raise VecError("non-scalar loop size")
            sz = sizes
            active_sz = sz if mask is None else sz[mask]
            self.delta.loop_iterations += int(active_sz.sum()) if n else 0
            trips = int(active_sz.max()) if n else 0
        else:
            sz = None
            trips = int(sizes) if n else 0
            self.delta.loop_iterations += int(sizes) * n
        share_keys, need_memo = loop_share_plan(gens)
        states = [_GenState() for _ in gens]
        for t in range(trips):
            if sz is not None:
                live = sz > t
                m_t = live if mask is None else (mask & live)
                if not m_t.any():
                    continue
            else:
                m_t = mask
            memo = {} if need_memo else None
            for g, st, sk in zip(gens, states, share_keys):
                self._nested_gen_iter(g, st, t, m_t, memo, sk)
        for s, g, st in zip(d.syms, gens, states):
            self.env[s.id] = self._finish_nested(g, st, mask)

    def _shared_cond(self, block: Block, t: int,
                     mask: Optional[np.ndarray], memo, ckey) -> Any:
        if memo is None or ckey is None:
            return self.eval_block(block, (t,), mask)
        if ckey in memo:
            return memo[ckey]
        v = self.eval_block(block, (t,), mask)
        memo[ckey] = v
        return v

    def _nested_gen_iter(self, g: Generator, st: _GenState, t: int,
                         mask: Optional[np.ndarray], memo, sk) -> None:
        ckey, _ = sk
        m = mask
        if g.cond is not None:
            self.add_ovh(BRANCH_CYCLES, m)
            cv = self._shared_cond(g.cond, t, m, memo, ckey)
            if is_vec(cv):
                cv = cv.astype(np.bool_, copy=False)
                m = cv if m is None else (m & cv)
                if not m.any():
                    return
            elif not cv:
                return
        if g.kind is GenKind.COLLECT:
            v = self.eval_block(g.value, (t,), m)
            self.count_alloc(g.value_type, m, 1)
            st.cols.append(v)
            st.keeps.append(self.full_mask(m))
        else:  # REDUCE
            self.in_reduce_value += 1
            try:
                v = self.eval_block(g.value, (t,), m)
            finally:
                self.in_reduce_value -= 1
            full = self.full_mask(m)
            if st.seen is None:
                st.acc = as_lane_vec(v, self.L)
                st.seen = full.copy()
                return
            rest = full & st.seen
            first = full & ~st.seen
            if rest.any():
                self.in_reducer += 1
                try:
                    r = self.eval_block(g.reducer, (st.acc, v), rest)
                finally:
                    self.in_reducer -= 1
                st.acc = vec_where(rest, r, st.acc, self.L)
            if first.any():
                st.acc = vec_where(first, v, st.acc, self.L)
            st.seen |= full

    def _finish_nested(self, g: Generator, st: _GenState,
                       mask: Optional[np.ndarray]) -> Any:
        if g.kind is GenKind.COLLECT:
            return self._assemble_collect(g, st, mask)
        # REDUCE: lanes that saw no element fall back to init/identity
        if g.init is not None:
            ident = self.lookup(g.init)
        else:
            ident = g.identity_value()
        if st.seen is None:
            return as_lane_vec(ident, self.L)
        if bool(st.seen.all()):
            return st.acc
        return vec_where(st.seen, st.acc, as_lane_vec(ident, self.L),
                         self.L)

    def _assemble_collect(self, g: Generator, st: _GenState,
                          mask: Optional[np.ndarray]) -> Any:
        cols, keeps = st.cols, st.keeps
        if not cols:
            dt = _np_dtype(g.value_type)
            return ArrVec(np.zeros((self.L, 0), dtype=dt),
                          np.zeros(self.L, dtype=np.int64))
        vals = [as_lane_vec(v, self.L) for v in cols]
        if all(isinstance(v, SVec) for v in vals):
            arity = len(vals[0].fields)
            fields = []
            for fi in range(arity):
                fields.append(self._assemble_field(
                    [v.fields[fi] for v in vals], keeps, mask))
            return SVec(tuple(fields))
        return self._assemble_field(vals, keeps, mask)

    def _assemble_field(self, vals: List[Any], keeps: List[np.ndarray],
                        mask: Optional[np.ndarray]) -> ArrVec:
        # Raggedness checks only inspect lanes live under each trip's keep
        # mask: lanes outside the evaluation mask hold garbage lengths and
        # must not trigger a spurious fallback.
        vals = [as_lane_vec(v, self.L) for v in vals]
        if all(isinstance(v, np.ndarray) for v in vals):
            data = np.stack(vals, axis=1)            # (L, T)
        elif all(isinstance(v, (ArrVec, Rows)) for v in vals):
            mats = []
            w = None
            for v, kp in zip(vals, keeps):
                if isinstance(v, Rows):
                    lens, pad = self.host.row_cache(v.base)
                    if pad is None:
                        raise VecError("collect of non-scalar rows")
                    lv = lens[v.idx][kp]
                    if lv.size and int(lv.min()) != int(lv.max()):
                        raise VecError("collect of ragged rows")
                    wt = int(lv[0]) if lv.size else 0
                    v = ArrVec(pad[v.idx][:, :wt], None)
                elif v.lengths is not None:
                    lv = v.lengths[kp]
                    if lv.size and int(lv.min()) != int(lv.max()):
                        raise VecError("collect of ragged rows")
                    wt = int(lv[0]) if lv.size else 0
                    v = ArrVec(v.data[:, :wt], None)
                wt = v.data.shape[1]
                if w is None:
                    w = wt
                elif wt != w:
                    raise VecError("collect of ragged rows")
                mats.append(v.data)
            data = np.stack(mats, axis=1)            # (L, T, W, ...)
        else:
            raise VecError("mixed element shapes in nested collect")
        K = np.stack(keeps, axis=1)                  # (L, T)
        if bool(K.all()):
            return ArrVec(data, None)
        lens = K.sum(axis=1)
        w = int(lens.max()) if lens.size else 0
        out = np.zeros((self.L, w) + data.shape[2:], dtype=data.dtype)
        lane_i, _ = np.nonzero(K)
        pos = K.cumsum(axis=1) - 1
        out[lane_i, pos[K]] = data[K]
        live = lens if mask is None else lens[mask]
        if live.size and int(live.min()) == int(live.max()) == w:
            return ArrVec(out, None)
        return ArrVec(out, lens.astype(np.int64))
