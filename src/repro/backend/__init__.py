"""Execution backends for optimized DMLL programs.

Two backends share the reference interpreter's semantics and cost model:

- ``"reference"`` — the instrumented per-element interpreter
  (``repro.core.interp``); always correct, slow in wall-clock.
- ``"numpy"``     — vectorized multiloop execution
  (``repro.backend.executor``); identical results and ``ExecStats``,
  with automatic recorded fallback to the reference path per loop.

The process-wide default is ``DEFAULT_BACKEND``; ``resolve_backend``
honors an explicit argument first, then the ``REPRO_BACKEND``
environment variable, then the default — so callers can thread a
``backend=None`` parameter without each re-implementing the policy.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from .executor import FallbackRecord, NumpyInterp, run_program_numpy
from .vectorize import VecError, plan_loop

BACKENDS = ("reference", "numpy")

#: process-wide default backend; tests and the CLI may rebind it
DEFAULT_BACKEND = "reference"


def resolve_backend_ex(name: Optional[str] = None) -> Tuple[str, str]:
    """Resolve the backend and say where the choice came from.

    Returns ``(backend, source)`` with source one of ``"argument"``,
    ``"env:REPRO_BACKEND"``, ``"default"``. A *set-but-blank*
    ``REPRO_BACKEND=`` used to be treated like unset (``or
    DEFAULT_BACKEND`` swallowed it), which let a CI matrix leg with a
    mistyped env silently run the wrong backend — now blank is an
    explicit error, and surrounding whitespace is stripped.
    """
    if name is not None:
        name = name.strip()
        if not name:
            raise ValueError(
                "backend argument is blank; expected one of "
                f"{BACKENDS} (or None to defer to $REPRO_BACKEND)")
        source = "argument"
    else:
        env = os.environ.get("REPRO_BACKEND")
        if env is None:
            name, source = DEFAULT_BACKEND, "default"
        else:
            name = env.strip()
            if not name:
                raise ValueError(
                    "REPRO_BACKEND is set but blank; unset it or name one "
                    f"of {BACKENDS}")
            source = "env:REPRO_BACKEND"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name, source


def resolve_backend(name: Optional[str] = None) -> str:
    """Explicit choice > ``REPRO_BACKEND`` env var > ``DEFAULT_BACKEND``."""
    return resolve_backend_ex(name)[0]


__all__ = ["BACKENDS", "DEFAULT_BACKEND", "FallbackRecord", "NumpyInterp",
           "VecError", "plan_loop", "resolve_backend", "resolve_backend_ex",
           "run_program_numpy"]
