"""Execution backends for optimized DMLL programs.

Two backends share the reference interpreter's semantics and cost model:

- ``"reference"`` — the instrumented per-element interpreter
  (``repro.core.interp``); always correct, slow in wall-clock.
- ``"numpy"``     — vectorized multiloop execution
  (``repro.backend.executor``); identical results and ``ExecStats``,
  with automatic recorded fallback to the reference path per loop.

The process-wide default is ``DEFAULT_BACKEND``; ``resolve_backend``
honors an explicit argument first, then the ``REPRO_BACKEND``
environment variable, then the default — so callers can thread a
``backend=None`` parameter without each re-implementing the policy.
"""

from __future__ import annotations

import os
from typing import Optional

from .executor import FallbackRecord, NumpyInterp, run_program_numpy
from .vectorize import VecError, plan_loop

BACKENDS = ("reference", "numpy")

#: process-wide default backend; tests and the CLI may rebind it
DEFAULT_BACKEND = "reference"


def resolve_backend(name: Optional[str] = None) -> str:
    """Explicit choice > ``REPRO_BACKEND`` env var > ``DEFAULT_BACKEND``."""
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name


__all__ = ["BACKENDS", "DEFAULT_BACKEND", "FallbackRecord", "NumpyInterp",
           "VecError", "plan_loop", "resolve_backend", "run_program_numpy"]
