"""Vectorized NumPy execution of multiloops, with recorded fallback.

``NumpyInterp`` subclasses the reference interpreter and replaces only
top-level multiloop execution: each loop is first checked by the static
planner, then lowered generator-by-generator onto NumPy kernels —

- ``Collect``       → masked value computation, compacted to a list;
- ``Reduce``        → ``ufunc.reduce`` for associative scalar reducers,
                      otherwise an order-preserving pairwise tree fold
                      evaluated by a masked sub-vectorizer;
- ``BucketCollect`` → stable sort by first-seen key codes, segmented
                      slicing;
- ``BucketReduce``  → ``ufunc.reduceat`` over code-sorted values, or the
                      same pairwise fold applied per segment.

Any construct the vectorizer cannot handle (statically or at runtime)
raises ``VecError``; the loop then re-executes on the inherited
per-element path and the (loop, reason) pair is recorded in
``fallbacks``. Because all stats mutations are staged in a
``StatsDelta`` / per-lane cost vectors until the loop completes, a
fallback is invisible in ``ExecStats`` — results, cycle tallies, and
per-iteration cost vectors are identical to a pure reference run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import types as T
from ..core.interp import (BRANCH_CYCLES, BUCKET_CYCLES, WRITE_CYCLES,
                           ExecStats, Interp, LoopObserver, loop_share_plan)
from ..core.ir import Def, Program
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..core.ops import PRIMS
from ..core.values import Buckets
from ..obs.provenance import FALLBACK, VECTORIZED, DecisionKind, emit
from .vectorize import (ASSOC_UFUNCS, ArrVec, LoopVectorizer, Rows, StatsDelta,
                        SVec, VecError, as_lane_vec, is_vec, plan_loop,
                        recognize_assoc_prim, vec_take, vec_where)


@dataclass
class FallbackRecord:
    """One loop that executed on the reference interpreter instead."""

    loop: str
    op: str
    reason: str


_UNPLANNED = object()


class NumpyInterp(Interp):
    """Reference interpreter with vectorized top-level loop execution."""

    backend = "numpy"

    def __init__(self, stats: Optional[ExecStats] = None,
                 observer: Optional[LoopObserver] = None,
                 profile_host: bool = False):
        super().__init__(stats, observer)
        self.fallbacks: List[FallbackRecord] = []
        #: host wall-clock seconds per top-level loop; populated only when
        #: ``profile_host`` — cost-model calibration data, never part of
        #: functional results or simulated pricing
        self.profile_host = profile_host
        self.host_loop_s: Dict[str, float] = {}
        self._loop_depth = 0           # >0 while inside a fallback loop
        self._plans: Dict[int, Any] = {}
        # per-host-collection caches, keyed by object identity (collections
        # are immutable during a run); _keep pins the keyed objects so ids
        # cannot be recycled
        self._np: Dict[int, np.ndarray] = {}
        self._rows: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        self._cols: Dict[int, Tuple[Any, ...]] = {}
        self._keep: List[Any] = []
        # op -> op_name() memo; ops are pinned by the program for the
        # duration of the run, so id-keying is safe
        self.opname_cache: Dict[int, str] = {}

    # -- host-collection caches -------------------------------------------

    def np_cache(self, base: Sequence[Any]) -> np.ndarray:
        key = id(base)
        arr = self._np.get(key)
        if arr is None:
            try:
                arr = np.asarray(base)
            except (ValueError, TypeError) as e:
                raise VecError(f"unconvertible collection: {e}") from None
            if arr.ndim != 1 or arr.dtype == object:
                raise VecError("gather from non-scalar collection")
            self._np[key] = arr
            self._keep.append(base)
        return arr

    def row_cache(self, base) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """(per-row lengths, padded matrix or None if rows aren't scalar)."""
        key = id(base)
        ent = self._rows.get(key)
        if ent is None:
            seq = base.values if isinstance(base, Buckets) else base
            n = len(seq)
            lens = np.fromiter((len(r) for r in seq), dtype=np.int64,
                               count=n)
            pad: Optional[np.ndarray] = None
            w = int(lens.max()) if n else 0
            flat = np.asarray([x for r in seq for x in r]) if w else \
                np.zeros(0)
            if flat.dtype != object:
                pad = np.zeros((n, w), dtype=flat.dtype)
                if w:
                    pad[lens[:, None] > np.arange(w)] = flat
            ent = (lens, pad)
            self._rows[key] = ent
            self._keep.append(base)
        return ent

    def col_cache(self, base: Sequence[Any], st: T.Struct) -> Tuple[Any, ...]:
        key = id(base)
        ent = self._cols.get(key)
        if ent is None:
            cols: List[Any] = []
            for fi, (_, ft) in enumerate(st.fields):
                col = [row[fi] for row in base]
                if isinstance(ft, (T.Coll, T.KeyedColl)):
                    cols.append(col)
                elif isinstance(ft, T.Struct):
                    raise VecError("nested struct column")
                else:
                    arr = np.asarray(col)
                    if arr.dtype == object:
                        raise VecError("heterogeneous struct column")
                    cols.append(arr)
            ent = tuple(cols)
            self._cols[key] = ent
            self._keep.append(base)
        return ent

    # -- host conversion ---------------------------------------------------

    def to_host(self, v: Any, lanes: np.ndarray, tpe: T.Type) -> List[Any]:
        """Lane vector → list of plain Python values for ``lanes``.

        Type-directed: an ``SVec`` is a per-lane struct under a Struct
        type but a columnar array-of-structs under a Coll type."""
        k = len(lanes)
        if not is_vec(v):
            return [v] * k
        if isinstance(v, np.ndarray):
            return v[lanes].tolist()
        if isinstance(tpe, T.Struct):
            if not isinstance(v, SVec) or len(v.fields) != len(tpe.fields):
                raise VecError("struct value shape mismatch")
            cols = [self.to_host(f, lanes, ft)
                    for f, (_, ft) in zip(v.fields, tpe.fields)]
            return [tuple(t) for t in zip(*cols)] if cols else [()] * k
        if isinstance(tpe, (T.Coll, T.KeyedColl)):
            if isinstance(v, Rows):
                return [v.base[i] for i in v.idx[lanes].tolist()]
            if isinstance(v, ArrVec):
                data = v.data[lanes]
                if v.lengths is None:
                    return [row.tolist() for row in data]
                lens = v.lengths[lanes]
                return [data[i, : lens[i]].tolist() for i in range(k)]
            et = T.element_type(tpe)
            if isinstance(v, SVec) and isinstance(et, T.Struct):
                cols = [self.to_host(f, lanes, T.Coll(ft))
                        for f, (_, ft) in zip(v.fields, et.fields)]
                return [list(zip(*per_lane)) for per_lane in zip(*cols)]
        raise VecError(
            f"cannot convert {type(v).__name__} to host {tpe!r}")

    @staticmethod
    def _host_key(k: Any) -> Any:
        return k.item() if isinstance(k, np.generic) else k

    # -- loop dispatch -----------------------------------------------------

    def _eval_loop(self, d: Def, loop: MultiLoop) -> None:
        if not self.profile_host or self._loop_depth:
            return self._eval_loop_impl(d, loop)
        t0 = time.perf_counter()
        try:
            return self._eval_loop_impl(d, loop)
        finally:
            name = d.syms[0].name
            self.host_loop_s[name] = (self.host_loop_s.get(name, 0.0)
                                      + time.perf_counter() - t0)

    def _eval_loop_impl(self, d: Def, loop: MultiLoop) -> None:
        if self._loop_depth:  # nested loop during a fallback: stay scalar
            return super()._eval_loop(d, loop)
        reason = self._plans.get(id(loop), _UNPLANNED)
        if reason is _UNPLANNED:
            reason = plan_loop(loop)
            self._plans[id(loop)] = reason
            self._keep.append(loop)
            emit(DecisionKind.BACKEND_PLAN, repr(d.syms[0]),
                 VECTORIZED if reason is None else FALLBACK,
                 str(reason) if reason is not None
                 else "all constructs have a vectorized lowering",
                 op=loop.op_name())
        if reason is None:
            try:
                return self._vec_loop(d, loop)
            except VecError as e:
                reason = str(e) or "unvectorizable"
            except (RecursionError, KeyboardInterrupt):
                raise
            except Exception as e:  # robustness: never lose a run
                reason = f"{type(e).__name__}: {e}"
            emit(DecisionKind.BACKEND_PLAN, repr(d.syms[0]), FALLBACK,
                 f"runtime: {reason}", op=loop.op_name())
        self.fallbacks.append(
            FallbackRecord(d.syms[0].name, loop.op_name(), str(reason)))
        self._loop_depth += 1
        try:
            super()._eval_loop(d, loop)
        finally:
            self._loop_depth -= 1

    # -- vectorized loop execution ----------------------------------------

    def _vec_loop(self, d: Def, loop: MultiLoop) -> None:
        size = int(self.eval_exp(loop.size))
        gens = loop.gens
        delta = StatsDelta()
        vz = LoopVectorizer(self, size, delta)
        share_keys, need_memo = loop_share_plan(gens)
        # top-level analogue of the interpreter's per-iteration memo: one
        # value namespace for alpha-equivalent cond/key vectors, one probe
        # registry for shared bucket probes
        shared_vals: Dict[Any, Any] = {}
        probed: Dict[Any, Any] = {}
        idx = np.arange(size, dtype=np.int64)
        outs = [self._vec_gen(vz, g, sk, idx, shared_vals, probed, need_memo)
                for g, sk in zip(gens, share_keys)]
        # success — commit everything atomically
        delta.merge_into(self.stats)
        self.stats.loops_executed += 1
        self.stats.loop_iterations += size
        fr = self._frames[-1]
        fr[0] += float(vz.ess.sum())
        fr[1] += float(vz.ovh.sum())
        for s, out in zip(d.syms, outs):
            self.env[s.id] = out
        obs = self.observer
        if obs is not None:
            obs.on_loop_start(d, size)
            obs.on_iteration_costs(d, (vz.ess + vz.ovh).tolist())
            obs.on_loop_end(d)

    def _vec_gen(self, vz: LoopVectorizer, g: Generator, sk,
                 idx: np.ndarray, shared_vals: Dict, probed: Dict,
                 need_memo: bool) -> Any:
        ckey, _ = sk
        mask: Optional[np.ndarray] = None
        if g.cond is not None:
            vz.add_ovh(BRANCH_CYCLES, None)
            if need_memo and ckey is not None and ckey in shared_vals:
                cv = shared_vals[ckey]  # alpha-equal sibling already paid
            else:
                cv = vz.eval_block(g.cond, (idx,), None)
                if need_memo and ckey is not None:
                    shared_vals[ckey] = cv
            if is_vec(cv):
                if not isinstance(cv, np.ndarray):
                    raise VecError("non-scalar condition value")
                mask = cv.astype(np.bool_, copy=False)
            elif not cv:
                mask = np.zeros(vz.L, dtype=np.bool_)
        if mask is not None and not bool(mask.any()):
            return self._empty_result(g)
        if g.kind is GenKind.COLLECT:
            return self._vec_collect(vz, g, idx, mask)
        if g.kind is GenKind.REDUCE:
            return self._vec_reduce(vz, g, idx, mask)
        return self._vec_bucket(vz, g, sk, idx, mask, shared_vals, probed,
                                need_memo)

    def _empty_result(self, g: Generator) -> Any:
        if g.kind is GenKind.COLLECT:
            return []
        if g.kind is GenKind.REDUCE:
            return self._reduce_identity(g)
        return Buckets(default=self._bucket_default(g))

    def _reduce_identity(self, g: Generator) -> Any:
        if g.init is not None:
            return self.eval_exp(g.init)
        return g.identity_value()

    # -- Collect -----------------------------------------------------------

    def _vec_collect(self, vz: LoopVectorizer, g: Generator,
                     idx: np.ndarray, mask: Optional[np.ndarray]) -> List:
        v = vz.eval_block(g.value, (idx,), mask)
        actives = idx if mask is None else idx[mask]
        if g.flatten:
            elem = g.value_type.elem if isinstance(g.value_type, T.Coll) \
                else g.value_type
            lens = vz._length(v)
            vz.count_alloc(elem, mask,
                           lens if isinstance(lens, np.ndarray)
                           else int(lens))
            out: List[Any] = []
            for row in self.to_host(v, actives, g.value_type):
                out.extend(row)
            return out
        vz.count_alloc(g.value_type, mask, 1)
        return self.to_host(v, actives, g.value_type)

    # -- Reduce ------------------------------------------------------------

    def _vec_reduce(self, vz: LoopVectorizer, g: Generator,
                    idx: np.ndarray, mask: Optional[np.ndarray]) -> Any:
        vz.in_reduce_value += 1
        try:
            v = vz.eval_block(g.value, (idx,), mask)
        finally:
            vz.in_reduce_value -= 1
        actives = idx if mask is None else idx[mask]
        n = len(actives)
        if n == 0:
            return self._reduce_identity(g)
        vfull = v if is_vec(v) else as_lane_vec(v, vz.L)
        name = recognize_assoc_prim(g.reducer)
        if name is not None and isinstance(vfull, np.ndarray):
            return self._ufunc_reduce(vz, name, vfull[actives], actives)
        vals = vec_take(vfull, actives)
        codes = np.zeros(n, dtype=np.int64)
        red = self._generic_segmented(vz, g, vals, codes, 1, actives[1:])
        return self.to_host(red, np.arange(1), g.value_type)[0]

    def _ufunc_reduce(self, vz: LoopVectorizer, name: str,
                      vals: np.ndarray, actives: np.ndarray) -> Any:
        vals = self._reducer_operands(name, vals)
        out = ASSOC_UFUNCS[name].reduce(vals)
        n = len(vals)
        if n > 1:
            vz.ess[actives[1:]] += PRIMS[name].cost
            vz.delta.op_counts[f"prim.{name}"] += n - 1
        return out.item() if isinstance(out, np.generic) else out

    @staticmethod
    def _reducer_operands(name: str, vals: np.ndarray) -> np.ndarray:
        if name in ("and", "or") and vals.dtype != np.bool_:
            raise VecError("logical reducer on non-boolean values")
        if name in ("add", "mul") and vals.dtype == np.bool_:
            return vals.astype(np.int64)  # Python bool arithmetic widens
        return vals

    def _generic_segmented(self, vz: LoopVectorizer, g: Generator,
                           vals: Any, codes: np.ndarray, K: int,
                           rest_lanes: np.ndarray) -> Any:
        """Order-preserving pairwise fold of code-sorted values down to one
        value per code. Each round pairs adjacent same-code elements and
        combines them with a masked sub-vectorizer; per-combine costs must
        be uniform so they can be re-attributed to ``rest_lanes`` (every
        active lane except each code's first) exactly as the sequential
        fold charges them."""
        cur, cur_codes = vals, codes
        ess_parts: List[np.ndarray] = []
        ovh_parts: List[np.ndarray] = []
        while len(cur_codes) > K:
            m = len(cur_codes)
            first_occ = np.searchsorted(cur_codes, cur_codes, side="left")
            pos = np.arange(m) - first_occ
            nxt_same = np.zeros(m, dtype=np.bool_)
            nxt_same[:-1] = cur_codes[1:] == cur_codes[:-1]
            left = (pos % 2 == 0) & nxt_same
            right = np.zeros(m, dtype=np.bool_)
            right[1:] = left[:-1]
            partner = vec_take(cur, np.minimum(np.arange(m) + 1, m - 1))
            sub = LoopVectorizer(self, m, vz.delta)
            sub.in_reducer = 1
            combined = sub.eval_block(g.reducer, (cur, partner), left)
            ess_parts.append(sub.ess[left])
            ovh_parts.append(sub.ovh[left])
            merged = vec_where(left, combined, cur, m)
            keep = np.nonzero(~right)[0]
            cur = vec_take(merged, keep)
            cur_codes = cur_codes[keep]
        if ess_parts:
            ess_all = np.concatenate(ess_parts)
            ovh_all = np.concatenate(ovh_parts)
            if ess_all.size:
                if (ess_all.max() != ess_all.min()
                        or ovh_all.max() != ovh_all.min()):
                    raise VecError("data-dependent reducer cost")
                if len(rest_lanes) != ess_all.size:
                    raise VecError("combine count mismatch")
                vz.ess[rest_lanes] += ess_all[0]
                vz.ovh[rest_lanes] += ovh_all[0]
        return cur

    # -- BucketCollect / BucketReduce --------------------------------------

    def _vec_bucket(self, vz: LoopVectorizer, g: Generator, sk,
                    idx: np.ndarray, mask: Optional[np.ndarray],
                    shared_vals: Dict, probed: Dict,
                    need_memo: bool) -> Buckets:
        _, kkey = sk
        pk = ("probe",) + (kkey,) if kkey is not None else None
        if need_memo and pk is not None and pk in probed:
            vz.add_ess(WRITE_CYCLES, mask)  # sibling probe: indexed write
            karr = probed[pk]
        else:
            vz.add_ess(BUCKET_CYCLES, mask)
            if need_memo and kkey is not None and kkey in shared_vals:
                karr = shared_vals[kkey]  # value shared with an alpha-equal cond
            else:
                karr = vz.eval_block(g.key, (idx,), mask)
                if need_memo and kkey is not None:
                    shared_vals[kkey] = karr
            if need_memo and pk is not None:
                probed[pk] = karr

        reduce_kind = g.kind is GenKind.BUCKET_REDUCE
        if reduce_kind:
            vz.in_reduce_value += 1
            try:
                v = vz.eval_block(g.value, (idx,), mask)
            finally:
                vz.in_reduce_value -= 1
        else:
            v = vz.eval_block(g.value, (idx,), mask)
            vz.count_alloc(g.value_type, mask, 1)

        actives = idx if mask is None else idx[mask]
        n = len(actives)
        codes, uniq_keys = self._key_codes(karr, actives, n)
        K = len(uniq_keys)
        b = Buckets(default=self._bucket_default(g))
        vfull = v if is_vec(v) else as_lane_vec(v, vz.L)
        sidx = np.argsort(codes, kind="stable")
        csort = codes[sidx]
        starts = np.searchsorted(csort, np.arange(K))

        if not reduce_kind:
            host_vals = self.to_host(vfull, actives, g.value_type)
            for ki, key in enumerate(uniq_keys):
                p = b.get_or_create(key, None)
                hi = starts[ki + 1] if ki + 1 < K else n
                b.values[p] = [host_vals[j]
                               for j in sidx[starts[ki]:hi].tolist()]
            return b

        first_pos = np.unique(codes, return_index=True)[1]
        rest_sel = np.ones(n, dtype=np.bool_)
        rest_sel[first_pos] = False
        rest_lanes = actives[rest_sel]
        name = recognize_assoc_prim(g.reducer)
        if name is not None and isinstance(vfull, np.ndarray):
            svals = self._reducer_operands(name, vfull[actives][sidx])
            red = ASSOC_UFUNCS[name].reduceat(svals, starts)
            if n > K:
                vz.ess[rest_lanes] += PRIMS[name].cost
                vz.delta.op_counts[f"prim.{name}"] += n - K
            host_red = red.tolist()
        else:
            svals = vec_take(vfull, actives[sidx])
            red = self._generic_segmented(vz, g, svals, csort, K, rest_lanes)
            host_red = self.to_host(red, np.arange(K), g.value_type)
        for key, hv in zip(uniq_keys, host_red):
            b.get_or_create(key, hv)
        return b

    def _key_codes(self, karr: Any, actives: np.ndarray,
                   n: int) -> Tuple[np.ndarray, List[Any]]:
        """Dense first-seen-order codes + host key values."""
        if not is_vec(karr):
            return np.zeros(n, dtype=np.int64), [self._host_key(karr)]
        if not isinstance(karr, np.ndarray):
            raise VecError("non-scalar bucket key")
        keys_a = karr[actives]
        try:
            uniq, first_i, inv = np.unique(
                keys_a, return_index=True, return_inverse=True)
        except TypeError as e:
            raise VecError(f"unsortable bucket keys: {e}") from None
        order = np.argsort(first_i, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        codes = rank[inv.reshape(-1)]
        uniq_keys = [self._host_key(uniq[o]) for o in order]
        return codes, uniq_keys


def run_program_numpy(prog: Program, inputs: Dict[str, Any],
                      observer: Optional[LoopObserver] = None
                      ) -> Tuple[Tuple[Any, ...], ExecStats,
                                 List[FallbackRecord]]:
    """Evaluate ``prog`` on the NumPy backend; return
    (results, stats, fallbacks)."""
    interp = NumpyInterp(observer=observer)
    results = interp.eval_program(prog, inputs)
    return results, interp.stats, interp.fallbacks
