"""Hand-optimized C++ baselines (Table 2) as analytic cost models.

Each model charges exactly the algorithmic minimum a tuned C++
implementation performs — one pass over the data where one suffices,
in-place accumulators, no intermediate allocations — using the *same*
abstract cycle scale as the instrumented interpreter (so DMLL's measured
overheads, e.g. extra functional allocations, surface as the Table 2
deltas).

The one case where hand-C++ is *slower* by construction is Q1: the paper
attributes DMLL's win to "a more efficient HashMap than is in the C++11
standard library"; ``STD_HASHMAP_CYCLES`` vs. the interpreter's
``BUCKET_CYCLES`` (6.0) encodes that difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from ..runtime.machine import GB, HAND_CPP, ClusterSpec, SystemProfile

#: cycles per probe of std::unordered_map (chained, allocation-heavy)
#: vs. the open-addressing map DMLL generates (interp charges 6.0)
STD_HASHMAP_CYCLES = 40.0

#: cycles for libm exp/sigmoid (same as the interpreter's charge)
EXP_CYCLES = 20.0
SIGMOID_CYCLES = 25.0


@dataclass(frozen=True)
class HandCost:
    cycles: float
    bytes_read: float

    def seconds(self, cluster: ClusterSpec, cores: int = 1,
                profile: SystemProfile = HAND_CPP) -> float:
        rate = profile.effective_rate(cluster.node.socket)
        bw = cluster.node.socket.mem_bandwidth_gbs * GB
        sockets_used = max(1, math.ceil(cores / cluster.node.socket.cores))
        compute = self.cycles / (rate * max(1, cores))
        mem = self.bytes_read / (bw * sockets_used)
        return max(compute, mem) + profile.per_loop_overhead_us * 1e-6


def kmeans_iteration(n: int, d: int, k: int) -> HandCost:
    # one fused pass: distance (3 flops + 2 loads)/element/cluster,
    # running min, in-place sum+count accumulation, final divide
    cycles = (n * k * d * 5.0        # distances
              + n * k * 2.0          # min tracking
              + n * d * 3.0          # accumulate into sums
              + k * d * 4.0)         # divide
    return HandCost(cycles, n * d * 8.0)


def logreg_iteration(n: int, d: int) -> HandCost:
    # dot product + sigmoid + scaled accumulate, single pass
    cycles = n * (d * 4.0 + SIGMOID_CYCLES + d * 4.0) + d * 3.0
    return HandCost(cycles, n * d * 8.0 + n * 8.0)


def gda(n: int, d: int) -> HandCost:
    # pass 1: class sums; pass 2: outer-product accumulation, 5 cycles per
    # element (load d[j2], multiply, load/add/store the accumulator)
    cycles = (n * d * 3.0
              + n * (d * 3.0 + d * d * 5.0)
              + 2 * d * 2.0 + d * d * 2.0)
    return HandCost(cycles, 2 * n * d * 8.0)


def tpch_q1(n: int) -> HandCost:
    # single pass, 7 columns read, 8 accumulators, std::unordered_map probe
    cycles = n * (2.0               # predicate
                  + 12.0            # aggregate arithmetic
                  + STD_HASHMAP_CYCLES)
    return HandCost(cycles, n * 44.0)


def gene_barcoding(n: int) -> HandCost:
    # single pass: quality filter (2), one open-addressed hash probe (4),
    # three keyed accumulations (2 each)
    cycles = n * (2.0 + 4.0 + 6.0)
    return HandCost(cycles, n * 16.0)


def pagerank_iteration(n_vertices: int, n_edges: int) -> HandCost:
    # CSR gather: one divide-free mul-add per edge (1/deg precomputed)
    cycles = 2 * n_edges * 3.0 + n_vertices * 4.0
    return HandCost(cycles, 2 * n_edges * 12.0 + n_vertices * 16.0)


def triangle_counting(n_vertices: int, n_edges: int,
                      avg_merge_len: float) -> HandCost:
    # one sorted intersection per undirected edge (merge steps at ~3
    # cycles: compare + advance + load) plus per-edge pointer setup
    cycles = n_edges * (avg_merge_len * 3.0 + 8.0)
    return HandCost(cycles, n_edges * avg_merge_len * 4.0)


def gibbs_sweep(n_vars: int, n_factor_visits: int, replicas: int) -> HandCost:
    cycles = (n_factor_visits * 4.0
              + replicas * n_vars * (SIGMOID_CYCLES + 6.0))
    return HandCost(cycles, n_factor_visits * 12.0)
