"""Mini-PowerGraph: a gather-apply-scatter (GAS) vertex-program engine.

Reproduces the structural behavior of PowerGraph (OSDI'12) that the
paper's comparison leans on:

- vertex programs with gather/apply/scatter phases run over all vertices;
- *vertex cuts*: high-degree vertices are replicated ("mirrored") across
  machines; each GAS superstep synchronizes mirrors with their master,
  which is the dominant network traffic. The replication factor is
  computed from the actual degree distribution using the standard random
  vertex-cut estimate.
- the engine is an efficient C++ library (POWERGRAPH profile): faster
  than Spark, slower than DMLL's generated code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..data.graphs import Graph
from ..runtime.machine import GB, POWERGRAPH, ClusterSpec, SystemProfile


@dataclass
class GasStats:
    supersteps: int = 0
    gather_edges: int = 0
    apply_vertices: int = 0
    mirror_sync_bytes: int = 0
    sim_seconds: float = 0.0


def replication_factor(g: Graph, machines: int) -> float:
    """Expected mirrors per vertex under a random vertex cut:
    ``sum_v min(deg_v, p) / n`` capped by the machine count."""
    if machines <= 1:
        return 1.0
    total = sum(min(len(a), machines) for a in g.adj)
    return max(1.0, total / g.n)


class VertexProgram:
    """Override the three phases. ``gather`` folds over (vertex, neighbor)
    pairs; ``apply`` combines the gathered value into new vertex data."""

    gather_cost_cycles: float = 6.0
    apply_cost_cycles: float = 10.0
    value_bytes: int = 8
    #: bytes a gather pulls across the wire per cut edge (0 for scalar
    #: gathers whose mirrors pre-aggregate; adjacency-shipping programs
    #: like triangle counting set this to the average list size)
    gather_payload_bytes: float = 0.0

    def gather(self, graph: Graph, v: int, u: int, state: List[Any]) -> Any:
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Any:
        return a + b

    def apply(self, graph: Graph, v: int, acc: Any, state: List[Any]) -> Any:
        raise NotImplementedError

    def initial(self, graph: Graph, v: int) -> Any:
        return 0.0


class PowerGraphEngine:
    def __init__(self, graph: Graph, cluster: ClusterSpec,
                 profile: SystemProfile = POWERGRAPH,
                 cores: Optional[int] = None, scale: float = 1.0):
        self.graph = graph
        self.cluster = cluster
        self.profile = profile
        self.cores = cores or cluster.total_cores
        #: workload scale (see SparkContext.scale)
        self.scale = scale
        self.stats = GasStats()
        self.replication = replication_factor(graph, cluster.nodes)

    def superstep(self, program: VertexProgram,
                  state: List[Any]) -> List[Any]:
        g = self.graph
        new_state: List[Any] = []
        edges = 0
        for v in range(g.n):
            acc = None
            for u in g.adj[v]:
                contrib = program.gather(g, v, u, state)
                acc = contrib if acc is None else program.combine(acc, contrib)
                edges += 1
            new_state.append(program.apply(g, v, acc, state))
        self._charge(program, edges)
        return new_state

    def run(self, program: VertexProgram, iterations: int) -> List[Any]:
        state = [program.initial(self.graph, v) for v in range(self.graph.n)]
        for _ in range(iterations):
            state = self.superstep(program, state)
        return state

    # -- timing ------------------------------------------------------------

    def _charge(self, program: VertexProgram, edges: int) -> None:
        st = self.stats
        g = self.graph
        prof = self.profile
        node = self.cluster.node
        rate = prof.effective_rate(node.socket)
        cores = min(self.cores, self.cluster.total_cores)

        cycles = (edges * program.gather_cost_cycles
                  + g.n * program.apply_cost_cycles) * self.scale
        compute = cycles / (rate * cores)

        # memory: edge structure + vertex data touched once per superstep
        bytes_touched = (edges * 12 + g.n * program.value_bytes * 2) * self.scale
        if prof.numa_aware:
            bw = node.total_bandwidth_gbs * GB
        else:
            bw = node.socket.mem_bandwidth_gbs * GB
        mem = bytes_touched / (bw * max(1, self.cluster.nodes))

        # mirror synchronization across the cluster
        comm = 0.0
        if self.cluster.nodes > 1:
            sync = int(g.n * (self.replication - 1.0) * self.scale) * program.value_bytes * 2
            if program.gather_payload_bytes:
                cut_frac = (self.replication - 1.0) / self.replication
                sync += int(edges * cut_frac * program.gather_payload_bytes
                            * self.scale)
            st.mirror_sync_bytes += sync
            net = self.cluster.network_gbs * GB
            comm = sync / (net * self.cluster.nodes)
            comm += sync * prof.ser_cycles_per_byte / rate / self.cluster.nodes
            comm += self.cluster.network_latency_us * 1e-6 * 2
        else:
            # single box: mirror sync becomes cross-socket traffic
            sockets = self.cluster.node.sockets
            if sockets > 1 and self.cores > node.socket.cores:
                cross = edges * 8 * (sockets - 1) / sockets * self.scale
                bw_remote = (node.socket.mem_bandwidth_gbs * GB
                             * node.numa_remote_factor)
                comm = cross / bw_remote / sockets

        st.supersteps += 1
        st.gather_edges += edges
        st.apply_vertices += g.n
        st.sim_seconds += (max(compute, mem) + comm
                           + prof.per_loop_overhead_us * 1e-6)


# ---------------------------------------------------------------------------
# Vertex programs for the paper's graph benchmarks
# ---------------------------------------------------------------------------

class PageRankProgram(VertexProgram):
    gather_cost_cycles = 8.0
    apply_cost_cycles = 6.0

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def initial(self, graph: Graph, v: int) -> float:
        return 1.0

    def gather(self, graph: Graph, v: int, u: int, state) -> float:
        return state[u] / len(graph.adj[u])

    def apply(self, graph: Graph, v: int, acc, state) -> float:
        return (1.0 - self.damping) + self.damping * (acc or 0.0)


class TriangleCountProgram(VertexProgram):
    """Per-edge sorted-neighborhood intersections, as PowerGraph's triangle
    counting toolkit does."""

    apply_cost_cycles = 2.0

    def initial(self, graph: Graph, v: int) -> int:
        return 0

    def gather(self, graph: Graph, v: int, u: int, state) -> int:
        if u <= v:
            return 0
        a, b = graph.adj[v], graph.adj[u]
        i = j = n = 0
        while i < len(a) and j < len(b):
            if a[i] == b[j]:
                n += 1
                i += 1
                j += 1
            elif a[i] < b[j]:
                i += 1
            else:
                j += 1
        return n

    def apply(self, graph: Graph, v: int, acc, state) -> int:
        return acc or 0


def powergraph_pagerank(g: Graph, cluster: ClusterSpec, iterations: int,
                        cores: Optional[int] = None, scale: float = 1.0):
    eng = PowerGraphEngine(g, cluster, cores=cores, scale=scale)
    ranks = eng.run(PageRankProgram(), iterations)
    return ranks, eng.stats


def powergraph_triangles(g: Graph, cluster: ClusterSpec,
                         cores: Optional[int] = None, scale: float = 1.0):
    eng = PowerGraphEngine(g, cluster, cores=cores, scale=scale)
    # triangle gathers merge two adjacency lists: charge the average merge
    # length per edge rather than a constant
    prog = TriangleCountProgram()
    avg_deg = 2.0 * g.m / max(1, g.n)
    prog.gather_cost_cycles = 2.0 * avg_deg
    prog.gather_payload_bytes = avg_deg * 1.0  # ships boundary neighbor lists (mirror-cached)
    counts = eng.run(prog, 1)
    total = sum(counts) // 3
    return total, eng.stats
