"""Mini-DimmWitted: the hand-written NUMA-aware Gibbs sampling engine
(§6.3 baseline, Zhang & Ré VLDB'14).

Implements the same per-socket-replica strategy as the DMLL version —
both scale near-linearly across sockets — but its factor graph uses
pointer-linked structures "for the sake of user-friendly abstractions",
costing the DIMMWITTED profile's ~2.3x cycle factor over DMLL's unwrapped
arrays of primitives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..data.factor_graphs import FactorGraph, random_states, random_uniforms
from ..runtime.machine import DIMMWITTED, GB, ClusterSpec, SystemProfile

#: abstract cycles per (variable, factor) visit in the sampling kernel:
#: weight load, spin load, multiply-add, plus the per-variable sigmoid/draw
CYCLES_PER_FACTOR_VISIT = 10.0
CYCLES_PER_VARIABLE = 40.0


@dataclass
class GibbsStats:
    sweeps: int = 0
    variable_samples: int = 0
    factor_visits: int = 0
    sim_seconds: float = 0.0


class DimmWittedEngine:
    """Replica-per-socket Gibbs sampler with a cost model mirroring the
    hand-written implementation."""

    def __init__(self, fg: FactorGraph, cluster: ClusterSpec,
                 profile: SystemProfile = DIMMWITTED,
                 cores: Optional[int] = None, scale: float = 1.0):
        self.fg = fg
        self.cluster = cluster
        self.profile = profile
        self.cores = cores if cores is not None else cluster.node.cores
        #: workload scale, as in ExecOptions.scale: price a factor graph
        #: ``scale`` times larger than the one run functionally
        self.scale = scale
        self.stats = GibbsStats()

    def sweep(self, states: List[List[int]],
              rand: Sequence[Sequence[float]]) -> List[List[int]]:
        fg = self.fg
        out = []
        visits = 0
        for r, state in enumerate(states):
            new = []
            for v in range(fg.n_vars):
                e = 0.0
                for u, w in zip(fg.nbr_vars[v], fg.nbr_weights[v]):
                    e += w * state[u]
                    visits += 1
                p1 = 1.0 / (1.0 + math.exp(-2.0 * e)) if e > -350 else 0.0
                new.append(1 if rand[r][v] < p1 else -1)
            out.append(new)
        self._charge(len(states), visits)
        return out

    def run(self, sweeps: int, replicas: Optional[int] = None,
            seed: int = 29) -> List[float]:
        node = self.cluster.node
        if replicas is None:
            # one replica per socket in use
            sockets = max(1, math.ceil(self.cores / node.socket.cores))
            replicas = sockets
        states = random_states(self.fg.n_vars, replicas, seed)
        pos = [0] * self.fg.n_vars
        samples = 0
        for s in range(sweeps):
            rand = random_uniforms(self.fg.n_vars, replicas, seed + 1000 + s)
            states = self.sweep(states, rand)
            if s == 0:
                continue
            samples += replicas
            for st in states:
                for v, spin in enumerate(st):
                    if spin > 0:
                        pos[v] += 1
        if samples == 0:
            return [0.5] * self.fg.n_vars
        return [c / samples for c in pos]

    def _charge(self, replicas: int, visits: int) -> None:
        prof = self.profile
        node = self.cluster.node
        rate = prof.effective_rate(node.socket)
        cores = max(1, min(self.cores, node.cores))
        sockets = max(1, math.ceil(cores / node.socket.cores))

        cycles = (visits * CYCLES_PER_FACTOR_VISIT
                  + replicas * self.fg.n_vars * CYCLES_PER_VARIABLE) * self.scale
        compute = cycles / (rate * cores)
        # each socket's replica streams its own model: local bandwidth
        bytes_touched = (visits * 12 + replicas * self.fg.n_vars * 8) * self.scale
        bw = node.socket.mem_bandwidth_gbs * GB * min(sockets, replicas)
        mem = bytes_touched / bw

        self.stats.sweeps += 1
        self.stats.variable_samples += replicas * self.fg.n_vars
        self.stats.factor_visits += visits
        self.stats.sim_seconds += max(compute, mem) + prof.per_loop_overhead_us * 1e-6
