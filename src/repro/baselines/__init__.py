"""Comparison systems: mini-Spark, mini-PowerGraph, Delite mode,
DimmWitted-style Gibbs, and hand-optimized C++ cost models."""

from .delite import delite_run
from .dimmwitted import DimmWittedEngine, GibbsStats
from .handopt import HandCost
from .powergraph import (GasStats, PageRankProgram, PowerGraphEngine,
                         TriangleCountProgram, powergraph_pagerank,
                         powergraph_triangles, replication_factor)
from .spark import RDD, JobStats, SparkContext

__all__ = [
    "delite_run", "DimmWittedEngine", "GibbsStats", "HandCost",
    "GasStats", "PageRankProgram", "PowerGraphEngine",
    "TriangleCountProgram", "powergraph_pagerank", "powergraph_triangles",
    "replication_factor", "RDD", "JobStats", "SparkContext",
]
