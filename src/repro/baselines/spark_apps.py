"""The benchmark applications ported to the mini-Spark programming model,
"performed all possible optimizations manually" (§6.1): map-side combine,
cached RDDs for iterative jobs, primitive-encoded records where the model
allows. Per-element algorithmic cost hints mirror each closure's flop
count so Spark is charged the same work as DMLL, plus its overheads.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .spark import RDD, SparkContext


def spark_kmeans_iteration(sc: SparkContext,
                           points: RDD,
                           clusters: List[List[float]]) -> List[List[float]]:
    """One iteration in the canonical Spark style: map each point to
    (nearest cluster, (vector, 1)), reduceByKey with vector sums."""
    k = len(clusters)
    d = len(clusters[0])

    def nearest(p):
        best, best_d = 0, float("inf")
        for ci, c in enumerate(clusters):
            dd = sum((a - b) * (a - b) for a, b in zip(p, c))
            if dd < best_d:
                best, best_d = ci, dd
        return best

    assign_cost = 3.0 * k * d
    pairs = points.map(lambda p: (nearest(p), (p, 1)), cost=assign_cost)
    sums = pairs.reduce_by_key(
        lambda a, b: ([x + y for x, y in zip(a[0], b[0])], a[1] + b[1]),
        cost=2.0 * d)
    out = dict(sums.collect())
    new = []
    for ci in range(k):
        if ci in out:
            vec, cnt = out[ci]
            new.append([v / cnt for v in vec])
        else:
            new.append(list(clusters[ci]))
    return new


def spark_logreg_iteration(sc: SparkContext, data: RDD,
                           theta: List[float],
                           alpha: float) -> List[float]:
    """data: RDD of (x_row, y). Gradient = sum of per-sample vectors."""
    import math
    d = len(theta)

    def grad(sample):
        x, y = sample
        dot = sum(t * v for t, v in zip(theta, x))
        h = 1.0 / (1.0 + math.exp(-dot)) if dot > -700 else 0.0
        scale = y - h
        return [scale * v for v in x]

    g = data.map(grad, cost=4.0 * d + 25.0).reduce(
        lambda a, b: [x + y for x, y in zip(a, b)], cost=1.0 * d)
    return [t + alpha * gi for t, gi in zip(theta, g)]


def spark_q1(sc: SparkContext, rows: RDD,
             cutoff: int = 10000) -> Dict[int, Tuple]:
    """TPC-H Q1, rows are full lineitem tuples (no SoA possible in this
    model, §6.1: the input collection 'cannot simply be split into an RDD
    per field')."""
    def agg_pair(r):
        (_, qty, price, disc, tax, rf, ls, _, _) = r
        key = rf * 256 + ls
        disc_price = price * (1.0 - disc)
        return (key, (qty, price, disc_price,
                      disc_price * (1.0 + tax), disc, 1))

    pairs = rows.filter(lambda r: r[7] <= cutoff, cost=2.0) \
                .map(agg_pair, cost=8.0)
    sums = pairs.reduce_by_key(
        lambda a, b: tuple(x + y for x, y in zip(a, b)), cost=6.0)
    out = {}
    for key, (sq, sb, sdp, sc_, sd, n) in sums.collect():
        out[key] = (sq, sb, sdp, sc_, sq / n, sb / n, sd / n, n)
    return out


def spark_gene(sc: SparkContext, reads: RDD,
               quality_min: float = 0.3) -> Dict[int, Tuple[int, float, int]]:
    """Per-barcode (count, quality sum, gene checksum)."""
    pairs = reads.filter(lambda r: r[2] > quality_min, cost=2.0) \
                 .map(lambda r: (r[0], (1, r[2], r[1])), cost=3.0)
    sums = pairs.reduce_by_key(
        lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]), cost=3.0)
    return dict(sums.collect())


def spark_gda(sc: SparkContext, data: RDD, n_cols: int):
    """Two passes: class sums/counts, then the covariance accumulation."""
    d = n_cols

    def key_row(sample):
        x, y = sample
        return (y, (x, 1))

    sums = dict(data.map(key_row, cost=2.0).reduce_by_key(
        lambda a, b: ([p + q for p, q in zip(a[0], b[0])], a[1] + b[1]),
        cost=1.0 * d).collect())
    m = sum(c for _, c in sums.values())
    mu = {c: [v / cnt for v in vec] for c, (vec, cnt) in sums.items()}
    phi = sums.get(1, ([0.0] * d, 0))[1] / m

    def outer(sample):
        x, y = sample
        mc = mu[y]
        diff = [a - b for a, b in zip(x, mc)]
        return [[di * dj for dj in diff] for di in diff]

    sigma = data.map(outer, cost=2.0 * d * d).reduce(
        lambda a, b: [[p + q for p, q in zip(ra, rb)]
                      for ra, rb in zip(a, b)], cost=1.0 * d * d)
    return (phi, [mu.get(c, [0.0] * d) for c in (0, 1)],
            [[s / m for s in row] for row in sigma])
