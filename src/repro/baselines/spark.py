"""Mini-Spark: an RDD mini-framework over the simulated cluster.

The paper's §6 comparisons hinge on Spark's *structural* overheads, which
this framework reproduces explicitly:

- lazily-planned RDD lineage, executed in stages split at shuffles;
- per-element closure dispatch on boxed records (the JVM ``cycle_factor``
  and ``alloc_cycle_cost`` of the SPARK profile);
- serialized shuffles over the network (measured from the actual data
  moved, priced with ``ser_cycles_per_byte`` + link bandwidth);
- per-task scheduler dispatch costs and stage barriers;
- no NUMA awareness: on the big NUMA box, executors see one socket's
  memory bandwidth.

Results are computed functionally on the real data (and tested against
the same oracles as DMLL); time is simulated like the DMLL executor's.

Per-element *algorithmic* cost of a closure is supplied as a hint
(``cost=``) by the application, typically derived from the dataset shape
(e.g. ``3*k*d`` for the k-means assignment), so both systems are charged
the same algorithmic work and differ only in framework overheads — which
is exactly the paper's comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..runtime.machine import GB, SPARK, ClusterSpec, SystemProfile

DEFAULT_CLOSURE_CYCLES = 12.0


def _value_bytes(v: Any) -> int:
    if isinstance(v, bool):
        return 1
    if isinstance(v, int):
        return 8
    if isinstance(v, float):
        return 8
    if isinstance(v, str):
        return 2 * len(v) + 40
    if isinstance(v, (list, tuple)):
        return 16 + sum(_value_bytes(x) for x in v)
    return 32


@dataclass
class JobStats:
    stages: int = 0
    tasks: int = 0
    elements_processed: int = 0
    closure_cycles: float = 0.0
    shuffle_bytes: int = 0
    bytes_touched: int = 0
    sim_seconds: float = 0.0

    def merge(self, other: "JobStats") -> None:
        self.stages += other.stages
        self.tasks += other.tasks
        self.elements_processed += other.elements_processed
        self.closure_cycles += other.closure_cycles
        self.shuffle_bytes += other.shuffle_bytes
        self.bytes_touched += other.bytes_touched
        self.sim_seconds += other.sim_seconds


class SparkContext:
    """Entry point, bound to a simulated cluster."""

    def __init__(self, cluster: ClusterSpec,
                 profile: SystemProfile = SPARK,
                 default_parallelism: Optional[int] = None,
                 cores: Optional[int] = None, scale: float = 1.0):
        self.cluster = cluster
        self.profile = profile
        self.cores = cores or cluster.total_cores
        self.default_parallelism = default_parallelism or max(2, self.cores * 2)
        #: workload scale: functional runs use subsampled data; volume
        #: terms are multiplied back up to the paper's dataset size
        self.scale = scale
        self.stats = JobStats()

    def parallelize(self, data: Iterable[Any],
                    num_partitions: Optional[int] = None) -> "RDD":
        data = list(data)
        return RDD(self, data, num_partitions or self.default_parallelism)

    # -- timing model ----------------------------------------------------

    def _stage_time(self, elements: int, cycles: float, bytes_touched: int,
                    tasks: int) -> float:
        cycles *= self.scale
        bytes_touched = int(bytes_touched * self.scale)
        node = self.cluster.node
        rate = self.profile.effective_rate(node.socket)
        total_cores = min(self.cores, self.cluster.total_cores)
        waves = math.ceil(tasks / max(1, total_cores))
        per_task_cycles = cycles / max(1, tasks)
        compute = waves * per_task_cycles / rate
        # executors are NUMA-oblivious: one socket's bandwidth per node
        bw = node.socket.mem_bandwidth_gbs * GB * 0.8
        mem = bytes_touched / (bw * self.cluster.nodes)
        sched = tasks * self.profile.task_overhead_us * 1e-6 * 0.1 \
            + self.profile.per_loop_overhead_us * 1e-6
        return max(compute, mem) + sched

    def _shuffle_time(self, nbytes: int) -> float:
        nbytes = int(nbytes * self.scale)
        prof = self.profile
        rate = prof.effective_rate(self.cluster.node.socket)
        ser = 2 * nbytes * prof.ser_cycles_per_byte / rate \
            / max(1, self.cluster.total_cores)
        if self.cluster.nodes > 1:
            net = self.cluster.network_gbs * GB
            frac = (self.cluster.nodes - 1) / self.cluster.nodes
            wire = nbytes * frac / (net * self.cluster.nodes)
            wire += self.cluster.network_latency_us * 1e-6
        else:
            # intra-box shuffle still copies through the heap
            wire = nbytes / (self.cluster.node.socket.mem_bandwidth_gbs * GB)
        return ser + wire


@dataclass(frozen=True)
class _OpDesc:
    kind: str                    # map/filter/flatMap
    fn: Callable
    cost: float                  # algorithmic cycles per element


class RDD:
    """A lazily-evaluated distributed collection (lineage of narrow ops,
    materialized at actions and shuffles)."""

    def __init__(self, sc: SparkContext, data: List[Any],
                 num_partitions: int,
                 lineage: Tuple[_OpDesc, ...] = ()):
        self.sc = sc
        self._data = data
        self.num_partitions = max(1, num_partitions)
        self._lineage = lineage

    # -- transformations (lazy) ------------------------------------------

    def map(self, fn: Callable, cost: float = DEFAULT_CLOSURE_CYCLES) -> "RDD":
        return self._narrow("map", fn, cost)

    def filter(self, fn: Callable, cost: float = DEFAULT_CLOSURE_CYCLES) -> "RDD":
        return self._narrow("filter", fn, cost)

    def flat_map(self, fn: Callable, cost: float = DEFAULT_CLOSURE_CYCLES) -> "RDD":
        return self._narrow("flatMap", fn, cost)

    def _narrow(self, kind: str, fn: Callable, cost: float) -> "RDD":
        return RDD(self.sc, self._data, self.num_partitions,
                   self._lineage + (_OpDesc(kind, fn, cost),))

    # -- stage execution ---------------------------------------------------

    def _compute(self) -> List[Any]:
        """Run the narrow lineage as one stage, charging its costs."""
        data = self._data
        elements = len(data)
        cycles = 0.0
        bytes_touched = sum(_value_bytes(v) for v in data)
        prof = self.sc.profile
        out = data
        for op in self._lineage:
            n = len(out)
            per_elem = (op.cost + DEFAULT_CLOSURE_CYCLES) * prof.cycle_factor \
                + prof.alloc_cycle_cost
            cycles += n * per_elem
            if op.kind == "map":
                out = [op.fn(v) for v in out]
            elif op.kind == "filter":
                out = [v for v in out if op.fn(v)]
            else:
                new = []
                for v in out:
                    new.extend(op.fn(v))
                out = new
        st = self.sc.stats
        st.stages += 1
        st.tasks += self.num_partitions
        st.elements_processed += elements
        st.closure_cycles += cycles
        st.bytes_touched += bytes_touched
        st.sim_seconds += self.sc._stage_time(elements, cycles, bytes_touched,
                                              self.num_partitions)
        return out

    # -- actions & shuffles ------------------------------------------------

    def collect(self) -> List[Any]:
        return self._compute()

    def count(self) -> int:
        return len(self._compute())

    def reduce(self, fn: Callable, cost: float = DEFAULT_CLOSURE_CYCLES) -> Any:
        data = self._compute()
        if not data:
            raise ValueError("reduce of empty RDD")
        acc = data[0]
        for v in data[1:]:
            acc = fn(acc, v)
        prof = self.sc.profile
        self.sc.stats.closure_cycles += len(data) * cost * prof.cycle_factor
        # partial results from every partition return to the driver
        part_bytes = _value_bytes(acc) * self.num_partitions
        self.sc.stats.shuffle_bytes += part_bytes
        self.sc.stats.sim_seconds += self.sc._shuffle_time(part_bytes)
        return acc

    def reduce_by_key(self, fn: Callable,
                      cost: float = DEFAULT_CLOSURE_CYCLES) -> "RDD":
        pairs = self._compute()
        # map-side combine, then shuffle the combined partials
        combined: Dict[Any, Any] = {}
        for k, v in pairs:
            if k in combined:
                combined[k] = fn(combined[k], v)
            else:
                combined[k] = v
        prof = self.sc.profile
        self.sc.stats.closure_cycles += len(pairs) * (cost + 8) * prof.cycle_factor
        moved = self.num_partitions * sum(
            _value_bytes(k) + _value_bytes(v) for k, v in combined.items())
        self.sc.stats.shuffle_bytes += moved
        self.sc.stats.sim_seconds += self.sc._shuffle_time(moved)
        return RDD(self.sc, list(combined.items()), self.num_partitions)

    def group_by_key(self) -> "RDD":
        pairs = self._compute()
        grouped: Dict[Any, List[Any]] = {}
        for k, v in pairs:
            grouped.setdefault(k, []).append(v)
        # the whole payload crosses the wire, serialized
        moved = sum(_value_bytes(k) + _value_bytes(v) for k, v in pairs)
        self.sc.stats.shuffle_bytes += moved
        self.sc.stats.sim_seconds += self.sc._shuffle_time(moved)
        prof = self.sc.profile
        self.sc.stats.closure_cycles += len(pairs) * 10 * prof.cycle_factor
        return RDD(self.sc, list(grouped.items()), self.num_partitions)

    def cache(self) -> "RDD":
        # materialize the lineage once (iterative jobs re-read the cache)
        if self._lineage:
            data = self._compute()
            return RDD(self.sc, data, self.num_partitions)
        return self
