"""Delite baseline: DMLL's parent framework, "without DMLL improvements"
(§6.1) — the same generated-code quality but no NUMA-aware partitioning,
no thread pinning, and no distribution ("it does not scale to multiple
machines", §6.2). Runs the same compiled programs through the simulator
under the DELITE profile, restricted to one machine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..pipeline import CompiledProgram
from ..runtime.executor import ExecOptions, SimResult, simulate
from ..runtime.machine import DELITE, ClusterSpec, single_node


def delite_run(compiled: CompiledProgram, inputs: Dict[str, Any],
               cluster: ClusterSpec, cores: Optional[int] = None,
               scale: float = 1.0) -> SimResult:
    """Execute on a single machine of ``cluster`` with the DELITE profile."""
    return simulate(compiled, inputs, single_node(cluster), DELITE,
                    ExecOptions(cores=cores, scale=scale))
