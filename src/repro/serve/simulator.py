"""Serving simulator: arrival processes and latency reporting.

Drives a :class:`~repro.serve.scheduler.ProgramServer` with a seeded
traffic model and reduces the responses to the numbers a capacity
planner wants: throughput, p50/p95/p99 latency, batch-size and
machine-utilization profiles. Two arrival processes, both deterministic
for a given seed:

- **open loop** — Poisson arrivals at a fixed rate; requests pile up if
  the fleet can't keep up (the honest tail-latency regime);
- **closed loop** — N clients each keep one request in flight and think
  between requests (the Helix-style QueryManager regime).

``payloads > 1`` salts requests into that many distinct logical tenants
sharing the measured dataset, which throttles lane-packing exactly the
way distinct-tenant traffic would.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .cache import ProgramCache
from .scheduler import ProgramServer, ServedApp, make_machines


def quantile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (exact sample, deterministic)."""
    if not sorted_vals:
        return 0.0
    i = min(len(sorted_vals) - 1, max(0, math.ceil(q * len(sorted_vals)) - 1))
    return sorted_vals[i]


def latency_breakdown(groups: Dict[str, List[float]]
                      ) -> Dict[str, Dict[str, Any]]:
    """Per-group latency summary (count/mean/p50/p95/p99), sorted keys."""
    out: Dict[str, Dict[str, Any]] = {}
    for name in sorted(groups):
        vals = sorted(groups[name])
        out[name] = {
            "count": len(vals),
            "mean_s": (sum(vals) / len(vals)) if vals else 0.0,
            "p50_s": quantile(vals, 0.50),
            "p95_s": quantile(vals, 0.95),
            "p99_s": quantile(vals, 0.99),
        }
    return out


class OpenLoop:
    """Poisson arrivals at ``rate_rps``, app and tenant picked per
    request from the seeded RNG."""

    def __init__(self, apps: Sequence[str], rate_rps: float, requests: int,
                 seed: int = 0, payloads: int = 1):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.apps = list(apps)
        self.rate_rps = rate_rps
        self.requests = requests
        self.seed = seed
        self.payloads = max(1, payloads)

    def prime(self, server: ProgramServer) -> None:
        rng = random.Random(self.seed)
        t = 0.0
        for _ in range(self.requests):
            t += rng.expovariate(self.rate_rps)
            app = rng.choice(self.apps)
            salt = (f"p{rng.randrange(self.payloads)}"
                    if self.payloads > 1 else None)
            server.submit(app, server.payload_for(app, salt), at=t)


class ClosedLoop:
    """``clients`` concurrent clients, one request in flight each,
    ``think_s`` between a response and the next request, ``requests``
    total across all clients."""

    def __init__(self, apps: Sequence[str], clients: int, requests: int,
                 think_s: float = 0.0, seed: int = 0, payloads: int = 1):
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.apps = list(apps)
        self.clients = clients
        self.requests = requests
        self.think_s = think_s
        self.seed = seed
        self.payloads = max(1, payloads)
        self._rng = random.Random(self.seed)
        self._issued = 0

    def _issue(self, server: ProgramServer, client: int, at: float) -> None:
        if self._issued >= self.requests:
            return
        self._issued += 1
        app = self._rng.choice(self.apps)
        salt = (f"p{self._rng.randrange(self.payloads)}"
                if self.payloads > 1 else None)
        server.submit(app, server.payload_for(app, salt), at=at,
                      client=client)

    def prime(self, server: ProgramServer) -> None:
        self._rng = random.Random(self.seed)
        self._issued = 0
        server.on_complete.append(self._on_complete)
        server.on_reject.append(self._on_reject)
        for c in range(min(self.clients, self.requests)):
            self._issue(server, c, at=0.0)

    def _on_complete(self, server: ProgramServer, resp) -> None:
        if resp.request.client >= 0:
            self._issue(server, resp.request.client,
                        at=resp.finish_s + self.think_s)

    def _on_reject(self, server: ProgramServer, rej) -> None:
        # a refusal is still an answer: the client moves on, so a
        # deadline or shed storm can't stall the closed loop
        if rej.client >= 0:
            self._issue(server, rej.client, at=rej.t_s + self.think_s)


@dataclass
class ServeReport:
    """One simulated serving run, reduced."""

    mode: str
    requests: int
    batches: int
    makespan_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    batch_mean: float
    batch_max: int
    lane_packed_requests: int
    fallbacks: int
    cache: Dict[str, int]
    machine_util: Dict[str, float]
    #: served / (served + rejected); 1.0 when nothing was refused
    availability: float = 1.0
    #: requests the server explicitly refused (see ``rejected_detail``)
    rejected: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: per-app / per-serving-replica latency summaries (count, mean,
    #: p50/p95/p99) — top-level keys above stay unchanged
    latency_by_app: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    latency_by_machine: Dict[str, Dict[str, Any]] = \
        field(default_factory=dict)
    #: SLO evaluation (``repro.obs.slo.SLOReport.to_json()``), attached
    #: by the CLI when a spec is supplied
    slo: Optional[Dict[str, Any]] = None
    #: exact per-request latency decomposition aggregated per app and
    #: per machine (``repro.obs.analyze.decomposition_summary``) —
    #: present only when the run was traced (request timelines exist)
    decomposition: Optional[Dict[str, Any]] = None
    #: shed/retry/hedge/breaker counts, per-fault attribution and the
    #: typed rejection records — present only when a fault plan or
    #: resilience config was active (plain reports stay byte-identical)
    resilience: Optional[Dict[str, Any]] = None
    #: post-fault SLO recovery evaluation, attached by the CLI's
    #: ``--chaos`` mode
    chaos: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        from ..report.tables import render_table
        rows = [
            ["requests", self.requests],
            ["batches", f"{self.batches} (mean {self.batch_mean:.2f}, "
                        f"max {self.batch_max})"],
            ["lane-packed requests", self.lane_packed_requests],
            ["fallbacks", self.fallbacks],
            ["makespan", f"{self.makespan_s * 1e3:.3f} ms"],
            ["throughput", f"{self.throughput_rps:.1f} req/s"],
            ["latency p50", f"{self.latency_p50_s * 1e3:.3f} ms"],
            ["latency p95", f"{self.latency_p95_s * 1e3:.3f} ms"],
            ["latency p99", f"{self.latency_p99_s * 1e3:.3f} ms"],
            ["program cache", f"{self.cache['hits']} hits / "
                              f"{self.cache['misses']} compiles"],
        ]
        if self.resilience is not None:
            r = self.resilience
            rows.append(["availability",
                         f"{self.availability * 100.0:.2f}% "
                         f"({self.rejected} rejected)"])
            rows.append(["resilience",
                         f"retries {r['retries']}  requeues "
                         f"{r['requeues']}  hedges {r['hedges']}"
                         f" (wasted {r['hedges_wasted']})"])
            if r["fault_counts"]:
                rows.append(["faults",
                             "  ".join(f"{k}={v}" for k, v in
                                       r["fault_counts"].items())])
            if r["degraded"]:
                rows.append(["degraded apps",
                             ", ".join(sorted(r["degraded"]))])
        for name, util in sorted(self.machine_util.items()):
            rows.append([f"util {name}", f"{util * 100.0:.1f}%"])
        for app, st in sorted(self.latency_by_app.items()):
            rows.append([f"latency p95 [{app}]",
                         f"{st['p95_s'] * 1e3:.3f} ms "
                         f"({st['count']} reqs)"])
        if self.slo is not None:
            rows.append(["slo", "ok" if self.slo.get("status") == "ok"
                         else "VIOLATED"])
        if self.decomposition is not None:
            comps = self.decomposition["components"]
            rows.append(["latency split (mean ms)",
                         "  ".join(f"{name[:-2]}="
                                   f"{comps[name]['mean_s'] * 1e3:.3f}"
                                   for name in ("admission_s",
                                                "batch_window_s",
                                                "dispatch_s", "stagger_s",
                                                "execution_s"))])
        return render_table(["metric", "value"], rows,
                            title=f"serving simulation ({self.mode} loop)")

    def to_json(self) -> Dict[str, Any]:
        doc = {k: v for k, v in self.__dict__.items()
               if k not in ("latencies_s", "slo", "decomposition",
                            "resilience", "chaos")}
        # the CI latency-histogram artifact: bucketed counts over the
        # full latency range plus the raw quantiles above
        doc["latency_histogram"] = self.latency_histogram()
        if self.slo is not None:
            doc["slo"] = self.slo
        if self.decomposition is not None:
            doc["decomposition"] = self.decomposition
        if self.resilience is not None:
            doc["resilience"] = self.resilience
        if self.chaos is not None:
            doc["chaos"] = self.chaos
        return doc

    def latency_histogram(self, buckets: int = 20) -> Dict[str, Any]:
        if not self.latencies_s:
            return {"buckets": [], "counts": []}
        lo, hi = min(self.latencies_s), max(self.latencies_s)
        width = (hi - lo) / buckets or 1e-12
        counts = [0] * buckets
        for v in self.latencies_s:
            counts[min(buckets - 1, int((v - lo) / width))] += 1
        edges = [lo + i * width for i in range(buckets + 1)]
        return {"buckets": edges, "counts": counts}


class ServeSim:
    """Facade: one compiled-program cache, many simulated traffic runs."""

    def __init__(self, apps: Sequence[str], machines: str = "numa",
                 max_batch: int = 8, max_wait_s: float = 0.02,
                 policy: str = "round-robin",
                 backend: Optional[str] = None, payloads: int = 1,
                 metrics: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 faults: Optional[Any] = None,
                 resilience: Optional[Any] = None):
        self.app_names = list(apps)
        self.served = [ServedApp.from_bundle(a) for a in self.app_names]
        self.machine_spec = machines
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.policy = policy
        self.backend = backend
        self.payloads = payloads
        self.metrics = metrics
        self.tracer = tracer
        self.faults = faults
        self.resilience = resilience
        #: compile once — every run() below serves from this cache
        self.cache = ProgramCache({a.name: a.factory for a in self.served},
                                  metrics=metrics)
        self.last_server: Optional[ProgramServer] = None

    def _server(self, trace_seed: int = 0) -> ProgramServer:
        return ProgramServer(
            self.served, make_machines(self.machine_spec),
            max_batch=self.max_batch, max_wait_s=self.max_wait_s,
            policy=self.policy, backend=self.backend,
            metrics=self.metrics, tracer=self.tracer, cache=self.cache,
            trace_seed=trace_seed, faults=self.faults,
            resilience=self.resilience)

    def run_open(self, rate_rps: float, requests: int,
                 seed: int = 0) -> ServeReport:
        source = OpenLoop(self.app_names, rate_rps, requests, seed=seed,
                          payloads=self.payloads)
        return self._run("open", source, seed)

    def run_closed(self, clients: int, requests: int,
                   think_s: float = 0.0, seed: int = 0) -> ServeReport:
        source = ClosedLoop(self.app_names, clients, requests,
                            think_s=think_s, seed=seed,
                            payloads=self.payloads)
        return self._run("closed", source, seed)

    def _run(self, mode: str, source: Any, seed: int = 0) -> ServeReport:
        # the traffic seed doubles as the trace-identity seed so
        # same-seed runs export byte-identical traces
        server = self._server(trace_seed=seed)
        self.last_server = server
        responses = server.run(source)
        return self.report(mode, server, responses)

    @staticmethod
    def report(mode: str, server: ProgramServer,
               responses: List[Any]) -> ServeReport:
        lats = sorted(r.latency_s for r in responses)
        makespan = max((r.finish_s for r in responses), default=0.0)
        seen: Dict[int, int] = {}
        by_app: Dict[str, List[float]] = {}
        by_machine: Dict[str, List[float]] = {}
        for r in responses:
            seen[r.batch_id] = r.batch_size
            by_app.setdefault(r.request.app, []).append(r.latency_s)
            by_machine.setdefault(r.machine or "?", []).append(r.latency_s)
        batch_sizes = list(seen.values())
        rejected = getattr(server, "rejected", [])
        total = len(responses) + len(rejected)
        resilience = server.resilience_summary()
        if resilience is not None:
            resilience["rejected_detail"] = [j.to_json() for j in rejected]
        return ServeReport(
            mode=mode,
            requests=len(responses),
            batches=len(batch_sizes),
            makespan_s=makespan,
            throughput_rps=(len(responses) / makespan) if makespan else 0.0,
            latency_mean_s=(sum(lats) / len(lats)) if lats else 0.0,
            latency_p50_s=quantile(lats, 0.50),
            latency_p95_s=quantile(lats, 0.95),
            latency_p99_s=quantile(lats, 0.99),
            batch_mean=(sum(batch_sizes) / len(batch_sizes))
                       if batch_sizes else 0.0,
            batch_max=max(batch_sizes, default=0),
            lane_packed_requests=sum(1 for r in responses if r.lane_packed),
            fallbacks=len(server.fallbacks),
            availability=(len(responses) / total) if total else 1.0,
            rejected=len(rejected),
            cache=server.cache.stats(),
            machine_util={
                f"{m.name}[{m.index}]":
                    (m.busy_s / makespan) if makespan else 0.0
                for m in server.machines},
            latencies_s=lats,
            latency_by_app=latency_breakdown(by_app),
            latency_by_machine=latency_breakdown(by_machine),
            decomposition=ServeSim._decomposition_of(server),
            resilience=resilience)

    @staticmethod
    def _decomposition_of(server: ProgramServer) -> Optional[Dict[str, Any]]:
        # timelines exist only on traced runs; untraced reports carry no
        # decomposition section (and pay no analysis cost)
        if not getattr(server, "_timelines", None):
            return None
        from ..obs.analyze import decomposition_summary
        return decomposition_summary(server)
