"""Admission queue and lane-packed batch formation.

The NumPy backend already executes every multiloop across a lane axis
(``backend/vectorize.py``); the batcher exploits that by coalescing
pending invocations of the *same cached program on the same payload*
into one vectorized execution whose lanes all requests share. Grouping
is by content — ``payload_digest`` fingerprints the input structure —
so the packed execution is literally the single execution each request
would have run alone, which is what makes batched results and
``ExecStats`` bit-identical to sequential runs (the acceptance bar).
Requests whose payloads differ never share lanes: packing them into one
loop would merge their reductions and bucket keys, i.e. change answers.

Two knobs bound the admission window: ``max_batch`` caps how many
requests one execution may serve, and ``max_wait`` caps how long the
oldest request may sit waiting for lane-mates before the group
dispatches anyway.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def _walk(h, v: Any) -> None:
    if v is None:
        h.update(b"N")
    elif isinstance(v, bool):
        h.update(b"B1" if v else b"B0")
    elif isinstance(v, int):
        h.update(b"I%d;" % v)
    elif isinstance(v, float):
        h.update(b"F" + struct.pack("<d", v))
    elif isinstance(v, str):
        h.update(b"S%d;" % len(v) + v.encode("utf-8", "replace"))
    elif isinstance(v, (list, tuple)):
        h.update(b"L%d;" % len(v))
        for x in v:
            _walk(h, x)
    elif isinstance(v, dict):
        h.update(b"D%d;" % len(v))
        for k in sorted(v, key=str):
            _walk(h, str(k))
            _walk(h, v[k])
    else:
        # structured rows (dataclass-like) fall back to a stable repr
        h.update(b"O" + repr(v).encode("utf-8", "replace"))


def payload_digest(inputs: Dict[str, Any]) -> str:
    """Content fingerprint of a request's inputs (16 hex chars)."""
    h = hashlib.sha256()
    _walk(h, inputs)
    return h.hexdigest()[:16]


@dataclass(eq=False)
class Payload:
    """A request's inputs plus the grouping key derived from them."""

    inputs: Dict[str, Any]
    key: str


def make_payload(inputs: Dict[str, Any],
                 salt: Optional[str] = None) -> Payload:
    """Build a payload; ``salt`` forges a *distinct logical* payload
    sharing the same data (traffic simulation: many tenants, same
    measured dataset) — salted payloads never lane-pack together."""
    key = payload_digest(inputs)
    if salt is not None:
        key = f"{key}:{salt}"
    return Payload(inputs, key)


@dataclass(eq=False)
class Request:
    """One invocation of a served app."""

    rid: int
    app: str
    payload: Payload
    arrival_s: float
    #: closed-loop client index, or -1 for open-loop traffic
    client: int = -1
    #: trace identity (``repro.obs.RequestContext``), set only when the
    #: server runs with a tracer — ``None`` costs nothing
    ctx: Optional[Any] = None
    #: execution attempt index: 0 for the original submission, bumped
    #: for each retry/re-enqueue/hedge clone (``arrival_s`` stays the
    #: original arrival so latency is always end-to-end)
    attempt: int = 0
    #: True for a hedge duplicate racing the primary attempt
    hedge: bool = False
    #: absolute simulated deadline, or None when deadlines are off
    deadline_s: Optional[float] = None
    #: per-attempt lifecycle timeline (tracing only; None untraced)
    tl: Optional[Any] = None


@dataclass(eq=False)
class Response:
    request: Request
    results: Tuple[Any, ...]
    stats: Any                    # ExecStats of the execution that served it
    backend: str
    batch_id: int
    batch_size: int
    start_s: float
    finish_s: float
    #: True when this response shared a vectorized execution's lanes
    #: with at least one other request
    lane_packed: bool
    fallback_reason: Optional[str] = None
    #: the serving replica that executed the batch, as ``name[index]``
    machine: str = ""

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.request.arrival_s


@dataclass
class ServeFallback:
    """Recorded (never silent) drop to per-request reference execution —
    the serving-layer mirror of the backend's ``FallbackRecord``."""

    app: str
    reason: str
    requests: int


class AdmissionQueue:
    """Pending requests grouped by ``(app, payload.key)``.

    A group is *ready* once it holds ``max_batch`` requests or its
    oldest request has waited ``max_wait_s``. ``next_ready`` picks the
    ready group whose head has waited longest (FIFO across groups), so
    admission order is deterministic.
    """

    def __init__(self) -> None:
        self._groups: Dict[Tuple[str, str], List[Request]] = {}

    def push(self, req: Request) -> Tuple[str, str]:
        key = (req.app, req.payload.key)
        self._groups.setdefault(key, []).append(req)
        return key

    def next_ready(self, now: float, max_batch: int,
                   max_wait_s: float) -> Optional[Tuple[str, str]]:
        best: Optional[Tuple[float, Tuple[str, str]]] = None
        for key, reqs in self._groups.items():
            if not reqs:
                continue
            head = reqs[0].arrival_s
            ready = (len(reqs) >= max_batch
                     or now - head >= max_wait_s - 1e-12)
            if ready and (best is None or head < best[0]):
                best = (head, key)
        return None if best is None else best[1]

    def take(self, key: Tuple[str, str], max_batch: int) -> List[Request]:
        reqs = self._groups.get(key, [])
        out, rest = reqs[:max_batch], reqs[max_batch:]
        if rest:
            self._groups[key] = rest
        else:
            self._groups.pop(key, None)
        return out

    def drain(self) -> List[Request]:
        """Remove and return every pending request, in group order then
        FIFO — the shutdown sweep that turns stranded requests into
        explicit rejections instead of silent losses."""
        out: List[Request] = []
        for key in sorted(self._groups):
            out.extend(self._groups[key])
        self._groups.clear()
        return out

    def __len__(self) -> int:
        return sum(len(r) for r in self._groups.values())
