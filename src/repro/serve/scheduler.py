"""Discrete-event request scheduler with pluggable placement.

``ProgramServer`` multiplexes heterogeneous requests across a set of
simulated machine models (``runtime/machine.py``): arrivals enter the
admission queue, the batcher forms lane-packed groups (``batching.py``),
a placement policy picks an idle machine, and the priced simulated
execution time (``runtime/executor.Simulator``) advances that machine's
clock. Time is fully simulated — the host only ever runs each distinct
``(app, payload)`` once per backend, so serving a thousand requests
costs one functional execution plus arithmetic.

Execution semantics mirror the backend contract:

- on the ``numpy`` backend a group of N identical payloads executes
  **once**, and all N responses share that execution's lanes — results
  and ``ExecStats`` are bit-identical to N sequential runs by backend
  determinism (see ``batching.py``);
- any other backend, and any execution failure, falls back to
  per-request reference execution, recorded as a :class:`ServeFallback`
  exactly as the backend records interpreter fallbacks.

Placement is declarative (Mapple-style): a policy object chooses among
idle machines and nothing else in the scheduler changes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backend import resolve_backend
from ..core.ir import Program
from ..obs.spans import RequestContext, RequestTimeline
from ..runtime.executor import (ExecOptions, RunCapture, SimResult,
                                Simulator, capture_run)
from ..runtime.machine import (DMLL_CPP, ClusterSpec, MACHINE_MODELS,
                               SystemProfile)
from .batching import (AdmissionQueue, Payload, Request, Response,
                       ServeFallback, make_payload)
from .cache import ProgramCache


@dataclass
class ServedApp:
    """An app the server accepts requests for."""

    name: str
    factory: Callable[[], Program]
    default_inputs: Dict[str, Any]
    #: compute/data scale factors back to the paper's dataset sizes —
    #: the same ones the app's benchmark bundle prices with
    scale: float = 1.0
    data_scale: Optional[float] = None

    @classmethod
    def from_bundle(cls, name: str) -> "ServedApp":
        from ..bench.apps import get_bundle
        b = get_bundle(name)
        return cls(name, b._factory, b.inputs, b.scale, b.data_scale)


@dataclass
class MachineInstance:
    """One serving replica: a machine model plus its scheduler state."""

    name: str
    cluster: ClusterSpec
    profile: SystemProfile = DMLL_CPP
    #: compile variant requests placed here run ("gpu" on GPU nodes)
    variant: str = "opt"
    use_gpu: bool = False
    index: int = 0
    busy_until: float = 0.0
    busy_s: float = 0.0
    batches: int = 0


def make_machines(spec: str) -> List[MachineInstance]:
    """Parse ``"numa*2,gpunode"`` against ``MACHINE_MODELS``."""
    out: List[MachineInstance] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition("*")
        name = name.strip()
        if name not in MACHINE_MODELS:
            raise ValueError(f"unknown machine model {name!r}; expected "
                             f"one of {sorted(MACHINE_MODELS)}")
        n = int(count) if count else 1
        for _ in range(n):
            gpu = name == "gpunode"
            out.append(MachineInstance(
                name, MACHINE_MODELS[name],
                variant="gpu" if gpu else "opt", use_gpu=gpu,
                index=len(out)))
    if not out:
        raise ValueError(f"machine spec {spec!r} names no machines")
    return out


# ---------------------------------------------------------------------------
# placement policies
# ---------------------------------------------------------------------------

class RoundRobinPlacement:
    """Cycle through machines, skipping busy ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        m = min(idle, key=lambda m: ((m.index - self._cursor)
                                     % len(server.machines)))
        self._cursor = m.index + 1
        return m


class LeastLoadedPlacement:
    """Machine with the least accumulated busy time so far."""

    name = "least-loaded"

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        return min(idle, key=lambda m: (m.busy_s, m.index))


class FastestPlacement:
    """Machine predicted to execute *this* batch fastest — the policy
    that actually exploits heterogeneity (a GPU node wins the dense
    kernels, the NUMA box wins irregular ones)."""

    name = "fastest"

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        return min(idle, key=lambda m: (
            server.predict_service(m, requests[0].app, requests[0].payload),
            m.index))


POLICIES: Dict[str, Callable[[], Any]] = {
    "round-robin": RoundRobinPlacement,
    "least-loaded": LeastLoadedPlacement,
    "fastest": FastestPlacement,
}


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

class ProgramServer:
    """Serve requests against cached compiles on simulated machines.

    Drive it either directly (``submit`` + ``run``) or through an
    arrival process object with a ``prime(server)`` hook
    (``serve.simulator``). ``on_complete`` callbacks fire per response
    in completion order — closed-loop workloads use them to issue the
    next request.
    """

    def __init__(self, apps: Sequence[ServedApp],
                 machines: Optional[List[MachineInstance]] = None,
                 max_batch: int = 8, max_wait_s: float = 0.02,
                 policy: Any = "round-robin",
                 backend: Optional[str] = None,
                 metrics: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 cache: Optional[ProgramCache] = None,
                 trace_seed: int = 0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.apps: Dict[str, ServedApp] = {a.name: a for a in apps}
        self.machines = machines or make_machines("numa")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.policy = POLICIES[policy]() if isinstance(policy, str) else policy
        self.backend = resolve_backend(backend)
        self.metrics = metrics
        self.tracer = tracer
        #: request trace ids derive from this seed (the traffic seed, so
        #: same-seed runs export byte-identical traces)
        self.trace_seed = trace_seed
        self.cache = cache or ProgramCache(
            {n: a.factory for n, a in self.apps.items()}, metrics=metrics)
        self.queue = AdmissionQueue()
        self.responses: List[Response] = []
        self.fallbacks: List[ServeFallback] = []
        self.on_complete: List[Callable[["ProgramServer", Response],
                                        None]] = []
        self.now = 0.0
        self._events: List[Tuple[float, int, str, Any]] = []
        self._seq = 0
        self._rid = 0
        self._bid = 0
        self._root = None
        # request-level tracing state — populated only while a tracer is
        # attached and enabled; the untraced path never touches it
        self._tracing = tracer is not None and tracer.enabled
        self._timelines: Dict[int, RequestTimeline] = {}
        # host-side memos: one functional execution per distinct
        # (app, variant, payload, backend); one pricing per machine model
        self._captures: Dict[Tuple[str, str, str, str], RunCapture] = {}
        self._service: Dict[Tuple[str, str, str, str, str], float] = {}
        #: pricing detail kept alongside ``_service`` for span grafting
        #: (tracing only; empty on plain runs)
        self._sims: Dict[Tuple[str, str, str, str, str], SimResult] = {}
        self._payloads: Dict[Tuple[str, Optional[str]], Payload] = {}

    # -- request admission ----------------------------------------------

    def payload_for(self, app: str,
                    salt: Optional[str] = None) -> Payload:
        """The app's default payload, optionally salted into a distinct
        logical tenant (memoized so equal salts share lane groups)."""
        key = (app, salt)
        if key not in self._payloads:
            self._payloads[key] = make_payload(
                self.apps[app].default_inputs, salt=salt)
        return self._payloads[key]

    def submit(self, app: str, payload: Optional[Payload] = None,
               at: float = 0.0, client: int = -1) -> Request:
        if app not in self.apps:
            raise KeyError(f"unknown app {app!r}; served apps: "
                           f"{sorted(self.apps)}")
        req = Request(self._rid, app, payload or self.payload_for(app),
                      at, client)
        self._rid += 1
        if self._tracing:
            req.ctx = RequestContext.derive(self.trace_seed, req.rid)
            tl = RequestTimeline(req.ctx)
            tl.mark("arrive", at)
            self._timelines[req.rid] = tl
        self._push(at, "arrive", req)
        return req

    def _push(self, t: float, kind: str, data: Any) -> None:
        heapq.heappush(self._events, (t, self._seq, kind, data))
        self._seq += 1

    # -- the event loop --------------------------------------------------

    def run(self, source: Optional[Any] = None) -> List[Response]:
        if source is not None:
            source.prime(self)
        if self.tracer is not None and self.tracer.enabled:
            self._root = self.tracer.begin_run(
                "serve", backend=self.backend,
                policy=getattr(self.policy, "name", "?"),
                machines=len(self.machines), max_batch=self.max_batch,
                max_wait_s=self.max_wait_s)
        while self._events:
            t, _, kind, data = heapq.heappop(self._events)
            self.now = t
            if kind == "arrive":
                self.queue.push(data)
                if self._tracing:
                    self._timelines[data.rid].mark("enqueue", t)
                if self.metrics is not None:
                    self.metrics.inc("serve.requests", app=data.app)
                # the group must dispatch no later than this request's
                # wait deadline even if the batch never fills
                self._push(t + self.max_wait_s, "flush", None)
                self._dispatch(t)
            elif kind == "flush":
                self._dispatch(t)
            else:  # complete
                machine, responses = data
                self.responses.extend(responses)
                if self.metrics is not None:
                    for r in responses:
                        self.metrics.observe("serve.latency_s", r.latency_s,
                                             app=r.request.app)
                        self.metrics.observe("serve.queue_wait_s",
                                             r.queue_wait_s)
                for r in responses:
                    for hook in self.on_complete:
                        hook(self, r)
                self._dispatch(t)
        makespan = max((r.finish_s for r in self.responses), default=0.0)
        if self._root is not None:
            self._root.dur_s = makespan
            self._root.set(requests=len(self.responses),
                           batches=self._bid, makespan_s=makespan)
            self._emit_request_spans()
        if self.metrics is not None:
            self.metrics.gauge("serve.makespan_s", makespan)
        return self.responses

    def _emit_request_spans(self) -> None:
        """Per-request lifecycle spans (arrive → complete) with queue and
        exec children, linked to the batch execution that served each
        request via ``batch_id`` (the exporter turns that into flow
        arrows). Called once after the event loop drains."""
        for resp in sorted(self.responses, key=lambda r: r.request.rid):
            req = resp.request
            ctx = req.ctx
            tl = self._timelines.get(req.rid)
            if ctx is None or tl is None:
                continue
            t0 = tl.get("arrive")
            t_end = tl.get("complete")
            if t0 is None or t_end is None:
                continue
            attrs = {f"{stage}_s": t for stage, t in tl.ordered()}
            rsp = self._root.child(
                f"r{req.rid}:{req.app}", "request", t0, t_end - t0,
                rid=req.rid, app=req.app, trace_id=ctx.trace_id,
                span_id=ctx.span_id, flow_id=ctx.flow_id,
                batch_id=resp.batch_id, batch_size=resp.batch_size,
                lane_packed=resp.lane_packed, machine=resp.machine,
                backend=resp.backend, fallback=resp.fallback_reason,
                latency_s=resp.latency_s, **attrs)
            t_q0 = tl.get("enqueue")
            t_disp = tl.get("dispatch")
            if t_q0 is not None and t_disp is not None:
                rsp.child("queued", "queue", t_q0, t_disp - t_q0,
                          rid=req.rid)
            t_x0 = tl.get("exec_start")
            if t_x0 is not None:
                rsp.child("exec", "exec", t_x0, t_end - t_x0,
                          rid=req.rid, batch_id=resp.batch_id)

    def timeline_of(self, rid: int) -> Optional[RequestTimeline]:
        """The recorded lifecycle timeline for a request (tracing only)."""
        return self._timelines.get(rid)

    def _dispatch(self, now: float) -> None:
        while True:
            idle = [m for m in self.machines if m.busy_until <= now + 1e-15]
            if not idle:
                return
            key = self.queue.next_ready(now, self.max_batch, self.max_wait_s)
            if key is None:
                return
            requests = self.queue.take(key, self.max_batch)
            if self._tracing:
                for r in requests:
                    self._timelines[r.rid].mark("seal", now)
            machine = self.policy.place(self, idle, requests, now)
            if self._tracing:
                for r in requests:
                    self._timelines[r.rid].mark("dispatch", now)
            self._execute_batch(machine, requests, now)

    # -- execution --------------------------------------------------------

    def _capture(self, app: str, variant: str,
                 payload: Payload) -> RunCapture:
        ckey = (app, variant, payload.key, self.backend)
        cap = self._captures.get(ckey)
        if cap is None:
            entry = self.cache.get(app, variant)
            cap = capture_run(entry.compiled, payload.inputs,
                              backend=self.backend,
                              profile_host=self.metrics is not None)
            self._captures[ckey] = cap
            if self.metrics is not None:
                # host wall-clock of the one real execution behind this
                # capture — calibration data for the cost model, kept in
                # metrics (not spans) so traces stay seed-deterministic
                for lname, secs in sorted(cap.host_loop_s.items()):
                    self.metrics.observe("serve.capture_host_s", secs,
                                         app=app, loop=lname)
        return cap

    def _price(self, machine: MachineInstance, app: str,
               cap: RunCapture, payload: Payload) -> float:
        skey = (machine.name, app, machine.variant, payload.key,
                cap.backend)
        svc = self._service.get(skey)
        if svc is None:
            served = self.apps[app]
            entry = self.cache.get(app, machine.variant)
            opts = ExecOptions(scale=served.scale,
                               data_scale=served.data_scale,
                               use_gpu=machine.use_gpu,
                               gpu_transposed=machine.use_gpu)
            sim = Simulator(entry.compiled, machine.cluster, machine.profile,
                            opts).price(cap)
            svc = sim.total_seconds
            self._service[skey] = svc
            if self._tracing:
                # keep the per-loop pricing detail so batch spans can
                # graft loop children (see ``_execute_batch``)
                self._sims[skey] = sim
        return svc

    def predict_service(self, machine: MachineInstance, app: str,
                        payload: Payload) -> float:
        """Per-request service time on ``machine`` (placement input)."""
        try:
            cap = self._capture(app, machine.variant, payload)
        except Exception:
            cap = self._reference_capture(app, machine.variant, payload)
        return self._price(machine, app, cap, payload)

    def _reference_capture(self, app: str, variant: str,
                           payload: Payload) -> RunCapture:
        ckey = (app, variant, payload.key, "reference")
        cap = self._captures.get(ckey)
        if cap is None:
            entry = self.cache.get(app, variant)
            cap = capture_run(entry.compiled, payload.inputs,
                              backend="reference")
            self._captures[ckey] = cap
        return cap

    def _execute_batch(self, machine: MachineInstance,
                       requests: List[Request], now: float) -> None:
        app = requests[0].app
        payload = requests[0].payload
        n = len(requests)
        bid = self._bid
        self._bid += 1

        fallback_reason: Optional[str] = None
        if self.backend == "numpy":
            try:
                cap = self._capture(app, machine.variant, payload)
            except Exception as exc:  # recorded, never silent
                fallback_reason = f"numpy execution failed: {exc}"
        else:
            fallback_reason = (f"backend={self.backend!r} has no lane "
                               f"axis; per-request reference execution")

        mname = f"{machine.name}[{machine.index}]"
        if fallback_reason is None:
            # lane-packed path: ONE execution serves every request in
            # the group — its lanes are the batch
            svc = self._price(machine, app, cap, payload)
            finish = now + svc
            responses = [Response(r, cap.results, cap.stats, cap.backend,
                                  bid, n, now, finish, lane_packed=n > 1,
                                  machine=mname)
                         for r in requests]
            if self._tracing:
                for r in requests:
                    tl = self._timelines[r.rid]
                    tl.mark("exec_start", now)
                    tl.mark("complete", finish)
            if self.metrics is not None and n > 1:
                self.metrics.inc("serve.lane_packed_requests", n, app=app)
        else:
            cap = self._reference_capture(app, machine.variant, payload)
            single = self._price(machine, app, cap, payload)
            svc = single * n
            responses = [Response(r, cap.results, cap.stats, cap.backend,
                                  bid, n, now, now + single * (i + 1),
                                  lane_packed=False,
                                  fallback_reason=fallback_reason,
                                  machine=mname)
                         for i, r in enumerate(requests)]
            if self._tracing:
                # fallback executions run back-to-back, so each request's
                # exec window is its own slot in the serialized batch
                for i, r in enumerate(requests):
                    tl = self._timelines[r.rid]
                    tl.mark("exec_start", now + single * i)
                    tl.mark("complete", now + single * (i + 1))
            finish = now + svc
            self.fallbacks.append(ServeFallback(app, fallback_reason, n))
            if self.metrics is not None:
                self.metrics.inc("serve.fallback", app=app)

        machine.busy_until = finish
        machine.busy_s += svc
        machine.batches += 1
        if self.metrics is not None:
            self.metrics.inc("serve.batches", app=app)
            self.metrics.observe("serve.batch_size", float(n), app=app)
            self.metrics.observe("serve.service_s", svc,
                                 machine=machine.name)
        if self._root is not None:
            bsp = self._root.child(
                f"b{bid}:{app}x{n}", "batch", now, svc,
                machine=machine.index, machine_name=machine.name,
                app=app, batch=n, batch_id=bid,
                lane_packed=fallback_reason is None and n > 1,
                backend=cap.backend, service_s=svc,
                fallback=fallback_reason)
            skey = (machine.name, app, machine.variant, payload.key,
                    cap.backend)
            sim = self._sims.get(skey)
            if sim is not None and fallback_reason is None:
                # graft the priced per-loop breakdown under the batch
                # span, pinned to the *serving* replica's track (the
                # memoized pricing carries its own machine indices,
                # which would land the loops on the wrong row)
                cursor = now
                for loop in sim.loops:
                    bsp.child(loop.name, "loop", cursor, loop.time_s,
                              machine=machine.index, op=loop.op_name,
                              iters=loop.iters, workers=loop.workers,
                              compute_s=loop.compute_s,
                              memory_s=loop.memory_s,
                              comm_s=loop.comm_s,
                              overhead_s=loop.overhead_s)
                    cursor += loop.time_s
        self._push(finish, "complete", (machine, responses))
