"""Discrete-event request scheduler with pluggable placement.

``ProgramServer`` multiplexes heterogeneous requests across a set of
simulated machine models (``runtime/machine.py``): arrivals enter the
admission queue, the batcher forms lane-packed groups (``batching.py``),
a placement policy picks an idle machine, and the priced simulated
execution time (``runtime/executor.Simulator``) advances that machine's
clock. Time is fully simulated — the host only ever runs each distinct
``(app, payload)`` once per backend, so serving a thousand requests
costs one functional execution plus arithmetic.

Execution semantics mirror the backend contract:

- on the ``numpy`` backend a group of N identical payloads executes
  **once**, and all N responses share that execution's lanes — results
  and ``ExecStats`` are bit-identical to N sequential runs by backend
  determinism (see ``batching.py``);
- any other backend, and any execution failure, falls back to
  per-request reference execution, recorded as a :class:`ServeFallback`
  exactly as the backend records interpreter fallbacks.

Placement is declarative (Mapple-style): a policy object chooses among
idle machines and nothing else in the scheduler changes.

Chaos and resilience (``faults.py`` / ``resilience.py``) hook into the
same event loop: crash events cancel and re-enqueue in-flight batches,
placement skips down or open-circuit replicas, kernel faults either
force the recorded fallback path or hard-fail the attempt into the
retry machinery, and every request ends as exactly one ``Response`` or
one typed ``Rejected`` — never silently lost. All of it is guarded on
the fault plan / resilience config being present, so a plain run stays
byte-identical to the pre-chaos scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..backend import resolve_backend
from ..core.ir import Program
from ..obs.provenance import APPLIED, DecisionKind, DecisionLedger
from ..obs.spans import RequestContext, RequestTimeline
from ..runtime.executor import (ExecOptions, RunCapture, SimResult,
                                Simulator, capture_run)
from ..runtime.machine import (DMLL_CPP, ClusterSpec, MACHINE_MODELS,
                               SystemProfile)
from .batching import (AdmissionQueue, Payload, Request, Response,
                       ServeFallback, make_payload)
from .cache import ProgramCache
from .faults import FaultPlan
from .resilience import (CircuitBreaker, OPEN, REJECT_DEADLINE,
                         REJECT_RETRIES, REJECT_SHED, REJECT_UNSERVED,
                         Rejected, ResilienceConfig)


@dataclass
class ServedApp:
    """An app the server accepts requests for."""

    name: str
    factory: Callable[[], Program]
    default_inputs: Dict[str, Any]
    #: compute/data scale factors back to the paper's dataset sizes —
    #: the same ones the app's benchmark bundle prices with
    scale: float = 1.0
    data_scale: Optional[float] = None

    @classmethod
    def from_bundle(cls, name: str) -> "ServedApp":
        from ..bench.apps import get_bundle
        b = get_bundle(name)
        return cls(name, b._factory, b.inputs, b.scale, b.data_scale)


@dataclass
class MachineInstance:
    """One serving replica: a machine model plus its scheduler state."""

    name: str
    cluster: ClusterSpec
    profile: SystemProfile = DMLL_CPP
    #: compile variant requests placed here run ("gpu" on GPU nodes)
    variant: str = "opt"
    use_gpu: bool = False
    index: int = 0
    busy_until: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    #: True while a scripted crash window holds this replica down
    down: bool = False

    @property
    def label(self) -> str:
        return f"{self.name}[{self.index}]"


def make_machines(spec: str) -> List[MachineInstance]:
    """Parse ``"numa*2,gpunode"`` against ``MACHINE_MODELS``."""
    out: List[MachineInstance] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition("*")
        name = name.strip()
        if name not in MACHINE_MODELS:
            raise ValueError(f"unknown machine model {name!r}; expected "
                             f"one of {sorted(MACHINE_MODELS)}")
        try:
            n = int(count) if count else 1
        except ValueError:
            raise ValueError(f"bad machine count in {part!r}: {count!r} "
                             f"is not an integer") from None
        if n < 1:
            raise ValueError(f"bad machine count in {part!r}: count must "
                             f"be >= 1, got {n}")
        for _ in range(n):
            gpu = name == "gpunode"
            out.append(MachineInstance(
                name, MACHINE_MODELS[name],
                variant="gpu" if gpu else "opt", use_gpu=gpu,
                index=len(out)))
    if not out:
        raise ValueError(f"machine spec {spec!r} names no machines")
    return out


# ---------------------------------------------------------------------------
# placement policies
# ---------------------------------------------------------------------------

class RoundRobinPlacement:
    """Cycle through machines, skipping busy ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        m = min(idle, key=lambda m: ((m.index - self._cursor)
                                     % len(server.machines)))
        self._cursor = m.index + 1
        return m


class LeastLoadedPlacement:
    """Machine with the least accumulated busy time so far."""

    name = "least-loaded"

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        return min(idle, key=lambda m: (m.busy_s, m.index))


class FastestPlacement:
    """Machine predicted to execute *this* batch fastest — the policy
    that actually exploits heterogeneity (a GPU node wins the dense
    kernels, the NUMA box wins irregular ones)."""

    name = "fastest"

    def place(self, server: "ProgramServer", idle: List[MachineInstance],
              requests: List[Request], now: float) -> MachineInstance:
        return min(idle, key=lambda m: (
            server.predict_service(m, requests[0].app, requests[0].payload),
            m.index))


POLICIES: Dict[str, Callable[[], Any]] = {
    "round-robin": RoundRobinPlacement,
    "least-loaded": LeastLoadedPlacement,
    "fastest": FastestPlacement,
}


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

class ProgramServer:
    """Serve requests against cached compiles on simulated machines.

    Drive it either directly (``submit`` + ``run``) or through an
    arrival process object with a ``prime(server)`` hook
    (``serve.simulator``). ``on_complete`` callbacks fire per response
    in completion order — closed-loop workloads use them to issue the
    next request.

    ``faults`` takes a :class:`~repro.serve.faults.FaultPlan` chaos
    script and ``resilience`` a
    :class:`~repro.serve.resilience.ResilienceConfig`; both default to
    off, and an **empty** fault plan is normalized to ``None`` so a
    zero-fault plan is bit-identical to no plan at all.
    """

    def __init__(self, apps: Sequence[ServedApp],
                 machines: Optional[List[MachineInstance]] = None,
                 max_batch: int = 8, max_wait_s: float = 0.02,
                 policy: Any = "round-robin",
                 backend: Optional[str] = None,
                 metrics: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 cache: Optional[ProgramCache] = None,
                 trace_seed: int = 0,
                 faults: Optional[FaultPlan] = None,
                 resilience: Optional[ResilienceConfig] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.apps: Dict[str, ServedApp] = {a.name: a for a in apps}
        self.machines = machines or make_machines("numa")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.policy = POLICIES[policy]() if isinstance(policy, str) else policy
        self.backend = resolve_backend(backend)
        self.metrics = metrics
        self.tracer = tracer
        #: request trace ids derive from this seed (the traffic seed, so
        #: same-seed runs export byte-identical traces)
        self.trace_seed = trace_seed
        #: an empty plan is falsy and treated exactly like no plan —
        #: the fault layer's zero-cost-when-disabled contract
        self.faults = faults if faults else None
        self.res = resilience
        self.cache = cache or ProgramCache(
            {n: a.factory for n, a in self.apps.items()}, metrics=metrics)
        self.queue = AdmissionQueue()
        self.responses: List[Response] = []
        self.fallbacks: List[ServeFallback] = []
        #: requests the server explicitly refused (shed, deadline,
        #: retries exhausted, unserved at shutdown) — together with
        #: ``responses`` this accounts for every submitted request
        self.rejected: List[Rejected] = []
        #: apps permanently routed to the reference path after repeated
        #: kernel faults, with the recorded reason
        self.degraded: Dict[str, str] = {}
        #: serve-time decisions (degradations) — provenance for *why*
        #: an app stopped using the vectorized path
        self.ledger = DecisionLedger()
        self.on_complete: List[Callable[["ProgramServer", Response],
                                        None]] = []
        #: fired when a request leaves as a typed ``Rejected`` — closed
        #: loops treat the refusal as a completed interaction and issue
        #: the client's next request
        self.on_reject: List[Callable[["ProgramServer", Rejected],
                                      None]] = []
        # True while the post-loop drain rejects stranded requests;
        # on_reject hooks are muted then (the event loop is gone, a
        # submission issued now could never run)
        self._draining = False
        self.now = 0.0
        # resilience counters (all stay 0 on plain runs)
        self.retries = 0
        self.requeues = 0
        self.hedges_launched = 0
        self.hedges_wasted = 0
        self.fault_counts: Dict[str, int] = {}
        self._events: List[Tuple[float, int, str, Any]] = []
        self._seq = 0
        self._rid = 0
        self._bid = 0
        self._root = None
        # request-level tracing state — populated only while a tracer is
        # attached and enabled; the untraced path never touches it
        self._tracing = tracer is not None and tracer.enabled
        self._timelines: Dict[int, RequestTimeline] = {}
        #: per-attempt timelines of retries / hedges / re-enqueues that
        #: did not win, as (timeline, attempt, status) — tracing only
        self._alt_tls: Dict[int, List[Tuple[RequestTimeline, int, str]]] = {}
        # request/attempt accounting (the zero-lost-requests invariant:
        # a rid leaves _open only into responses or rejected)
        self._requests: Dict[int, Request] = {}
        self._open: Dict[int, int] = {}
        self._next_attempt: Dict[int, int] = {}
        self._done: Set[int] = set()
        self._rejected_rids: Set[int] = set()
        self._executing: Set[int] = set()
        self._hedged: Set[int] = set()
        # fault/breaker state
        self._inflight: Dict[int, Dict[str, Any]] = {}
        self._cancelled: Set[int] = set()
        self._kernel_strikes: Dict[str, int] = {}
        self._app_attempts: Dict[str, int] = {}
        self._retry_left = (resilience.retry.budget
                            if resilience is not None
                            and resilience.retry is not None else 0)
        self._breakers: Optional[Dict[int, CircuitBreaker]] = None
        if resilience is not None and resilience.breaker is not None:
            self._breakers = {m.index: CircuitBreaker(resilience.breaker)
                              for m in self.machines}
        # host-side memos: one functional execution per distinct
        # (app, variant, payload, backend); one pricing per machine model
        self._captures: Dict[Tuple[str, str, str, str], RunCapture] = {}
        self._service: Dict[Tuple[str, str, str, str, str], float] = {}
        #: pricing detail kept alongside ``_service`` for span grafting
        #: (tracing only; empty on plain runs)
        self._sims: Dict[Tuple[str, str, str, str, str], SimResult] = {}
        self._payloads: Dict[Tuple[str, Optional[str]], Payload] = {}

    # -- request admission ----------------------------------------------

    def payload_for(self, app: str,
                    salt: Optional[str] = None) -> Payload:
        """The app's default payload, optionally salted into a distinct
        logical tenant (memoized so equal salts share lane groups)."""
        key = (app, salt)
        if key not in self._payloads:
            self._payloads[key] = make_payload(
                self.apps[app].default_inputs, salt=salt)
        return self._payloads[key]

    def submit(self, app: str, payload: Optional[Payload] = None,
               at: float = 0.0, client: int = -1) -> Request:
        if app not in self.apps:
            raise KeyError(f"unknown app {app!r}; served apps: "
                           f"{sorted(self.apps)}")
        req = Request(self._rid, app, payload or self.payload_for(app),
                      at, client)
        self._rid += 1
        if self.res is not None and self.res.deadline_s is not None:
            req.deadline_s = at + self.res.deadline_s
        self._requests[req.rid] = req
        self._open[req.rid] = 1
        self._next_attempt[req.rid] = 1
        if self._tracing:
            req.ctx = RequestContext.derive(self.trace_seed, req.rid)
            tl = RequestTimeline(req.ctx)
            tl.mark("arrive", at)
            req.tl = tl
            self._timelines[req.rid] = tl
        self._push(at, "arrive", req)
        return req

    def _push(self, t: float, kind: str, data: Any) -> None:
        heapq.heappush(self._events, (t, self._seq, kind, data))
        self._seq += 1

    def _clone_attempt(self, req: Request, spawn_s: float,
                       hedge: bool = False) -> Request:
        """A fresh execution attempt for ``req``'s logical request:
        same rid/payload/arrival (latency stays end-to-end), next
        attempt index, its own per-attempt timeline."""
        rid = req.rid
        attempt = self._next_attempt[rid]
        self._next_attempt[rid] = attempt + 1
        clone = Request(rid, req.app, req.payload, req.arrival_s,
                        req.client, ctx=req.ctx, attempt=attempt,
                        hedge=hedge, deadline_s=req.deadline_s)
        if self._tracing:
            tl = RequestTimeline(req.ctx)
            tl.mark("arrive", spawn_s)
            clone.tl = tl
        return clone

    # -- the event loop --------------------------------------------------

    def run(self, source: Optional[Any] = None) -> List[Response]:
        if source is not None:
            source.prime(self)
        if self.tracer is not None and self.tracer.enabled:
            attrs: Dict[str, Any] = {}
            if self.faults is not None:
                attrs["faults"] = len(self.faults.specs)
            self._root = self.tracer.begin_run(
                "serve", backend=self.backend,
                policy=getattr(self.policy, "name", "?"),
                machines=len(self.machines), max_batch=self.max_batch,
                max_wait_s=self.max_wait_s, **attrs)
        if self.faults is not None:
            self._schedule_faults()
        while self._events:
            t, _, kind, data = heapq.heappop(self._events)
            self.now = t
            if kind == "arrive":
                self._on_arrive(data, t)
            elif kind == "retry":
                self._enqueue_attempt(data, t)
                self._push(t + self.max_wait_s, "flush", None)
                self._dispatch(t)
            elif kind == "hedge":
                self._on_hedge(data, t)
            elif kind == "crash":
                self._on_crash(data, t)
            elif kind == "recover":
                self.machines[data].down = False
                self._dispatch(t)
            elif kind == "breaker":
                self._dispatch(t)
            elif kind == "cache-fault":
                self._on_cache_fault(data, t)
            elif kind == "flush":
                self._dispatch(t)
            else:  # complete
                self._on_complete_event(data, t)
        # zero-lost drain: anything still queued when the event loop
        # runs dry (replicas down for good, budget exhausted) leaves as
        # an explicit Rejected, never silently
        self._drain_unserved()
        makespan = max((r.finish_s for r in self.responses), default=0.0)
        if self._root is not None:
            # the run span must cover *all* machine activity, not just
            # kept responses: a wasted hedge batch (its twin won) or a
            # late rejection can outlive the last winner, and the trace
            # validator rejects slices that end after the run span
            horizon = max([makespan]
                          + [c.start_s + c.dur_s
                             for c in self._root.children]
                          + [j.t_s for j in self.rejected])
            self._root.dur_s = horizon
            self._root.set(requests=len(self.responses),
                           batches=self._bid, makespan_s=makespan)
            self._emit_request_spans()
            self._emit_attempt_spans(horizon)
            if self.faults is not None:
                self._emit_fault_spans(horizon)
        if self.metrics is not None:
            self.metrics.gauge("serve.makespan_s", makespan)
        return self.responses

    def _schedule_faults(self) -> None:
        """Turn the fault plan's scripted windows into loop events."""
        for m in self.machines:
            for t0, t1 in self.faults.crash_windows(m.label, m.name):
                self._push(t0, "crash", m.index)
                if t1 != float("inf"):
                    self._push(t1, "recover", m.index)
        for at, target in self.faults.cache_events():
            self._push(at, "cache-fault", target)

    # -- event handlers ---------------------------------------------------

    def _on_arrive(self, req: Request, t: float) -> None:
        if (self.res is not None and self.res.shed_depth is not None
                and len(self.queue) >= self.res.shed_depth):
            self._count("shed")
            self._attempt_ended(req, REJECT_SHED, t)
            return
        self.queue.push(req)
        if self._tracing:
            req.tl.mark("enqueue", t)
        if self.metrics is not None:
            self.metrics.inc("serve.requests", app=req.app)
        # the group must dispatch no later than this request's
        # wait deadline even if the batch never fills
        self._push(t + self.max_wait_s, "flush", None)
        if self.res is not None and self.res.hedge_delay_s is not None:
            self._push(t + self.res.hedge_delay_s, "hedge", req.rid)
        self._dispatch(t)

    def _enqueue_attempt(self, req: Request, t: float) -> None:
        self.queue.push(req)
        if self._tracing and req.tl is not None:
            req.tl.mark("enqueue", t)

    def _on_hedge(self, rid: int, t: float) -> None:
        """Hedge timer: duplicate the request if its attempt is still
        executing — first completion wins, the loser is dropped."""
        if (rid in self._done or rid in self._rejected_rids
                or rid in self._hedged or rid not in self._executing):
            return
        self._hedged.add(rid)
        self.hedges_launched += 1
        if self.metrics is not None:
            self.metrics.inc("serve.hedges")
        clone = self._clone_attempt(self._requests[rid], t, hedge=True)
        self._open[rid] += 1
        self._enqueue_attempt(clone, t)
        self._push(t + self.max_wait_s, "flush", None)
        self._dispatch(t)

    def _on_crash(self, idx: int, t: float) -> None:
        """A scripted crash: the replica goes down; its in-flight batch
        (if any) is cancelled and every request re-enqueued."""
        m = self.machines[idx]
        m.down = True
        self._count("crash")
        if self._breakers is not None:
            self._record_failure(idx, t)
        inf = self._inflight.pop(idx, None)
        if inf is not None:
            self._cancelled.add(inf["bid"])
            self._count("cancelled-batches")
            # the unfinished tail never ran: free the busy accounting
            m.busy_s -= inf["finish"] - t
            m.busy_until = t
            span = inf.get("span")
            if span is not None:
                span.dur_s = t - span.start_s
                span.children.clear()
                span.set(cancelled=True, cancelled_at_s=t)
            for r in inf["requests"]:
                self._executing.discard(r.rid)
                if self._tracing and r.tl is not None:
                    self._truncate_tl(r.tl, t)
                    self._alt_tls.setdefault(r.rid, []).append(
                        (r.tl, r.attempt, "requeued"))
                if r.rid in self._done or r.rid in self._rejected_rids:
                    self._open[r.rid] -= 1
                    continue
                clone = self._clone_attempt(r, t)
                self.requeues += 1
                self._enqueue_attempt(clone, t)
            self._push(t + self.max_wait_s, "flush", None)
        self._dispatch(t)

    def _on_cache_fault(self, target: str, t: float) -> None:
        """Scripted compile-cache invalidation: evict the cache entries
        and the server's host-side memos so the next request recompiles
        (surfacing as cache misses)."""
        self._count("cache-invalidations")
        self.cache.invalidate(None if target == "*" else target)
        for memo, pos in ((self._captures, 0), (self._service, 1),
                          (self._sims, 1)):
            for k in [k for k in memo
                      if target == "*" or k[pos] == target]:
                del memo[k]

    def _on_complete_event(self, data: Tuple[Any, ...], t: float) -> None:
        machine, bid, responses = data
        if bid in self._cancelled:
            # the batch was cancelled by a crash after this event was
            # scheduled; its requests were already re-enqueued
            self._cancelled.discard(bid)
            self._dispatch(t)
            return
        self._inflight.pop(machine.index, None)
        if self._breakers is not None:
            self._breakers[machine.index].record(t, True)
        fresh = []
        for r in responses:
            rid = r.request.rid
            self._executing.discard(rid)
            self._open[rid] = self._open.get(rid, 1) - 1
            if rid in self._done or rid in self._rejected_rids:
                # a hedge/requeue race: another attempt already won
                self.hedges_wasted += 1
                if self._tracing and r.request.tl is not None:
                    self._alt_tls.setdefault(rid, []).append(
                        (r.request.tl, r.request.attempt, "superseded"))
                continue
            self._done.add(rid)
            fresh.append(r)
            if self._tracing:
                self._finalize_timeline(r)
        self.responses.extend(fresh)
        if self.metrics is not None:
            for r in fresh:
                self.metrics.observe("serve.latency_s", r.latency_s,
                                     app=r.request.app)
                self.metrics.observe("serve.queue_wait_s",
                                     r.queue_wait_s)
        for r in fresh:
            for hook in self.on_complete:
                hook(self, r)
        self._dispatch(t)

    # -- rejection bookkeeping -------------------------------------------

    def _count(self, key: str) -> None:
        self.fault_counts[key] = self.fault_counts.get(key, 0) + 1

    def _record_failure(self, idx: int, now: float) -> None:
        """Feed a failure to the machine's breaker; if it trips (or
        re-trips from half-open), schedule a wake-up for when the
        cooldown expires so a quiet queue can't strand requests."""
        b = self._breakers[idx]
        was_open = b.state == OPEN
        b.record(now, False)
        if b.state == OPEN and not was_open:
            self._count("breaker-trips")
            if self.metrics is not None:
                self.metrics.inc("serve.breaker.trips",
                                 machine=self.machines[idx].name)
            self._push(b.opened_at + b.config.cooldown_s, "breaker", None)

    def _attempt_ended(self, req: Request, reason: str, t: float,
                       status: Optional[str] = None) -> None:
        """An attempt died without completing (shed / deadline / retry
        exhausted / shutdown). When it was the rid's last live attempt,
        the request leaves as a typed ``Rejected``."""
        rid = req.rid
        self._open[rid] = self._open.get(rid, 1) - 1
        if self._tracing and req.tl is not None:
            self._alt_tls.setdefault(rid, []).append(
                (req.tl, req.attempt, status or reason))
        if (self._open[rid] <= 0 and rid not in self._done
                and rid not in self._rejected_rids):
            self._rejected_rids.add(rid)
            self.rejected.append(Rejected(
                rid, req.app, reason, t, arrival_s=req.arrival_s,
                client=req.client, attempts=self._next_attempt.get(rid, 1)))
            if self.metrics is not None:
                self.metrics.inc("serve.rejected", app=req.app,
                                 reason=reason)
            if not self._draining:
                for hook in self.on_reject:
                    hook(self, self.rejected[-1])

    def _drain_unserved(self) -> None:
        self._draining = True
        try:
            for r in self.queue.drain():
                self._attempt_ended(r, REJECT_UNSERVED, self.now)
        finally:
            self._draining = False

    # -- tracing helpers --------------------------------------------------

    @staticmethod
    def _truncate_tl(tl: RequestTimeline, t: float) -> None:
        """Clamp a cancelled attempt's timeline at the cancel instant
        (fallback batches pre-mark staggered exec windows that may lie
        beyond the crash)."""
        for stage in list(tl.marks):
            if tl.marks[stage] > t:
                del tl.marks[stage]
        tl.marks["complete"] = t

    def _finalize_timeline(self, resp: Response) -> None:
        """Install the winning attempt's timeline as the request's
        timeline. Later attempts re-anchor ``arrive`` at the *original*
        arrival so the exact decomposition identity covers the full
        end-to-end latency (backoff and failed attempts land in
        ``admission_s``); the per-attempt view stays available through
        ``attempt_timelines_of``."""
        req = resp.request
        if req.tl is None:
            return
        if req.attempt > 0:
            final = RequestTimeline(req.ctx)
            final.marks = dict(req.tl.marks)
            final.marks["arrive"] = req.arrival_s
            self._timelines[req.rid] = final
            self._alt_tls.setdefault(req.rid, []).append(
                (req.tl, req.attempt, "served"))
        # attempt 0: self._timelines[rid] already is req.tl

    def _emit_request_spans(self) -> None:
        """Per-request lifecycle spans (arrive → complete) with queue and
        exec children, linked to the batch execution that served each
        request via ``batch_id`` (the exporter turns that into flow
        arrows). Called once after the event loop drains."""
        for resp in sorted(self.responses, key=lambda r: r.request.rid):
            req = resp.request
            ctx = req.ctx
            tl = self._timelines.get(req.rid)
            if ctx is None or tl is None:
                continue
            t0 = tl.get("arrive")
            t_end = tl.get("complete")
            if t0 is None or t_end is None:
                continue
            attrs = {f"{stage}_s": t for stage, t in tl.ordered()}
            if req.attempt > 0:
                attrs["attempts"] = req.attempt + 1
            rsp = self._root.child(
                f"r{req.rid}:{req.app}", "request", t0, t_end - t0,
                rid=req.rid, app=req.app, trace_id=ctx.trace_id,
                span_id=ctx.span_id, flow_id=ctx.flow_id,
                batch_id=resp.batch_id, batch_size=resp.batch_size,
                lane_packed=resp.lane_packed, machine=resp.machine,
                backend=resp.backend, fallback=resp.fallback_reason,
                latency_s=resp.latency_s, **attrs)
            t_q0 = tl.get("enqueue")
            t_disp = tl.get("dispatch")
            if t_q0 is not None and t_disp is not None:
                rsp.child("queued", "queue", t_q0, t_disp - t_q0,
                          rid=req.rid)
            t_x0 = tl.get("exec_start")
            if t_x0 is not None:
                rsp.child("exec", "exec", t_x0, t_end - t_x0,
                          rid=req.rid, batch_id=resp.batch_id)

    def _emit_attempt_spans(self, makespan: float) -> None:
        """One sibling span per execution attempt (their own trace
        process) for every request that needed more than one — retries,
        hedges, crash re-enqueues — indexed by attempt and labelled
        with how that attempt ended."""
        if not self._alt_tls:
            return
        by_rid = {r.request.rid: r for r in self.responses}
        for rid in sorted(self._alt_tls):
            resp = by_rid.get(rid)
            entries = list(self._alt_tls[rid])
            win_end: Optional[float] = None
            if resp is not None:
                win_end = resp.finish_s
                if resp.request.attempt == 0 and resp.request.tl is not None:
                    entries.append((resp.request.tl, 0, "served"))
            for tl, attempt, status in sorted(entries, key=lambda e: e[1]):
                times = [t for _, t in tl.ordered()]
                if not times:
                    continue
                t1 = max(times)
                if win_end is not None:
                    t1 = min(t1, win_end)
                t1 = min(t1, makespan)
                t0 = min(min(times), t1)
                self._root.child(
                    f"r{rid}:a{attempt}", "attempt", t0, t1 - t0,
                    rid=rid, attempt=attempt, status=status,
                    **{f"{stage}_s": t for stage, t in tl.ordered()})

    def _emit_fault_spans(self, makespan: float) -> None:
        """Scripted crash windows as fault spans on the machine tracks
        (clipped to the run), so chaos is visible where it struck."""
        for m in self.machines:
            for t0, t1 in self.faults.crash_windows(m.label, m.name):
                if t0 >= makespan:
                    continue
                t1 = min(t1, makespan)
                self._root.child(
                    f"crash:{m.label}", "fault", t0, t1 - t0,
                    machine=m.index, machine_name=m.name, fault="crash")

    def resilience_summary(self) -> Optional[Dict[str, Any]]:
        """Shed/retry/hedge/breaker counts and per-fault attribution for
        the report — ``None`` when neither a fault plan nor a resilience
        config was active (so plain reports stay byte-identical)."""
        if self.faults is None and self.res is None:
            return None
        by_reason: Dict[str, int] = {}
        for j in self.rejected:
            by_reason[j.reason] = by_reason.get(j.reason, 0) + 1
        out: Dict[str, Any] = {
            "rejected": len(self.rejected),
            "rejected_by_reason": dict(sorted(by_reason.items())),
            "retries": self.retries,
            "retry_budget_left": self._retry_left,
            "requeues": self.requeues,
            "hedges": self.hedges_launched,
            "hedges_wasted": self.hedges_wasted,
            "degraded": dict(sorted(self.degraded.items())),
            "fault_counts": dict(sorted(self.fault_counts.items())),
        }
        if self._breakers is not None:
            out["breaker"] = {
                self.machines[i].label: {"state": b.state, "trips": b.trips}
                for i, b in sorted(self._breakers.items())}
        return out

    def timeline_of(self, rid: int) -> Optional[RequestTimeline]:
        """The recorded lifecycle timeline for a request (tracing only)."""
        return self._timelines.get(rid)

    def attempt_timelines_of(self, rid: int
                             ) -> List[Tuple[int, str, RequestTimeline]]:
        """All recorded per-attempt timelines for a request, as
        ``(attempt, status, timeline)`` sorted by attempt — the
        per-attempt decomposition input (tracing only)."""
        out = [(a, status, tl)
               for tl, a, status in self._alt_tls.get(rid, [])]
        for r in self.responses:
            if r.request.rid == rid and r.request.tl is not None:
                if r.request.attempt == 0 or not any(
                        a == r.request.attempt for a, _, _ in out):
                    out.append((r.request.attempt, "served", r.request.tl))
        return sorted(out, key=lambda e: e[0])

    # -- dispatch ---------------------------------------------------------

    def _machine_available(self, m: MachineInstance, now: float) -> bool:
        if m.busy_until > now + 1e-15 or m.down:
            return False
        if self._breakers is not None:
            return self._breakers[m.index].allow(now)
        return True

    def _dispatch(self, now: float) -> None:
        while True:
            idle = [m for m in self.machines
                    if self._machine_available(m, now)]
            if not idle:
                return
            key = self.queue.next_ready(now, self.max_batch, self.max_wait_s)
            if key is None:
                return
            requests = self.queue.take(key, self.max_batch)
            if self.res is not None and self.res.deadline_s is not None:
                live = []
                for r in requests:
                    if (r.deadline_s is not None
                            and now >= r.deadline_s - 1e-15):
                        self._count("deadline")
                        self._attempt_ended(r, REJECT_DEADLINE, now)
                    else:
                        live.append(r)
                if not live:
                    continue
                requests = live
            if self._tracing:
                for r in requests:
                    r.tl.mark("seal", now)
            machine = self.policy.place(self, idle, requests, now)
            if self._tracing:
                for r in requests:
                    r.tl.mark("dispatch", now)
            self._execute_batch(machine, requests, now)

    # -- execution --------------------------------------------------------

    def _capture(self, app: str, variant: str,
                 payload: Payload) -> RunCapture:
        ckey = (app, variant, payload.key, self.backend)
        cap = self._captures.get(ckey)
        if cap is None:
            entry = self.cache.get(app, variant)
            cap = capture_run(entry.compiled, payload.inputs,
                              backend=self.backend,
                              profile_host=self.metrics is not None)
            self._captures[ckey] = cap
            if self.metrics is not None:
                # host wall-clock of the one real execution behind this
                # capture — calibration data for the cost model, kept in
                # metrics (not spans) so traces stay seed-deterministic
                for lname, secs in sorted(cap.host_loop_s.items()):
                    self.metrics.observe("serve.capture_host_s", secs,
                                         app=app, loop=lname)
        return cap

    def _price(self, machine: MachineInstance, app: str,
               cap: RunCapture, payload: Payload) -> float:
        skey = (machine.name, app, machine.variant, payload.key,
                cap.backend)
        svc = self._service.get(skey)
        if svc is None:
            served = self.apps[app]
            entry = self.cache.get(app, machine.variant)
            opts = ExecOptions(scale=served.scale,
                               data_scale=served.data_scale,
                               use_gpu=machine.use_gpu,
                               gpu_transposed=machine.use_gpu)
            sim = Simulator(entry.compiled, machine.cluster, machine.profile,
                            opts).price(cap)
            svc = sim.total_seconds
            self._service[skey] = svc
            if self._tracing:
                # keep the per-loop pricing detail so batch spans can
                # graft loop children (see ``_execute_batch``)
                self._sims[skey] = sim
        return svc

    def predict_service(self, machine: MachineInstance, app: str,
                        payload: Payload) -> float:
        """Per-request service time on ``machine`` (placement input)."""
        try:
            cap = self._capture(app, machine.variant, payload)
        except Exception:
            cap = self._reference_capture(app, machine.variant, payload)
        return self._price(machine, app, cap, payload)

    def _reference_capture(self, app: str, variant: str,
                           payload: Payload) -> RunCapture:
        ckey = (app, variant, payload.key, "reference")
        cap = self._captures.get(ckey)
        if cap is None:
            entry = self.cache.get(app, variant)
            cap = capture_run(entry.compiled, payload.inputs,
                              backend="reference")
            self._captures[ckey] = cap
        return cap

    def _degrade_check(self, app: str, now: float) -> None:
        """Repeated kernel faults permanently route the app to the
        reference path, with a provenance Decision recording why."""
        strikes = self._kernel_strikes[app]
        limit = self.res.degrade_after if self.res is not None else 3
        if strikes >= limit and app not in self.degraded:
            reason = (f"{strikes} consecutive kernel faults; serving "
                      f"from the reference interpreter")
            self.degraded[app] = reason
            self._count("degraded-apps")
            self.ledger.record(DecisionKind.SERVE_DEGRADE, f"serve:{app}",
                               APPLIED, reason, strikes=strikes,
                               at_s=now)
            if self.metrics is not None:
                self.metrics.inc("serve.degraded", app=app)

    def _fail_batch(self, machine: MachineInstance, requests: List[Request],
                    now: float, bid: int, reason: str) -> None:
        """A hard kernel fault: the attempt dies instantly; each request
        retries (budget and attempts permitting) or leaves Rejected."""
        if self._breakers is not None:
            self._record_failure(machine.index, now)
        if self.metrics is not None:
            self.metrics.inc("serve.kernel_faults", app=requests[0].app)
        if self._root is not None:
            self._root.child(
                f"b{bid}:{requests[0].app}!fault", "fault", now, 0.0,
                machine=machine.index, machine_name=machine.name,
                app=requests[0].app, batch_id=bid, fault="kernel-error",
                reason=reason)
        rp = self.res.retry if self.res is not None else None
        for r in requests:
            self._executing.discard(r.rid)
            if self._tracing and r.tl is not None:
                r.tl.mark("complete", now)
            nxt = r.attempt + 1
            if (rp is not None and nxt < rp.max_attempts
                    and self._retry_left > 0):
                self._retry_left -= 1
                self.retries += 1
                if self._tracing and r.tl is not None:
                    self._alt_tls.setdefault(r.rid, []).append(
                        (r.tl, r.attempt, "failed"))
                delay = rp.delay_s(self.trace_seed, r.rid, nxt)
                clone = self._clone_attempt(r, now)
                self._push(now + delay, "retry", clone)
            else:
                self._attempt_ended(r, REJECT_RETRIES, now,
                                    status="failed")

    def _execute_batch(self, machine: MachineInstance,
                       requests: List[Request], now: float) -> None:
        app = requests[0].app
        payload = requests[0].payload
        n = len(requests)
        bid = self._bid
        self._bid += 1
        for r in requests:
            self._executing.add(r.rid)
        if self._breakers is not None:
            # a half-open breaker's probe is in flight from placement on
            self._breakers[machine.index].on_dispatch(now)

        fallback_reason: Optional[str] = None
        if app in self.degraded:
            fallback_reason = f"degraded: {self.degraded[app]}"
        elif self.backend == "numpy":
            try:
                cap = self._capture(app, machine.variant, payload)
            except Exception as exc:  # recorded, never silent
                fallback_reason = f"numpy execution failed: {exc}"
        else:
            fallback_reason = (f"backend={self.backend!r} has no lane "
                               f"axis; per-request reference execution")

        if self.faults is not None and fallback_reason is None:
            attempt_no = self._app_attempts.get(app, 0)
            self._app_attempts[app] = attempt_no + 1
            spec = self.faults.kernel_fault(app, now, attempt_no)
            if spec is not None:
                self._kernel_strikes[app] = \
                    self._kernel_strikes.get(app, 0) + 1
                self._degrade_check(app, now)
                if spec.mode == "error":
                    self._count("kernel-error")
                    self._fail_batch(machine, requests, now, bid,
                                     f"fault-injected kernel error "
                                     f"(target {spec.target!r})")
                    return
                self._count("kernel-fallback")
                fallback_reason = (f"fault-injected kernel failure "
                                   f"(target {spec.target!r})")
            else:
                self._kernel_strikes[app] = 0

        slow = (self.faults.slow_factor(machine.label, machine.name, now)
                if self.faults is not None else 1.0)
        if slow != 1.0:
            self._count("slowed-batches")

        mname = machine.label
        if fallback_reason is None:
            # lane-packed path: ONE execution serves every request in
            # the group — its lanes are the batch
            svc = self._price(machine, app, cap, payload) * slow
            finish = now + svc
            responses = [Response(r, cap.results, cap.stats, cap.backend,
                                  bid, n, now, finish, lane_packed=n > 1,
                                  machine=mname)
                         for r in requests]
            if self._tracing:
                for r in requests:
                    r.tl.mark("exec_start", now)
                    r.tl.mark("complete", finish)
            if self.metrics is not None and n > 1:
                self.metrics.inc("serve.lane_packed_requests", n, app=app)
        else:
            cap = self._reference_capture(app, machine.variant, payload)
            single = self._price(machine, app, cap, payload) * slow
            svc = single * n
            responses = [Response(r, cap.results, cap.stats, cap.backend,
                                  bid, n, now, now + single * (i + 1),
                                  lane_packed=False,
                                  fallback_reason=fallback_reason,
                                  machine=mname)
                         for i, r in enumerate(requests)]
            if self._tracing:
                # fallback executions run back-to-back, so each request's
                # exec window is its own slot in the serialized batch
                for i, r in enumerate(requests):
                    r.tl.mark("exec_start", now + single * i)
                    r.tl.mark("complete", now + single * (i + 1))
            finish = now + svc
            self.fallbacks.append(ServeFallback(app, fallback_reason, n))
            if self.metrics is not None:
                self.metrics.inc("serve.fallback", app=app)

        machine.busy_until = finish
        machine.busy_s += svc
        machine.batches += 1
        if self.metrics is not None:
            self.metrics.inc("serve.batches", app=app)
            self.metrics.observe("serve.batch_size", float(n), app=app)
            self.metrics.observe("serve.service_s", svc,
                                 machine=machine.name)
        bsp = None
        if self._root is not None:
            extra: Dict[str, Any] = {}
            if slow != 1.0:
                extra["slow_factor"] = slow
            bsp = self._root.child(
                f"b{bid}:{app}x{n}", "batch", now, svc,
                machine=machine.index, machine_name=machine.name,
                app=app, batch=n, batch_id=bid,
                lane_packed=fallback_reason is None and n > 1,
                backend=cap.backend, service_s=svc,
                fallback=fallback_reason, **extra)
            skey = (machine.name, app, machine.variant, payload.key,
                    cap.backend)
            sim = self._sims.get(skey)
            if sim is not None and fallback_reason is None:
                # graft the priced per-loop breakdown under the batch
                # span, pinned to the *serving* replica's track (the
                # memoized pricing carries its own machine indices,
                # which would land the loops on the wrong row)
                cursor = now
                for loop in sim.loops:
                    bsp.child(loop.name, "loop", cursor, loop.time_s,
                              machine=machine.index, op=loop.op_name,
                              iters=loop.iters, workers=loop.workers,
                              compute_s=loop.compute_s,
                              memory_s=loop.memory_s,
                              comm_s=loop.comm_s,
                              overhead_s=loop.overhead_s)
                    cursor += loop.time_s
        if self.faults is not None or self.res is not None:
            self._inflight[machine.index] = {
                "bid": bid, "requests": requests, "span": bsp,
                "finish": finish}
        self._push(finish, "complete", (machine, bid, responses))
