"""Multi-tenant serving layer: compile once, serve many (DESIGN.md §9).

Six cooperating pieces turn the compiled-program pipeline into a
request-serving system over the simulated machine models:

- **cache** — compiled programs keyed ``(app, DecisionLedger.digest())``
  so repeat requests skip the pipeline entirely;
- **batching** — an admission queue that coalesces pending invocations
  of the same cached program on the same payload into the lanes of one
  vectorized execution (max-batch / max-wait knobs), with recorded
  fallback to per-request reference execution;
- **scheduler** — a discrete-event server multiplexing requests across
  heterogeneous machine instances through a pluggable placement policy;
- **simulator** — seeded open/closed-loop arrival processes and the
  throughput / p50 / p95 / p99 report, fed through the ``obs`` metrics
  registry and span tracer (``repro.tools serve-sim`` is the CLI);
- **faults** — a typed, seeded chaos script (crash windows, slow
  replicas, kernel faults, cache invalidation) over simulated time;
- **resilience** — deadlines, retries with seeded backoff, hedging,
  per-machine circuit breakers and load shedding, with every refused
  request leaving as a typed ``Rejected`` (DESIGN.md §13).
"""

from .batching import (AdmissionQueue, Payload, Request, Response,
                       ServeFallback, make_payload, payload_digest)
from .cache import VARIANTS, CompiledEntry, ProgramCache
from .faults import FAULT_KINDS, FaultPlan, FaultSpec, derive_unit
from .resilience import (BreakerConfig, CircuitBreaker, Rejected,
                         ResilienceConfig, RetryPolicy)
from .scheduler import (POLICIES, FastestPlacement, LeastLoadedPlacement,
                        MachineInstance, ProgramServer, RoundRobinPlacement,
                        ServedApp, make_machines)
from .simulator import (ClosedLoop, OpenLoop, ServeReport, ServeSim,
                        quantile)

__all__ = [
    "AdmissionQueue", "Payload", "Request", "Response", "ServeFallback",
    "make_payload", "payload_digest",
    "VARIANTS", "CompiledEntry", "ProgramCache",
    "FAULT_KINDS", "FaultPlan", "FaultSpec", "derive_unit",
    "BreakerConfig", "CircuitBreaker", "Rejected", "ResilienceConfig",
    "RetryPolicy",
    "POLICIES", "FastestPlacement", "LeastLoadedPlacement",
    "MachineInstance", "ProgramServer", "RoundRobinPlacement", "ServedApp",
    "make_machines",
    "ClosedLoop", "OpenLoop", "ServeReport", "ServeSim", "quantile",
]
