"""Compiled-program cache: compile once, serve every later request.

The serving layer's first premise (ROADMAP open item 1) is that the
expensive part of a request is the *pipeline*, not the execution — so
the cache compiles each ``(app, variant)`` at most once and keys the
resulting entry by ``(app, DecisionLedger.digest())``. The digest is the
same stable fingerprint the regression observatory tracks: two compiles
that made identical decisions share an entry, and a request pinned to a
digest (``lookup``) can only ever be served by the exact plan it was
admitted against — a digest drift surfaces as a cache miss, never as a
silently different program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.ir import Program
from ..obs.provenance import DecisionLedger, ledger_scope
from ..pipeline import CompiledProgram, compile_program

#: variant name -> (compile target, extra compile_program kwargs); the
#: same three variants the benchmark bundles build
VARIANTS: Dict[str, Tuple[str, Dict[str, Any]]] = {
    "opt": ("distributed", {}),
    "plain": ("distributed", {"apply_nested_transforms": False}),
    "gpu": ("gpu", {}),
}


@dataclass
class CompiledEntry:
    """One cached compile and its identity."""

    app: str
    variant: str
    compiled: CompiledProgram
    #: DecisionLedger.digest() of this compile — the cache key's second
    #: half and the serving layer's provenance anchor
    digest: str
    #: host seconds the compile took (what a cache hit saves)
    compile_s: float
    hits: int = 0


class ProgramCache:
    """In-process cache of compiled programs, keyed by app × digest.

    ``factories`` maps app name to a zero-argument staged-``Program``
    factory (the same callables the benchmark bundles own). Compiles run
    under a *fresh* ledger scope so each entry's digest covers exactly
    its own pipeline decisions, even when an outer explain scope is
    active.
    """

    def __init__(self, factories: Dict[str, Callable[[], Program]],
                 metrics: Optional[Any] = None):
        self.factories = dict(factories)
        self.metrics = metrics
        self._entries: Dict[Tuple[str, str], CompiledEntry] = {}
        self._by_digest: Dict[Tuple[str, str], CompiledEntry] = {}
        self.hits = 0
        self.misses = 0

    def get(self, app: str, variant: str = "opt") -> CompiledEntry:
        key = (app, variant)
        entry = self._entries.get(key)
        if entry is not None:
            entry.hits += 1
            self.hits += 1
            if self.metrics is not None:
                self.metrics.inc("serve.cache.program.hits", app=app)
            return entry
        if app not in self.factories:
            raise KeyError(f"unknown app {app!r}; served apps: "
                           f"{sorted(self.factories)}")
        if variant not in VARIANTS:
            raise KeyError(f"unknown variant {variant!r}; expected one of "
                           f"{sorted(VARIANTS)}")
        target, kwargs = VARIANTS[variant]
        t0 = time.perf_counter()
        with ledger_scope(DecisionLedger()):
            compiled = compile_program(self.factories[app](), target,
                                       **kwargs)
        compile_s = time.perf_counter() - t0
        digest = compiled.provenance.digest() if compiled.provenance else ""
        entry = CompiledEntry(app, variant, compiled, digest, compile_s)
        self._entries[key] = entry
        self._by_digest[(app, digest)] = entry
        self.misses += 1
        if self.metrics is not None:
            self.metrics.inc("serve.cache.program.misses", app=app)
            self.metrics.observe("serve.cache.compile_s", compile_s, app=app)
        return entry

    def invalidate(self, app: Optional[str] = None) -> int:
        """Drop cached compiles for ``app`` (or every app when ``None``
        / ``"*"``) and return how many entries were evicted. The next
        ``get`` recompiles and counts a miss — this is the hook the
        fault plan's ``cache`` events use."""
        if app in (None, "*"):
            n = len(self._entries)
            self._entries.clear()
            self._by_digest.clear()
            return n
        victims = [k for k in self._entries if k[0] == app]
        for k in victims:
            del self._entries[k]
        for k in [k for k in self._by_digest if k[0] == app]:
            del self._by_digest[k]
        return len(victims)

    def lookup(self, app: str, digest: str) -> Optional[CompiledEntry]:
        """Digest-pinned lookup: only an identical compile satisfies it."""
        return self._by_digest.get((app, digest))

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}
