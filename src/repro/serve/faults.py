"""Deterministic fault injection for the serving layer.

A :class:`FaultPlan` is a typed, seeded chaos script over *simulated*
time: machine crash/recover windows, slow replicas (a service-time
multiplier), transient vectorized-kernel failures (a forced
``ServeFallback`` or a hard error the retry machinery must absorb), and
compile-cache invalidation. Every probabilistic draw derives from
``(seed, kind, target, attempt)`` through sha256 — no ``random`` module
state — so the same seed and plan reproduce byte-identical reports and
traces, which is the repo's standing determinism invariant.

An **empty plan is falsy** and every injection hook guards on
truthiness, so ``FaultPlan([])`` behaves bit-identically to passing no
plan at all — the serving mirror of the tracer's zero-cost-when-disabled
contract.

JSON schema (see ``examples/faults_outage.json``)::

    {"seed": 0, "faults": [
      {"kind": "crash",  "target": "numa[1]", "t0_ms": 2, "t1_ms": 12},
      {"kind": "slow",   "target": "numa[0]", "factor": 2.0,
       "t0_ms": 0, "t1_ms": 6},
      {"kind": "kernel", "target": "*", "mode": "error", "rate": 1.0,
       "t0_ms": 0, "t1_ms": 1},
      {"kind": "cache",  "target": "*", "t0_ms": 5}
    ]}

``target`` is a machine label (``"numa[1]"``), a machine model name
(``"numa"`` — every replica of that model), an app name for ``kernel``
/ ``cache`` faults, or ``"*"`` for all. Windows accept ``t0_s``/``t1_s``
or the ``*_ms`` variants; an omitted ``t1`` leaves the fault active for
the rest of the run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

FAULT_KINDS = ("crash", "slow", "kernel", "cache")
KERNEL_MODES = ("fallback", "error")


def derive_unit(seed: int, kind: str, target: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from the fault identity.

    This is the plan's *only* randomness source: sha256 over the
    ``(seed, kind, target, attempt)`` tuple, so a draw never depends on
    host state, dict order, or how many other faults fired before it.
    """
    h = hashlib.sha256(
        f"{seed}:{kind}:{target}:{attempt}".encode()).digest()
    return int.from_bytes(h[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``kind``:

    - ``crash``  — the target machine is down on ``[t0_s, t1_s)``; an
      in-flight batch at ``t0_s`` is cancelled and re-enqueued.
    - ``slow``   — service times on the target machine multiply by
      ``factor`` while the window is active.
    - ``kernel`` — vectorized executions of the target app inside the
      window fail with probability ``rate`` (seeded): ``mode="fallback"``
      forces the recorded reference-path :class:`ServeFallback`;
      ``mode="error"`` is a hard failure the retry policy must absorb.
    - ``cache``  — at ``t0_s`` the compile cache and the server's
      host-side memos for the target app are invalidated (recompiles
      surface as cache misses).
    """

    kind: str
    target: str
    t0_s: float = 0.0
    t1_s: float = math.inf
    factor: float = 1.0
    mode: str = "fallback"
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected "
                             f"one of {FAULT_KINDS}")
        if not self.target:
            raise ValueError("fault target must be non-empty")
        if self.t0_s < 0:
            raise ValueError(f"fault t0_s must be >= 0, got {self.t0_s}")
        if self.t1_s < self.t0_s:
            raise ValueError(f"fault window is inverted: t1_s={self.t1_s} "
                             f"< t0_s={self.t0_s}")
        if self.kind == "slow" and self.factor <= 0:
            raise ValueError(f"slow factor must be > 0, got {self.factor}")
        if self.kind == "kernel":
            if self.mode not in KERNEL_MODES:
                raise ValueError(f"unknown kernel fault mode {self.mode!r}; "
                                 f"expected one of {KERNEL_MODES}")
            if not 0.0 <= self.rate <= 1.0:
                raise ValueError(f"kernel fault rate must be in [0, 1], "
                                 f"got {self.rate}")

    def active(self, t: float) -> bool:
        return self.t0_s <= t < self.t1_s

    def matches(self, label: str, name: str) -> bool:
        """Does this fault target the machine ``name[index]`` / app?"""
        return self.target in ("*", label, name)

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind, "target": self.target,
                               "t0_s": self.t0_s}
        if math.isfinite(self.t1_s):
            doc["t1_s"] = self.t1_s
        if self.kind == "slow":
            doc["factor"] = self.factor
        if self.kind == "kernel":
            doc["mode"] = self.mode
            doc["rate"] = self.rate
        return doc


def _window(doc: Dict[str, Any], part: str) -> Tuple[float, bool]:
    if f"{part}_s" in doc and f"{part}_ms" in doc:
        raise ValueError(f"fault spec gives both {part}_s and {part}_ms")
    if f"{part}_ms" in doc:
        return float(doc[f"{part}_ms"]) * 1e-3, True
    if f"{part}_s" in doc:
        return float(doc[f"{part}_s"]), True
    return 0.0, False


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` — the run's chaos script.

    Falsy when it holds no specs, and every scheduler hook checks
    truthiness first, so an empty plan is indistinguishable from no
    plan (the zero-cost invariant the tests pin byte-for-byte).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- machine faults ---------------------------------------------------

    def crash_windows(self, label: str,
                      name: str) -> List[Tuple[float, float]]:
        """Sorted crash windows targeting the machine ``name[index]``."""
        return sorted((s.t0_s, s.t1_s) for s in self.specs
                      if s.kind == "crash" and s.matches(label, name))

    def slow_factor(self, label: str, name: str, t: float) -> float:
        """Product of the active slow multipliers on this machine."""
        factor = 1.0
        for s in self.specs:
            if s.kind == "slow" and s.matches(label, name) and s.active(t):
                factor *= s.factor
        return factor

    # -- kernel faults ----------------------------------------------------

    def kernel_fault(self, app: str, t: float,
                     attempt: int) -> Optional[FaultSpec]:
        """The kernel fault (if any) striking this execution attempt.

        ``attempt`` is the server's per-app execution counter; the draw
        depends only on ``(seed, "kernel", app, attempt)`` so injection
        is independent of machine choice and event interleaving.
        """
        for s in self.specs:
            if s.kind != "kernel" or not s.active(t):
                continue
            if s.target not in ("*", app):
                continue
            if derive_unit(self.seed, "kernel", app, attempt) < s.rate:
                return s
        return None

    # -- cache faults -----------------------------------------------------

    def cache_events(self) -> List[Tuple[float, str]]:
        """``(at_s, target_app)`` invalidation instants, sorted."""
        return sorted((s.t0_s, s.target) for s in self.specs
                      if s.kind == "cache")

    # -- bookkeeping ------------------------------------------------------

    def last_disruption_s(self) -> float:
        """When the scripted chaos ends (recovery-gate boundary): the
        latest finite window end, falling back to the latest start."""
        ends = [s.t1_s for s in self.specs if math.isfinite(s.t1_s)]
        ends += [s.t0_s for s in self.specs]
        return max(ends, default=0.0)

    def to_json(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "faults": [s.to_json() for s in self.specs]}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(doc) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        specs: List[FaultSpec] = []
        for i, f in enumerate(doc.get("faults", [])):
            if not isinstance(f, dict):
                raise ValueError(f"faults[{i}] must be an object")
            extra = set(f) - {"kind", "target", "t0_s", "t1_s", "t0_ms",
                              "t1_ms", "factor", "mode", "rate"}
            if extra:
                raise ValueError(f"faults[{i}] has unknown keys: "
                                 f"{sorted(extra)}")
            t0, _ = _window(f, "t0")
            t1, has_t1 = _window(f, "t1")
            specs.append(FaultSpec(
                kind=f.get("kind", ""), target=f.get("target", ""),
                t0_s=t0, t1_s=t1 if has_t1 else math.inf,
                factor=float(f.get("factor", 1.0)),
                mode=f.get("mode", "fallback"),
                rate=float(f.get("rate", 1.0))))
        return cls(tuple(specs), seed=int(doc.get("seed", 0)))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(json.load(fh))
