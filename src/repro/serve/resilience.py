"""Resilience policies for the serving layer.

Everything here is *policy state* the scheduler consults; none of it
runs host-side work. All randomness (retry jitter) derives from the
same sha256 unit-draw the fault plan uses, keyed by
``(seed, "retry", rid, attempt)``, so resilience decisions are as
deterministic as the chaos they respond to.

- :class:`RetryPolicy` — exponential backoff with seeded jitter and a
  **global** retry budget shared across the run (a storm of failures
  can't multiply load unboundedly).
- :class:`CircuitBreaker` — per-machine closed/open/half-open state
  over a sliding window of recent outcomes; placement skips machines
  whose breaker is open, and a half-open breaker admits exactly one
  probe batch before deciding.
- :class:`Rejected` — the typed terminal record for a request the
  server explicitly refused (shed, deadline, retries exhausted, or
  unservable at shutdown). Every submitted request ends as exactly one
  ``Response`` or one ``Rejected`` — the zero-lost-requests contract.
- :class:`ResilienceConfig` — the knob bundle the CLI builds; ``None``
  (the default everywhere) keeps the server byte-identical to the
  pre-resilience behavior.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from .faults import derive_unit

#: ``Rejected.reason`` values the scheduler emits
REJECT_SHED = "shed"
REJECT_DEADLINE = "deadline"
REJECT_RETRIES = "retries-exhausted"
REJECT_UNSERVED = "unserved-at-shutdown"


@dataclass(eq=False)
class Rejected:
    """A request the server refused — the typed counterpart of
    :class:`Response` for the unserved half of the traffic."""

    rid: int
    app: str
    reason: str
    #: simulated time of the rejection decision
    t_s: float
    arrival_s: float = 0.0
    client: int = -1
    #: how many execution attempts had been spent when it was refused
    attempts: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {"rid": self.rid, "app": self.app, "reason": self.reason,
                "t_s": self.t_s, "arrival_s": self.arrival_s,
                "attempts": self.attempts}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and a global budget.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means up
    to two retries. ``budget`` caps retries across the whole run — once
    spent, further failures reject immediately.
    """

    max_attempts: int = 3
    backoff_s: float = 0.001
    multiplier: float = 2.0
    #: +/- fraction of the backoff added as seeded jitter
    jitter: float = 0.5
    budget: int = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")

    def delay_s(self, seed: int, rid: int, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (1-based retry index)."""
        base = self.backoff_s * self.multiplier ** max(0, attempt - 1)
        if self.jitter == 0.0:
            return base
        u = derive_unit(seed, "retry", str(rid), attempt)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class BreakerConfig:
    """Sliding-window failure-rate breaker parameters."""

    #: outcomes remembered per machine
    window: int = 8
    #: failure rate that trips the breaker open
    threshold: float = 0.5
    #: outcomes required before the rate is trusted
    min_events: int = 4
    #: seconds the breaker stays open before probing (half-open)
    cooldown_s: float = 0.005

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Per-machine breaker: closed → open on failure rate, open →
    half-open after cooldown, half-open → closed/open on one probe."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = CLOSED
        self.outcomes: Deque[bool] = deque(maxlen=config.window)
        self.opened_at = 0.0
        self.trips = 0
        self._probing = False

    def allow(self, now: float) -> bool:
        """May a batch be placed on this machine right now? Pure —
        state transitions happen in ``on_dispatch``/``record``."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self.opened_at + self.config.cooldown_s - 1e-15:
                return True  # cooled down: next dispatch is the probe
            return False
        return not self._probing  # half-open: one probe at a time

    def on_dispatch(self, now: float) -> None:
        """A batch was just placed here; open breakers that cooled down
        move to half-open and mark the probe in flight."""
        if self.state == OPEN:
            self.state = HALF_OPEN
            self._probing = True
        elif self.state == HALF_OPEN:
            self._probing = True

    def record(self, now: float, ok: bool) -> None:
        """Outcome of an execution (or crash) on this machine."""
        if self.state == HALF_OPEN:
            self._probing = False
            if ok:
                self.state = CLOSED
                self.outcomes.clear()
            else:
                self.state = OPEN
                self.opened_at = now
                self.trips += 1
            return
        self.outcomes.append(ok)
        if self.state == CLOSED:
            n = len(self.outcomes)
            if n >= self.config.min_events:
                failures = sum(1 for o in self.outcomes if not o)
                if failures / n >= self.config.threshold:
                    self.state = OPEN
                    self.opened_at = now
                    self.trips += 1
                    self.outcomes.clear()


@dataclass(frozen=True)
class ResilienceConfig:
    """The serving layer's resilience knobs, all off by default.

    A ``None`` config (the server default) keeps every hot path on its
    pre-resilience behavior — the same zero-cost contract the tracer
    and the fault plan honor.
    """

    #: per-request deadline from arrival; requests whose deadline has
    #: passed at batch-seal time are rejected, never sealed
    deadline_s: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    #: duplicate an in-flight request after this delay; first
    #: completion wins, the loser is dropped (counted, never surfaced)
    hedge_delay_s: Optional[float] = None
    #: reject new arrivals while the admission queue holds this many
    shed_depth: Optional[int] = None
    breaker: Optional[BreakerConfig] = None
    #: consecutive kernel faults before an app degrades to the
    #: reference-interpreter path for the rest of the run
    degrade_after: int = 3

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge_delay_s must be > 0")
        if self.shed_depth is not None and self.shed_depth < 1:
            raise ValueError("shed_depth must be >= 1")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
