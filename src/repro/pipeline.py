"""The DMLL compiler driver.

Phase order (DESIGN.md §6)::

    staging -> CSE -> pipeline fusion -> length rewrites -> DCE
            -> code motion -> horizontal fusion -> DCE
            -> [distributed CPU] partitioning analysis (Alg. 1)
                 -> stencil-triggered Fig. 3 rewrites -> re-fuse
            -> [GPU] Row-to-Column Reduce (always, §3.2)

``compile_program`` returns a ``CompiledProgram`` bundling the optimized
IR with the partitioning/stencil report that the runtime executor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .analysis.partitioning import (DataLayout, PartitionReport,
                                    partition_and_transform)
from .analysis.stencil import LoopStencils, analyze_program
from .core.ir import Program
from .optim.code_motion import code_motion
from .optim.cse import cse
from .optim.dce import dce
from .optim.fusion import fuse_horizontal, fuse_vertical
from .optim.length_rewrite import rewrite_lengths
from .optim.soa import aos_to_soa, soa_input_values
from .transforms import GPU_RULES, apply_rules_everywhere


def optimize(prog: Program, horizontal: bool = True,
             groupby_reduce: bool = True,
             applied_log: Optional[list] = None) -> Program:
    """The target-independent optimization pipeline.

    Horizontal fusion is deferrable (``horizontal=False``) because the
    Fig. 3 rules match single-generator loops: transforms run on the
    vertically-fused program first, and the resulting bucket-reduces are
    then merged into one traversal — the Fig. 5 order of events.

    GroupBy-Reduce runs here (not only on stencil triggers) because it is
    always profitable: Table 2 applies it even for sequential CPU code.
    """
    from .transforms import GroupByReduce
    prog = cse(prog)
    prog = fuse_vertical(prog)
    prog = rewrite_lengths(prog)
    prog = fuse_vertical(prog)
    prog = dce(prog)
    prog = code_motion(prog)
    prog = cse(prog)
    prog = fuse_vertical(prog)
    if groupby_reduce:
        prog = apply_rules_everywhere(prog, (GroupByReduce(),),
                                      log=applied_log)
        prog = fuse_vertical(prog)
        prog = dce(prog)
    if horizontal:
        prog = fuse_horizontal(prog)
    prog = dce(prog)
    return prog


@dataclass
class CompiledProgram:
    """An optimized program plus everything the runtime needs to place it."""

    program: Program
    report: PartitionReport
    stencils: Dict[int, LoopStencils] = field(default_factory=dict)
    target: str = "cpu"

    @property
    def warnings(self):
        return self.report.warnings

    def prepare_inputs(self, inputs: Dict[str, object]) -> Dict[str, object]:
        """Split AoS table inputs into the columns an SoA-transformed
        program expects."""
        return soa_input_values(self.program, inputs)

    def run(self, inputs: Dict[str, object], observer=None):
        """Execute on the reference interpreter (results, stats)."""
        from .core.interp import run_program
        return run_program(self.program, self.prepare_inputs(inputs),
                           observer=observer)


def compile_program(prog: Program, target: str = "cpu",
                    apply_nested_transforms: bool = True) -> CompiledProgram:
    """Compile for ``target`` in {'cpu', 'distributed', 'gpu'}.

    ``apply_nested_transforms=False`` disables the Fig. 3 rewrites (used by
    the ablation benchmarks that measure their impact)."""
    nt = apply_nested_transforms
    applied: list = []
    # SoA runs twice: once on raw inputs, and once after fusion has inlined
    # struct elements that previously escaped through filter/groupBy chains
    prog = aos_to_soa(prog, log=applied)
    prog = optimize(prog, horizontal=False, groupby_reduce=nt,
                    applied_log=applied)
    prog = aos_to_soa(prog, log=applied)
    prog = optimize(prog, horizontal=False, groupby_reduce=nt)

    if target in ("distributed", "cpu") and nt:
        prog, rep = partition_and_transform(prog)
        applied.extend(rep.applied_rules)
        prog = optimize(prog, horizontal=False)

    if target == "gpu" and nt:
        # distribute across the cluster first (C2R direction)...
        prog, rep = partition_and_transform(prog)
        applied.extend(rep.applied_rules)
        # ...then invert for the device kernel (§3.2: always R2C on GPUs).
        # Code motion first (it exposes the loop-invariant prefix that
        # R2C's fission step materializes, e.g. LogReg's per-sample error),
        # but *no* fusion yet: the bucket keys must stay plain reads of
        # materialized values (the k-means assignment vector) so the
        # transposed per-column reductions share them between kernels.
        prog = dce(cse(code_motion(prog)))
        prog = apply_rules_everywhere(prog, GPU_RULES, log=applied)
        prog = optimize(prog, horizontal=False)

    # horizontal fusion merges the transformed traversals (Fig. 5)
    prog = optimize(prog, horizontal=True, groupby_reduce=nt)

    # final analysis-only pass for the report (no rewriting)
    prog, report = partition_and_transform(prog, rules=())
    report.applied_rules = applied + report.applied_rules
    stencils = analyze_program(prog)
    return CompiledProgram(prog, report, stencils, target)
