"""The DMLL compiler driver.

Phase order (DESIGN.md §6)::

    staging -> CSE -> pipeline fusion -> length rewrites -> DCE
            -> code motion -> horizontal fusion -> DCE
            -> [distributed CPU] partitioning analysis (Alg. 1)
                 -> stencil-triggered Fig. 3 rewrites -> re-fuse
            -> [GPU] Row-to-Column Reduce (always, §3.2)

Every phase is a named ``Pass`` executed through a ``PassManager``
(``repro.passes``, DESIGN.md §6c): the manager verifies the IR after each
pass when asked, records a ``PassTrace`` per pass, and collects every
rewrite-rule application into one shared trace — ``report.applied_rules``
is derived from that trace, so no phase can silently drop rule
applications the way the old per-call ``applied_log`` threading did.

``compile_program`` returns a ``CompiledProgram`` bundling the optimized
IR with the partitioning/stencil report that the runtime executor
consumes, plus the pass trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .analysis.partitioning import (DataLayout, PartitionReport,
                                    partition_and_transform)
from .analysis.stencil import LoopStencils, analyze_program
from .core import types as T
from .core.ir import Program
from .core.multiloop import GenKind, MultiLoop
from .obs.diagnostics import DiagCategory
from .obs.provenance import DecisionLedger, active, ledger_scope
from .optim.soa import soa_input_values
from .passes import (Pass, PassManager, PassTrace, partition_pass, rule_pass,
                     standard_passes)
from .transforms import GPU_RULES, GroupByReduce

#: default for the ``verify`` knob of ``optimize``/``compile_program``.
#: Off in production (verification costs a full IR walk per pass); the
#: test suite turns it on globally via ``tests/conftest.py`` so every
#: compile in CI checks every pass boundary.
DEFAULT_VERIFY = False

_STD = standard_passes()


def optimize_passes(horizontal: bool = True,
                    groupby_reduce: bool = True,
                    fuse: bool = True) -> List[Pass]:
    """The target-independent optimization phase as a named pass list.

    Horizontal fusion is deferrable (``horizontal=False``) because the
    Fig. 3 rules match single-generator loops: transforms run on the
    vertically-fused program first, and the resulting bucket-reduces are
    then merged into one traversal — the Fig. 5 order of events.

    ``fuse=False`` drops both fusion passes entirely (the
    ``repro explain --explain-diff no-fusion`` ablation).

    GroupBy-Reduce runs here (not only on stencil triggers) because it is
    always profitable: Table 2 applies it even for sequential CPU code.
    """
    fv = [_STD["fuse-vertical"]] if fuse else []
    ps = [_STD["cse"], *fv, _STD["rewrite-lengths"],
          *fv, _STD["dce"], _STD["code-motion"],
          _STD["cse"], *fv]
    if groupby_reduce:
        ps += [rule_pass("groupby-reduce", (GroupByReduce(),)),
               *fv, _STD["dce"]]
    if horizontal and fuse:
        ps.append(_STD["fuse-horizontal"])
    ps.append(_STD["dce"])
    return ps


def optimize(prog: Program, horizontal: bool = True,
             groupby_reduce: bool = True,
             applied_log: Optional[list] = None,
             pm: Optional[PassManager] = None,
             phase: str = "optimize",
             fuse: bool = True) -> Program:
    """Run the target-independent optimization pipeline.

    When no ``pm`` is given a fresh PassManager is created (honoring
    ``DEFAULT_VERIFY``); passing one threads this phase into a larger
    shared trace. ``applied_log`` is kept for backward compatibility and
    receives the rule applications of *this call* — but unlike the old
    implementation the applications are always in the trace too.
    """
    if pm is None:
        pm = PassManager(verify=DEFAULT_VERIFY)
    start = len(pm.traces)
    prog = pm.run(prog, optimize_passes(horizontal, groupby_reduce, fuse),
                  phase)
    if applied_log is not None:
        applied_log.extend(r for t in pm.traces[start:] for r in t.rules)
    return prog


@dataclass
class CompiledProgram:
    """An optimized program plus everything the runtime needs to place it."""

    program: Program
    report: PartitionReport
    stencils: Dict[int, LoopStencils] = field(default_factory=dict)
    target: str = "cpu"
    #: per-pass trace of the compilation (one entry per executed pass)
    trace: List[PassTrace] = field(default_factory=list)
    #: decision-provenance ledger of the compilation (DESIGN.md §8);
    #: rendered by ``repro explain``
    provenance: Optional[DecisionLedger] = None

    @property
    def warnings(self):
        return self.report.warnings

    @property
    def diagnostics(self):
        """Typed, loop-attributed events (repro.diagnostics) behind the
        ``warnings`` string view."""
        return self.report.diagnostics

    def prepare_inputs(self, inputs: Dict[str, object]) -> Dict[str, object]:
        """Split AoS table inputs into the columns an SoA-transformed
        program expects."""
        return soa_input_values(self.program, inputs)

    def run(self, inputs: Dict[str, object], observer=None, backend=None):
        """Execute on the selected backend, returning (results, stats).

        ``backend`` is resolved by ``repro.backend.resolve_backend``:
        explicit argument > ``REPRO_BACKEND`` env var > ``"reference"``.
        The vectorized backend produces identical results and stats; any
        per-loop fallback it takes is recorded on the interpreter, not
        surfaced here (use ``capture_run`` for the full record)."""
        from .backend import resolve_backend
        prepared = self.prepare_inputs(inputs)
        if resolve_backend(backend) == "numpy":
            from .backend import run_program_numpy
            results, stats, _ = run_program_numpy(self.program, prepared,
                                                  observer=observer)
            return results, stats
        from .core.interp import run_program
        return run_program(self.program, prepared, observer=observer)


def compile_program(prog: Program, target: str = "cpu",
                    apply_nested_transforms: bool = True,
                    verify: Optional[bool] = None,
                    differential_inputs: Optional[Dict[str, object]] = None,
                    fuse: bool = True) -> CompiledProgram:
    """Compile for ``target`` in {'cpu', 'distributed', 'gpu'}.

    ``apply_nested_transforms=False`` disables the Fig. 3 rewrites (used by
    the ablation benchmarks that measure their impact); ``fuse=False``
    disables vertical and horizontal fusion (the ``--explain-diff``
    ablation of ``repro explain``).

    ``verify`` re-runs the structural IR verifier after every pass
    (default: ``DEFAULT_VERIFY``). ``differential_inputs``, when given,
    additionally re-interprets the program on those inputs after every
    pass and raises ``PassSemanticsError`` naming the first pass whose
    output diverges from the staged program's results.

    Every compile records its decision provenance: if a ledger scope is
    already active (``repro explain`` shares one across compile + backend
    planning) decisions land there, otherwise a fresh ledger is created.
    Either way it is attached as ``CompiledProgram.provenance``.
    """
    nt = apply_nested_transforms
    pm = PassManager(verify=DEFAULT_VERIFY if verify is None else verify,
                     differential_inputs=differential_inputs)
    # NB: an empty ledger is falsy (len == 0), so test against None —
    # `active() or ...` would discard the explain CLI's shared ledger
    led = active()
    if led is None:
        led = DecisionLedger()
    with ledger_scope(led):
        # SoA runs twice: once on raw inputs, and once after fusion has
        # inlined struct elements that previously escaped through
        # filter/groupBy chains
        prog = pm.run_pass(prog, _STD["aos-to-soa"], phase="soa")
        prog = optimize(prog, horizontal=False, groupby_reduce=nt,
                        pm=pm, phase="opt-1", fuse=fuse)
        prog = pm.run_pass(prog, _STD["aos-to-soa"], phase="soa")
        prog = optimize(prog, horizontal=False, groupby_reduce=nt,
                        pm=pm, phase="opt-2", fuse=fuse)

        if target in ("distributed", "cpu") and nt:
            prog = pm.run_pass(prog, partition_pass("partition"),
                               phase="partition")
            prog = optimize(prog, horizontal=False, pm=pm, phase="re-fuse",
                            fuse=fuse)

        if target == "gpu" and nt:
            # distribute across the cluster first (C2R direction)...
            prog = pm.run_pass(prog, partition_pass("partition"),
                               phase="partition")
            # ...then invert for the device kernel (§3.2: always R2C on
            # GPUs). Code motion first (it exposes the loop-invariant
            # prefix that R2C's fission step materializes, e.g. LogReg's
            # per-sample error), but *no* fusion yet: the bucket keys must
            # stay plain reads of materialized values (the k-means
            # assignment vector) so the transposed per-column reductions
            # share them between kernels.
            prog = pm.run(prog, [_STD["code-motion"], _STD["cse"],
                                 _STD["dce"],
                                 rule_pass("gpu-rules", GPU_RULES)],
                          phase="gpu")
            prog = optimize(prog, horizontal=False, pm=pm, phase="re-fuse",
                            fuse=fuse)

        # horizontal fusion merges the transformed traversals (Fig. 5)
        prog = optimize(prog, horizontal=True, groupby_reduce=nt,
                        pm=pm, phase="finalize", fuse=fuse)

        # final analysis-only pass for the report (no rewriting)
        reports: List[PartitionReport] = []
        prog = pm.run_pass(prog, partition_pass("partition-report", rules=(),
                                                reports=reports),
                           phase="report")
        report = reports[0]
        report.applied_rules = pm.applied_rules()
        if target == "gpu":
            _diagnose_gpu_vector_reduces(prog, report)
        stencils = analyze_program(prog)
    return CompiledProgram(prog, report, stencils, target, pm.traces, led)


def _diagnose_gpu_vector_reduces(prog: Program,
                                 report: PartitionReport) -> None:
    """Flag vector-typed reductions that survived the GPU pipeline — the
    CUDA backend emits them as slow global-memory reductions (§6:
    "reducing non-scalar types on a GPU is typically very inefficient").
    These used to exist only as ``// WARNING`` comments inside the
    generated kernel source; as diagnostics they carry the loop symbol
    and are visible without generating code."""
    for d in prog.body.stmts:
        if not isinstance(d.op, MultiLoop):
            continue
        for s, g in zip(d.syms, d.op.gens):
            if (g.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE)
                    and isinstance(g.value.result_type,
                                   (T.Coll, T.KeyedColl))):
                report.diagnose(
                    DiagCategory.CUDA_VECTOR_REDUCE,
                    f"loop {d.syms[0]!r}: vector-typed reduction for "
                    f"{s!r}: temporaries exceed shared memory; expect "
                    f"poor performance (apply Row-to-Column Reduce, §3.2)",
                    loop=d.syms[0].name, sym=str(s), kind=g.kind.name)
