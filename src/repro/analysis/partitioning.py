"""Partitioning analysis — Algorithm 1 of the paper (§4.1) plus the
stencil-triggered rewriting of §4.2.

A forward dataflow over the top-level statements decides, for every
collection, whether it is ``LOCAL`` (one memory region) or ``PARTITIONED``
(spread across regions), starting from user annotations on data sources
and following "move the computation to the data". When a parallel pattern
reads partitioned data through an ``Unknown`` stencil, the Fig. 3 rules
are tried one at a time; if any rewrite removes the Unknown access, the
pattern is replaced, otherwise the analysis falls back to runtime data
movement and records a warning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import types as T
from ..core.ir import Block, Def, Program, Sym, def_index, op_used_syms
from ..core.multiloop import GenKind, MultiLoop
from ..core.ops import ArrayLength, BucketKeys, InputSource
from ..obs.diagnostics import DiagCategory, Diagnostic, Severity
from ..obs.provenance import APPLIED, REJECTED, DecisionKind, emit
from ..transforms import DISTRIBUTION_RULES, Rule
from .stencil import LoopStencils, Stencil, analyze_loop


class DataLayout(enum.Enum):
    LOCAL = "Local"
    PARTITIONED = "Partitioned"


#: non-parallel ops that may safely consume partitioned collections
#: (§4.3: e.g. reading a size field never dereferences the data)
_WHITELIST = (ArrayLength, BucketKeys, InputSource)


@dataclass
class LoopDistInfo:
    """How one top-level loop executes on distributed hardware."""

    loop_sym: Sym
    distributed: bool
    driving: Optional[Sym]              # Interval-aligned partitioned input
    stencils: Dict[Sym, Stencil]
    broadcasts: List[Sym] = field(default_factory=list)   # replicate fully
    remote_random: List[Sym] = field(default_factory=list)  # dynamic fetches
    co_partitioned: List[Sym] = field(default_factory=list)


@dataclass
class PartitionReport:
    layouts: Dict[Sym, DataLayout] = field(default_factory=dict)
    loops: Dict[int, LoopDistInfo] = field(default_factory=dict)
    #: typed, loop-attributed events (repro.diagnostics); the historical
    #: ``warnings`` string list is derived from these
    diagnostics: List[Diagnostic] = field(default_factory=list)
    applied_rules: List[str] = field(default_factory=list)

    @property
    def warnings(self) -> List[str]:
        """Backward-compatible view: the messages of warning-severity
        diagnostics, verbatim."""
        return [d.message for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def diagnose(self, category: DiagCategory, message: str,
                 loop: Optional[str] = None,
                 severity=Severity.WARNING, **data) -> None:
        sev = Severity.of(severity)
        self.diagnostics.append(
            Diagnostic(category, message, loop=loop, severity=sev,
                       data=data))
        emit(DecisionKind.DIAGNOSTIC, loop or category.value, sev.value,
             message, category=category.value, **data)

    def layout(self, s: Sym) -> DataLayout:
        return self.layouts.get(s, DataLayout.LOCAL)

    def partitioned_syms(self) -> List[Sym]:
        return [s for s, l in self.layouts.items() if l is DataLayout.PARTITIONED]


def _const_index_read(d: Def) -> bool:
    """``coll(const)`` at top level — the runtime broadcasts the single
    element, like a Const stencil inside a loop (§4.2)."""
    from ..core.ir import Const
    from ..core.ops import ArrayApply
    return isinstance(d.op, ArrayApply) and isinstance(d.op.idx, Const)


def _collection_inputs(d: Def) -> List[Sym]:
    seen: List[Sym] = []
    for s in op_used_syms(d.op):
        if T.is_collection(s.tpe) and s not in seen:
            seen.append(s)
    return seen


def partition_and_transform(
        prog: Program,
        rules: Sequence[Rule] = DISTRIBUTION_RULES,
        max_rewrites: int = 20) -> Tuple[Program, PartitionReport]:
    """Run Algorithm 1, rewriting Unknown-stencil patterns along the way."""
    report = PartitionReport()
    body = prog.body

    # user annotations on data sources
    for d in body.stmts:
        if isinstance(d.op, InputSource):
            layout = (DataLayout.PARTITIONED
                      if d.op.partitioned else DataLayout.LOCAL)
            report.layouts[d.syms[0]] = layout
            emit(DecisionKind.PARTITION, repr(d.syms[0]), layout.value,
                 f"user annotation on data source {d.op.label!r}",
                 source=d.op.label)

    pos = 0
    rewrites = 0
    while pos < len(body.stmts):
        d = body.stmts[pos]
        if not isinstance(d.op, MultiLoop):
            _visit_sequential(d, report)
            pos += 1
            continue

        part_inputs = [s for s in _collection_inputs(d)
                       if report.layout(s) is DataLayout.PARTITIONED]
        if not part_inputs:
            for s in d.syms:
                report.layouts[s] = DataLayout.LOCAL
            emit(DecisionKind.LOOP_PLACEMENT, repr(d.syms[0]), "local",
                 "loop consumes no partitioned collection; runs at a "
                 "single location")
            pos += 1
            continue

        scope_idx = def_index(body)
        ls = analyze_loop(d, scope_idx)
        if not _loop_access_ok(ls, part_inputs) and rewrites < max_rewrites:
            new_body = _try_rules(body, pos, rules, report)
            if new_body is not None:
                body = new_body
                rewrites += 1
                continue  # re-analyze from the same position
            bad = [s for s in part_inputs
                   if ls.reads.get(s, Stencil.ALL) in (Stencil.UNKNOWN,
                                                       Stencil.ALL)]
            report.diagnose(
                DiagCategory.UNKNOWN_STENCIL_FALLBACK,
                f"loop {d.syms[0]!r}: partitioned {', '.join(map(repr, bad))} "
                f"accessed with stencil "
                f"{[ls.reads.get(s, Stencil.ALL).value for s in bad]}; "
                f"falling back to runtime data movement / replication",
                loop=d.syms[0].name,
                collections=[str(s) for s in bad],
                stencils=[ls.reads.get(s, Stencil.ALL).value for s in bad])

        _record_loop(d, ls, part_inputs, report)
        pos += 1

    return Program(prog.inputs, body), report


def _loop_access_ok(ls: LoopStencils, part_inputs: Sequence[Sym]) -> bool:
    """A loop's access pattern is distribution-friendly when no partitioned
    input is touched data-dependently (Unknown) and the loop either ranges
    over a partitioned input (Interval driver) or broadcasts nothing big
    (no partitioned All)."""
    stencils = [ls.reads.get(s, Stencil.ALL) for s in part_inputs]
    if Stencil.UNKNOWN in stencils:
        return False
    if Stencil.INTERVAL in stencils:
        return True
    return Stencil.ALL not in stencils


def _try_rules(body: Block, pos: int, rules: Sequence[Rule],
               report: PartitionReport) -> Optional[Block]:
    """§4.2: try a single rule at a time; accept the first rewrite whose
    new statements all have distribution-friendly access patterns."""
    from ..transforms.common import replace_stmt
    site = repr(body.stmts[pos].syms[0])
    for rule in rules:
        replacement = rule.apply_to(body, pos)
        if replacement is None:
            continue
        candidate = replace_stmt(body, pos, replacement)
        idx = def_index(candidate)
        improved = True
        for nd in replacement:
            if isinstance(nd.op, MultiLoop):
                nls = analyze_loop(nd, idx)
                part = [s for s in nls.reads
                        if report.layout(s) is DataLayout.PARTITIONED]
                if not _loop_access_ok(nls, part):
                    improved = False
                    break
        if not improved:
            emit(DecisionKind.TRANSFORM, site, REJECTED,
                 f"rule {rule.name} matched but its rewrite still "
                 f"accesses partitioned data through an Unknown/All "
                 f"stencil; rewrite discarded", rule=rule.name)
            continue
        report.applied_rules.append(rule.name)
        emit(DecisionKind.TRANSFORM, site, APPLIED,
             f"rule {rule.name} removed the distribution-blocking access "
             f"pattern (stencil-triggered, Alg. 1)", rule=rule.name,
             trigger="unknown-stencil")
        return candidate
    return None


def _record_loop(d: Def, ls: LoopStencils, part_inputs: List[Sym],
                 report: PartitionReport) -> None:
    stencils = {s: ls.reads.get(s, Stencil.ALL) for s in part_inputs}
    interval = [s for s in part_inputs if stencils[s] is Stencil.INTERVAL]
    unknown = [s for s in part_inputs if stencils[s] is Stencil.UNKNOWN]
    broadcast = [s for s in part_inputs
                 if stencils[s] in (Stencil.ALL, Stencil.CONST)]
    distributed = bool(interval) or bool(unknown)
    driving = interval[0] if interval else (unknown[0] if unknown else None)
    info = LoopDistInfo(
        loop_sym=d.syms[0], distributed=distributed, driving=driving,
        stencils=stencils, broadcasts=broadcast, remote_random=unknown,
        co_partitioned=interval if len(interval) > 1 else [])
    report.loops[d.syms[0].id] = info

    if distributed:
        why = (f"ranges Interval-aligned over partitioned {driving!r}"
               if interval else
               f"partitioned {driving!r} fetched remotely (Unknown stencil)")
    else:
        why = ("partitioned inputs are only broadcast "
               "(All/Const stencils); no interval driver")
    emit(DecisionKind.LOOP_PLACEMENT, repr(d.syms[0]),
         "distributed" if distributed else "local", why,
         driving=repr(driving) if driving else None,
         broadcasts=[repr(s) for s in broadcast],
         remote_random=[repr(s) for s in unknown])

    for s, g in zip(d.syms, d.op.gens):
        if distributed and g.kind in (GenKind.COLLECT, GenKind.BUCKET_COLLECT):
            report.layouts[s] = DataLayout.PARTITIONED
            emit(DecisionKind.PARTITION, repr(s), DataLayout.PARTITIONED.value,
                 f"{g.kind.value} output of distributed loop "
                 f"{d.syms[0]!r} stays partitioned with its producer",
                 loop=repr(d.syms[0]))
        else:
            report.layouts[s] = DataLayout.LOCAL
            emit(DecisionKind.PARTITION, repr(s), DataLayout.LOCAL.value,
                 ("reduction result is materialized locally"
                  if g.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE)
                  else f"output of non-distributed loop {d.syms[0]!r}"),
                 loop=repr(d.syms[0]))


def _visit_sequential(d: Def, report: PartitionReport) -> None:
    if isinstance(d.op, InputSource):
        return  # layout comes from the user's annotation
    part = [s for s in _collection_inputs(d)
            if report.layout(s) is DataLayout.PARTITIONED]
    if _const_index_read(d):
        part = []  # a Const-stencil element read: broadcast one element
    if part and not isinstance(d.op, _WHITELIST):
        report.diagnose(
            DiagCategory.SEQUENTIAL_PARTITIONED,
            f"sequential op {d.op.op_name()} consumes partitioned "
            f"{', '.join(map(repr, part))}; it must run at a single location",
            op=d.op.op_name(), collections=[str(s) for s in part])
    for s in d.syms:
        report.layouts[s] = DataLayout.LOCAL
