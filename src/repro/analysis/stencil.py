"""Read stencil analysis (§4.2).

For every multiloop and every collection it consumes, statically classify
the range of the collection each iteration may access:

- ``INTERVAL`` — iteration ``i`` reads element ``i`` (one dimension). The
  runtime partitions on interval boundaries; all accesses stay local.
- ``CONST``    — a loop-invariant index; the element is broadcast.
- ``ALL``      — the whole collection is consumed per iteration (e.g. a
  nested loop over its full range); the collection is broadcast.
- ``UNKNOWN``  — a data-dependent index; triggers the Fig. 3 rewrites, and
  failing those, runtime data movement with a warning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core import types as T
from ..core.ir import Block, Const, Def, Exp, Program, Sym, def_index
from ..core.multiloop import MultiLoop
from ..core.ops import ArrayApply, ArrayLength, BucketLookup
from ..obs.provenance import DecisionKind, emit


class Stencil(enum.Enum):
    INTERVAL = "Interval"
    CONST = "Const"
    ALL = "All"
    UNKNOWN = "Unknown"


def join_stencil(a: Stencil, b: Stencil) -> Stencil:
    if a == b:
        return a
    if Stencil.UNKNOWN in (a, b):
        return Stencil.UNKNOWN
    if Stencil.ALL in (a, b):
        return Stencil.ALL
    # Interval + Const: conservatively broadcast the whole collection
    return Stencil.ALL


@dataclass
class LoopStencils:
    """Stencils of one top-level loop, keyed by consumed collection sym."""

    loop_sym: Sym
    reads: Dict[Sym, Stencil] = field(default_factory=dict)
    #: why each collection got its stencil — the passed affine test for
    #: Interval/Const/All, the failed one for Unknown (provenance, §8)
    reasons: Dict[Sym, str] = field(default_factory=dict)

    def add(self, coll: Sym, s: Stencil, reason: str = "") -> None:
        cur = self.reads.get(coll)
        joined = s if cur is None else join_stencil(cur, s)
        if cur is None:
            self.reasons[coll] = reason
        elif joined is not cur:
            # the new access degraded the classification; explain the join
            old = self.reasons.get(coll, cur.value)
            self.reasons[coll] = (reason if joined is s
                                  else f"conflicting accesses: {old}; {reason}")
        self.reads[coll] = joined

    def has_unknown(self) -> bool:
        return Stencil.UNKNOWN in self.reads.values()


class _IndexClass(enum.Enum):
    LOOP_INDEX = 1      # the distributed loop's own index
    INVARIANT = 2       # constant w.r.t. the loop
    INNER_FULL = 3      # an inner loop's index spanning a full collection
    OTHER = 4


def analyze_loop(d: Def, scope_index: Dict[Sym, Def]) -> LoopStencils:
    """Compute read stencils of one top-level multiloop."""
    assert isinstance(d.op, MultiLoop)
    out = LoopStencils(d.syms[0])
    loop = d.op
    for g in loop.gens:
        for b in g.blocks():
            if b is g.reducer:
                # reducer args are loop outputs, not input collections;
                # reads of free collections inside are invariant indices
                _walk(b, None, {}, out, scope_index, set())
            else:
                _walk(b, b.params[0], {}, out, scope_index, set())
    for coll, s in out.reads.items():
        emit(DecisionKind.STENCIL, repr(d.syms[0]), s.value,
             f"{coll!r}: {out.reasons.get(coll) or s.value}",
             collection=repr(coll))
    return out


def _walk(block: Block, loop_index: Optional[Sym],
          inner_loops: Dict[Sym, Exp],  # nested loop param -> size exp
          out: LoopStencils, scope_index: Dict[Sym, Def],
          local_syms: Set[Sym]) -> None:
    local_syms = set(local_syms) | set(block.params)
    scope_index = dict(scope_index)
    for d in block.stmts:
        op = d.op
        if isinstance(op, ArrayApply):
            arr = op.arr
            if isinstance(arr, Sym) and arr not in local_syms:
                s, why = _classify(op.idx, arr, loop_index, inner_loops,
                                   local_syms, scope_index)
                out.add(arr, s, why)
        elif isinstance(op, BucketLookup):
            coll = op.coll
            if isinstance(coll, Sym) and coll not in local_syms:
                # keyed lookup: data-dependent unless the key is invariant
                if _is_invariant(op.key, local_syms):
                    out.add(coll, Stencil.CONST, "loop-invariant bucket key")
                else:
                    out.add(coll, Stencil.UNKNOWN,
                            "data-dependent bucket key")
        if isinstance(op, MultiLoop):
            for g in op.gens:
                for b in g.blocks():
                    nested = dict(inner_loops)
                    if b is not g.reducer and b.params:
                        nested[b.params[0]] = op.size
                    _walk(b, loop_index, nested, out, scope_index, local_syms)
        else:
            for b in op.blocks():
                _walk(b, loop_index, inner_loops, out, scope_index, local_syms)
        # defs seen so far extend the size-resolution environment
        for s in d.syms:
            scope_index[s] = d
        local_syms.update(d.syms)


def _classify(idx: Exp, arr: Sym, loop_index: Optional[Sym],
              inner_loops: Dict[Sym, Exp], local_syms: Set[Sym],
              scope_index: Dict[Sym, Def]) -> Tuple[Stencil, str]:
    """Classify one indexed access and say which affine test decided it."""
    if isinstance(idx, Const):
        return Stencil.CONST, "literal index"
    if isinstance(idx, Sym):
        if loop_index is not None and idx == loop_index:
            return Stencil.INTERVAL, "index is the loop index (identity map)"
        if idx in inner_loops:
            # an inner loop's index: covers the whole collection when the
            # inner loop ranges over len(arr)
            size = inner_loops[idx]
            if _is_length_of(size, arr, scope_index):
                return Stencil.ALL, "inner loop ranges over len(collection)"
            return (Stencil.UNKNOWN,
                    "inner-loop index whose range is not len(collection); "
                    "cannot bound the accessed region")
        if idx not in local_syms:
            return Stencil.CONST, "loop-invariant index"
    return (Stencil.UNKNOWN,
            "data-dependent index expression (no affine test matched)")


def _is_invariant(e: Exp, local_syms: Set[Sym]) -> bool:
    if isinstance(e, Const):
        return True
    return isinstance(e, Sym) and e not in local_syms


def _is_length_of(size: Exp, arr: Sym, scope_index: Dict[Sym, Def]) -> bool:
    if isinstance(size, Sym):
        d = scope_index.get(size)
        return d is not None and isinstance(d.op, ArrayLength) and d.op.arr == arr
    return False


def analyze_program(prog: Program) -> Dict[int, LoopStencils]:
    """Stencils for every top-level loop, keyed by the loop's first sym id."""
    idx = def_index(prog.body)
    out: Dict[int, LoopStencils] = {}
    for d in prog.body.stmts:
        if isinstance(d.op, MultiLoop):
            out[d.syms[0].id] = analyze_loop(d, idx)
    return out


def global_stencils(per_loop: Dict[int, LoopStencils]) -> Dict[Sym, Stencil]:
    """Conservative per-collection join across all loops (§4.2)."""
    out: Dict[Sym, Stencil] = {}
    for ls in per_loop.values():
        for coll, s in ls.reads.items():
            cur = out.get(coll)
            out[coll] = s if cur is None else join_stencil(cur, s)
    return out
