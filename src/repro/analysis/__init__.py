"""DMLL static analyses: read stencils (§4.2) and partitioning (§4.1)."""

from .partitioning import (DataLayout, LoopDistInfo, PartitionReport,
                           partition_and_transform)
from .stencil import (LoopStencils, Stencil, analyze_loop, analyze_program,
                      global_stencils, join_stencil)

__all__ = [
    "DataLayout", "LoopDistInfo", "PartitionReport", "partition_and_transform",
    "LoopStencils", "Stencil", "analyze_loop", "analyze_program",
    "global_stencils", "join_stencil",
]
