"""Staging context: accumulates IR statements while frontend code runs.

The frontend (``repro.frontend``) is a shallowly-embedded DSL: user code
manipulates ``Rep`` wrappers whose operators emit ``Def`` statements into
the innermost open scope. ``stage_block`` runs a Python function against
fresh parameter symbols to reify it as an IR ``Block`` — this is how every
generator function (condition / key / value / reduction) is captured.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from . import types as T
from .ir import Block, Def, Exp, Op, Program, Sym, fresh


class StagingError(Exception):
    """Raised when frontend code is used outside a staging scope."""


_scope_stack: List[List[Def]] = []


def in_scope() -> bool:
    return bool(_scope_stack)


def open_scope() -> None:
    _scope_stack.append([])


def close_scope() -> List[Def]:
    if not _scope_stack:
        raise StagingError("no open staging scope")
    return _scope_stack.pop()


def emit_def(d: Def) -> None:
    if not _scope_stack:
        raise StagingError(
            "DMLL operations may only be used inside a staged program "
            "(see repro.frontend.stage)")
    _scope_stack[-1].append(d)


def emit(op: Op, names: Optional[Sequence[str]] = None) -> Tuple[Sym, ...]:
    tps = op.result_types()
    names = names or ["x"] * len(tps)
    syms = tuple(fresh(t, n) for t, n in zip(tps, names))
    emit_def(Def(syms, op))
    return syms


def emit1(op: Op, name: str = "x") -> Sym:
    return emit(op, [name])[0]


def stage_block(param_types: Sequence[T.Type], fn: Callable,
                param_names: Optional[Sequence[str]] = None,
                wrap: Optional[Callable[[Exp], object]] = None,
                unwrap: Optional[Callable[[object], Exp]] = None) -> Block:
    """Reify a Python function as an IR ``Block``.

    ``wrap``/``unwrap`` convert between raw expressions and the frontend's
    ``Rep`` wrappers; the defaults pass expressions through untouched.
    """
    wrap = wrap or (lambda e: e)
    unwrap = unwrap or _default_unwrap
    names = param_names or ["i"] * len(param_types)
    params = tuple(fresh(t, n) for t, n in zip(param_types, names))
    open_scope()
    try:
        result = fn(*(wrap(p) for p in params))
    except BaseException:
        close_scope()
        raise
    stmts = tuple(close_scope())
    results = _as_result_tuple(result, unwrap)
    return Block(params, stmts, results)


def _default_unwrap(x: object) -> Exp:
    if isinstance(x, Exp):
        return x
    raise StagingError(f"expected a staged expression, got {x!r}")


def _as_result_tuple(result, unwrap) -> Tuple[Exp, ...]:
    if isinstance(result, tuple):
        return tuple(unwrap(r) for r in result)
    return (unwrap(result),)


def build_program(fn: Callable, make_inputs: Callable[[], Sequence[object]],
                  unwrap: Optional[Callable[[object], Exp]] = None) -> Program:
    """Stage a whole program.

    ``make_inputs`` runs inside the fresh top-level scope and emits the
    ``InputSource`` defs (carrying partitioning annotations); ``fn`` is the
    user program over those inputs.
    """
    unwrap = unwrap or _default_unwrap
    open_scope()
    try:
        inputs = list(make_inputs())
        result = fn(*inputs)
    except BaseException:
        close_scope()
        raise
    stmts = tuple(close_scope())
    results = _as_result_tuple(result, unwrap)
    input_syms = tuple(unwrap(i) for i in inputs)
    for s in input_syms:
        if not isinstance(s, Sym):
            raise StagingError("program inputs must be symbols")
    return Program(input_syms, Block((), stmts, results))
