"""Type system for the DMLL intermediate representation.

The paper's generators are typed (Fig. 2a): ``Collect : Coll[V]``,
``Reduce : V``, ``BucketCollect : Coll[Coll[V]]``, ``BucketReduce : Coll[V]``.
This module defines the small set of types those signatures need: scalars,
collections, structs (records), and keyed collections (the result of bucket
generators, which are indexable both by dense position and by key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Type:
    """Base class for all DMLL types."""

    #: size in bytes of one value of this type, used by the cost model
    byte_size: int = 8

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.__class__.__name__


@dataclass(frozen=True)
class Scalar(Type):
    name: str
    byte_size: int = 8

    def __repr__(self) -> str:
        return self.name


BOOL = Scalar("Bool", 1)
INT = Scalar("Int", 4)
LONG = Scalar("Long", 8)
DOUBLE = Scalar("Double", 8)
STRING = Scalar("String", 16)
UNIT = Scalar("Unit", 0)


@dataclass(frozen=True)
class Coll(Type):
    """A flat parallel collection with elements of type ``elem``."""

    elem: Type

    @property
    def byte_size(self) -> int:  # type: ignore[override]
        # size of a reference to the collection, not its payload
        return 8

    def __repr__(self) -> str:
        return f"Coll[{self.elem!r}]"


@dataclass(frozen=True)
class KeyedColl(Type):
    """Result type of bucket generators: dense values plus a key directory.

    Supports dense positional access (like ``Coll``) and key lookup
    (``BucketLookup``). ``BucketCollect`` produces ``KeyedColl`` whose
    element type is itself a ``Coll``.
    """

    key: Type
    elem: Type

    @property
    def byte_size(self) -> int:  # type: ignore[override]
        return 8

    def __repr__(self) -> str:
        return f"KeyedColl[{self.key!r},{self.elem!r}]"


@dataclass(frozen=True)
class Struct(Type):
    """A named record type. Field order is significant."""

    name: str
    fields: Tuple[Tuple[str, Type], ...]

    @property
    def byte_size(self) -> int:  # type: ignore[override]
        return sum(t.byte_size for _, t in self.fields)

    def field_type(self, fname: str) -> Type:
        for n, t in self.fields:
            if n == fname:
                return t
        raise KeyError(f"struct {self.name} has no field {fname!r}")

    def field_names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.fields)

    def __repr__(self) -> str:
        inner = ",".join(f"{n}:{t!r}" for n, t in self.fields)
        return f"{self.name}{{{inner}}}"


def tuple_type(*elems: Type) -> Struct:
    """An anonymous tuple, modeled as a struct with positional fields."""
    return Struct("Tuple%d" % len(elems), tuple((f"_{i}", t) for i, t in enumerate(elems)))


def is_numeric(t: Type) -> bool:
    return t in (INT, LONG, DOUBLE)


def is_collection(t: Type) -> bool:
    return isinstance(t, (Coll, KeyedColl))


def element_type(t: Type) -> Type:
    if isinstance(t, (Coll, KeyedColl)):
        return t.elem
    raise TypeError(f"{t!r} is not a collection type")


def zero_value(t: Type):
    """The reduction identity for a type (``identity[V]`` in Fig. 2b)."""
    if t is BOOL:
        return False
    if t in (INT, LONG):
        return 0
    if t is DOUBLE:
        return 0.0
    if t is STRING:
        return ""
    if isinstance(t, Coll):
        return []
    if isinstance(t, Struct):
        return tuple(zero_value(ft) for _, ft in t.fields)
    raise TypeError(f"no zero value for {t!r}")


def join_numeric(a: Type, b: Type) -> Type:
    """Numeric promotion for binary arithmetic."""
    if DOUBLE in (a, b):
        return DOUBLE
    if LONG in (a, b):
        return LONG
    return INT
