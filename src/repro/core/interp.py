"""Reference interpreter for DMLL programs (the semantics of Fig. 2b).

Besides producing results, the interpreter is *instrumented*: it tallies
dynamic operation counts, bytes touched, and per-top-level-statement cost
records. The simulated-hardware runtime executes a program functionally
once through this interpreter and then prices the recorded work on a
machine model — "the work is real, only the clock is modeled" (DESIGN §4).
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import types as T
from .ir import Block, Const, Def, Exp, Program, Sym
from .multiloop import GenKind, Generator, MultiLoop
from .ops import (COLL_PRIMS, PRIMS, ArrayApply, ArrayLength, ArrayLit,
                  BucketKeys, BucketLookup, CollPrim, IfThenElse,
                  InputSource, MakeKeyed, Prim, StructField, StructNew)
from .values import Buckets

_EMPTY = object()  # reduction accumulator sentinel (no element seen yet)

#: abstract cycle costs of non-prim operations. Essential cycles (loads,
#: stores, arithmetic) survive compilation; overhead cycles (branches,
#: struct shuffling, hash machinery, interpretive glue) are what an
#: optimizing backend largely eliminates — the machine model discounts
#: them by the profile's ``overhead_elim`` factor.
READ_CYCLES = 1.0
WRITE_CYCLES = 1.0
BUCKET_CYCLES = 6.0  # hash + probe per bucket insertion/lookup (essential)
BRANCH_CYCLES = 1.0


@dataclass
class DefRecord:
    """Dynamic execution record of one top-level statement."""

    sym_id: int
    name: str
    op_name: str
    is_loop: bool = False
    size: int = 0                 # loop trip count
    compute_cycles: float = 0.0   # essential cycles (loads/stores/flops)
    overhead_cycles: float = 0.0  # abstraction cycles a backend removes
    elements_read: int = 0
    bytes_read: int = 0
    elements_emitted: int = 0
    bytes_alloc: int = 0
    output_len: int = 0


@dataclass
class ExecStats:
    op_counts: Counter = field(default_factory=Counter)
    loop_iterations: int = 0
    loops_executed: int = 0
    elements_read: int = 0
    bytes_read: int = 0
    elements_emitted: int = 0
    bytes_alloc: int = 0
    total_cycles: float = 0.0
    def_records: List[DefRecord] = field(default_factory=list)

    def record_for(self, sym: Sym) -> Optional[DefRecord]:
        for r in self.def_records:
            if r.sym_id == sym.id:
                return r
        return None


class LoopObserver:
    """Runtime hook points; the distributed executor subclasses this to set
    ambient 'current reader partition' state per iteration."""

    def on_loop_start(self, d: Def, size: int) -> None:  # pragma: no cover
        pass

    def on_iteration(self, d: Def, i: int) -> None:  # pragma: no cover
        pass

    def on_iteration_cost(self, d: Def, i: int, cycles: float) -> None:  # pragma: no cover
        pass

    def on_iteration_costs(self, d: Def, costs: Sequence[float]) -> None:
        """Bulk delivery of one loop's per-iteration costs. The vectorized
        backend computes all iteration costs at once and hands them over in
        a single call; the default keeps per-iteration observers working."""
        for i, c in enumerate(costs):
            self.on_iteration(d, i)
            self.on_iteration_cost(d, i, c)

    def on_loop_end(self, d: Def) -> None:  # pragma: no cover
        pass


class MultiObserver(LoopObserver):
    """Fans every hook out to several observers — lets the executor's
    per-iteration cost collector coexist with user-supplied hooks (e.g.
    ``repro.obs.MetricsObserver``) on one functional run."""

    def __init__(self, *observers: Optional[LoopObserver]):
        self.observers = tuple(o for o in observers if o is not None)

    def on_loop_start(self, d: Def, size: int) -> None:
        for o in self.observers:
            o.on_loop_start(d, size)

    def on_iteration(self, d: Def, i: int) -> None:
        for o in self.observers:
            o.on_iteration(d, i)

    def on_iteration_cost(self, d: Def, i: int, cycles: float) -> None:
        for o in self.observers:
            o.on_iteration_cost(d, i, cycles)

    def on_iteration_costs(self, d: Def, costs: Sequence[float]) -> None:
        for o in self.observers:
            o.on_iteration_costs(d, costs)

    def on_loop_end(self, d: Def) -> None:
        for o in self.observers:
            o.on_loop_end(d)


class InterpError(Exception):
    pass


class Interp:
    def __init__(self, stats: Optional[ExecStats] = None,
                 observer: Optional[LoopObserver] = None):
        self.stats = stats if stats is not None else ExecStats()
        self.observer = observer
        self.env: Dict[int, Any] = {}
        # cost frames: [-1] is the innermost accumulation target;
        # each frame is [essential, overhead]
        self._frames: List[List[float]] = [[0.0, 0.0]]
        # >0 while evaluating reducer blocks: collections built there are
        # in-place accumulator updates in generated code, not allocations
        self._in_reducer = 0
        # >0 while evaluating a reducing generator's value block: vectors
        # built there stream straight into the accumulator (no
        # materialization) in generated code
        self._in_reduce_value = 0

    # -- cost accounting -----------------------------------------------

    def _add_cycles(self, c: float) -> None:
        self._frames[-1][0] += c

    def _add_overhead(self, c: float) -> None:
        self._frames[-1][1] += c

    def _push_frame(self) -> None:
        self._frames.append([0.0, 0.0])

    def _pop_frame(self) -> List[float]:
        c = self._frames.pop()
        top = self._frames[-1]
        top[0] += c[0]  # roll up into the parent
        top[1] += c[1]
        return c

    # -- program / block evaluation -------------------------------------

    def eval_program(self, prog: Program, inputs: Dict[str, Any]) -> Tuple[Any, ...]:
        """Run a program. ``inputs`` maps InputSource labels to values."""
        self._input_values = inputs
        top = prog.body
        for d in top.stmts:
            self._eval_def_toplevel(d)
        results = tuple(self.eval_exp(r) for r in top.results)
        self.stats.total_cycles = self._frames[0][0] + self._frames[0][1]
        return results

    def _eval_def_toplevel(self, d: Def) -> None:
        rec = DefRecord(
            sym_id=d.syms[0].id, name=d.syms[0].name, op_name=d.op.op_name(),
            is_loop=isinstance(d.op, MultiLoop))
        before = _StatSnapshot(self.stats)
        self._push_frame()
        try:
            self.eval_def(d)
        finally:
            ess, ovh = self._pop_frame()
            rec.compute_cycles = ess
            rec.overhead_cycles = ovh
        before.diff_into(rec, self.stats)
        if isinstance(d.op, MultiLoop):
            rec.size = int(self.eval_exp(d.op.size))
        out = self.env.get(d.syms[0].id)
        if hasattr(out, "__len__"):
            rec.output_len = len(out)
        self.stats.def_records.append(rec)

    def eval_block(self, block: Block, args: Sequence[Any]) -> Any:
        if len(args) != len(block.params):
            raise InterpError("block arity mismatch")
        for p, a in zip(block.params, args):
            self.env[p.id] = a
        for d in block.stmts:
            self.eval_def(d)
        if len(block.results) == 1:
            return self.eval_exp(block.results[0])
        return tuple(self.eval_exp(r) for r in block.results)

    def eval_exp(self, e: Exp) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Sym):
            try:
                return self.env[e.id]
            except KeyError:
                raise InterpError(f"unbound symbol {e!r}") from None
        raise InterpError(f"cannot evaluate {e!r}")

    # -- statement dispatch ---------------------------------------------

    def eval_def(self, d: Def) -> None:
        op = d.op
        self.stats.op_counts[op.op_name()] += 1
        if isinstance(op, Prim):
            spec = PRIMS[op.name]
            self._add_cycles(spec.cost)
            self.env[d.sym.id] = spec.eval_fn(*(self.eval_exp(a) for a in op.args))
        elif isinstance(op, ArrayApply):
            arr = self.eval_exp(op.arr)
            idx = self.eval_exp(op.idx)
            self._count_read(op.result_types()[0])
            self.env[d.sym.id] = arr[idx]
        elif isinstance(op, ArrayLength):
            self.env[d.sym.id] = len(self.eval_exp(op.arr))
            self._add_cycles(1.0)
        elif isinstance(op, MultiLoop):
            self._eval_loop(d, op)
        elif isinstance(op, IfThenElse):
            self._add_overhead(BRANCH_CYCLES)
            branch = op.then_block if self.eval_exp(op.cond) else op.else_block
            self.env[d.sym.id] = self.eval_block(branch, ())
        elif isinstance(op, StructNew):
            self._add_overhead(len(op.values) * 0.5)
            self.env[d.sym.id] = tuple(self.eval_exp(v) for v in op.values)
        elif isinstance(op, StructField):
            st = op.struct.tpe
            idx = st.field_names().index(op.fname)
            self._add_overhead(0.5)
            self.env[d.sym.id] = self.eval_exp(op.struct)[idx]
        elif isinstance(op, BucketLookup):
            coll = self.eval_exp(op.coll)
            self._add_cycles(BUCKET_CYCLES)
            self._count_read(op.result_types()[0])
            if isinstance(coll, Buckets):
                self.env[d.sym.id] = coll.lookup(self.eval_exp(op.key))
            else:
                raise InterpError("BucketLookup on non-bucket value")
        elif isinstance(op, BucketKeys):
            coll = self.eval_exp(op.coll)
            if not isinstance(coll, Buckets):
                raise InterpError("BucketKeys on non-bucket value")
            self.env[d.sym.id] = list(coll.keys)
        elif isinstance(op, CollPrim):
            spec = COLL_PRIMS[op.name]
            vals = [self.eval_exp(a) for a in op.args]
            cycles, reads = spec.cost_fn(*vals)
            self._add_cycles(cycles)
            self.stats.elements_read += reads
            self.stats.bytes_read += reads * 8
            self.env[d.sym.id] = spec.eval_fn(*vals)
        elif isinstance(op, MakeKeyed):
            keys = self.eval_exp(op.keys)
            values = self.eval_exp(op.values)
            b = Buckets(default=T.zero_value(T.element_type(op.values.tpe)))
            for k, v in zip(keys, values):
                p = b.get_or_create(k, None)
                b.values[p] = v
            self._add_overhead(BUCKET_CYCLES * len(b))
            self.env[d.sym.id] = b
        elif isinstance(op, ArrayLit):
            self.env[d.sym.id] = [self.eval_exp(e) for e in op.elems]
            self._count_alloc(op.elem_type, len(op.elems))
        elif isinstance(op, InputSource):
            try:
                self.env[d.sym.id] = self._input_values[op.label]
            except (AttributeError, KeyError):
                raise InterpError(f"missing program input {op.label!r}") from None
        else:
            raise InterpError(f"unknown op {op!r}")

    def _count_read(self, tpe: T.Type) -> None:
        if self._in_reducer:
            # one side of r(a, b) is the register-resident incoming value;
            # only the accumulator load touches memory
            self._add_cycles(READ_CYCLES * 0.5)
        else:
            self._add_cycles(READ_CYCLES)
        self.stats.elements_read += 1
        self.stats.bytes_read += tpe.byte_size

    def _count_alloc(self, tpe: T.Type, n: int = 1) -> None:
        if self._in_reduce_value:
            return  # streamed into the accumulator, never materialized
        self._add_cycles(WRITE_CYCLES * n)
        if self._in_reducer:
            return  # accumulator update in place, not a fresh allocation
        self.stats.elements_emitted += n
        self.stats.bytes_alloc += tpe.byte_size * n

    def _eval_reducer(self, block: Block, args) -> Any:
        self._in_reducer += 1
        try:
            return self.eval_block(block, args)
        finally:
            self._in_reducer -= 1

    # -- multiloop semantics ---------------------------------------------

    def _eval_loop(self, d: Def, loop: MultiLoop) -> None:
        size = int(self.eval_exp(loop.size))
        self.stats.loops_executed += 1
        self.stats.loop_iterations += size
        obs = self.observer
        if obs is not None:
            obs.on_loop_start(d, size)

        accs = [self._make_acc(g) for g in loop.gens]
        gens = loop.gens
        # horizontally-fused generators with alpha-equivalent condition/key
        # functions share one evaluation per iteration in generated code
        # (that is the point of fusing them); mirror that here so the cost
        # accounting matches what the backends emit.
        share_keys, need_memo = loop_share_plan(gens)
        triples = list(zip(gens, accs, share_keys))
        if obs is None:
            # hot path: no per-iteration hooks, no per-iteration cost
            # frames, and no memo dict unless two generators can actually
            # share an evaluation
            if need_memo:
                for i in range(size):
                    memo = {}
                    for g, acc, sk in triples:
                        self._eval_gen_iter(g, acc, i, memo, sk)
            else:
                for i in range(size):
                    for g, acc, sk in triples:
                        self._eval_gen_iter(g, acc, i, None, sk)
        else:
            for i in range(size):
                obs.on_iteration(d, i)
                self._push_frame()
                memo = {} if need_memo else None
                for g, acc, sk in triples:
                    self._eval_gen_iter(g, acc, i, memo, sk)
                f = self._frames[-1]
                cost = f[0] + f[1]
                self._pop_frame()
                obs.on_iteration_cost(d, i, cost)

        for s, g, acc in zip(d.syms, gens, accs):
            self.env[s.id] = self._finish_acc(g, acc)
        if obs is not None:
            obs.on_loop_end(d)

    _alpha_cache: Dict[int, object] = {}

    def _alpha(self, block: Optional[Block]):
        return _alpha_of(block)

    def _shared_eval(self, block: Block, i: int, memo, mkey):
        """Evaluate a generator component, reusing an alpha-equivalent
        sibling's value (and paying its cost only once)."""
        if memo is None or mkey is None:
            return self.eval_block(block, (i,))
        if mkey in memo:
            return memo[mkey]
        v = self.eval_block(block, (i,))
        memo[mkey] = v
        return v

    def _make_acc(self, g: Generator) -> Any:
        if g.kind is GenKind.COLLECT:
            return []
        if g.kind is GenKind.REDUCE:
            return [_EMPTY]
        b = Buckets(default=self._bucket_default(g))
        return b

    def _bucket_default(self, g: Generator) -> Any:
        if g.kind is GenKind.BUCKET_COLLECT:
            return []
        if g.init is not None:
            return self.eval_exp(g.init)
        return T.zero_value(g.value_type)

    def _eval_gen_iter(self, g: Generator, acc: Any, i: int,
                       memo=None, share_key=(None, None)) -> None:
        ckey, kkey = share_key
        if g.cond is not None:
            self._add_overhead(BRANCH_CYCLES)
            if not self._shared_eval(g.cond, i, memo, ckey):
                return
        if g.kind is GenKind.COLLECT:
            v = self.eval_block(g.value, (i,))
            if g.flatten:
                acc.extend(v)
                self._count_alloc(g.value_type.elem if isinstance(g.value_type, T.Coll)
                                  else g.value_type, len(v))
            else:
                acc.append(v)
                self._count_alloc(g.value_type)
        elif g.kind is GenKind.REDUCE:
            self._in_reduce_value += 1
            try:
                v = self.eval_block(g.value, (i,))
            finally:
                self._in_reduce_value -= 1
            if acc[0] is _EMPTY:
                acc[0] = v
            else:
                acc[0] = self._eval_reducer(g.reducer, (acc[0], v))
        elif g.kind is GenKind.BUCKET_COLLECT:
            k, pos_hint = self._bucket_key(g, i, memo, kkey)
            v = self.eval_block(g.value, (i,))
            pos = acc.get_or_create(k, None)
            if acc.values[pos] is None:
                acc.values[pos] = []
            acc.values[pos].append(v)
            self._count_alloc(g.value_type)
        else:  # BUCKET_REDUCE
            k, pos_hint = self._bucket_key(g, i, memo, kkey)
            self._in_reduce_value += 1
            try:
                v = self.eval_block(g.value, (i,))
            finally:
                self._in_reduce_value -= 1
            pos = acc.get_or_create(k, _EMPTY)
            if acc.values[pos] is _EMPTY:
                acc.values[pos] = v
            else:
                acc.values[pos] = self._eval_reducer(g.reducer,
                                                     (acc.values[pos], v))

    def _bucket_key(self, g: Generator, i: int, memo, kkey):
        """Key computation + hash probe, shared across alpha-equivalent
        bucket generators of a fused loop (one probe serves all their
        accumulators; siblings pay only an indexed write)."""
        if memo is None or kkey is None:
            self._add_cycles(BUCKET_CYCLES)
            return self.eval_block(g.key, (i,)), None
        probe = ("probe",) + (kkey,)
        if probe in memo:
            self._add_cycles(WRITE_CYCLES)
            return memo[probe], None
        self._add_cycles(BUCKET_CYCLES)
        k = self._shared_eval(g.key, i, memo, kkey)
        memo[probe] = k
        return k, None

    def _finish_acc(self, g: Generator, acc: Any) -> Any:
        if g.kind is GenKind.COLLECT:
            return acc
        if g.kind is GenKind.REDUCE:
            if acc[0] is _EMPTY:
                if g.init is not None:
                    return self.eval_exp(g.init)
                return g.identity_value()
            return acc[0]
        return acc


#: id(block) -> (weakref-to-block, alpha key). The weakref both guards
#: against id() reuse — a dead entry must never serve a new block that
#: happens to land at the same address, which would alias alpha keys
#: across unrelated blocks and nondeterministically flip sharing (and
#: backend-plan) decisions — and evicts the entry when the block dies.
_ALPHA_CACHE: Dict[int, Tuple[Any, object]] = {}


def _alpha_of(block: Optional[Block]):
    """Alpha-equivalence key of a generator component block (cached by
    block identity); ``None`` for an absent component."""
    if block is None:
        return None
    bid = id(block)
    entry = _ALPHA_CACHE.get(bid)
    if entry is not None and entry[0]() is block:
        return entry[1]
    from .ir import alpha_key
    key = ("k",) + (alpha_key(block),)
    ref = weakref.ref(block, lambda _r, bid=bid: _ALPHA_CACHE.pop(bid, None))
    _ALPHA_CACHE[bid] = (ref, key)
    return key


def loop_share_plan(gens: Sequence[Generator]):
    """Per-generator (cond, key) alpha keys plus whether any evaluation can
    actually be shared between generators of one fused loop.

    The per-iteration memo dict is pure overhead unless at least two
    generators carry alpha-equivalent cond/key blocks (cond and key share
    one value namespace: a key block alpha-equal to a sibling's cond reuses
    its value). Both the interpreter and the vectorized backend key their
    sharing off this plan so their cost accounting agrees.
    """
    share_keys = [(_alpha_of(g.cond), _alpha_of(g.key)) for g in gens]
    need_memo = False
    if len(gens) > 1:
        seen = set()
        for ck, kk in share_keys:
            for k in (ck, kk):
                if k is None:
                    continue
                if k in seen:
                    need_memo = True
                else:
                    seen.add(k)
    return share_keys, need_memo


class _StatSnapshot:
    def __init__(self, stats: ExecStats):
        self.elements_read = stats.elements_read
        self.bytes_read = stats.bytes_read
        self.elements_emitted = stats.elements_emitted
        self.bytes_alloc = stats.bytes_alloc

    def diff_into(self, rec: DefRecord, stats: ExecStats) -> None:
        rec.elements_read = stats.elements_read - self.elements_read
        rec.bytes_read = stats.bytes_read - self.bytes_read
        rec.elements_emitted = stats.elements_emitted - self.elements_emitted
        rec.bytes_alloc = stats.bytes_alloc - self.bytes_alloc


def run_program(prog: Program, inputs: Dict[str, Any],
                observer: Optional[LoopObserver] = None) -> Tuple[Tuple[Any, ...], ExecStats]:
    """Evaluate ``prog`` on ``inputs``; return (results, stats)."""
    interp = Interp(observer=observer)
    results = interp.eval_program(prog, inputs)
    return results, interp.stats
