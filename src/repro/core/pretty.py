"""Pretty printer for DMLL IR — indispensable for debugging rewrites."""

from __future__ import annotations

from typing import List

from .ir import Block, Const, Def, Exp, Program, Sym
from .multiloop import Generator, MultiLoop
from .ops import IfThenElse


def fmt_exp(e: Exp) -> str:
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, Sym):
        return f"{e.name}{e.id}"
    return repr(e)


def _fmt_gen(g: Generator, indent: str) -> List[str]:
    lines = [f"{indent}{g.kind.value}{'*' if g.flatten else ''}:"]
    if g.cond is not None:
        lines.extend(_fmt_block("cond", g.cond, indent + "  "))
    if g.key is not None:
        lines.extend(_fmt_block("key", g.key, indent + "  "))
    lines.extend(_fmt_block("value", g.value, indent + "  "))
    if g.reducer is not None:
        lines.extend(_fmt_block("reduce", g.reducer, indent + "  "))
    return lines


def _fmt_block(label: str, b: Block, indent: str) -> List[str]:
    params = ", ".join(fmt_exp(p) for p in b.params)
    results = ", ".join(fmt_exp(r) for r in b.results)
    if not b.stmts:
        return [f"{indent}{label} ({params}) => {results}"]
    lines = [f"{indent}{label} ({params}) => {{"]
    for d in b.stmts:
        lines.extend(_fmt_def(d, indent + "  "))
    lines.append(f"{indent}  -> {results}")
    lines.append(f"{indent}}}")
    return lines


def _fmt_def(d: Def, indent: str) -> List[str]:
    lhs = ", ".join(fmt_exp(s) for s in d.syms)
    op = d.op
    if isinstance(op, MultiLoop):
        lines = [f"{indent}{lhs} = MultiLoop(size={fmt_exp(op.size)}) {{"]
        for g in op.gens:
            lines.extend(_fmt_gen(g, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(op, IfThenElse):
        lines = [f"{indent}{lhs} = if {fmt_exp(op.cond)} {{"]
        lines.extend(_fmt_block("then", op.then_block, indent + "  "))
        lines.extend(_fmt_block("else", op.else_block, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    return [f"{indent}{lhs} = {op!r}"]


def pretty_block(b: Block, indent: str = "") -> str:
    return "\n".join(_fmt_block("block", b, indent))


def pretty(prog: Program) -> str:
    lines = ["program(inputs=[%s])" % ", ".join(fmt_exp(s) for s in prog.inputs)]
    for d in prog.body.stmts:
        lines.extend(_fmt_def(d, "  "))
    lines.append("  return " + ", ".join(fmt_exp(r) for r in prog.body.results))
    return "\n".join(lines)
