"""DMLL core: IR, type system, multiloops, staging, and the reference
interpreter."""

from . import types
from .interp import ExecStats, Interp, LoopObserver, run_program
from .ir import Block, Const, Def, Exp, Program, Sym, fresh
from .multiloop import GenKind, Generator, MultiLoop
from .pretty import pretty, pretty_block
from .verify import IRVerificationError, verify_program

__all__ = [
    "types", "ExecStats", "Interp", "LoopObserver", "run_program",
    "Block", "Const", "Def", "Exp", "Program", "Sym", "fresh",
    "GenKind", "Generator", "MultiLoop", "pretty", "pretty_block",
    "IRVerificationError", "verify_program",
]
