"""Runtime value representations used by the interpreter and runtime.

- flat collections: Python lists (or any object with ``__getitem__`` /
  ``__len__``, which lets the runtime substitute traced/partitioned arrays);
- structs: Python tuples in field order (hashable, so they work as keys);
- bucket results: ``Buckets`` — dense values in first-seen key order plus a
  key directory, matching the ``KeyedColl`` type.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class Buckets:
    """Result of ``BucketCollect`` / ``BucketReduce``.

    Supports dense positional access (``b[pos]``), key lookup
    (``b.lookup(key)``), and exposes ``b.keys`` in dense order.
    """

    __slots__ = ("keys", "values", "_index", "default")

    def __init__(self, default: Any = None):
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self._index: Dict[Any, int] = {}
        #: value returned by ``lookup`` for a key that received no elements
        self.default = default

    def position(self, key: Any) -> Optional[int]:
        return self._index.get(key)

    def get_or_create(self, key: Any, initial: Any) -> int:
        pos = self._index.get(key)
        if pos is None:
            pos = len(self.keys)
            self._index[key] = pos
            self.keys.append(key)
            self.values.append(initial)
        return pos

    def lookup(self, key: Any) -> Any:
        pos = self._index.get(key)
        if pos is None:
            return self.default
        return self.values[pos]

    def __getitem__(self, pos: int) -> Any:
        return self.values[pos]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def items(self):
        return zip(self.keys, self.values)

    def __eq__(self, other) -> bool:
        if isinstance(other, Buckets):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"Buckets({{{inner}}})"


def deep_eq(a: Any, b: Any, tol: float = 1e-9) -> bool:
    """Structural equality with float tolerance — used heavily by tests to
    compare DMLL results against oracle implementations."""
    if isinstance(a, Buckets) or isinstance(b, Buckets):
        if not (isinstance(a, Buckets) and isinstance(b, Buckets)):
            return False
        da, db = dict(a.items()), dict(b.items())
        if set(da) != set(db):
            return False
        return all(deep_eq(da[k], db[k], tol) for k in da)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(deep_eq(a[k], b[k], tol) for k in a)
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa, fb = float(a), float(b)
        except (TypeError, ValueError):
            return False
        if fa == fb:
            return True
        return abs(fa - fb) <= tol * max(1.0, abs(fa), abs(fb))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(deep_eq(x, y, tol) for x, y in zip(a, b))
    if hasattr(a, "__len__") and hasattr(b, "__len__") and not isinstance(a, (str, bytes)):
        try:
            if len(a) != len(b):
                return False
            return all(deep_eq(a[i], b[i], tol) for i in range(len(a)))
        except TypeError:
            pass
    return a == b
