"""Structural IR verifier.

Checks the well-formedness invariants every pass must preserve, so the
PassManager can catch a broken rewrite at the pass boundary that
introduced it instead of ten passes later in the interpreter:

- every ``Sym`` an op reads is in scope — defined by an earlier statement,
  bound as a block parameter, or listed as a program input;
- no ``Sym`` is defined twice anywhere in the program;
- a ``MultiLoop`` def binds exactly one output symbol per generator;
- block results reference in-scope symbols;
- op result arities match the number of bound symbols, and each op's
  ``result_types()`` is computable (which exercises the per-op type
  checks, e.g. field access on non-structs).

Violations raise :class:`IRVerificationError` with the offending
statement pretty-printed and the path of enclosing defs that leads to it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .ir import Block, Const, Def, Exp, Program, Sym
from .multiloop import MultiLoop


class IRVerificationError(Exception):
    """A structural invariant of the IR does not hold.

    ``offending`` is the statement (or block) where the violation was
    detected; ``path`` names the chain of enclosing defs.
    """

    def __init__(self, message: str, offending: Optional[Def] = None,
                 path: Tuple[str, ...] = ()):
        self.offending = offending
        self.path = path
        where = f" (in {' > '.join(path)})" if path else ""
        shown = f"\n  offending def: {offending!r}" if offending is not None else ""
        super().__init__(message + where + shown)


def _op_direct_syms(op) -> List[Sym]:
    return [e for e in op.inputs() if isinstance(e, Sym)]


class _Verifier:
    def __init__(self, prog: Program):
        self.prog = prog
        self.defined: Set[Sym] = set()

    def fail(self, message: str, offending: Optional[Def],
             path: Tuple[str, ...]) -> None:
        raise IRVerificationError(message, offending, path)

    def verify(self) -> None:
        scope: Set[Sym] = set(self.prog.inputs)
        self.verify_block(self.prog.body, scope, ("program",))

    def verify_block(self, block: Block, outer_scope: Set[Sym],
                     path: Tuple[str, ...]) -> None:
        scope = set(outer_scope)
        for p in block.params:
            if p in self.defined:
                self.fail(f"block parameter {p!r} shadows a defined symbol",
                          None, path)
            scope.add(p)
        for d in block.stmts:
            self.verify_def(d, scope, path)
            scope.update(d.syms)
        for r in block.results:
            if isinstance(r, Sym) and r not in scope:
                self.fail(f"block result references out-of-scope symbol {r!r}",
                          None, path)

    def verify_def(self, d: Def, scope: Set[Sym],
                   path: Tuple[str, ...]) -> None:
        op = d.op
        for s in _op_direct_syms(op):
            if s not in scope:
                self.fail(f"symbol {s!r} read before definition", d, path)
        if not d.syms:
            self.fail("statement binds no symbols", d, path)
        if isinstance(op, MultiLoop) and len(d.syms) != len(op.gens):
            self.fail(
                f"multiloop with {len(op.gens)} generator(s) binds "
                f"{len(d.syms)} symbol(s); must bind exactly one per "
                f"generator", d, path)
        try:
            n_results = len(op.result_types())
        except Exception as e:
            self.fail(f"op {op.op_name()} is ill-typed: {e}", d, path)
            return  # unreachable; fail raises
        if len(d.syms) != n_results:
            self.fail(
                f"op {op.op_name()} produces {n_results} result(s) but the "
                f"statement binds {len(d.syms)} symbol(s)", d, path)
        for s in d.syms:
            if s in self.defined:
                self.fail(f"symbol {s!r} is defined twice", d, path)
            self.defined.add(s)
        sub_path = path + (f"{'/'.join(map(repr, d.syms))} = {op.op_name()}",)
        # nested blocks see the enclosing scope as of *this* statement:
        # a generator body may not reference its own loop's outputs
        for b in op.blocks():
            self.verify_block(b, scope, sub_path)


def verify_program(prog: Program) -> None:
    """Raise :class:`IRVerificationError` if ``prog`` is ill-formed."""
    _Verifier(prog).verify()


def verify_block(block: Block, inputs: Tuple[Sym, ...] = ()) -> None:
    """Verify a single block as if it were a program body."""
    verify_program(Program(tuple(inputs), block))
