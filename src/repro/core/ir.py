"""Core IR node definitions for DMLL.

The IR is a nested, SSA-like representation:

- ``Exp``        — an atom: a constant or a symbol.
- ``Def``        — a statement binding the result(s) of an ``Op`` to symbols.
  Multiloops with several generators bind one symbol per generator, which is
  how horizontal fusion produces multi-output loops.
- ``Block``      — a function body: bound parameters, an ordered statement
  list, and result expressions. Generator component functions (condition,
  key, value, reduction — Fig. 2a) are all blocks.
- ``Program``    — a top-level block plus its input symbols.

Nodes are immutable; rewrites build new nodes. Symbol identity is the
integer ``Sym.id``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .types import Type, BOOL, DOUBLE, INT, LONG, STRING, UNIT

_sym_ids = itertools.count(1)


def _next_id() -> int:
    return next(_sym_ids)


class Exp:
    """An atomic expression: either a ``Const`` or a ``Sym``."""

    tpe: Type


@dataclass(frozen=True)
class Const(Exp):
    value: object
    tpe: Type = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.tpe is None:
            object.__setattr__(self, "tpe", infer_const_type(self.value))

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


def infer_const_type(value: object) -> Type:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    if value is None:
        return UNIT
    raise TypeError(f"cannot infer DMLL type for constant {value!r}")


@dataclass(frozen=True, eq=False)
class Sym(Exp):
    id: int
    tpe: Type
    name: str = "x"

    def __eq__(self, other) -> bool:
        return isinstance(other, Sym) and other.id == self.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"{self.name}{self.id}"


def fresh(tpe: Type, name: str = "x") -> Sym:
    return Sym(_next_id(), tpe, name)


class Op:
    """Base class of all IR operations.

    Subclasses expose their direct expression operands through ``inputs()``
    and any nested function bodies through ``blocks()``; rewrites use these
    to traverse the IR generically.
    """

    def inputs(self) -> Tuple[Exp, ...]:
        return ()

    def blocks(self) -> Tuple["Block", ...]:
        return ()

    def result_types(self) -> Tuple[Type, ...]:
        raise NotImplementedError

    def with_children(self, inputs: Sequence[Exp], blocks: Sequence["Block"]) -> "Op":
        """Rebuild this op with replaced operands/blocks (same shapes)."""
        raise NotImplementedError

    def op_name(self) -> str:
        return self.__class__.__name__


@dataclass(frozen=True)
class Def:
    """A statement: ``syms = op``. Most defs bind exactly one symbol."""

    syms: Tuple[Sym, ...]
    op: Op

    @property
    def sym(self) -> Sym:
        if len(self.syms) != 1:
            raise ValueError(f"def binds {len(self.syms)} syms, expected 1")
        return self.syms[0]

    def __repr__(self) -> str:
        lhs = ",".join(map(repr, self.syms))
        return f"{lhs} = {self.op!r}"


@dataclass(frozen=True)
class Block:
    """A function body: ``params => { stmts; results }``."""

    params: Tuple[Sym, ...]
    stmts: Tuple[Def, ...]
    results: Tuple[Exp, ...]

    @property
    def result(self) -> Exp:
        if len(self.results) != 1:
            raise ValueError("block has multiple results")
        return self.results[0]

    @property
    def result_type(self) -> Type:
        return self.result.tpe

    def defined_syms(self) -> List[Sym]:
        out: List[Sym] = []
        for d in self.stmts:
            out.extend(d.syms)
        return out

    def __repr__(self) -> str:
        ps = ",".join(map(repr, self.params))
        body = "; ".join(map(repr, self.stmts))
        res = ",".join(map(repr, self.results))
        return f"({ps}) => {{ {body}; {res} }}"


@dataclass(frozen=True)
class Program:
    """A whole staged program: named inputs feeding a top-level block."""

    inputs: Tuple[Sym, ...]
    body: Block

    def output_types(self) -> Tuple[Type, ...]:
        return tuple(r.tpe for r in self.body.results)


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------

def iter_defs(block: Block, recursive: bool = False) -> Iterator[Def]:
    """Iterate statements of a block, optionally descending into nested blocks."""
    for d in block.stmts:
        yield d
        if recursive:
            for b in d.op.blocks():
                yield from iter_defs(b, recursive=True)


def exp_syms(exp: Exp) -> Iterable[Sym]:
    if isinstance(exp, Sym):
        yield exp


def op_used_syms(op: Op, recursive: bool = True) -> Iterator[Sym]:
    """All symbols an op references, including free refs inside nested blocks."""
    for e in op.inputs():
        yield from exp_syms(e)
    if recursive:
        for b in op.blocks():
            yield from free_syms(b)


def free_syms(block: Block) -> Iterator[Sym]:
    """Symbols referenced in ``block`` but neither bound nor defined in it."""
    bound = set(block.params)
    for d in block.stmts:
        for s in op_used_syms(d.op):
            if s not in bound:
                yield s
        bound.update(d.syms)
    for r in block.results:
        for s in exp_syms(r):
            if s not in bound:
                yield s


def free_sym_set(block: Block) -> set:
    return set(free_syms(block))


def subst_exp(exp: Exp, env: Dict[Sym, Exp]) -> Exp:
    if isinstance(exp, Sym) and exp in env:
        return env[exp]
    return exp


def subst_op(op: Op, env: Dict[Sym, Exp]) -> Op:
    new_inputs = [subst_exp(e, env) for e in op.inputs()]
    new_blocks = [subst_block(b, env) for b in op.blocks()]
    return op.with_children(new_inputs, new_blocks)


def subst_block(block: Block, env: Dict[Sym, Exp]) -> Block:
    """Substitute free symbols in a block. Bound/defined syms shadow ``env``."""
    env = {k: v for k, v in env.items() if k not in block.params}
    if not env:
        return block
    new_stmts = []
    for d in block.stmts:
        new_stmts.append(Def(d.syms, subst_op(d.op, env)))
        env = {k: v for k, v in env.items() if k not in d.syms}
    new_results = tuple(subst_exp(r, env) for r in block.results)
    return Block(block.params, tuple(new_stmts), new_results)


def refresh_block(block: Block, outer_env: Optional[Dict[Sym, Exp]] = None) -> Block:
    """Deep-copy a block with fresh ids for every bound/defined symbol.

    Free symbols are remapped through ``outer_env`` when given. Used when a
    rewrite duplicates a function body (e.g. fusion inlines a producer's
    value function into several consumer blocks).
    """
    env: Dict[Sym, Exp] = dict(outer_env or {})
    new_params = []
    for p in block.params:
        np = fresh(p.tpe, p.name)
        env[p] = np
        new_params.append(np)
    new_stmts = []
    for d in block.stmts:
        new_op = _refresh_op(d.op, env)
        new_syms = []
        for s in d.syms:
            ns = fresh(_op_sym_type(new_op, d, s), s.name)
            env[s] = ns
            new_syms.append(ns)
        new_stmts.append(Def(tuple(new_syms), new_op))
    new_results = tuple(subst_exp(r, env) for r in block.results)
    return Block(tuple(new_params), tuple(new_stmts), new_results)


def _op_sym_type(new_op: Op, old_def: Def, old_sym: Sym) -> Type:
    try:
        idx = old_def.syms.index(old_sym)
        return new_op.result_types()[idx]
    except Exception:
        return old_sym.tpe


def _refresh_op(op: Op, env: Dict[Sym, Exp]) -> Op:
    new_inputs = [subst_exp(e, env) for e in op.inputs()]
    new_blocks = [refresh_block(b, env) for b in op.blocks()]
    return op.with_children(new_inputs, new_blocks)


def inline_block(block: Block, args: Sequence[Exp], into: List[Def]) -> Exp:
    """Inline a single-result block at the given arguments.

    A refreshed copy of the block's statements is appended to ``into`` and
    the (substituted) result expression is returned.
    """
    if len(args) != len(block.params):
        raise ValueError("arity mismatch in inline_block")
    env: Dict[Sym, Exp] = dict(zip(block.params, args))
    refreshed = refresh_block(Block((), block.stmts, block.results), env)
    into.extend(refreshed.stmts)
    return refreshed.result


def block_defines(block: Block, sym: Sym) -> bool:
    return any(sym in d.syms for d in block.stmts)


def depends_on(block: Block, target_def: Def, roots: set) -> bool:
    """Does ``target_def`` (in ``block``) transitively depend on any sym in
    ``roots``? Walks backwards through the block's def-use chains."""
    produced: Dict[Sym, Def] = {}
    for d in block.stmts:
        for s in d.syms:
            produced[s] = d
    seen = set()

    def visit(d: Def) -> bool:
        if id(d) in seen:
            return False
        seen.add(id(d))
        for s in op_used_syms(d.op):
            if s in roots:
                return True
            dd = produced.get(s)
            if dd is not None and visit(dd):
                return True
        return False

    return visit(target_def)


def def_index(block: Block) -> Dict[Sym, Def]:
    """Map each defined symbol of ``block`` (non-recursive) to its def."""
    out: Dict[Sym, Def] = {}
    for d in block.stmts:
        for s in d.syms:
            out[s] = d
    return out


def alpha_key(block: Block) -> object:
    """A hashable canonical form of a block: bound symbols are renumbered in
    traversal order, free symbols keep their identity. Two blocks are
    alpha-equivalent iff their keys are equal."""
    env: Dict[Sym, int] = {}
    counter = [0]

    def bind(s: Sym) -> None:
        env[s] = counter[0]
        counter[0] += 1

    def ce(e: Exp) -> object:
        if isinstance(e, Const):
            return ("c", e.value, repr(e.tpe))
        if isinstance(e, Sym):
            if e in env:
                return ("b", env[e])
            return ("f", e.id)
        return ("?", repr(e))

    def static_key(op: Op) -> object:
        # the op fields that are neither operands nor blocks
        parts: List[object] = [op.op_name()]
        for attr in ("fname", "label", "partitioned", "elem_type",
                     "struct_type"):
            if hasattr(op, attr):
                parts.append(repr(getattr(op, attr)))
        gens = getattr(op, "gens", None)
        if gens is not None:
            parts.append(tuple((g.kind.value, g.flatten) for g in gens))
        return tuple(parts)

    def cb(b: Block) -> object:
        for p in b.params:
            bind(p)
        stmts = []
        for d in b.stmts:
            entry = (static_key(d.op),
                     tuple(ce(x) for x in d.op.inputs()),
                     tuple(cb(x) for x in d.op.blocks()))
            for s in d.syms:
                bind(s)
            stmts.append(entry)
        return (len(b.params), tuple(stmts), tuple(ce(r) for r in b.results))

    return cb(block)


def alpha_equal(a: Optional[Block], b: Optional[Block]) -> bool:
    if a is None or b is None:
        return a is b
    return alpha_key(a) == alpha_key(b)


def uses_in_block(block: Block, sym: Sym) -> int:
    """Count references to ``sym`` anywhere inside ``block`` (recursive)."""
    count = 0
    for d in iter_defs(block, recursive=True):
        for e in d.op.inputs():
            if e == sym:
                count += 1
        for b in d.op.blocks():
            for r in b.results:
                if r == sym:
                    count += 1
    for r in block.results:
        if r == sym:
            count += 1
    # results of nested blocks are counted above; top-level block results here
    return count
