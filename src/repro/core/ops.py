"""Primitive and structured operations of the DMLL IR.

Everything that is not a multiloop lives here: scalar primitives
(arithmetic, comparison, math), array access, struct construction and
projection, bucket lookup, and conditionals. Each primitive carries its
Python evaluator and an abstract cycle cost used by the machine model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from . import types as T
from .ir import Block, Const, Exp, Op, Sym


# ---------------------------------------------------------------------------
# Primitive registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PrimSpec:
    name: str
    arity: int
    type_fn: Callable[..., T.Type]
    eval_fn: Callable
    cost: float  # abstract cycles per evaluation


def _numeric2(a: T.Type, b: T.Type) -> T.Type:
    return T.join_numeric(a, b)


def _bool2(a: T.Type, b: T.Type) -> T.Type:
    return T.BOOL


def _same(a: T.Type) -> T.Type:
    return a


def _double1(a: T.Type) -> T.Type:
    return T.DOUBLE


PRIMS: Dict[str, PrimSpec] = {}


def _register(name: str, arity: int, type_fn, eval_fn, cost: float = 1.0) -> None:
    PRIMS[name] = PrimSpec(name, arity, type_fn, eval_fn, cost)


_register("add", 2, _numeric2, lambda a, b: a + b)
_register("sub", 2, _numeric2, lambda a, b: a - b)
_register("mul", 2, _numeric2, lambda a, b: a * b)
_register("div", 2, lambda a, b: T.DOUBLE, lambda a, b: a / b if b != 0 else 0.0, 4.0)
_register("idiv", 2, _numeric2, lambda a, b: a // b if b != 0 else 0, 4.0)
_register("mod", 2, _numeric2, lambda a, b: a % b if b != 0 else 0, 4.0)
_register("neg", 1, _same, lambda a: -a)
_register("min", 2, _numeric2, lambda a, b: min(a, b))
_register("max", 2, _numeric2, lambda a, b: max(a, b))
_register("eq", 2, _bool2, lambda a, b: a == b)
_register("ne", 2, _bool2, lambda a, b: a != b)
_register("lt", 2, _bool2, lambda a, b: a < b)
_register("le", 2, _bool2, lambda a, b: a <= b)
_register("gt", 2, _bool2, lambda a, b: a > b)
_register("ge", 2, _bool2, lambda a, b: a >= b)
_register("and", 2, _bool2, lambda a, b: a and b)
_register("or", 2, _bool2, lambda a, b: a or b)
_register("not", 1, lambda a: T.BOOL, lambda a: not a)
_register("exp", 1, _double1, math.exp, 20.0)
_register("log", 1, _double1, lambda a: math.log(a) if a > 0 else float("-inf"), 20.0)
_register("sqrt", 1, _double1, lambda a: math.sqrt(a) if a >= 0 else 0.0, 10.0)
_register("abs", 1, _same, abs)
_register("pow", 2, lambda a, b: T.DOUBLE, lambda a, b: float(a) ** b, 25.0)
_register("sigmoid", 1, _double1,
          lambda a: 1.0 / (1.0 + math.exp(-a)) if a > -700 else 0.0, 25.0)
_register("to_double", 1, _double1, float)
_register("to_int", 1, lambda a: T.INT, int)
_register("to_long", 1, lambda a: T.LONG, int)
_register("str_concat", 2, lambda a, b: T.STRING, lambda a, b: a + b, 8.0)
_register("str_len", 1, lambda a: T.INT, len, 2.0)
_register("str_char_at", 2, lambda a, b: T.STRING, lambda s, i: s[i] if 0 <= i < len(s) else "", 2.0)
_register("hash", 1, lambda a: T.LONG, lambda a: hash(a) & 0x7FFFFFFFFFFFFFFF, 4.0)


@dataclass(frozen=True)
class Prim(Op):
    """A scalar primitive: ``name(args...)``."""

    name: str
    args: Tuple[Exp, ...]

    def __post_init__(self):
        spec = PRIMS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown primitive {self.name!r}")
        if len(self.args) != spec.arity:
            raise ValueError(f"{self.name} expects {spec.arity} args, got {len(self.args)}")

    def inputs(self) -> Tuple[Exp, ...]:
        return self.args

    def result_types(self) -> Tuple[T.Type, ...]:
        spec = PRIMS[self.name]
        return (spec.type_fn(*(a.tpe for a in self.args)),)

    def with_children(self, inputs: Sequence[Exp], blocks: Sequence[Block]) -> "Prim":
        return Prim(self.name, tuple(inputs))

    def op_name(self) -> str:
        return f"prim.{self.name}"

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Array / collection ops
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayApply(Op):
    """Positional read: ``arr(idx)``. Works on ``Coll`` and ``KeyedColl``
    (dense position order for the latter)."""

    arr: Exp
    idx: Exp

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.arr, self.idx)

    def result_types(self) -> Tuple[T.Type, ...]:
        return (T.element_type(self.arr.tpe),)

    def with_children(self, inputs, blocks) -> "ArrayApply":
        return ArrayApply(inputs[0], inputs[1])

    def __repr__(self) -> str:
        return f"{self.arr!r}({self.idx!r})"


@dataclass(frozen=True)
class ArrayLength(Op):
    arr: Exp

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.arr,)

    def result_types(self) -> Tuple[T.Type, ...]:
        return (T.INT,)

    def with_children(self, inputs, blocks) -> "ArrayLength":
        return ArrayLength(inputs[0])

    def __repr__(self) -> str:
        return f"len({self.arr!r})"


@dataclass(frozen=True)
class ArrayLit(Op):
    """A small literal collection built from scalar expressions."""

    elems: Tuple[Exp, ...]
    elem_type: T.Type

    def inputs(self) -> Tuple[Exp, ...]:
        return self.elems

    def result_types(self) -> Tuple[T.Type, ...]:
        return (T.Coll(self.elem_type),)

    def with_children(self, inputs, blocks) -> "ArrayLit":
        return ArrayLit(tuple(inputs), self.elem_type)

    def __repr__(self) -> str:
        return f"array({', '.join(map(repr, self.elems))})"


@dataclass(frozen=True)
class BucketLookup(Op):
    """Key-indexed read of a ``KeyedColl``: ``coll[key]``.

    Returns the zero value of the element type for missing keys (a bucket
    that received no elements)."""

    coll: Exp
    key: Exp

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.coll, self.key)

    def result_types(self) -> Tuple[T.Type, ...]:
        return (T.element_type(self.coll.tpe),)

    def with_children(self, inputs, blocks) -> "BucketLookup":
        return BucketLookup(inputs[0], inputs[1])

    def __repr__(self) -> str:
        return f"{self.coll!r}[{self.key!r}]"


@dataclass(frozen=True)
class BucketKeys(Op):
    """The key directory of a ``KeyedColl``, in dense position order."""

    coll: Exp

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.coll,)

    def result_types(self) -> Tuple[T.Type, ...]:
        kc = self.coll.tpe
        if not isinstance(kc, T.KeyedColl):
            raise TypeError("BucketKeys requires a KeyedColl")
        return (T.Coll(kc.key),)

    def with_children(self, inputs, blocks) -> "BucketKeys":
        return BucketKeys(inputs[0])

    def __repr__(self) -> str:
        return f"keys({self.coll!r})"


@dataclass(frozen=True)
class CollPrimSpec:
    """A DSL-author-provided collection primitive (§3.2 Discussion: the
    transformation/op facility is 'extensible by DSL authors'). OptiGraph
    contributes ``sorted_intersect_count`` for triangle counting."""

    name: str
    arity: int
    type_fn: Callable[..., T.Type]
    eval_fn: Callable
    #: (arg values) -> (abstract cycles, elements read)
    cost_fn: Callable


def _sorted_intersect_count(a, b) -> int:
    i = j = n = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if a[i] == b[j]:
            n += 1
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return n


COLL_PRIMS: Dict[str, CollPrimSpec] = {
    "sorted_intersect_count": CollPrimSpec(
        "sorted_intersect_count", 2, lambda a, b: T.INT,
        _sorted_intersect_count,
        lambda a, b: (2.0 * (len(a) + len(b)), len(a) + len(b))),
    "coll_contains": CollPrimSpec(
        "coll_contains", 2, lambda a, b: T.BOOL,
        lambda coll, x: x in coll,
        lambda coll, x: (2.0 * len(coll), len(coll))),
}


@dataclass(frozen=True)
class CollPrim(Op):
    """Collection-level primitive: ``name(args...)``."""

    name: str
    args: Tuple[Exp, ...]

    def __post_init__(self):
        spec = COLL_PRIMS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown collection primitive {self.name!r}")
        if len(self.args) != spec.arity:
            raise ValueError(f"{self.name} expects {spec.arity} args")

    def inputs(self) -> Tuple[Exp, ...]:
        return self.args

    def result_types(self) -> Tuple[T.Type, ...]:
        spec = COLL_PRIMS[self.name]
        return (spec.type_fn(*(a.tpe for a in self.args)),)

    def with_children(self, inputs, blocks) -> "CollPrim":
        return CollPrim(self.name, tuple(inputs))

    def op_name(self) -> str:
        return f"collprim.{self.name}"

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class MakeKeyed(Op):
    """Assemble a ``KeyedColl`` from parallel key/value collections.

    Introduced by the bucket variant of Row-to-Column Reduce, which
    transposes a vector-valued ``BucketReduce`` into per-column scalar
    reductions and then reassembles the keyed result."""

    keys: Exp
    values: Exp

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.keys, self.values)

    def result_types(self) -> Tuple[T.Type, ...]:
        kt = T.element_type(self.keys.tpe)
        vt = T.element_type(self.values.tpe)
        return (T.KeyedColl(kt, vt),)

    def with_children(self, inputs, blocks) -> "MakeKeyed":
        return MakeKeyed(inputs[0], inputs[1])

    def __repr__(self) -> str:
        return f"keyed({self.keys!r}, {self.values!r})"


# ---------------------------------------------------------------------------
# Struct ops
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StructNew(Op):
    struct_type: T.Struct
    values: Tuple[Exp, ...]

    def __post_init__(self):
        if len(self.values) != len(self.struct_type.fields):
            raise ValueError("field/value arity mismatch")

    def inputs(self) -> Tuple[Exp, ...]:
        return self.values

    def result_types(self) -> Tuple[T.Type, ...]:
        return (self.struct_type,)

    def with_children(self, inputs, blocks) -> "StructNew":
        return StructNew(self.struct_type, tuple(inputs))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v!r}" for (n, _), v in zip(self.struct_type.fields, self.values))
        return f"{self.struct_type.name}({pairs})"


@dataclass(frozen=True)
class StructField(Op):
    struct: Exp
    fname: str

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.struct,)

    def result_types(self) -> Tuple[T.Type, ...]:
        st = self.struct.tpe
        if not isinstance(st, T.Struct):
            raise TypeError(f"field access on non-struct {st!r}")
        return (st.field_type(self.fname),)

    def with_children(self, inputs, blocks) -> "StructField":
        return StructField(inputs[0], self.fname)

    def __repr__(self) -> str:
        return f"{self.struct!r}.{self.fname}"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IfThenElse(Op):
    cond: Exp
    then_block: Block
    else_block: Block

    def inputs(self) -> Tuple[Exp, ...]:
        return (self.cond,)

    def blocks(self) -> Tuple[Block, ...]:
        return (self.then_block, self.else_block)

    def result_types(self) -> Tuple[T.Type, ...]:
        return (self.then_block.result_type,)

    def with_children(self, inputs, blocks) -> "IfThenElse":
        return IfThenElse(inputs[0], blocks[0], blocks[1])

    def __repr__(self) -> str:
        return f"if({self.cond!r}) {self.then_block!r} else {self.else_block!r}"


# ---------------------------------------------------------------------------
# Program inputs / data sources
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InputSource(Op):
    """Marks a program input (e.g. a file reader). Carries the user's
    partitioning annotation consumed by Algorithm 1 (§4.1)."""

    tpe: T.Type
    label: str
    partitioned: bool = False

    def result_types(self) -> Tuple[T.Type, ...]:
        return (self.tpe,)

    def with_children(self, inputs, blocks) -> "InputSource":
        return self

    def __repr__(self) -> str:
        tag = "Partitioned" if self.partitioned else "Local"
        return f"input[{tag}]({self.label})"


def const(value) -> Const:
    return Const(value)


TRUE = Const(True)
FALSE = Const(False)
ZERO = Const(0)
ONE = Const(1)
