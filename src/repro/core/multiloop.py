"""The multiloop: DMLL's core parallel-pattern abstraction (Fig. 2).

A multiloop is a single-dimensional traversal of ``0 until size`` carrying
one or more *generators*. Each generator holds the separated user functions
of the pattern — condition ``c``, key ``k``, value ``f``, reduction ``r`` —
and accumulates one loop output. Loops start with one generator; horizontal
fusion merges generators of loops sharing a range into one traversal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from . import types as T
from .ir import Block, Const, Def, Exp, Op, Sym, fresh


class GenKind(enum.Enum):
    COLLECT = "Collect"
    REDUCE = "Reduce"
    BUCKET_COLLECT = "BucketCollect"
    BUCKET_REDUCE = "BucketReduce"


@dataclass(frozen=True)
class Generator:
    """One output pattern of a multiloop.

    ``cond``    — ``i => Bool`` or ``None`` for the always-true condition
                  (written ``_`` in the paper).
    ``key``     — ``i => K``; bucket generators only.
    ``value``   — ``i => V``; always present.
    ``reducer`` — ``(V, V) => V``; reducing generators only.
    ``init``    — explicit reduction identity; defaults to the type's zero.
    """

    kind: GenKind
    value: Block
    cond: Optional[Block] = None
    key: Optional[Block] = None
    reducer: Optional[Block] = None
    init: Optional[Exp] = None
    #: flatMap support: the value function yields a whole collection per
    #: iteration and the generator concatenates them (COLLECT only).
    flatten: bool = False
    #: set by transformations that deliberately *materialize* (e.g. the
    #: loop-fission step of Row-to-Column Reduce): pipeline fusion must not
    #: inline this producer back into its consumers.
    no_fuse: bool = False

    def __post_init__(self):
        reducing = self.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE)
        if reducing and self.reducer is None:
            raise ValueError(f"{self.kind.value} requires a reducer")
        keyed = self.kind in (GenKind.BUCKET_COLLECT, GenKind.BUCKET_REDUCE)
        if keyed and self.key is None:
            raise ValueError(f"{self.kind.value} requires a key function")
        if not keyed and self.key is not None:
            raise ValueError(f"{self.kind.value} cannot have a key function")
        if self.flatten:
            if self.kind is not GenKind.COLLECT:
                raise ValueError("flatten is only meaningful for Collect")
            if not isinstance(self.value.result_type, T.Coll):
                raise ValueError("flatten requires a collection-valued body")

    @property
    def value_type(self) -> T.Type:
        return self.value.result_type

    @property
    def key_type(self) -> T.Type:
        assert self.key is not None
        return self.key.result_type

    def result_type(self) -> T.Type:
        v = self.value_type
        if self.kind is GenKind.COLLECT:
            if self.flatten:
                return v  # already Coll[V]
            return T.Coll(v)
        if self.kind is GenKind.REDUCE:
            return v
        if self.kind is GenKind.BUCKET_COLLECT:
            return T.KeyedColl(self.key_type, T.Coll(v))
        return T.KeyedColl(self.key_type, v)

    def blocks(self) -> Tuple[Block, ...]:
        out: List[Block] = []
        if self.cond is not None:
            out.append(self.cond)
        if self.key is not None:
            out.append(self.key)
        out.append(self.value)
        if self.reducer is not None:
            out.append(self.reducer)
        return tuple(out)

    def with_blocks(self, blocks: Sequence[Block]) -> "Generator":
        blocks = list(blocks)
        cond = blocks.pop(0) if self.cond is not None else None
        key = blocks.pop(0) if self.key is not None else None
        value = blocks.pop(0)
        reducer = blocks.pop(0) if self.reducer is not None else None
        assert not blocks
        return Generator(self.kind, value, cond, key, reducer, self.init,
                         self.flatten, self.no_fuse)

    def init_exps(self) -> Tuple[Exp, ...]:
        return (self.init,) if self.init is not None else ()

    def with_init(self, init_exps: Sequence[Exp]) -> "Generator":
        if self.init is None:
            return self
        return replace(self, init=init_exps[0])

    def identity_value(self):
        """Runtime identity value for reducing generators."""
        if self.init is not None and isinstance(self.init, Const):
            return self.init.value
        return T.zero_value(self.value_type)

    def __repr__(self) -> str:
        parts = [self.kind.value]
        if self.cond is not None:
            parts.append(f"c={self.cond!r}")
        if self.key is not None:
            parts.append(f"k={self.key!r}")
        parts.append(f"f={self.value!r}")
        if self.reducer is not None:
            parts.append(f"r={self.reducer!r}")
        return "<" + " ".join(parts) + ">"


@dataclass(frozen=True)
class MultiLoop(Op):
    """``MultiLoop(size, gens)`` — one traversal, ``len(gens)`` outputs."""

    size: Exp
    gens: Tuple[Generator, ...]

    def __post_init__(self):
        if not self.gens:
            raise ValueError("multiloop needs at least one generator")

    def inputs(self) -> Tuple[Exp, ...]:
        out: List[Exp] = [self.size]
        for g in self.gens:
            out.extend(g.init_exps())
        return tuple(out)

    def blocks(self) -> Tuple[Block, ...]:
        out: List[Block] = []
        for g in self.gens:
            out.extend(g.blocks())
        return tuple(out)

    def result_types(self) -> Tuple[T.Type, ...]:
        return tuple(g.result_type() for g in self.gens)

    def with_children(self, inputs, blocks) -> "MultiLoop":
        inputs = list(inputs)
        blocks = list(blocks)
        size = inputs.pop(0)
        new_gens = []
        for g in self.gens:
            n_init = len(g.init_exps())
            g = g.with_init([inputs.pop(0) for _ in range(n_init)])
            n_blocks = len(g.blocks())
            g = g.with_blocks([blocks.pop(0) for _ in range(n_blocks)])
            new_gens.append(g)
        assert not inputs and not blocks
        return MultiLoop(size, tuple(new_gens))

    def op_name(self) -> str:
        return "loop." + "+".join(g.kind.value for g in self.gens)

    def __repr__(self) -> str:
        gens = ", ".join(map(repr, self.gens))
        return f"MultiLoop(s={self.size!r})[{gens}]"


# ---------------------------------------------------------------------------
# Construction helpers (used by the frontend and by rewrites)
# ---------------------------------------------------------------------------

def loop_def(size: Exp, gens: Sequence[Generator],
             names: Optional[Sequence[str]] = None) -> Def:
    """Build a ``Def`` binding one fresh symbol per generator."""
    loop = MultiLoop(size, tuple(gens))
    tps = loop.result_types()
    names = names or ["l"] * len(tps)
    syms = tuple(fresh(t, n) for t, n in zip(tps, names))
    return Def(syms, loop)


def collect(value: Block, cond: Optional[Block] = None,
            flatten: bool = False, no_fuse: bool = False) -> Generator:
    return Generator(GenKind.COLLECT, value, cond=cond, flatten=flatten,
                     no_fuse=no_fuse)


def reduce_gen(value: Block, reducer: Block, cond: Optional[Block] = None,
               init: Optional[Exp] = None) -> Generator:
    return Generator(GenKind.REDUCE, value, cond=cond, reducer=reducer, init=init)


def bucket_collect(key: Block, value: Block, cond: Optional[Block] = None) -> Generator:
    return Generator(GenKind.BUCKET_COLLECT, value, cond=cond, key=key)


def bucket_reduce(key: Block, value: Block, reducer: Block,
                  cond: Optional[Block] = None, init: Optional[Exp] = None) -> Generator:
    return Generator(GenKind.BUCKET_REDUCE, value, cond=cond, key=key,
                     reducer=reducer, init=init)


def is_loop(op: Op) -> bool:
    return isinstance(op, MultiLoop)


def single_gen(d: Def) -> Optional[Generator]:
    """The generator of a single-output loop def, else ``None``."""
    if isinstance(d.op, MultiLoop) and len(d.op.gens) == 1:
        return d.op.gens[0]
    return None
