"""Command-line inspector: dump a benchmark application's IR at any
pipeline stage, its analyses, its generated backend code, the per-pass
compilation trace — or run it on the simulated hardware and profile it.

Usage::

    python -m repro.tools kmeans                 # optimized IR
    python -m repro.tools kmeans --stage staged  # as written
    python -m repro.tools logreg --target gpu --emit cuda
    python -m repro.tools q1 --report            # partitioning/stencils
    python -m repro.tools kmeans --trace         # per-pass table
    python -m repro.tools kmeans --verify-each   # verifier at every pass
    python -m repro.tools kmeans --profile       # per-loop time breakdown
    python -m repro.tools kmeans --profile --backend numpy  # vectorized
    python -m repro.tools kmeans --trace-out t.json   # Chrome trace
    python -m repro.tools kmeans --metrics       # runtime counters
    python -m repro.tools explain kmeans         # decision provenance
    python -m repro.tools explain kmeans --loop cs --json
    python -m repro.tools explain kmeans --explain-diff no-fusion
    python -m repro.tools serve-sim kmeans       # serving simulation
    python -m repro.tools serve-sim kmeans q1 --rate 200 --requests 64
    python -m repro.tools serve-sim kmeans --machines numa*2,gpunode
    python -m repro.tools serve-sim kmeans --trace-out t.json --slo s.json
    python -m repro.tools slo-report kmeans --spec examples/slo_serving.json
    python -m repro.tools analyze kmeans --critical-path
    python -m repro.tools analyze kmeans --diff prev latest
    python -m repro.tools analyze kmeans --requests --json
    python -m repro.tools --list

Exit codes (repo-wide convention): 0 ok, 1 check failed, 2 bad usage.
"""

from __future__ import annotations

import argparse
import json as _json
import sys

from .analysis.stencil import Stencil
from .core.pretty import pretty
from .passes import trace_table
from .pipeline import compile_program

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2

_APPS = {
    "kmeans": lambda: __import__("repro.apps.kmeans", fromlist=["x"]).kmeans_shared_program(),
    "kmeans-grouped": lambda: __import__("repro.apps.kmeans", fromlist=["x"]).kmeans_grouped_program(),
    "logreg": lambda: __import__("repro.apps.logreg", fromlist=["x"]).logreg_program(),
    "gda": lambda: __import__("repro.apps.gda", fromlist=["x"]).gda_program(),
    "q1": lambda: __import__("repro.apps.tpch", fromlist=["x"]).q1_program(),
    "gene": lambda: __import__("repro.apps.gene", fromlist=["x"]).gene_program(),
    "knn": lambda: __import__("repro.apps.knn", fromlist=["x"]).knn_program(),
    "naive-bayes": lambda: __import__("repro.apps.naive_bayes", fromlist=["x"]).nb_program(),
    "gibbs": lambda: __import__("repro.apps.gibbs", fromlist=["x"]).gibbs_sweep_program(),
    "pagerank": lambda: __import__("repro.graph.optigraph", fromlist=["x"]).pagerank_pull_program(),
    "pagerank-push": lambda: __import__("repro.graph.optigraph", fromlist=["x"]).pagerank_push_program(),
    "triangle": lambda: __import__("repro.graph.optigraph", fromlist=["x"]).triangle_program(),
}


def _emit(prog, emit: str) -> str:
    if emit == "ir":
        return pretty(prog)
    if emit == "cpp":
        from .codegen import generate_cpp
        return generate_cpp(prog)
    if emit == "cuda":
        from .codegen import generate_cuda
        return generate_cuda(prog)
    from .codegen import generate_scala
    return generate_scala(prog)


def _run_observed(args) -> int:
    """--profile / --trace-out / --metrics: execute the app on its bundled
    dataset through the simulated runtime with observability attached."""
    from .bench.apps import _FACTORIES, get_bundle
    if args.app not in _FACTORIES:
        print(f"--profile/--trace-out/--metrics need a bundled dataset; "
              f"apps with one: {', '.join(sorted(_FACTORIES))}",
              file=sys.stderr)
        return EXIT_USAGE
    from .backend import resolve_backend_ex
    from .obs import (MetricsRegistry, Tracer, profile_report,
                      write_chrome_trace, write_collapsed, write_prometheus)
    from .runtime import DMLL_CPP, GPU_CLUSTER, NUMA_BOX, single_node

    try:
        _, backend_source = resolve_backend_ex(args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    bundle = get_bundle(args.app)
    gpu = args.target == "gpu"
    variant = "gpu" if gpu else ("plain" if args.no_transforms else "opt")
    tracer = Tracer()
    metrics = MetricsRegistry()
    cluster = single_node(GPU_CLUSTER) if gpu else NUMA_BOX
    sim = bundle.simulate(variant, cluster=cluster, use_gpu=gpu,
                          gpu_transposed=gpu, tracer=tracer, metrics=metrics,
                          backend=args.backend)
    tracer.last_run.name = f"{args.app}:{cluster.name}"

    if args.profile:
        print(profile_report(
            sim, title=f"{args.app} on {cluster.name} "
                       f"({'GPU' if gpu else 'CPU'}), simulated time"))
        # name the backend AND where the choice came from, so a CI
        # matrix leg with a broken REPRO_BACKEND can't pass unnoticed
        print(f"execution backend: {sim.backend} "
              f"(resolved from {backend_source})")
        if sim.backend != "reference":
            if sim.fallbacks:
                for fb in sim.fallbacks:
                    print(f"  fallback {fb.loop} ({fb.op}): {fb.reason}")
            else:
                print("  all loops vectorized "
                      "(no interpreter fallbacks)")
        for d in bundle.compiled(variant).diagnostics:
            print(d.render())
    if args.metrics:
        print(metrics.render())
    if args.trace_out:
        write_chrome_trace(args.trace_out, tracer)
        print(f"wrote Chrome trace to {args.trace_out}; load it in "
              f"chrome://tracing or https://ui.perfetto.dev")
    if args.flame_out:
        write_collapsed(args.flame_out, tracer)
        print(f"wrote flamegraph stacks to {args.flame_out}")
    if args.metrics_out:
        write_prometheus(args.metrics_out, metrics)
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    return 0


def _explain_compile(app: str, target: str, variant: str = None):
    """Compile ``app`` with a shared ledger scope covering the whole
    pipeline plus the backend's static plan; return the ledger."""
    from .backend.vectorize import plan_program
    from .obs.provenance import DecisionLedger, ledger_scope
    prog = _APPS[app]()
    led = DecisionLedger()
    with ledger_scope(led):
        compiled = compile_program(
            prog, target,
            apply_nested_transforms=(variant != "no-transforms"),
            fuse=(variant != "no-fusion"))
        led.begin_pass("numpy-plan", "backend")
        plan_program(compiled.program)
    return led


def explain_main(argv=None) -> int:
    """``repro explain <app>``: render the compile's decision provenance."""
    ap = argparse.ArgumentParser(
        prog="repro.tools explain",
        description="Explain every compiler/backend decision taken for an "
                    "application: fusions applied and rejected (with the "
                    "blocking dependency), Fig. 3 transforms fired or "
                    "found not-applicable, stencil classifications, "
                    "partition layouts, and the NumPy backend's "
                    "plan-vs-fallback choices.")
    ap.add_argument("app", nargs="?", help="application name (see --list)")
    ap.add_argument("--loop", default=None, metavar="L",
                    help="filter to decisions about one loop/symbol "
                         "(prefix match, ids optional: 'cs' matches cs42)")
    ap.add_argument("--json", action="store_true",
                    help="emit the full ledger as JSON")
    ap.add_argument("--target", choices=("cpu", "distributed", "gpu"),
                    default="distributed")
    ap.add_argument("--explain-diff", choices=("no-fusion", "no-transforms"),
                    default=None, metavar="VARIANT",
                    help="compile twice (default pipeline vs the ablated "
                         "VARIANT) and show exactly which decisions "
                         "diverge")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return int(e.code or 0)
    if not args.app:
        print("explain requires an application name; see "
              "`python -m repro.tools --list`", file=sys.stderr)
        return EXIT_USAGE
    if args.app not in _APPS:
        print(f"unknown app {args.app!r}; use --list", file=sys.stderr)
        return EXIT_USAGE

    from .obs.provenance import diff_ledgers
    led = _explain_compile(args.app, args.target)
    if args.explain_diff:
        other = _explain_compile(args.app, args.target,
                                 variant=args.explain_diff)
        print(diff_ledgers(led, other, "default", args.explain_diff))
        return EXIT_OK
    if args.json:
        print(_json.dumps(led.to_json(), indent=2, default=str))
    else:
        print(led.render(loop=args.loop,
                         title=f"decision provenance: {args.app} "
                               f"(target {args.target})"))
    if len(led) == 0:
        # an instrumented compile that records nothing means the
        # provenance layer is broken — fail loudly, CI smoke relies on it
        print("error: compile produced an empty decision ledger",
              file=sys.stderr)
        return EXIT_FAIL
    return EXIT_OK


def _add_traffic_args(ap) -> None:
    """Traffic/fleet flags shared by ``serve-sim`` and ``slo-report``."""
    ap.add_argument("apps", nargs="*",
                    help="served applications (need bundled datasets)")
    ap.add_argument("--requests", type=int, default=64,
                    help="total requests (default %(default)s)")
    ap.add_argument("--rate", type=float, default=None, metavar="RPS",
                    help="open-loop Poisson arrival rate in req/s "
                         "(default: closed loop)")
    ap.add_argument("--clients", type=int, default=8,
                    help="closed-loop concurrent clients "
                         "(default %(default)s)")
    ap.add_argument("--think-ms", type=float, default=0.0,
                    help="closed-loop think time between requests")
    ap.add_argument("--batch", type=int, default=8,
                    help="max requests one lane-packed execution serves "
                         "(default %(default)s)")
    ap.add_argument("--max-wait-ms", type=float, default=20.0,
                    help="admission window: max time a request waits for "
                         "lane-mates (default %(default)s)")
    ap.add_argument("--payloads", type=int, default=1,
                    help="distinct logical payloads per app (tenants); "
                         "only equal payloads lane-pack")
    ap.add_argument("--seed", type=int, default=0,
                    help="traffic RNG seed (same seed, same report)")
    ap.add_argument("--policy",
                    choices=("round-robin", "least-loaded", "fastest"),
                    default="round-robin",
                    help="placement policy across the machine fleet")
    ap.add_argument("--machines", default="numa", metavar="SPEC",
                    help='machine fleet, e.g. "numa*2,gpunode" '
                         "(default %(default)s)")
    ap.add_argument("--backend", choices=("reference", "numpy"),
                    default="numpy",
                    help="functional engine; only numpy lane-packs "
                         "(default %(default)s)")
    # chaos / resilience (all off by default: a plain run stays
    # byte-identical to one where these flags never existed)
    ap.add_argument("--faults", metavar="PLAN.json",
                    help="seeded fault-injection plan: crash windows, "
                         "slow replicas, kernel faults, cache drops "
                         "(see examples/faults_outage.json)")
    ap.add_argument("--timeout-ms", type=float, default=None,
                    help="per-request deadline in simulated ms; late "
                         "attempts are rejected, never silently served")
    ap.add_argument("--retry", type=int, default=None, metavar="N",
                    help="max attempts per request; enables retries "
                         "with seeded exponential backoff")
    ap.add_argument("--retry-budget", type=int, default=64,
                    help="global cap on extra attempts across the run "
                         "(default %(default)s)")
    ap.add_argument("--hedge-ms", type=float, default=None,
                    help="launch one hedged duplicate if a dispatched "
                         "request is still unfinished after this long")
    ap.add_argument("--shed-depth", type=int, default=None,
                    help="admission-queue depth above which arrivals "
                         "are shed with a typed rejection")
    ap.add_argument("--breaker", action="store_true",
                    help="per-machine circuit breakers (sliding-window "
                         "failure rate; open replicas are skipped)")
    ap.add_argument("--degrade-after", type=int, default=3,
                    help="consecutive kernel faults before an app "
                         "degrades to the reference path "
                         "(default %(default)s)")


def _check_traffic_args(args, prog: str) -> int:
    if not args.apps:
        print(f"{prog} requires at least one application name",
              file=sys.stderr)
        return EXIT_USAGE
    from .bench.apps import _FACTORIES
    bad = [a for a in args.apps if a not in _FACTORIES]
    if bad:
        print(f"{prog} needs bundled datasets; unknown: "
              f"{', '.join(bad)} (have: {', '.join(sorted(_FACTORIES))})",
              file=sys.stderr)
        return EXIT_USAGE
    if args.requests < 1 or args.batch < 1 or args.payloads < 1:
        print("--requests/--batch/--payloads must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.retry is not None and args.retry < 1:
        print("--retry must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    for flag, val in (("--timeout-ms", args.timeout_ms),
                      ("--hedge-ms", args.hedge_ms)):
        if val is not None and val <= 0:
            print(f"{flag} must be > 0", file=sys.stderr)
            return EXIT_USAGE
    if args.shed_depth is not None and args.shed_depth < 1:
        print("--shed-depth must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.retry_budget < 0 or args.degrade_after < 1:
        print("--retry-budget must be >= 0 and --degrade-after >= 1",
              file=sys.stderr)
        return EXIT_USAGE
    return EXIT_OK


def _resilience_of(args):
    """``(FaultPlan, ResilienceConfig)`` from parsed traffic flags —
    both ``None`` when the matching flags are absent, so plain runs
    take the exact pre-chaos code path. Raises ``ValueError`` on an
    unreadable or malformed fault plan."""
    from .serve import (BreakerConfig, FaultPlan, ResilienceConfig,
                        RetryPolicy)
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.load(args.faults)
        except OSError as exc:
            raise ValueError(
                f"cannot load fault plan {args.faults}: {exc}") from None
    retry = (RetryPolicy(max_attempts=args.retry, budget=args.retry_budget)
             if args.retry is not None else None)
    breaker = BreakerConfig() if args.breaker else None
    res = None
    if (retry is not None or breaker is not None
            or args.timeout_ms is not None or args.hedge_ms is not None
            or args.shed_depth is not None):
        res = ResilienceConfig(
            deadline_s=(args.timeout_ms / 1e3
                        if args.timeout_ms is not None else None),
            retry=retry,
            hedge_delay_s=(args.hedge_ms / 1e3
                           if args.hedge_ms is not None else None),
            shed_depth=args.shed_depth,
            breaker=breaker,
            degrade_after=args.degrade_after)
    return plan, res


def _run_traffic(args, metrics, tracer):
    """Build a ``ServeSim`` from parsed traffic flags and run it.
    Returns ``(sim, report)``; raises ``ValueError`` on bad specs."""
    from .serve import ServeSim
    faults, resilience = _resilience_of(args)
    sim = ServeSim(args.apps, machines=args.machines,
                   max_batch=args.batch,
                   max_wait_s=args.max_wait_ms / 1e3,
                   policy=args.policy, backend=args.backend,
                   payloads=args.payloads, metrics=metrics,
                   tracer=tracer, faults=faults, resilience=resilience)
    if args.rate is not None:
        report = sim.run_open(args.rate, args.requests, seed=args.seed)
    else:
        report = sim.run_closed(args.clients, args.requests,
                                think_s=args.think_ms / 1e3,
                                seed=args.seed)
    return sim, report


def serve_main(argv=None) -> int:
    """``repro.tools serve-sim <app> [...]``: run the serving simulator."""
    ap = argparse.ArgumentParser(
        prog="repro.tools serve-sim",
        description="Simulate serving many concurrent invocations of "
                    "cached compiled programs: seeded open- or "
                    "closed-loop traffic, lane-packed batching on the "
                    "NumPy backend, pluggable placement across machine "
                    "models; reports throughput and p50/p95/p99 latency.")
    _add_traffic_args(ap)
    ap.add_argument("--latency-out", metavar="FILE.json",
                    help="write the latency histogram + quantiles JSON "
                         "(with per-app and per-machine breakdowns)")
    ap.add_argument("--trace-out", metavar="FILE.json",
                    help="write a Chrome-trace (Perfetto) JSON of the "
                         "serving run, with per-request spans and "
                         "request-to-batch flow arrows")
    ap.add_argument("--flame-out", metavar="FILE.txt",
                    help="write a collapsed-stack flamegraph "
                         "(flamegraph.pl / speedscope format) of the "
                         "serving span tree")
    ap.add_argument("--metrics-out", metavar="FILE.prom",
                    help="write the metrics registry in Prometheus/"
                         "OpenMetrics text exposition format")
    ap.add_argument("--slo", metavar="SPEC.json",
                    help="evaluate an SLO spec over the run and attach "
                         "the result to the report (informational; use "
                         "slo-report to gate on it)")
    ap.add_argument("--chaos", action="store_true",
                    help="chaos report mode (needs --faults and --slo): "
                         "re-score the SLO spec over traffic completing "
                         "after the last scripted disruption and exit "
                         "nonzero unless the system recovered")
    ap.add_argument("--metrics", action="store_true",
                    help="print the serving metrics registry")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of a table")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return int(e.code or 0)
    rc = _check_traffic_args(args, "serve-sim")
    if rc != EXIT_OK:
        return rc
    if args.chaos and not (args.faults and args.slo):
        print("--chaos requires both --faults and --slo", file=sys.stderr)
        return EXIT_USAGE

    from .obs import (MetricsRegistry, Tracer, evaluate_slo, write_chrome_trace,
                      write_collapsed, write_prometheus)
    from .obs.slo import SLOSpec
    spec = None
    if args.slo:
        try:
            spec = SLOSpec.load(args.slo)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load SLO spec {args.slo}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    metrics = MetricsRegistry()
    # --latency-out also traces: request timelines feed the exact
    # latency `decomposition` section of the latency JSON
    tracer = (Tracer() if (args.trace_out or args.flame_out
                           or args.latency_out) else None)
    try:
        sim, report = _run_traffic(args, metrics, tracer)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    slo_report = None
    rejected = getattr(sim.last_server, "rejected", [])
    if spec is not None:
        slo_report = evaluate_slo(spec, sim.last_server.responses,
                                  rejected=rejected)
        report.slo = slo_report.to_json()
    recovered = True
    if args.chaos:
        # recovery gate: score only traffic that outlived the scripted
        # chaos — the run may burn budget *during* the outage, but the
        # post-fault tail must meet the SLO or the exit status says so
        cut = sim.faults.last_disruption_s() if sim.faults else 0.0
        post = [r for r in sim.last_server.responses if r.finish_s >= cut]
        post_rej = [j for j in rejected if j.t_s >= cut]
        recovery = (evaluate_slo(spec, post, rejected=post_rej)
                    if post else None)
        recovered = recovery is not None and recovery.ok
        report.chaos = {
            "recovery_from_s": cut,
            "post_responses": len(post),
            "post_rejected": len(post_rej),
            "recovered": recovered,
            "slo": None if recovery is None else recovery.to_json(),
        }
    if args.json:
        print(_json.dumps(report.to_json(), indent=2, default=str))
    else:
        print(report.render())
        for fb in sim.last_server.fallbacks:
            print(f"  fallback {fb.app} x{fb.requests}: {fb.reason}")
        if slo_report is not None:
            print(slo_report.render())
    if args.metrics:
        print(metrics.render())
    if args.latency_out:
        with open(args.latency_out, "w") as fh:
            _json.dump(report.to_json(), fh, indent=1, default=str)
            fh.write("\n")
        print(f"wrote latency report to {args.latency_out}")
    if args.trace_out:
        write_chrome_trace(args.trace_out, tracer)
        print(f"wrote Chrome trace to {args.trace_out}")
    if args.flame_out:
        write_collapsed(args.flame_out, tracer)
        print(f"wrote flamegraph stacks to {args.flame_out}")
    if args.metrics_out:
        write_prometheus(args.metrics_out, metrics)
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    if args.chaos:
        if not recovered:
            print("CHAOS: SLO not recovered after the last scripted fault",
                  file=sys.stderr)
            return EXIT_FAIL
        if not args.json:
            print("CHAOS: post-fault traffic meets the SLO")
    return EXIT_OK


def slo_main(argv=None) -> int:
    """``repro.tools slo-report <app> --spec SPEC``: evaluate SLOs over a
    simulated serving run; exit 1 when any objective's error budget is
    exhausted (the CI gate)."""
    ap = argparse.ArgumentParser(
        prog="repro.tools slo-report",
        description="Run the serving simulator and score the responses "
                    "against a declarative SLO spec: latency-percentile "
                    "and availability objectives, error-budget "
                    "consumption, and sliding-window burn rates over "
                    "the simulated timeline.")
    _add_traffic_args(ap)
    ap.add_argument("--spec", required=True, metavar="SPEC.json",
                    help="SLO spec file (see examples/slo_serving.json)")
    ap.add_argument("--out", metavar="FILE.json",
                    help="write the evaluation as JSON")
    ap.add_argument("--json", action="store_true",
                    help="print the evaluation as JSON instead of a table")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return int(e.code or 0)
    rc = _check_traffic_args(args, "slo-report")
    if rc != EXIT_OK:
        return rc

    from .obs import evaluate_slo
    from .obs.slo import SLOSpec
    try:
        spec = SLOSpec.load(args.spec)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load SLO spec {args.spec}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        sim, _report = _run_traffic(args, None, None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    result = evaluate_slo(spec, sim.last_server.responses,
                          rejected=getattr(sim.last_server, "rejected", []))
    if args.json:
        print(_json.dumps(result.to_json(), indent=2, default=str))
    else:
        print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(result.to_json(), fh, indent=1, default=str)
            fh.write("\n")
        print(f"wrote SLO report to {args.out}")
    if not result.ok:
        print("SLO VIOLATED: error budget exhausted", file=sys.stderr)
        return EXIT_FAIL
    return EXIT_OK


def _analyze_critical(app: str, backend, as_json: bool) -> int:
    """Simulate ``app`` on its bundled dataset with tracing and print the
    critical path of the priced run."""
    from .bench.apps import get_bundle
    from .obs import Tracer
    from .obs.critical import critical_path
    bundle = get_bundle(app)
    tracer = Tracer()
    bundle.simulate("opt", tracer=tracer, backend=backend)
    root = tracer.last_run
    root.name = app
    cp = critical_path(root)
    if as_json:
        print(_json.dumps(cp.to_json(), indent=2, sort_keys=True))
    else:
        print(cp.render())
        dom = cp.dominant(kind="loop")
        if dom is not None:
            print(f"dominant loop: {dom.span.name} "
                  f"(self {dom.self_s * 1e3:.3f} ms of "
                  f"{cp.total_s * 1e3:.3f} ms)")
        print(f"self-time attribution covers "
              f"{cp.attributed_s * 1e3:.3f} ms of "
              f"{cp.total_s * 1e3:.3f} ms end-to-end")
    return EXIT_OK


def _analyze_diff(app: str, ref_a: str, ref_b: str, history,
                  window: int, as_json: bool) -> int:
    """Differential diff of two history records of ``app``."""
    from .obs.analyze import RootCause, root_cause_json
    from .obs.history import load_history
    records = load_history(app, history)
    if len(records) < 2:
        print(f"analyze --diff: {app} has {len(records)} history "
              f"record(s); need two to diff — nothing to report")
        return EXIT_OK

    def resolve(ref: str) -> int:
        if ref == "latest":
            return len(records) - 1
        if ref == "prev":
            return len(records) - 2
        i = int(ref)                       # may raise ValueError
        return i if i >= 0 else len(records) + i

    try:
        ia, ib = resolve(ref_a), resolve(ref_b)
        rec_a, rec_b = records[ia], records[ib]
    except (ValueError, IndexError):
        print(f"analyze --diff: refs must be 'latest', 'prev' or an "
              f"index into {len(records)} records; got "
              f"{ref_a!r} {ref_b!r}", file=sys.stderr)
        return EXIT_USAGE
    rc = RootCause(app, rec_a, rec_b, window,
                   baseline_desc=f"explicit diff: record {ia} vs {ib}")
    from .obs.analyze import diff_loop_rows
    rows_a = rec_a.extra.get("per_loop")
    rows_b = rec_b.extra.get("per_loop")
    if rows_a and rows_b:
        rc.loop_deltas = diff_loop_rows(rows_a, rows_b)
    else:
        rc.notes.append("per-loop breakdown missing on at least one "
                        "record; loop attribution unavailable")
    if rc.digest_drifted:
        from collections import Counter
        ka = Counter(rec_a.extra.get("decisions") or [])
        kb = Counter(rec_b.extra.get("decisions") or [])
        rc.ledger_only_baseline = sorted((ka - kb).elements())
        rc.ledger_only_latest = sorted((kb - ka).elements())
    if as_json:
        print(root_cause_json(rc))
    else:
        print(rc.render())
    return EXIT_OK


def _analyze_requests(app: str, args) -> int:
    """Seeded serving run; print the exact per-request latency
    decomposition and fleet bottleneck attribution."""
    from .obs import Tracer
    from .obs.analyze import COMPONENTS, request_decomposition
    from .obs.critical import fleet_attribution
    from .serve import ServeSim
    tracer = Tracer()
    sim = ServeSim([app], machines=args.machines, max_batch=args.batch,
                   max_wait_s=args.max_wait_ms / 1e3, policy=args.policy,
                   backend=args.backend or "numpy", tracer=tracer)
    if args.rate is not None:
        report = sim.run_open(args.rate, args.count, seed=args.seed)
    else:
        report = sim.run_closed(args.clients, args.count, seed=args.seed)
    rows = request_decomposition(sim.last_server)
    # the decomposition identity is exact by construction; verify it
    # anyway so a future refactor can't silently break the contract
    inexact = [r["rid"] for r in rows
               if sum(r[c] for c in COMPONENTS) != r["latency_s"]]
    fleet = fleet_attribution(tracer.last_run)
    if args.json:
        doc = {"app": app, "mode": report.mode, "seed": args.seed,
               "exact": not inexact,
               "requests": rows,
               "decomposition": report.decomposition,
               "fleet": fleet.to_json()}
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        from .report.tables import render_table
        trows = [[r["rid"], r["app"], r["machine"]]
                 + [f"{r[c] * 1e3:.3f}" for c in COMPONENTS]
                 + [f"{r['latency_s'] * 1e3:.3f}"] for r in rows]
        print(render_table(
            ["rid", "app", "machine", "admission", "batch win",
             "dispatch", "stagger", "execution", "latency ms"],
            trows, title=f"per-request latency decomposition ({app}, "
                         f"seed {args.seed}, all columns ms)"))
        print(fleet.render())
        if inexact:
            print(f"DECOMPOSITION INEXACT for rids {inexact}",
                  file=sys.stderr)
        else:
            print(f"decomposition exact: components sum to latency "
                  f"(tol 0.0) for all {len(rows)} requests")
    return EXIT_FAIL if inexact else EXIT_OK


def analyze_main(argv=None) -> int:
    """``repro.tools analyze``: trace analytics over the simulated
    runtime — critical path, history diff, request decomposition."""
    ap = argparse.ArgumentParser(
        prog="repro.tools analyze",
        description="Turn recorded telemetry into answers: extract the "
                    "critical path of a priced run (--critical-path, the "
                    "default), attribute the delta between two benchmark "
                    "history records to specific loops and machines "
                    "(--diff A B), or decompose every request's latency "
                    "of a seeded serving run exactly (--requests).")
    ap.add_argument("app", nargs="?", help="application name")
    ap.add_argument("--critical-path", action="store_true",
                    help="extract the critical path of one simulated run "
                         "(default mode)")
    ap.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                    help="diff two history records; refs are 'latest', "
                         "'prev', or an integer index (negative counts "
                         "from the end)")
    ap.add_argument("--requests", action="store_true",
                    help="run a seeded serving simulation and print the "
                         "exact per-request latency decomposition plus "
                         "fleet bottleneck attribution")
    ap.add_argument("--json", action="store_true",
                    help="emit JSON (deterministic: sorted keys; "
                         "byte-identical for the same seed)")
    ap.add_argument("--history", default=None,
                    help="history directory for --diff "
                         "(default: benchmarks/history)")
    ap.add_argument("--window", type=int, default=8,
                    help="window label recorded on --diff reports "
                         "(default %(default)s)")
    ap.add_argument("--backend", choices=("reference", "numpy"),
                    default=None,
                    help="functional engine (default: $REPRO_BACKEND or "
                         "reference; --requests defaults to numpy)")
    ap.add_argument("--count", type=int, default=16,
                    help="--requests: total requests (default %(default)s)")
    ap.add_argument("--clients", type=int, default=4,
                    help="--requests: closed-loop clients "
                         "(default %(default)s)")
    ap.add_argument("--rate", type=float, default=None, metavar="RPS",
                    help="--requests: open-loop arrival rate "
                         "(default: closed loop)")
    ap.add_argument("--batch", type=int, default=8,
                    help="--requests: max lane-packed batch "
                         "(default %(default)s)")
    ap.add_argument("--max-wait-ms", type=float, default=20.0,
                    help="--requests: admission window "
                         "(default %(default)s)")
    ap.add_argument("--machines", default="numa", metavar="SPEC",
                    help="--requests: machine fleet (default %(default)s)")
    ap.add_argument("--policy",
                    choices=("round-robin", "least-loaded", "fastest"),
                    default="round-robin",
                    help="--requests: placement policy")
    ap.add_argument("--seed", type=int, default=0,
                    help="--requests: traffic seed (same seed, "
                         "byte-identical --json output)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return int(e.code or 0)
    if not args.app:
        print("analyze requires an application name", file=sys.stderr)
        return EXIT_USAGE

    if args.diff is not None:
        return _analyze_diff(args.app, args.diff[0], args.diff[1],
                             args.history, args.window, args.json)

    from .bench.apps import _FACTORIES
    if args.app not in _FACTORIES:
        print(f"analyze needs a bundled dataset; apps with one: "
              f"{', '.join(sorted(_FACTORIES))}", file=sys.stderr)
        return EXIT_USAGE
    if args.requests:
        return _analyze_requests(args.app, args)
    return _analyze_critical(args.app, args.backend, args.json)


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "serve-sim":
        return serve_main(argv[1:])
    if argv and argv[0] == "slo-report":
        return slo_main(argv[1:])
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    ap = argparse.ArgumentParser(prog="repro.tools", description=__doc__)
    ap.add_argument("app", nargs="?", help="application name (see --list)")
    ap.add_argument("--list", action="store_true", help="list applications")
    ap.add_argument("--stage", choices=("staged", "compiled"),
                    default="compiled")
    ap.add_argument("--target", choices=("cpu", "distributed", "gpu"),
                    default="distributed")
    ap.add_argument("--emit", choices=("ir", "cpp", "cuda", "scala"),
                    default="ir")
    ap.add_argument("--report", action="store_true",
                    help="print the partitioning/stencil report")
    ap.add_argument("--trace", action="store_true",
                    help="print the per-pass compilation trace")
    ap.add_argument("--verify-each", action="store_true",
                    help="run the structural IR verifier after every pass")
    ap.add_argument("--no-transforms", action="store_true",
                    help="disable the Fig. 3 nested pattern rules")
    ap.add_argument("--profile", action="store_true",
                    help="simulate the app on its bundled dataset and "
                         "print the per-loop time breakdown")
    ap.add_argument("--trace-out", metavar="FILE.json",
                    help="write a Chrome-trace (Perfetto) JSON of the "
                         "simulated run")
    ap.add_argument("--flame-out", metavar="FILE.txt",
                    help="write a collapsed-stack flamegraph of the "
                         "simulated run's span tree")
    ap.add_argument("--metrics", action="store_true",
                    help="print runtime metrics of the simulated run")
    ap.add_argument("--metrics-out", metavar="FILE.prom",
                    help="write runtime metrics in Prometheus/OpenMetrics "
                         "text format")
    ap.add_argument("--backend", choices=("reference", "numpy"),
                    default=None,
                    help="functional execution engine for observed runs "
                         "(default: $REPRO_BACKEND or reference)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return int(e.code or 0)

    if args.list:
        print("applications:", ", ".join(sorted(_APPS)))
        return EXIT_OK
    if not args.app:
        # flags without an app used to print the app list and exit 0,
        # silently dropping the requested action — that's bad usage
        acted = (args.report or args.trace or args.verify_each
                 or args.no_transforms or args.profile or args.trace_out
                 or args.metrics or args.flame_out or args.metrics_out)
        if acted:
            print("an application name is required with these flags; "
                  "see --list", file=sys.stderr)
            return EXIT_USAGE
        print("applications:", ", ".join(sorted(_APPS)))
        return EXIT_OK
    if args.app not in _APPS:
        print(f"unknown app {args.app!r}; use --list", file=sys.stderr)
        return EXIT_USAGE

    observed = (args.profile or args.trace_out or args.metrics
                or args.flame_out or args.metrics_out)
    prog = _APPS[args.app]()
    if args.stage == "staged":
        # everything below needs a compiled program; --report used to be
        # *silently* ignored here (same flag-dropping class of bug as the
        # --emit one) — reject it loudly like the others
        if args.trace or args.verify_each or args.report or observed:
            print("--trace/--verify-each/--report/--profile/--trace-out/"
                  "--metrics require compilation; drop --stage staged",
                  file=sys.stderr)
            return EXIT_USAGE
        print(_emit(prog, args.emit))
        return 0

    if observed and not (args.trace or args.report):
        # the observed run compiles through its AppBundle; skip the
        # redundant inspection compile
        return _run_observed(args)

    compiled = compile_program(prog, args.target,
                               apply_nested_transforms=not args.no_transforms,
                               verify=args.verify_each)
    if args.trace:
        print(trace_table(compiled.trace))
        total = sum(t.wall_ms for t in compiled.trace)
        changed = sum(1 for t in compiled.trace if t.changed)
        print(f"{len(compiled.trace)} passes, {changed} changed the "
              f"program, {total:.2f} ms total")
    if args.report:
        print("applied rules:", compiled.report.applied_rules or "fusion only")
        for w in compiled.warnings:
            print("warning:", w)
        for ls in compiled.stencils.values():
            reads = {str(s): v.value for s, v in ls.reads.items()}
            print(f"loop {ls.loop_sym}: {reads}")
        for sym, layout in compiled.report.layouts.items():
            print(f"  {sym}: {layout.value}")
    if observed:
        return _run_observed(args)
    if args.trace or args.report:
        return 0

    print(_emit(compiled.program, args.emit))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
