"""Code generation base: shared expression/statement emission.

DMLL reuses Delite's heterogeneous code generators (§5: Scala, C++,
CUDA). These emitters produce human-readable source demonstrating how the
*same* multiloop lowers differently per target — e.g. a ``Collect`` is an
append loop on the CPU but a two-phase size-then-write kernel on the GPU,
and buckets hash on the CPU but sort on the GPU (§3.1).

The generated sources are artifacts (inspectable, testable for structure);
execution in this reproduction happens on the simulated runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import types as T
from ..core.ir import Block, Const, Def, Exp, Program, Sym
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..core.ops import (ArrayApply, ArrayLength, ArrayLit, BucketKeys,
                        BucketLookup, CollPrim, IfThenElse, InputSource,
                        MakeKeyed, Prim, StructField, StructNew)

_INFIX = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "and": "&&", "or": "||",
}

_CALLS = {
    "exp": "exp", "log": "log", "sqrt": "sqrt", "abs": "fabs",
    "pow": "pow", "min": "min", "max": "max", "sigmoid": "sigmoid",
    "neg": "-", "not": "!",
}


class Emitter:
    """Base class; subclasses override type names and loop lowering."""

    target = "generic"
    comment = "//"

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self.struct_defs: Dict[str, T.Struct] = {}

    # -- helpers -----------------------------------------------------------

    def out(self, line: str = "") -> None:
        self.lines.append("  " * self.indent + line if line else "")

    def name(self, s: Sym) -> str:
        return f"{s.name}_{s.id}"

    def exp(self, e: Exp) -> str:
        if isinstance(e, Const):
            return self.literal(e)
        assert isinstance(e, Sym)
        return self.name(e)

    def literal(self, c: Const) -> str:
        v = c.value
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, float):
            return repr(v)
        if isinstance(v, str):
            return f"\"{v}\""
        if isinstance(v, (list, tuple)) and not v:
            return self.empty_coll(c.tpe)
        return str(v)

    def empty_coll(self, tpe: T.Type) -> str:
        return "{}"

    def type_name(self, t: T.Type) -> str:
        raise NotImplementedError

    def _collect_structs(self, t: T.Type) -> None:
        if isinstance(t, T.Struct):
            self.struct_defs[t.name] = t
            for _, ft in t.fields:
                self._collect_structs(ft)
        elif isinstance(t, (T.Coll, T.KeyedColl)):
            self._collect_structs(t.elem)

    # -- program -----------------------------------------------------------

    def emit_program(self, prog: Program, name: str = "dmll_main") -> str:
        self.lines = []
        for d in prog.body.stmts:
            for s in d.syms:
                self._collect_structs(s.tpe)
        self.prelude(prog, name)
        for d in prog.body.stmts:
            self.emit_def(d, top=True)
        self.epilogue(prog)
        return "\n".join(self.lines)

    def prelude(self, prog: Program, name: str) -> None:
        raise NotImplementedError

    def epilogue(self, prog: Program) -> None:
        raise NotImplementedError

    # -- statements ----------------------------------------------------------

    def emit_block_stmts(self, b: Block) -> None:
        for d in b.stmts:
            self.emit_def(d)

    def emit_def(self, d: Def, top: bool = False) -> None:
        op = d.op
        if isinstance(op, MultiLoop):
            self.emit_loop(d, op, top)
            return
        if isinstance(op, IfThenElse):
            s = d.sym
            self.declare(s)
            self.out(f"if ({self.exp(op.cond)}) {{")
            self.indent += 1
            self.emit_block_stmts(op.then_block)
            self.assign(s, self.exp(op.then_block.result))
            self.indent -= 1
            self.out("} else {")
            self.indent += 1
            self.emit_block_stmts(op.else_block)
            self.assign(s, self.exp(op.else_block.result))
            self.indent -= 1
            self.out("}")
            return
        self.define(d.sym, self.rhs(op, d))

    def rhs(self, op, d: Def) -> str:
        if isinstance(op, Prim):
            args = [self.exp(a) for a in op.args]
            if op.name in _INFIX:
                return f"({args[0]} {_INFIX[op.name]} {args[1]})"
            if op.name in ("to_double", "to_int", "to_long"):
                return self.cast(op.name, args[0])
            if op.name in ("neg", "not"):
                return f"({_CALLS[op.name]}{args[0]})"
            fn = _CALLS.get(op.name, op.name)
            return f"{fn}({', '.join(args)})"
        if isinstance(op, ArrayApply):
            return self.array_read(self.exp(op.arr), self.exp(op.idx))
        if isinstance(op, ArrayLength):
            return self.array_len(self.exp(op.arr))
        if isinstance(op, StructField):
            return f"{self.exp(op.struct)}.{op.fname}"
        if isinstance(op, StructNew):
            vals = ", ".join(self.exp(v) for v in op.values)
            return self.struct_ctor(op.struct_type, vals)
        if isinstance(op, BucketLookup):
            return self.bucket_lookup(self.exp(op.coll), self.exp(op.key))
        if isinstance(op, BucketKeys):
            return f"{self.exp(op.coll)}.keys()"
        if isinstance(op, MakeKeyed):
            return self.make_keyed(self.exp(op.keys), self.exp(op.values))
        if isinstance(op, ArrayLit):
            return self.array_lit(op)
        if isinstance(op, InputSource):
            return self.input_read(op)
        if isinstance(op, CollPrim):
            args = ", ".join(self.exp(a) for a in op.args)
            return f"dmll::{op.name}({args})"
        return f"/* unhandled {op.op_name()} */"

    # -- hooks ---------------------------------------------------------------

    def declare(self, s: Sym) -> None:
        self.out(f"{self.type_name(s.tpe)} {self.name(s)};")

    def define(self, s: Sym, rhs: str) -> None:
        self.out(f"{self.type_name(s.tpe)} {self.name(s)} = {rhs};")

    def assign(self, s: Sym, rhs: str) -> None:
        self.out(f"{self.name(s)} = {rhs};")

    def cast(self, kind: str, arg: str) -> str:
        t = {"to_double": "double", "to_int": "int32_t",
             "to_long": "int64_t"}[kind]
        return f"(({t}) {arg})"

    def array_read(self, arr: str, idx: str) -> str:
        return f"{arr}[{idx}]"

    def array_len(self, arr: str) -> str:
        return f"{arr}.size()"

    def struct_ctor(self, st: T.Struct, vals: str) -> str:
        return f"{st.name}{{{vals}}}"

    def bucket_lookup(self, coll: str, key: str) -> str:
        return f"{coll}.lookup({key})"

    def make_keyed(self, keys: str, values: str) -> str:
        return f"dmll::make_keyed({keys}, {values})"

    def array_lit(self, op: ArrayLit) -> str:
        inner = ", ".join(self.exp(e) for e in op.elems)
        return f"{{{inner}}}"

    def input_read(self, op: InputSource) -> str:
        return f"dmll::read_input<{self.type_name(op.tpe)}>(\"{op.label}\")"

    def emit_loop(self, d: Def, loop: MultiLoop, top: bool) -> None:
        raise NotImplementedError
