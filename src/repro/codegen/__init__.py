"""Heterogeneous code generators (C++ / CUDA / Scala), mirroring the
Delite backends DMLL reuses (§5)."""

from .cpp import CppEmitter, generate_cpp
from .cuda import CudaEmitter, generate_cuda
from .scala import ScalaEmitter, generate_scala

__all__ = ["CppEmitter", "generate_cpp", "CudaEmitter", "generate_cuda",
           "ScalaEmitter", "generate_scala"]
