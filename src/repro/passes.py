"""Pass management: named passes, per-pass verification and tracing, and
a differential (per-pass semantics bisection) mode.

Every phase of the compile pipeline runs through a :class:`PassManager`.
After each pass the manager optionally re-verifies the IR
(:mod:`repro.core.verify`) and optionally re-interprets the program on a
small canned input, comparing against the staged program's results — so a
semantics-breaking rewrite is attributed to the exact pass that
introduced it rather than discovered at the end of the pipeline. Each
executed pass leaves a :class:`PassTrace` (wall time, statement and loop
counts before/after, rules applied), which is the single source of truth
for ``report.applied_rules`` — replacing the per-call ``applied_log``
threading that used to drop rule applications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .core.ir import Program, iter_defs
from .core.multiloop import MultiLoop
from .core.verify import IRVerificationError, verify_program
from .obs import provenance


@dataclass
class PassTrace:
    """Observable record of one executed pass."""

    name: str
    phase: str
    wall_ms: float
    stmts_before: int
    stmts_after: int
    loops_before: int
    loops_after: int
    #: rewrite-rule names this pass applied, in application order
    rules: List[str] = field(default_factory=list)
    #: rule applications / internal fixpoint rounds, when the pass has them
    iterations: int = 1

    @property
    def changed(self) -> bool:
        return (self.stmts_before != self.stmts_after
                or self.loops_before != self.loops_after
                or bool(self.rules))

    def row(self) -> str:
        delta = "" if not self.rules else " [" + ", ".join(self.rules) + "]"
        return (f"{self.phase:<12} {self.name:<18} "
                f"stmts {self.stmts_before:>3} -> {self.stmts_after:<3} "
                f"loops {self.loops_before:>2} -> {self.loops_after:<2} "
                f"{self.wall_ms:7.2f} ms{delta}")


@dataclass(frozen=True)
class Pass:
    """A named rewrite: ``fn(program, rule_log) -> program``."""

    name: str
    fn: Callable[[Program, List[str]], Program]


class PassSemanticsError(Exception):
    """Differential checking found the first pass that changed results."""

    def __init__(self, pass_name: str, phase: str, expected, got):
        self.pass_name = pass_name
        self.phase = phase
        self.expected = expected
        self.got = got
        super().__init__(
            f"pass {pass_name!r} (phase {phase!r}) changed program "
            f"semantics: expected {expected!r}, got {got!r}")


def program_counts(prog: Program) -> Tuple[int, int]:
    """(total statements, total multiloops) across all nesting levels."""
    stmts = loops = 0
    for d in iter_defs(prog.body, recursive=True):
        stmts += 1
        if isinstance(d.op, MultiLoop):
            loops += 1
    return stmts, loops


# ---------------------------------------------------------------------------
# Pass constructors
# ---------------------------------------------------------------------------

def function_pass(fn: Callable[[Program], Program],
                  name: Optional[str] = None) -> Pass:
    """Wrap a plain ``Program -> Program`` function."""
    pname = name or getattr(fn, "pass_name", fn.__name__)
    return Pass(pname, lambda prog, log: fn(prog))


def logging_pass(fn: Callable[..., Program],
                 name: Optional[str] = None) -> Pass:
    """Wrap a function with a ``log=`` rule-log keyword (e.g. aos_to_soa)."""
    pname = name or getattr(fn, "pass_name", fn.__name__)
    return Pass(pname, lambda prog, log: fn(prog, log=log))


def rule_pass(name: str, rules: Sequence) -> Pass:
    """Exhaustive application of Fig. 3 rewrite rules as one pass."""
    from .transforms import apply_rules_everywhere

    def fn(prog: Program, log: List[str]) -> Program:
        return apply_rules_everywhere(prog, tuple(rules), log=log)

    return Pass(name, fn)


def partition_pass(name: str, rules=None,
                   reports: Optional[list] = None) -> Pass:
    """Algorithm 1 partitioning (+ stencil-triggered rewrites) as a pass.

    The produced :class:`PartitionReport` is appended to ``reports``; the
    rules it applied go to the trace like any other pass's.
    """
    from .analysis.partitioning import partition_and_transform
    from .transforms import DISTRIBUTION_RULES

    def fn(prog: Program, log: List[str]) -> Program:
        p, rep = partition_and_transform(
            prog, rules=DISTRIBUTION_RULES if rules is None else rules)
        log.extend(rep.applied_rules)
        if reports is not None:
            reports.append(rep)
        return p

    return Pass(name, fn)


def standard_passes() -> Dict[str, Pass]:
    """The named generic optimizations (stable names, DESIGN.md §6c)."""
    from .optim.code_motion import code_motion
    from .optim.cse import cse
    from .optim.dce import dce
    from .optim.fusion import fuse_horizontal, fuse_vertical
    from .optim.length_rewrite import rewrite_lengths
    from .optim.soa import aos_to_soa
    out = {}
    for p in (function_pass(cse), function_pass(dce),
              function_pass(fuse_vertical), function_pass(fuse_horizontal),
              function_pass(rewrite_lengths), function_pass(code_motion),
              logging_pass(aos_to_soa)):
        out[p.name] = p
    return out


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

class PassManager:
    """Runs passes; verifies, traces, and differentially checks each one.

    ``verify``
        re-run the structural IR verifier after every pass (cheap).
    ``differential_inputs``
        a dict of program inputs; when given, the program is interpreted
        after every pass and compared against the results of the program
        the manager first saw — turning the end-to-end
        ``interp(optimize(g)) == interp(g)`` property into a bisection
        tool that names the first semantics-breaking pass.
    """

    def __init__(self, verify: bool = False,
                 differential_inputs: Optional[Dict[str, object]] = None,
                 tol: float = 1e-9):
        self.verify = verify
        self.differential_inputs = differential_inputs
        self.tol = tol
        self.traces: List[PassTrace] = []
        self._reference: Optional[tuple] = None

    # -- execution -------------------------------------------------------

    def run(self, prog: Program, passes: Sequence[Pass],
            phase: str = "") -> Program:
        for p in passes:
            prog = self.run_pass(prog, p, phase)
        return prog

    def run_pass(self, prog: Program, p: Pass, phase: str = "") -> Program:
        if self.differential_inputs is not None and self._reference is None:
            self._reference = self._interpret(prog)
        led = provenance.active()
        if led is not None:
            # decisions emitted during this pass carry its name/phase and
            # the ordinal of the IR snapshot they were taken on
            led.begin_pass(p.name, phase)
        log: List[str] = []
        stmts_before, loops_before = program_counts(prog)
        t0 = time.perf_counter()
        new_prog = p.fn(prog, log)
        wall_ms = (time.perf_counter() - t0) * 1e3
        stmts_after, loops_after = program_counts(new_prog)
        self.traces.append(PassTrace(
            name=p.name, phase=phase, wall_ms=wall_ms,
            stmts_before=stmts_before, stmts_after=stmts_after,
            loops_before=loops_before, loops_after=loops_after,
            rules=log, iterations=max(1, len(log))))
        if self.verify:
            try:
                verify_program(new_prog)
            except IRVerificationError as e:
                raise IRVerificationError(
                    f"IR broken after pass {p.name!r} (phase {phase!r}): {e}",
                    e.offending, e.path) from e
        if self.differential_inputs is not None:
            got = self._interpret(new_prog)
            from .core.values import deep_eq
            if not deep_eq(self._reference, got, tol=self.tol):
                raise PassSemanticsError(p.name, phase, self._reference, got)
        return new_prog

    def _interpret(self, prog: Program) -> tuple:
        from .core.interp import run_program
        from .optim.soa import soa_input_values
        inputs = soa_input_values(prog, dict(self.differential_inputs))
        results, _ = run_program(prog, inputs)
        return results

    # -- trace accessors -------------------------------------------------

    def applied_rules(self) -> List[str]:
        """All rewrite-rule applications, across every phase, in order."""
        return [r for t in self.traces for r in t.rules]

    def trace_table(self) -> str:
        return trace_table(self.traces)


def trace_table(traces: Sequence[PassTrace]) -> str:
    """Human-readable per-pass table (the ``repro.tools --trace`` output)."""
    header = (f"{'phase':<12} {'pass':<18} {'stmts':<16} "
              f"{'loops':<12} {'time':>10}")
    return "\n".join([header] + [t.row() for t in traces])
