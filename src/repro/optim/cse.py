"""Common subexpression elimination.

Structural, per-scope: two statements with equal ops (same class, same
operands after prior remappings) are merged. Ops carrying nested blocks are
only merged when literally equal, which fresh bound symbols make rare —
loop-level deduplication is horizontal fusion's job, not CSE's.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.ir import Block, Def, Exp, Op, Program, Sym, subst_op
from ..obs.provenance import APPLIED, DecisionKind, emit


def cse_block(block: Block) -> Block:
    seen: Dict[Op, Def] = {}
    env: Dict[Sym, Exp] = {}
    out: List[Def] = []
    for d in block.stmts:
        op = subst_op(d.op, env)
        op = op.with_children(list(op.inputs()), [cse_block(b) for b in op.blocks()])
        prev = _lookup(seen, op)
        if prev is not None and len(prev.syms) == len(d.syms):
            emit(DecisionKind.CSE, repr(d.syms[0]), APPLIED,
                 f"merged duplicate {op.op_name()} into earlier "
                 f"{prev.syms[0]!r}", kept=repr(prev.syms[0]))
            for old, new in zip(d.syms, prev.syms):
                env[old] = new
            continue
        nd = Def(d.syms, op)
        _insert(seen, op, nd)
        out.append(nd)
    results = tuple(env.get(r, r) if isinstance(r, Sym) else r for r in block.results)
    return Block(block.params, tuple(out), results)


def _lookup(seen: Dict[Op, Def], op: Op):
    try:
        return seen.get(op)
    except TypeError:  # unhashable op contents
        return None


def _insert(seen: Dict[Op, Def], op: Op, d: Def) -> None:
    try:
        seen[op] = d
    except TypeError:
        pass


def cse(prog: Program) -> Program:
    return Program(prog.inputs, cse_block(prog.body))


cse.pass_name = "cse"
