"""Length rewrites.

``len(C)`` where ``C`` is a scope-local Collect is either the producer's
size (unconditional Collect) or a count of passing elements (filtering
Collect). Rewriting lengths this way lets DCE remove collections that were
only materialized to be counted — in k-means it is what turns
``as.count`` into a conditional count that the Conditional Reduce rule and
horizontal fusion then lower into the ``cs`` bucket-reduce of Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import types as T
from ..core.ir import (Block, Const, Def, Exp, Program, Sym, fresh,
                       refresh_block, subst_op)
from ..core.multiloop import GenKind, Generator, MultiLoop, loop_def, reduce_gen
from ..core.ops import ArrayLength, Prim
from ..obs.provenance import APPLIED, DecisionKind, emit


def _count_reducer() -> Block:
    a = fresh(T.INT, "a")
    b = fresh(T.INT, "b")
    s = fresh(T.INT, "s")
    return Block((a, b), (Def((s,), Prim("add", (a, b))),), (s,))


def _rewrite_block(block: Block) -> Block:
    producers: Dict[Sym, Generator] = {}
    sizes: Dict[Sym, Exp] = {}
    env: Dict[Sym, Exp] = {}
    out: List[Def] = []
    for d in block.stmts:
        op = subst_op(d.op, env) if env else d.op
        op = op.with_children(list(op.inputs()),
                              [_rewrite_block(b) for b in op.blocks()])
        if isinstance(op, MultiLoop):
            for s, g in zip(d.syms, op.gens):
                if g.kind is GenKind.COLLECT and not g.flatten:
                    producers[s] = g
                    sizes[s] = op.size
        if isinstance(op, ArrayLength) and isinstance(op.arr, Sym) \
                and op.arr in producers:
            g = producers[op.arr]
            if g.cond is None:
                # len(map(...)) == size of the producer's range
                emit(DecisionKind.LENGTH_REWRITE, repr(d.syms[0]), APPLIED,
                     f"len({op.arr!r}) of an unconditional Collect replaced "
                     f"by the producer's range size",
                     collection=repr(op.arr))
                env[d.sym] = sizes[op.arr]
                continue
            # len(filter(...)) == conditional count over the range
            emit(DecisionKind.LENGTH_REWRITE, repr(d.syms[0]), APPLIED,
                 f"len({op.arr!r}) of a filtering Collect rewritten to a "
                 f"conditional count over the producer's range",
                 collection=repr(op.arr))
            j = fresh(T.INT, "j")
            ones = Block((j,), (), (Const(1),))
            cnt = loop_def(sizes[op.arr],
                           [reduce_gen(ones, _count_reducer(),
                                       cond=refresh_block(g.cond))],
                           ["count"])
            out.append(cnt)
            env[d.sym] = cnt.syms[0]
            continue
        out.append(Def(d.syms, op))
    results = tuple(env.get(r, r) if isinstance(r, Sym) else r
                    for r in block.results)
    return Block(block.params, tuple(out), results)


def rewrite_lengths(prog: Program) -> Program:
    return Program(prog.inputs, _rewrite_block(prog.body))


rewrite_lengths.pass_name = "rewrite-lengths"
