"""Dead code elimination.

All DMLL ops are pure, so any statement whose outputs are never referenced
(transitively from the block results) can be dropped. Runs recursively
through nested generator blocks. Fusion relies on DCE to clean up
materializations that rewrites made redundant.
"""

from __future__ import annotations

from typing import List, Set

from ..core.ir import Block, Def, Program, Sym, op_used_syms
from ..core.multiloop import MultiLoop
from ..obs.provenance import APPLIED, DecisionKind, emit


def dce_block(block: Block) -> Block:
    live: Set[Sym] = set()
    for r in block.results:
        if isinstance(r, Sym):
            live.add(r)
    kept: List[Def] = []
    for d in reversed(block.stmts):
        if not any(s in live for s in d.syms):
            emit(DecisionKind.DCE, repr(d.syms[0]), APPLIED,
                 f"dropped {d.op.op_name()}: outputs never referenced "
                 f"(transitively) from the scope results")
            continue
        op = d.op
        syms = d.syms
        if isinstance(op, MultiLoop) and len(op.gens) > 1:
            # dead generator elimination: drop outputs nobody reads
            pairs = [(s, g) for s, g in zip(syms, op.gens) if s in live]
            if pairs and len(pairs) < len(op.gens):
                dead = [s for s in syms if s not in live]
                emit(DecisionKind.DCE, repr(d.syms[0]), APPLIED,
                     f"dead generator elimination: dropped "
                     f"{', '.join(map(repr, dead))} from a "
                     f"{len(op.gens)}-generator loop",
                     dead=[repr(s) for s in dead])
                syms = tuple(s for s, _ in pairs)
                op = MultiLoop(op.size, tuple(g for _, g in pairs))
        new_blocks = [dce_block(b) for b in op.blocks()]
        op = op.with_children(list(op.inputs()), new_blocks)
        kept.append(Def(syms, op))
        live.update(op_used_syms(op))
    kept.reverse()
    return Block(block.params, tuple(kept), block.results)


def dce(prog: Program) -> Program:
    body = dce_block(prog.body)
    # program inputs are always retained: re-attach their defs if dropped
    present = {s for d in body.stmts for s in d.syms}
    missing = {s for s in prog.inputs if s not in present}
    if not missing:
        return Program(prog.inputs, body)

    # Dependency slice of the *original* body that computes the dropped
    # input syms. Re-attached defs are narrowed to the outputs that are
    # still absent (a multi-output loop may have partially survived via
    # dead generator elimination) and merged back at their original
    # statement positions so def-before-use order holds.
    orig = prog.body.stmts
    pos_of = {s: i for i, d in enumerate(orig) for s in d.syms}
    wanted: dict = {}  # original position -> syms to resurrect there
    work = sorted(missing, key=lambda s: s.id)
    queued = set(work)
    while work:
        s = work.pop()
        i = pos_of.get(s)
        if i is None:
            continue
        wanted.setdefault(i, []).append(s)
        for u in op_used_syms(orig[i].op):
            if u not in present and u not in queued and u in pos_of:
                queued.add(u)
                work.append(u)

    def narrowed(d: Def, keep: List[Sym]) -> Def:
        if len(keep) == len(d.syms):
            return d
        if isinstance(d.op, MultiLoop):
            pairs = [(s, g) for s, g in zip(d.syms, d.op.gens) if s in keep]
            return Def(tuple(s for s, _ in pairs),
                       MultiLoop(d.op.size, tuple(g for _, g in pairs)))
        raise AssertionError(
            f"program input(s) {keep!r} bound by a partially-live "
            f"non-loop multi-sym def; cannot re-attach")

    extras = sorted(wanted.items())
    merged: List[Def] = []
    ei = 0
    for d in body.stmts:
        p = pos_of.get(d.syms[0], len(orig))
        while ei < len(extras) and extras[ei][0] <= p:
            i, keep = extras[ei]
            merged.append(narrowed(orig[i], keep))
            ei += 1
        merged.append(d)
    for i, keep in extras[ei:]:
        merged.append(narrowed(orig[i], keep))
    return Program(prog.inputs, Block(body.params, tuple(merged),
                                      body.results))


dce.pass_name = "dce"
