"""Dead code elimination.

All DMLL ops are pure, so any statement whose outputs are never referenced
(transitively from the block results) can be dropped. Runs recursively
through nested generator blocks. Fusion relies on DCE to clean up
materializations that rewrites made redundant.
"""

from __future__ import annotations

from typing import List, Set

from ..core.ir import Block, Def, Program, Sym, op_used_syms
from ..core.multiloop import MultiLoop


def dce_block(block: Block) -> Block:
    live: Set[Sym] = set()
    for r in block.results:
        if isinstance(r, Sym):
            live.add(r)
    kept: List[Def] = []
    for d in reversed(block.stmts):
        if not any(s in live for s in d.syms):
            continue
        op = d.op
        syms = d.syms
        if isinstance(op, MultiLoop) and len(op.gens) > 1:
            # dead generator elimination: drop outputs nobody reads
            pairs = [(s, g) for s, g in zip(syms, op.gens) if s in live]
            if pairs and len(pairs) < len(op.gens):
                syms = tuple(s for s, _ in pairs)
                op = MultiLoop(op.size, tuple(g for _, g in pairs))
        new_blocks = [dce_block(b) for b in op.blocks()]
        op = op.with_children(list(op.inputs()), new_blocks)
        kept.append(Def(syms, op))
        live.update(op_used_syms(op))
    kept.reverse()
    return Block(block.params, tuple(kept), block.results)


def dce(prog: Program) -> Program:
    body = dce_block(prog.body)
    # program inputs are always retained: re-attach their defs if dropped
    present = {s for d in body.stmts for s in d.syms}
    missing = [s for s in prog.inputs if s not in present]
    if missing:
        orig = {d.syms[0]: d for d in prog.body.stmts if len(d.syms) == 1}
        extra = tuple(orig[s] for s in missing if s in orig)
        body = Block(body.params, extra + body.stmts, body.results)
    return Program(prog.inputs, body)
