"""Generic DMLL optimizations: fusion, CSE, DCE, code motion, AoS→SoA."""

from .code_motion import code_motion
from .cse import cse
from .dce import dce
from .fusion import fuse_horizontal, fuse_vertical

__all__ = ["code_motion", "cse", "dce", "fuse_horizontal", "fuse_vertical"]
