"""Generic DMLL optimizations: fusion, CSE, DCE, code motion, AoS→SoA.

Every pass carries a stable ``pass_name`` attribute used by the
PassManager trace (see ``repro.passes``).
"""

from .code_motion import code_motion
from .cse import cse
from .dce import dce
from .fusion import fuse_horizontal, fuse_vertical
from .length_rewrite import rewrite_lengths
from .soa import aos_to_soa

__all__ = ["code_motion", "cse", "dce", "fuse_horizontal", "fuse_vertical",
           "rewrite_lengths", "aos_to_soa"]
