"""Array-of-struct to struct-of-array (AoS→SoA) and dead field elimination.

Collections of records (``Coll[Struct]``) are split into one collection
per field; element reads followed by field projections become direct reads
of the field columns. Fields that are never read are then removed by
ordinary DCE — that is dead field elimination (§5). Besides removing
indirections, this is what lets TPC-H Q1's table live as flat primitive
arrays (Table 2) and simplifies the stencil analysis.

The transform is conservative: a collection is only split when every use
is ``len(C)`` or ``C(i).field`` — if any element escapes as a whole
struct, the collection keeps its AoS layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import types as T
from ..core.ir import (Block, Def, Exp, Program, Sym, fresh, iter_defs,
                       op_used_syms, refresh_block, subst_op)
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..core.ops import ArrayApply, ArrayLength, InputSource, StructField, StructNew
from ..obs.provenance import APPLIED, REJECTED, DecisionKind, emit


def _candidates(prog: Program) -> List[Def]:
    out = []
    for d in prog.body.stmts:
        if len(d.syms) != 1:
            continue
        t = d.syms[0].tpe
        if not (isinstance(t, T.Coll) and isinstance(t.elem, T.Struct)):
            continue
        if isinstance(d.op, InputSource):
            out.append(d)
        elif isinstance(d.op, MultiLoop) and len(d.op.gens) == 1:
            g = d.op.gens[0]
            if g.kind is GenKind.COLLECT and not g.flatten:
                out.append(d)
    return out


def _uses_splittable(prog: Program, c: Sym) -> bool:
    """Every use of ``c`` must be len(c) or a projection c(i).field."""
    elem_syms: List[Sym] = []

    def scan(block: Block) -> bool:
        for d in block.stmts:
            op = d.op
            if isinstance(op, ArrayApply) and op.arr == c:
                elem_syms.append(d.sym)
                continue
            if isinstance(op, ArrayLength) and op.arr == c:
                continue
            # direct operand uses other than the two above are blockers;
            # uses inside nested blocks are checked by the recursion
            if any(e == c for e in op.inputs() if isinstance(e, Sym)):
                return False
            for b in op.blocks():
                if not scan(b):
                    return False
        return not any(r == c for r in block.results)

    if not scan(prog.body):
        return False
    # every element read must only be projected
    for e in elem_syms:
        if not _elem_only_projected(prog.body, e):
            return False
    return True


def _used_fields(prog: Program, c: Sym) -> set:
    """Field names ever projected from elements of ``c``."""
    elems: set = set()
    fields: set = set()
    for d in iter_defs(prog.body, recursive=True):
        op = d.op
        if isinstance(op, ArrayApply) and op.arr == c:
            elems.add(d.sym)
        elif isinstance(op, StructField) and op.struct in elems:
            fields.add(op.fname)
    return fields


def _elem_only_projected(block: Block, e: Sym) -> bool:
    for d in iter_defs(block, recursive=True):
        op = d.op
        if isinstance(op, StructField) and op.struct == e:
            continue
        if any(x == e for x in op.inputs() if isinstance(x, Sym)):
            return False
        for b in op.blocks():
            if any(r == e for r in b.results):
                return False
    return not any(r == e for r in block.results)


def _split_producer(d: Def) -> Tuple[List[Def], Dict[str, Sym]]:
    """Produce one column def per struct field."""
    c = d.syms[0]
    st: T.Struct = c.tpe.elem  # type: ignore[union-attr]
    cols: Dict[str, Sym] = {}
    defs: List[Def] = []
    if isinstance(d.op, InputSource):
        for fname, ft in st.fields:
            s = fresh(T.Coll(ft), f"{c.name}_{fname}")
            defs.append(Def((s,), InputSource(T.Coll(ft),
                                              f"{d.op.label}.{fname}",
                                              d.op.partitioned)))
            cols[fname] = s
        return defs, cols
    # Collect loop: one generator per field, sharing one traversal
    loop: MultiLoop = d.op  # type: ignore[assignment]
    g = loop.gens[0]
    gens: List[Generator] = []
    syms: List[Sym] = []
    for fname, ft in st.fields:
        vb = refresh_block(g.value)
        vb = _project_result(vb, fname, ft)
        cond = refresh_block(g.cond) if g.cond is not None else None
        gens.append(Generator(GenKind.COLLECT, vb, cond=cond))
        s = fresh(T.Coll(ft), f"{c.name}_{fname}")
        syms.append(s)
        cols[fname] = s
    defs.append(Def(tuple(syms), MultiLoop(loop.size, tuple(gens))))
    return defs, cols


def _project_result(vb: Block, fname: str, ft: T.Type) -> Block:
    res = vb.result
    # if the block builds the struct locally, take the field directly
    if isinstance(res, Sym):
        for d in vb.stmts:
            if d.syms and d.syms[0] == res and isinstance(d.op, StructNew):
                names = d.op.struct_type.field_names()
                fexp = d.op.values[names.index(fname)]
                return Block(vb.params, vb.stmts, (fexp,))
    p = fresh(ft, fname)
    return Block(vb.params, vb.stmts + (Def((p,), StructField(res, fname)),),
                 (p,))


def _rewrite_uses(block: Block, c: Sym, cols: Dict[str, Sym],
                  first_col: Sym) -> Block:
    return _rewrite_uses_nested(block, c, cols, first_col, {})


def _rewrite_uses_nested(block: Block, c: Sym, cols: Dict[str, Sym],
                         first_col: Sym, outer_elems: Dict[Sym, Exp]) -> Block:
    new_stmts: List[Def] = []
    elem_reads = dict(outer_elems)
    for d in block.stmts:
        op = d.op
        if isinstance(op, ArrayApply) and op.arr == c:
            elem_reads[d.sym] = op.idx
            continue
        if isinstance(op, ArrayLength) and op.arr == c:
            new_stmts.append(Def(d.syms, ArrayLength(first_col)))
            continue
        if isinstance(op, StructField) and isinstance(op.struct, Sym) \
                and op.struct in elem_reads:
            idx = elem_reads[op.struct]
            new_stmts.append(Def(d.syms, ArrayApply(cols[op.fname], idx)))
            continue
        op = op.with_children(
            list(op.inputs()),
            [_rewrite_uses_nested(b, c, cols, first_col, elem_reads)
             for b in op.blocks()])
        new_stmts.append(Def(d.syms, op))
    return Block(block.params, tuple(new_stmts), block.results)


def aos_to_soa(prog: Program, log: Optional[List[str]] = None) -> Program:
    """Split every splittable struct collection into field columns.

    Split column inputs are intentionally *not* added to ``Program.inputs``
    so that DCE can drop the never-read ones — that is dead field
    elimination. The interpreter resolves inputs by InputSource label."""
    changed = True
    while changed:
        changed = False
        for cand in _candidates(prog):
            c = cand.syms[0]
            if not _uses_splittable(prog, c):
                emit(DecisionKind.SOA, repr(c), REJECTED,
                     "a collection element escapes as a whole struct (a "
                     "use is neither len(C) nor C(i).field); kept AoS")
                continue
            col_defs, cols = _split_producer(cand)
            st: T.Struct = c.tpe.elem  # type: ignore[union-attr]
            # lengths are rewritten against a column that is genuinely read,
            # so never-read columns stay dead for DFE
            used = _used_fields(prog, c)
            dead_fields = [n for n, _ in st.fields if n not in used]
            emit(DecisionKind.SOA, repr(c), APPLIED,
                 f"split struct collection into {len(st.fields)} field "
                 f"columns ({', '.join(n for n, _ in st.fields)})"
                 + (f"; never-read columns {', '.join(dead_fields)} left "
                    f"for dead field elimination" if dead_fields else ""),
                 fields=[n for n, _ in st.fields], dead_fields=dead_fields)
            anchor = next((n for n, _ in st.fields if n in used),
                          st.fields[0][0])
            first_col = cols[anchor]
            # replace the producer and rewrite all uses
            new_stmts: List[Def] = []
            for d in prog.body.stmts:
                if d.syms and d.syms[0] == c:
                    new_stmts.extend(col_defs)
                else:
                    new_stmts.append(d)
            body = Block(prog.body.params, tuple(new_stmts),
                         prog.body.results)
            body = _rewrite_uses(body, c, cols, first_col)
            new_inputs = tuple(s for s in prog.inputs if s != c)
            prog = Program(new_inputs, body)
            if log is not None:
                log.append("aos-to-soa")
            changed = True
            break  # candidates are stale after a rewrite; re-scan
    return prog


aos_to_soa.pass_name = "aos-to-soa"


def soa_input_values(prog: Program, inputs: Dict[str, object]) -> Dict[str, object]:
    """Split user-supplied AoS input values into the column inputs an
    SoA-transformed program expects (labels ``table.field``).

    Struct rows may be tuples (field order) or dicts (by name)."""
    out = dict(inputs)
    for d in prog.body.stmts:
        if not isinstance(d.op, InputSource):
            continue
        label = d.op.label
        if "." not in label or label in out:
            continue
        base, fname = label.rsplit(".", 1)
        if base not in inputs:
            continue
        rows = inputs[base]
        t = d.op.tpe
        st_fields = None
        first = rows[0] if len(rows) else None  # type: ignore[index]
        if isinstance(first, dict):
            out[label] = [r[fname] for r in rows]  # type: ignore[union-attr]
        else:
            # positional tuples: field index comes from the declared order
            idx = _field_index_from_program(prog, base, fname)
            out[label] = [r[idx] for r in rows]  # type: ignore[index]
    return out


_FIELD_ORDERS: Dict[str, Tuple[str, ...]] = {}


def register_table_schema(label: str, struct: T.Struct) -> None:
    """Record a table's field order so ``soa_input_values`` can split
    positional-tuple rows."""
    _FIELD_ORDERS[label] = struct.field_names()


def _field_index_from_program(prog: Program, base: str, fname: str) -> int:
    order = _FIELD_ORDERS.get(base)
    if order is None:
        raise KeyError(
            f"unknown field order for table {base!r}; call "
            f"register_table_schema or pass dict rows")
    return order.index(fname)
