"""Multiloop fusion (§3.1).

*Pipeline (vertical) fusion* implements the paper's generalized rule::

    C = Collect_s(c1)(f1)
    G_C(c2)(i => k(C(i)))(i => f2(C(i)))(r)
      -->  G_s(c1 && c2∘f1)(k∘f1)(f2∘f1)(r)

for any generator ``G`` consuming a ``Collect`` — this one rule covers
map-map, map-reduce, filter-groupBy, and every other pipeline combination.

*Horizontal fusion* merges independent loops over the same range into a
single multi-generator traversal, which is how the two ``bucketReduce``
loops of transformed k-means (Fig. 5) become one pass over the matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import types as T
from ..core.ir import (Block, Const, Def, Exp, Program, Sym, def_index,
                       fresh, inline_block, op_used_syms, refresh_block,
                       subst_op)
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..core.ops import FALSE, ArrayApply, ArrayLength, IfThenElse
from ..obs.provenance import APPLIED, REJECTED, DecisionKind, emit


# ---------------------------------------------------------------------------
# Pipeline (vertical) fusion
# ---------------------------------------------------------------------------

def _producer_lookup(block: Block) -> Dict[Sym, Tuple[Def, Generator]]:
    """Collection syms produced by fusable Collects in this scope."""
    out: Dict[Sym, Tuple[Def, Generator]] = {}
    for d in block.stmts:
        if isinstance(d.op, MultiLoop):
            for s, g in zip(d.syms, d.op.gens):
                if g.kind is GenKind.COLLECT and not g.flatten and not g.no_fuse:
                    out[s] = (d, g)
    return out


def _block_reads(block: Block, c: Sym) -> bool:
    for d in block.stmts:
        if any(s == c for s in op_used_syms(d.op)):
            return True
    return any(r == c for r in block.results)


def _refs_canonical(block: Block, c: Sym, idx: Sym) -> bool:
    """True if every use of ``c`` in ``block`` is ``c(idx)`` or ``len(c)``."""
    for d in block.stmts:
        op = d.op
        if isinstance(op, ArrayApply) and op.arr == c:
            if op.idx != idx:
                return False
        elif isinstance(op, ArrayLength) and op.arr == c:
            pass
        elif any(s == c for e in op.inputs() for s in _syms_of(e)):
            return False
        for b in op.blocks():
            if not _refs_canonical(b, c, idx):
                return False
    return not any(r == c for r in block.results)


def _syms_of(e: Exp):
    if isinstance(e, Sym):
        yield e


def _replace_reads(block: Block, c: Sym, idx: Sym, v: Exp) -> Block:
    """Rewrite ``t = c(idx)`` defs into an alias ``t -> v`` (recursively)."""
    env: Dict[Sym, Exp] = {}
    new_stmts: List[Def] = []
    for d in block.stmts:
        op = d.op
        if isinstance(op, ArrayApply) and op.arr == c and op.idx == idx:
            env[d.sym] = v
            continue
        if env:
            op = subst_op(op, env)
        op = op.with_children(
            list(op.inputs()),
            [_replace_reads(b, c, idx, v) for b in op.blocks()])
        new_stmts.append(Def(d.syms, op))
    results = tuple(env.get(r, r) if isinstance(r, Sym) else r for r in block.results)
    return Block(block.params, tuple(new_stmts), results)


def _rebind(gblock: Block, j: Sym) -> Block:
    """Fresh copy of ``gblock`` with its index parameter renamed to ``j``."""
    inner = refresh_block(
        Block(gblock.params[1:], gblock.stmts, gblock.results),
        {gblock.params[0]: j})
    return Block((j,) + inner.params, inner.stmts, inner.results)


class _Plan:
    """A chosen fusion: a producer loop def plus the subset of its Collect
    outputs the consumer reads. Multi-output producers (e.g. the column
    collections an AoS→SoA split creates) fuse as a unit so that every
    read moves to the producer's index space together."""

    __slots__ = ("p_def", "targets", "cond", "size")

    def __init__(self, p_def: Def, targets: Dict[Sym, Generator],
                 cond: Optional[Block]):
        self.p_def = p_def
        self.targets = targets
        self.cond = cond            # representative producer condition
        self.size = p_def.op.size


def _compose_at(block: Block, plan: _Plan, j: Sym) -> Block:
    """``i => g(C1(i), C2(i), ...)`` composed to the producers' index space."""
    b = _rebind(block, j)
    for c, gen in plan.targets.items():
        if _block_reads(b, c) or _nested_reads(b, c):
            pre: List[Def] = []
            v1 = inline_block(gen.value, [j], pre)
            b = _replace_reads(b, c, j, v1)
            b = Block(b.params, tuple(pre) + b.stmts, b.results)
    return b


def _nested_reads(block: Block, c: Sym) -> bool:
    for d in block.stmts:
        for b in d.op.blocks():
            if _block_reads(b, c) or _nested_reads(b, c):
                return True
    return False


def _fuse_generator(g: Generator, plan: _Plan) -> Generator:
    """The paper's rule: ``G_s(c1 && c2∘f1)(k∘f1)(f2∘f1)(r)``."""
    c1 = plan.cond

    def comp(block: Optional[Block]) -> Optional[Block]:
        if block is None:
            return None
        return _compose_at(block, plan, fresh(T.INT, "j"))

    new_key = comp(g.key)
    new_value = comp(g.value)

    if c1 is None:
        new_cond = comp(g.cond)
    elif g.cond is None:
        j = fresh(T.INT, "j")
        stmts: List[Def] = []
        res = inline_block(c1, [j], stmts)
        new_cond = Block((j,), tuple(stmts), (res,))
    else:
        # short-circuit: c1(j) && c2(f1(j))
        j = fresh(T.INT, "j")
        stmts = []
        c1_res = inline_block(c1, [j], stmts)
        c2b = _compose_at(g.cond, plan, j)
        ite = fresh(T.BOOL, "c")
        stmts.append(Def((ite,), IfThenElse(
            c1_res, Block((), c2b.stmts, c2b.results), Block((), (), (FALSE,)))))
        new_cond = Block((j,), tuple(stmts), (ite,))

    return Generator(g.kind, new_value, cond=new_cond, key=new_key,
                     reducer=g.reducer, init=g.init, flatten=g.flatten)


def _index_only_via_targets(block: Block, targets: set, param: Sym) -> bool:
    """When fusing with a *filtering* producer the consumer's index space
    changes from compacted to raw, so the index may only be used to read
    the producer's outputs (those reads are rewritten); any other use —
    arithmetic, reads of unrelated collections — would silently change
    meaning and blocks the fusion."""
    for d in block.stmts:
        op = d.op
        if isinstance(op, ArrayApply) and op.arr in targets and op.idx == param:
            continue
        if any(e == param for e in op.inputs() if isinstance(e, Sym)):
            return False
        for b in op.blocks():
            if not _index_only_via_targets(b, targets, param):
                return False
    return not any(r == param for r in block.results)


def _find_size_producer(size: Exp, idx: Dict[Sym, Def],
                        producers: Dict[Sym, Tuple[Def, Generator]]) -> Optional[Sym]:
    """Case A: loop size is ``len(C)`` for a scope-local Collect ``C``."""
    if isinstance(size, Sym):
        d = idx.get(size)
        if d is not None and isinstance(d.op, ArrayLength):
            arr = d.op.arr
            if isinstance(arr, Sym) and arr in producers:
                return arr
    return None


def _loop_reads(loop: MultiLoop, c: Sym) -> bool:
    return any(_block_reads(b, c) or _nested_reads(b, c)
               for g in loop.gens for b in g.blocks())


def _choose_fusion_target(loop: MultiLoop, idx, producers, own: set,
                          site: str = ""):
    from ..core.ir import alpha_equal

    def reject(reason: str, **ev) -> None:
        if site:
            emit(DecisionKind.FUSION_VERTICAL, site, REJECTED, reason, **ev)

    cands: List[Sym] = []
    c = _find_size_producer(loop.size, idx, producers)
    if c is not None and c not in own:
        cands.append(c)
    # Case B: unconditional producer with the identical size expression,
    # read directly by this loop.
    for sym, (p_def, p_gen) in producers.items():
        if sym in own or sym in cands:
            continue
        if p_gen.cond is None and p_def.op.size == loop.size and _loop_reads(loop, sym):
            cands.append(sym)

    for seed in cands:
        p_def, seed_gen = producers[seed]
        # every output of this producer loop that the consumer reads must
        # itself be a fusable Collect with an alpha-equivalent condition
        targets: Dict[Sym, Generator] = {}
        ok = True
        for s, g in zip(p_def.syms, p_def.op.gens):
            if not _loop_reads(loop, s):
                continue
            if s in own:
                ok = False
                break
            if g.kind is not GenKind.COLLECT or g.flatten:
                reject(f"producer output {s!r} is not a fusable Collect "
                       f"({g.kind.value}{', flatten' if g.flatten else ''}); "
                       f"the generalized rule only inlines Collects",
                       producer=repr(seed))
                ok = False
                break
            if not alpha_equal(g.cond, seed_gen.cond):
                reject(f"producer outputs {seed!r} and {s!r} have differing "
                       f"filter conditions; fusing as a unit would change "
                       f"which elements survive", producer=repr(seed))
                ok = False
                break
            targets[s] = g
        if not ok:
            continue
        if not targets:
            if seed_gen.cond is not None:
                # a filtering producer that is only used for its size: the
                # consumer's work is unrelated to the raw index space
                reject(f"filtering producer {seed!r} is read only through "
                       f"len(); the consumer's index space is unrelated to "
                       f"the producer's raw range", producer=repr(seed))
                continue
            targets = {seed: seed_gen}
        target_set = set(targets)

        for g in loop.gens:
            if g.reducer is not None:
                for t in target_set:
                    if (_block_reads(g.reducer, t)
                            or _nested_reads(g.reducer, t)):
                        reject(f"reducer reads producer output {t!r} "
                               f"(blocking dependency: the combine function "
                               f"needs the materialized collection)",
                               producer=repr(seed))
                        ok = False
                        break
            if not ok:
                break
            for b in g.blocks():
                if b is g.reducer:
                    continue
                for t in target_set:
                    if not _refs_canonical(b, t, b.params[0]):
                        reject(f"non-canonical access: {t!r} is indexed by "
                               f"something other than the loop index (or "
                               f"escapes whole); inlining the producer "
                               f"element would change meaning",
                               producer=repr(seed))
                        ok = False
                        break
                if not ok:
                    break
                if seed_gen.cond is not None and not _index_only_via_targets(
                        b, target_set, b.params[0]):
                    reject(f"filtering producer {seed!r}: the consumer uses "
                           f"the raw loop index beyond reading producer "
                           f"outputs, but fusion re-indexes from compacted "
                           f"to raw space", producer=repr(seed))
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return _Plan(p_def, targets, seed_gen.cond)
    return None


def fuse_block_once(block: Block) -> Tuple[Block, bool]:
    """One pass of pipeline fusion over a scope (recursing into bodies)."""
    producers = _producer_lookup(block)
    idx = def_index(block)
    changed = False
    new_stmts: List[Def] = []
    for d in block.stmts:
        nested = []
        for b in d.op.blocks():
            nb, ch = fuse_block_once(b)
            nested.append(nb)
            changed = changed or ch
        op = d.op.with_children(list(d.op.inputs()), nested)
        d = Def(d.syms, op)

        if isinstance(op, MultiLoop):
            plan = _choose_fusion_target(op, idx, producers, set(d.syms),
                                         site=repr(d.syms[0]))
            if plan is not None:
                emit(DecisionKind.FUSION_VERTICAL, repr(d.syms[0]), APPLIED,
                     f"pipeline-fused producer {plan.p_def.syms[0]!r} into "
                     f"this loop (generalized rule "
                     f"G_s(c1 && c2∘f1)(k∘f1)(f2∘f1)(r), §3.1)",
                     producer=repr(plan.p_def.syms[0]),
                     targets=[repr(t) for t in plan.targets])
                new_gens = tuple(_fuse_generator(g, plan) for g in op.gens)
                d = Def(d.syms, MultiLoop(plan.size, new_gens))
                changed = True
        new_stmts.append(d)
        for s in d.syms:
            idx[s] = d
        if isinstance(d.op, MultiLoop):
            for s, g in zip(d.syms, d.op.gens):
                if g.kind is GenKind.COLLECT and not g.flatten and not g.no_fuse:
                    producers[s] = (d, g)
    return Block(block.params, tuple(new_stmts), block.results), changed


def fuse_vertical(prog: Program, max_iters: int = 20) -> Program:
    body = prog.body
    for _ in range(max_iters):
        body, changed = fuse_block_once(body)
        if not changed:
            break
    return Program(prog.inputs, body)


# ---------------------------------------------------------------------------
# Horizontal fusion
# ---------------------------------------------------------------------------

def _size_key(e: Exp):
    if isinstance(e, Sym):
        return ("sym", e.id)
    if isinstance(e, Const):
        return ("const", e.value)
    return ("exp", id(e))


class _Group:
    __slots__ = ("first_pos", "members")

    def __init__(self, first_pos: int, d: Def):
        self.first_pos = first_pos
        self.members: List[Def] = [d]


def horizontal_block(block: Block) -> Block:
    stmts: List[Def] = []
    for d in block.stmts:
        nested = [horizontal_block(b) for b in d.op.blocks()]
        stmts.append(Def(d.syms, d.op.with_children(list(d.op.inputs()), nested)))

    pos_of: Dict[Sym, int] = {}
    for p, d in enumerate(stmts):
        for s in d.syms:
            pos_of[s] = p

    open_group: Dict[object, _Group] = {}   # latest group per size key
    group_at: Dict[int, _Group] = {}        # stmt position -> its group
    for p, d in enumerate(stmts):
        if not isinstance(d.op, MultiLoop):
            continue
        key = _size_key(d.op.size)
        g = open_group.get(key)
        if g is not None:
            blocking = [s for s in op_used_syms(d.op)
                        if pos_of.get(s, -1) >= g.first_pos]
            if not blocking:
                g.members.append(d)
                group_at[p] = g
                continue
            emit(DecisionKind.FUSION_HORIZONTAL, repr(d.syms[0]), REJECTED,
                 f"same range as loop {g.members[0].syms[0]!r} but depends "
                 f"on {', '.join(map(repr, blocking))} defined inside or "
                 f"after that group (blocking dependency)",
                 group=repr(g.members[0].syms[0]),
                 blocking=[repr(s) for s in blocking])
        g = _Group(p, d)
        open_group[key] = g
        group_at[p] = g

    out: List[Def] = []
    for p, d in enumerate(stmts):
        g = group_at.get(p)
        if g is None or len(g.members) == 1:
            out.append(d)
            continue
        if p != g.first_pos:
            continue  # merged into the group's first position
        gens: List[Generator] = []
        syms: List[Sym] = []
        for m in g.members:
            gens.extend(m.op.gens)
            syms.extend(m.syms)
        emit(DecisionKind.FUSION_HORIZONTAL, repr(d.syms[0]), APPLIED,
             f"merged {len(g.members)} independent same-range loops "
             f"({', '.join(repr(m.syms[0]) for m in g.members)}) into one "
             f"traversal (§3.1, Fig. 5)",
             members=[repr(m.syms[0]) for m in g.members])
        out.append(Def(tuple(syms), MultiLoop(g.members[0].op.size, tuple(gens))))
    return Block(block.params, tuple(out), block.results)


def fuse_horizontal(prog: Program) -> Program:
    return Program(prog.inputs, horizontal_block(prog.body))


fuse_vertical.pass_name = "fuse-vertical"
fuse_horizontal.pass_name = "fuse-horizontal"
