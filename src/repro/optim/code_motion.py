"""Loop-invariant code motion.

Hoists statements out of generator blocks when they do not depend on the
block's parameters. Besides its usual performance role, hoisting is what
lets the Conditional Reduce rule (§3.2) lift a reduction whose support
computation is loop-invariant out of the enclosing Collect.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.ir import Block, Def, Program, Sym, op_used_syms
from ..core.multiloop import MultiLoop
from ..obs.provenance import APPLIED, DecisionKind, emit


def split_invariant(block: Block) -> Tuple[List[Def], Block]:
    """Partition a generator block's statements into (hoistable, residual).

    A statement is hoistable when none of its (transitive) dependencies
    reach the block parameters. Relative order is preserved on both sides.
    """
    dependent: Set[Sym] = set(block.params)
    hoisted: List[Def] = []
    residual: List[Def] = []
    for d in block.stmts:
        if any(s in dependent for s in op_used_syms(d.op)):
            dependent.update(d.syms)
            residual.append(d)
        else:
            hoisted.append(d)
    return hoisted, Block(block.params, tuple(residual), block.results)


def hoist_block(block: Block) -> Block:
    """Recursively hoist invariant statements of any nested loop's generator
    blocks into this block's statement list."""
    out: List[Def] = []
    for d in block.stmts:
        if isinstance(d.op, MultiLoop):
            new_blocks = []
            for b in d.op.blocks():
                b = hoist_block(b)
                lifted, residual = split_invariant(b)
                if lifted:
                    emit(DecisionKind.CODE_MOTION, repr(d.syms[0]), APPLIED,
                         f"hoisted {len(lifted)} loop-invariant "
                         f"statement(s) "
                         f"({', '.join(repr(h.syms[0]) for h in lifted)}) "
                         f"out of a generator block",
                         hoisted=[repr(h.syms[0]) for h in lifted])
                out.extend(lifted)
                new_blocks.append(residual)
            op = d.op.with_children(list(d.op.inputs()), new_blocks)
            out.append(Def(d.syms, op))
        else:
            new_blocks = [hoist_block(b) for b in d.op.blocks()]
            out.append(Def(d.syms, d.op.with_children(list(d.op.inputs()), new_blocks)))
    return Block(block.params, tuple(out), block.results)


def code_motion(prog: Program) -> Program:
    return Program(prog.inputs, hoist_block(prog.body))


code_motion.pass_name = "code-motion"
