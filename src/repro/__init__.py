"""repro — a reproduction of DMLL, the Distributed Multiloop Language
(Brown et al., "Have Abstraction and Eat Performance, Too", CGO 2016).

Public entry points:

- ``repro.frontend`` — the implicitly-parallel collections DSL;
- ``repro.pipeline`` — the compiler driver (fusion, nested pattern
  transformations, partitioning/stencil analyses);
- ``repro.runtime`` — simulated heterogeneous hardware and the
  hierarchical executor;
- ``repro.apps`` — the paper's benchmark applications;
- ``repro.baselines`` — Spark/PowerGraph/Delite/DimmWitted-style
  comparison systems.
"""

__version__ = "1.0.0"
