"""Table 1: programming-model features and hardware targets of parallel
frameworks. A static comparison, reproduced verbatim from the paper, with
each DMLL cell backed by the part of this codebase that implements it."""

from __future__ import annotations

from typing import Dict, List, Tuple

FEATURES = [
    "Rich data parallelism",
    "Nested programming",
    "Nested parallelism",
    "Multiple collections",
    "Random reads",
    "Multi-core",
    "NUMA",
    "Clusters",
    "GPUs",
]

#: (system, marks per feature) — 1:1 with Table 1 of the paper
SYSTEMS: List[Tuple[str, Tuple[int, ...]]] = [
    ("MapReduce",         (0, 0, 0, 0, 0, 0, 0, 1, 0)),
    ("DryadLINQ",         (1, 0, 0, 1, 0, 0, 0, 1, 0)),
    ("Thrust",            (1, 0, 0, 0, 0, 1, 0, 0, 1)),
    ("Scala Collections", (1, 1, 1, 1, 1, 1, 0, 0, 0)),
    ("Delite",            (1, 1, 1, 1, 1, 1, 0, 0, 1)),
    ("Spark",             (1, 0, 0, 0, 0, 1, 0, 1, 0)),
    ("Lime",              (0, 1, 1, 0, 1, 1, 0, 1, 1)),
    ("PowerGraph",        (0, 0, 0, 0, 1, 1, 0, 1, 0)),
    ("Dandelion",         (1, 1, 0, 1, 0, 1, 0, 1, 1)),
    ("DMLL",              (1, 1, 1, 1, 1, 1, 1, 1, 1)),
]

#: where this reproduction implements each DMLL feature
DMLL_EVIDENCE: Dict[str, str] = {
    "Rich data parallelism": "repro.core.multiloop (4 generator kinds)",
    "Nested programming": "repro.frontend (arbitrary nesting of patterns)",
    "Nested parallelism": "repro.apps.gibbs (replicas x variables)",
    "Multiple collections": "ArrayRep.zip_with / multi-input loops",
    "Random reads": "Unknown stencils + runtime remote fetch (§4.2/§5)",
    "Multi-core": "repro.runtime.executor (core chunking)",
    "NUMA": "DMLL_CPP profile + partitioned arrays (§5)",
    "Clusters": "EC2_CLUSTER model + directory chunking",
    "GPUs": "repro.codegen.cuda + GPU cost model",
}


def feature_matrix_rows() -> List[List[str]]:
    rows = []
    for name, marks in SYSTEMS:
        rows.append([name] + [("x" if m else "") for m in marks])
    return rows


def render_feature_matrix() -> str:
    from .tables import render_table
    return render_table(["System"] + FEATURES, feature_matrix_rows())
