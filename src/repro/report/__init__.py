"""Reporting helpers: the Table 1 feature matrix and ASCII table rendering."""

from .feature_matrix import FEATURES, SYSTEMS, feature_matrix_rows, render_feature_matrix
from .tables import render_table

__all__ = ["FEATURES", "SYSTEMS", "feature_matrix_rows",
           "render_feature_matrix", "render_table"]
