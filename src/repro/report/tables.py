"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in r] for r in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for r in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def fmt_speedup(x: float) -> str:
    return f"{x:.2f}x"
