"""Profiling exports: collapsed-stack flamegraphs and OpenMetrics text.

Two converters off the existing observability data, both pure:

- :func:`collapse_stacks` folds span trees into the collapsed-stack
  format (``root;child;leaf <weight>``) consumed by speedscope,
  ``flamegraph.pl`` and ``inferno``. Each frame's weight is its
  **self time** — its duration minus its children's — in integer
  microseconds of simulated time, so a loop whose machine/socket chunks
  account for the whole parallel region contributes only its serial
  remainder (dispatch overhead + communication) at the loop frame, and
  the chunks carry the parallel time. Frames that collapse to zero
  microseconds are dropped.

- :func:`prometheus_text` renders a :class:`~repro.obs.metrics.
  MetricsRegistry` snapshot in the Prometheus/OpenMetrics text
  exposition format: counters and gauges one sample per series,
  histograms as summaries (``quantile`` labels plus ``_sum``/
  ``_count``). Metric names are sanitized to the Prometheus charset
  (dots become underscores); series labels survive as proper quoted
  label sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from .metrics import MetricsRegistry
from .spans import Span, Tracer

_US = 1e6


# ---------------------------------------------------------------------------
# collapsed-stack flamegraphs
# ---------------------------------------------------------------------------

def _frame(sp: Span) -> str:
    # ";" separates stack frames in the collapsed format; a name that
    # contains one would silently split into two frames
    return sp.name.replace(";", ",")


def _collapse(sp: Span, prefix: str, out: Dict[str, int]) -> None:
    stack = f"{prefix};{_frame(sp)}" if prefix else _frame(sp)
    child_s = sum(c.dur_s for c in sp.children)
    self_us = int(round(max(0.0, sp.dur_s - child_s) * _US))
    if self_us > 0:
        out[stack] = out.get(stack, 0) + self_us
    for c in sp.children:
        _collapse(c, stack, out)


def collapse_stacks(source: Union[Tracer, Span]) -> Dict[str, int]:
    """Span tree(s) → {collapsed stack: self-time in whole µs}."""
    roots: Iterable[Span]
    roots = source.runs if isinstance(source, Tracer) else [source]
    out: Dict[str, int] = {}
    for root in roots:
        _collapse(root, "", out)
    return out


def render_collapsed(source: Union[Tracer, Span]) -> str:
    """One ``stack weight`` line per frame path, sorted for stability."""
    folded = collapse_stacks(source)
    return "\n".join(f"{stack} {us}" for stack, us in sorted(folded.items()))


def write_collapsed(path: str, source: Union[Tracer, Span]) -> None:
    """Write a flamegraph.pl/speedscope-loadable collapsed-stack file."""
    with open(path, "w") as f:
        text = render_collapsed(source)
        if text:
            f.write(text + "\n")


# ---------------------------------------------------------------------------
# Prometheus / OpenMetrics text exposition
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() and (i > 0 or not ch.isdigit()) or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    return "".join(out)


def _split_series(series: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Undo metrics.py's label folding: ``name{k=v,...}`` → (name, kv)."""
    if "{" not in series:
        return series, []
    name, _, rest = series.partition("{")
    labels = []
    for part in rest.rstrip("}").split(","):
        k, _, v = part.partition("=")
        labels.append((k, v))
    return name, labels


def _escape(v: str) -> str:
    """Label-value escaping per the Prometheus/OpenMetrics text
    exposition format: backslash first (so it doesn't re-escape the
    others), then double-quote and newline. A raw newline inside a
    label value would otherwise split the sample line and corrupt the
    whole scrape."""
    return (v.replace("\\", "\\\\").replace('"', '\\"')
             .replace("\n", "\\n"))


def _label_str(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    quoted = ",".join(f'{_sanitize(k)}="{_escape(v)}"' for k, v in labels)
    return "{" + quoted + "}"


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()

    def emit(table: Dict[str, float], mtype: str) -> None:
        for series in sorted(table):
            name, labels = _split_series(series)
            pname = _sanitize(name)
            if pname not in typed:
                typed.add(pname)
                lines.append(f"# TYPE {pname} {mtype}")
            lines.append(f"{pname}{_label_str(labels)} {table[series]:g}")

    emit(metrics.counters, "counter")
    emit(metrics.gauges, "gauge")

    for series in sorted(metrics.histograms):
        name, labels = _split_series(series)
        pname = _sanitize(name)
        if pname not in typed:
            typed.add(pname)
            lines.append(f"# TYPE {pname} summary")
        vals = metrics.histograms[series]
        st = MetricsRegistry.histogram_stats_of(vals)
        for q in ("p50", "p90", "p95", "p99"):
            qlabels = labels + [("quantile", f"0.{q[1:]}")]
            lines.append(f"{pname}{_label_str(qlabels)} {st[q]:g}")
        lines.append(f"{pname}_sum{_label_str(labels)} {sum(vals):g}")
        lines.append(f"{pname}_count{_label_str(labels)} {len(vals)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, metrics: MetricsRegistry) -> None:
    with open(path, "w") as f:
        f.write(prometheus_text(metrics))
