"""Runtime observability (DESIGN.md §6d).

Three cooperating pieces make the simulated runtime inspectable:

- **spans** — every priced execution can produce a hierarchical span tree
  (run → loop → machine → socket/GPU chunk) whose attributes expose the
  mapping decisions (§4-§5) behind each number;
- **metrics** — counters/gauges/histograms fed by the executor, the
  distributed-array runtime, and the interpreter;
- **diagnostics** — typed, loop-attributed events that replace the bare
  warning strings the partitioning analysis used to emit;
- **export** — a text profile report and Chrome-trace JSON
  (``chrome://tracing`` / Perfetto), validated by ``repro.obs.check``;
- **analytics** — critical-path extraction, exact per-request latency
  decomposition, differential trace diff and regression root-cause
  reports (``repro.obs.critical`` / ``repro.obs.analyze``), surfaced
  through ``repro.tools analyze`` and the regress gate.

Everything is opt-in: with no tracer/registry configured the executor
allocates no spans and emits nothing.
"""

from .analyze import (LoopDelta, RootCause, decompose_timeline,
                      decomposition_summary, diff_loop_rows,
                      diff_span_trees, request_decomposition,
                      root_cause_from_records)
from .critical import (CriticalPath, FleetReport, PathStep, critical_path,
                       fleet_attribution)
from .diagnostics import DiagCategory, Diagnostic, Severity
from .metrics import MetricsObserver, MetricsRegistry
from .provenance import (Decision, DecisionKind, DecisionLedger,
                         diff_ledgers, emit, ledger_scope)
from .spans import RequestContext, RequestTimeline, Span, Tracer
from .export import (chrome_trace_events, flow_events, profile_report,
                     render_spans, write_chrome_trace)
from .profile import (collapse_stacks, prometheus_text, render_collapsed,
                      write_collapsed, write_prometheus)
from .slo import (BurnWindow, ObjectiveResult, SLOObjective, SLOReport,
                  SLOSpec, evaluate_slo)

__all__ = [
    "LoopDelta", "RootCause", "decompose_timeline",
    "decomposition_summary", "diff_loop_rows", "diff_span_trees",
    "request_decomposition", "root_cause_from_records",
    "CriticalPath", "FleetReport", "PathStep", "critical_path",
    "fleet_attribution",
    "DiagCategory", "Diagnostic", "Severity",
    "MetricsObserver", "MetricsRegistry",
    "Decision", "DecisionKind", "DecisionLedger",
    "diff_ledgers", "emit", "ledger_scope",
    "RequestContext", "RequestTimeline", "Span", "Tracer",
    "chrome_trace_events", "flow_events", "profile_report", "render_spans",
    "write_chrome_trace",
    "collapse_stacks", "prometheus_text", "render_collapsed",
    "write_collapsed", "write_prometheus",
    "BurnWindow", "ObjectiveResult", "SLOObjective", "SLOReport",
    "SLOSpec", "evaluate_slo",
]
