"""Benchmark regression checker (``python -m repro.obs.regress``).

Compares the latest record of every app in the history store
(:mod:`repro.obs.history`) against a rolling baseline:

- **wall-clock** — the median of up to ``--window`` preceding records,
  with a noise-aware percentage threshold (host wall-clock on shared CI
  runners jitters; simulated metrics do not);
- **cycles** — simulated cycle counts are deterministic for a given
  compile, so the threshold is near-exact by default;
- **simulated seconds** — the machine-model pricing is likewise
  deterministic; a sim-time regression means the cost model now charges
  more for the same program (or the program itself got slower), and is
  gated near-exactly like cycles;
- **decision digest** — any drift against the *previous* record fails:
  a digest change means a compiler decision flipped (a fusion that used
  to fire no longer does, a stencil degraded, a backend plan fell back),
  which is exactly the silent-regression class the provenance ledger
  exists to catch. Intentional changes are re-baselined by simply
  letting the new record append (the next run compares against it).

On any gate failure the checker now *explains itself*: it builds a
root-cause report (:func:`repro.obs.analyze.root_cause_from_records`) —
latest vs the rolling-median baseline record, per-loop sim-delta
ranking with the dominant contributor named, and the decision-ledger
key diff when the digest drifted — prints it under the failure lines,
and writes it as JSON when ``--report-out DIR`` is given (CI uploads
that directory as the failure artifact).

Exit codes follow the repo-wide convention: 0 ok, 1 regression found,
2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from statistics import median
from typing import List, Optional, Sequence

from .history import DEFAULT_DIR, RunRecord, known_apps, load_history

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2

#: rolling-baseline width (records before the latest)
DEFAULT_WINDOW = 5
#: host wall-clock regression threshold, percent over baseline median
DEFAULT_WALL_PCT = 10.0
#: simulated-cycle threshold — deterministic, so near-exact
DEFAULT_CYCLE_PCT = 0.1
#: simulated-seconds threshold — the machine model prices
#: deterministically, so this is near-exact too
DEFAULT_SIM_PCT = 0.1
#: prior records required before the wall-clock gate arms. With fewer,
#: a single noisy bootstrap run *is* the rolling median and can
#: permanently fail (or mask) the gate; until the window fills the app
#: reports "warming". The deterministic cycle/digest/fallback gates are
#: unaffected — they are exact from the second record on.
MIN_WALL_WINDOW = 3


@dataclass
class AppVerdict:
    """Outcome of checking one app's history."""

    app: str
    status: str          # "ok" | "bootstrap" | "warming" | "regression"
    problems: List[str] = field(default_factory=list)
    latest: Optional[RunRecord] = None
    baseline_wall: Optional[float] = None
    baseline_cycles: Optional[float] = None
    baseline_sim: Optional[float] = None
    runs: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "regression"


def check_records(app: str, records: Sequence[RunRecord],
                  window: int = DEFAULT_WINDOW,
                  wall_pct: float = DEFAULT_WALL_PCT,
                  cycle_pct: float = DEFAULT_CYCLE_PCT,
                  min_wall_window: int = MIN_WALL_WINDOW,
                  sim_pct: float = DEFAULT_SIM_PCT) -> AppVerdict:
    """Pure comparison logic (unit-testable without touching disk)."""
    if len(records) == 0:
        return AppVerdict(app, "bootstrap", runs=0)
    latest = records[-1]
    if len(records) == 1:
        # first observation: nothing to compare against yet
        return AppVerdict(app, "bootstrap", latest=latest, runs=1)

    prior = records[:-1]
    base = prior[-window:]
    base_wall = median(r.wall_s for r in base)
    base_cycles = median(r.cycles for r in base)
    base_sim = median(r.sim_s for r in base)
    problems: List[str] = []

    # the noisy host-wall gate needs a real baseline before it arms
    wall_warming = len(prior) < min_wall_window
    if base_wall > 0 and not wall_warming:
        pct = (latest.wall_s - base_wall) / base_wall * 100.0
        if pct > wall_pct:
            problems.append(
                f"wall-clock regression: {latest.wall_s * 1e3:.2f} ms vs "
                f"baseline median {base_wall * 1e3:.2f} ms "
                f"(+{pct:.1f}% > {wall_pct:.1f}% threshold)")
    if base_cycles > 0:
        pct = (latest.cycles - base_cycles) / base_cycles * 100.0
        if pct > cycle_pct:
            problems.append(
                f"cycle regression: {latest.cycles} vs baseline median "
                f"{base_cycles:.0f} (+{pct:.2f}% > {cycle_pct:.2f}% "
                f"threshold)")
    if base_sim > 0:
        pct = (latest.sim_s - base_sim) / base_sim * 100.0
        if pct > sim_pct:
            problems.append(
                f"simulated-time regression: {latest.sim_s * 1e3:.3f} ms "
                f"vs baseline median {base_sim * 1e3:.3f} ms "
                f"(+{pct:.2f}% > {sim_pct:.2f}% threshold)")

    prev = prior[-1]
    if latest.digest and prev.digest and latest.digest != prev.digest:
        problems.append(
            f"decision-digest drift: {prev.digest} -> {latest.digest} — a "
            f"compiler decision flipped since the previous run (run "
            f"`repro explain {app}` on both commits to see which)")
    if latest.fallbacks > prev.fallbacks:
        problems.append(
            f"backend fallbacks increased: {prev.fallbacks} -> "
            f"{latest.fallbacks}")

    status = ("regression" if problems
              else ("warming" if wall_warming else "ok"))
    return AppVerdict(app, status,
                      problems=problems, latest=latest,
                      baseline_wall=base_wall, baseline_cycles=base_cycles,
                      baseline_sim=base_sim, runs=len(records))


def trend_table(verdicts: Sequence[AppVerdict]) -> str:
    """Terminal trend table: latest vs baseline per app."""
    from ..report.tables import render_table
    rows = []
    for v in verdicts:
        if v.latest is None:
            rows.append([v.app, "-", "-", "-", "-", v.status])
            continue
        wall = f"{v.latest.wall_s * 1e3:9.2f}"
        base = ("-" if v.baseline_wall is None
                else f"{v.baseline_wall * 1e3:9.2f}")
        delta = "-"
        if v.baseline_wall:
            delta = (f"{(v.latest.wall_s - v.baseline_wall) / v.baseline_wall * 100.0:+6.1f}%")
        rows.append([v.app, wall, base, delta, v.latest.digest or "-",
                     v.status])
    return render_table(
        ["app", "wall ms", "baseline ms", "delta", "digest", "status"],
        rows,
        title=f"benchmark regression observatory "
              f"({sum(1 for v in verdicts if v.runs)} apps with history)")


def check_all(root=None, apps: Optional[Sequence[str]] = None,
              window: int = DEFAULT_WINDOW,
              wall_pct: float = DEFAULT_WALL_PCT,
              cycle_pct: float = DEFAULT_CYCLE_PCT,
              min_wall_window: int = MIN_WALL_WINDOW,
              sim_pct: float = DEFAULT_SIM_PCT) -> List[AppVerdict]:
    names = list(apps) if apps else known_apps(root)
    return [check_records(a, load_history(a, root), window=window,
                          wall_pct=wall_pct, cycle_pct=cycle_pct,
                          min_wall_window=min_wall_window, sim_pct=sim_pct)
            for a in names]


def emit_root_causes(failed: Sequence[AppVerdict], root,
                     window: int,
                     report_out: Optional[str] = None) -> List[str]:
    """Print a root-cause report for each failed verdict; write the JSON
    form under ``report_out`` when given. Returns written paths."""
    import pathlib

    from .analyze import root_cause_from_records, root_cause_json
    written: List[str] = []
    out_dir: Optional[pathlib.Path] = None
    if report_out:
        out_dir = pathlib.Path(report_out)
        out_dir.mkdir(parents=True, exist_ok=True)
    for v in failed:
        rc = root_cause_from_records(v.app, load_history(v.app, root),
                                     window=window, problems=v.problems)
        if rc is None:
            print(f"root-cause report: {v.app}: fewer than two records; "
                  f"no baseline to diff against")
            continue
        print(rc.render())
        if out_dir is not None:
            path = out_dir / f"root-cause-{v.app}.json"
            path.write_text(root_cause_json(rc) + "\n")
            written.append(str(path))
    if written:
        print(f"root-cause JSON written: {', '.join(written)}")
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare the latest benchmark run against the rolling "
                    "history baseline; non-zero exit on regression.")
    ap.add_argument("--history", default=None,
                    help=f"history directory (default: {DEFAULT_DIR})")
    ap.add_argument("--apps", default=None,
                    help="comma-separated app subset (default: every app "
                         "with a history file)")
    ap.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                    help="rolling baseline width (median of up to N prior "
                         "records, default %(default)s)")
    ap.add_argument("--wall-pct", type=float, default=DEFAULT_WALL_PCT,
                    help="wall-clock regression threshold in percent "
                         "(default %(default)s)")
    ap.add_argument("--cycle-pct", type=float, default=DEFAULT_CYCLE_PCT,
                    help="simulated-cycle threshold in percent "
                         "(default %(default)s)")
    ap.add_argument("--sim-pct", type=float, default=DEFAULT_SIM_PCT,
                    help="simulated-seconds threshold in percent "
                         "(default %(default)s)")
    ap.add_argument("--report-out", default=None, metavar="DIR",
                    help="write per-app root-cause JSON reports into DIR "
                         "on gate failure (CI artifact)")
    ap.add_argument("--min-wall-window", type=int,
                    default=MIN_WALL_WINDOW,
                    help="prior records required before the wall-clock "
                         "gate arms; apps below this report 'warming' "
                         "(default %(default)s)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on bad usage and 0 on --help; preserve both
        return int(e.code or 0)
    if args.window < 1:
        print("error: --window must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.min_wall_window < 1:
        print("error: --min-wall-window must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
            if args.apps else None)
    verdicts = check_all(root=args.history, apps=apps, window=args.window,
                         wall_pct=args.wall_pct, cycle_pct=args.cycle_pct,
                         min_wall_window=args.min_wall_window,
                         sim_pct=args.sim_pct)
    if not verdicts:
        print("no benchmark history found (bootstrap); nothing to check")
        return EXIT_OK

    print(trend_table(verdicts))
    failed = [v for v in verdicts if not v.ok]
    for v in failed:
        for p in v.problems:
            print(f"REGRESSION {v.app}: {p}")
    if failed:
        emit_root_causes(failed, args.history, args.window,
                         report_out=args.report_out)
    boot = [v.app for v in verdicts if v.status == "bootstrap"]
    if boot:
        print(f"bootstrap (single or no record, baseline being "
              f"established): {', '.join(boot)}")
    warm = [v.app for v in verdicts if v.status == "warming"]
    if warm:
        print(f"warming (wall gate armed at {args.min_wall_window} prior "
              f"records; cycle/digest gates active): {', '.join(warm)}")
    if failed:
        return EXIT_FAIL
    print("regression check passed")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
