"""Compiler decision provenance (DESIGN.md §8).

Every decision point in the compiler and backend — pipeline/horizontal
fusion applied or rejected, each Fig. 3 transform fired or found
not-applicable, per-access stencil classification, partition layout
choices, DCE/CSE/SoA/code-motion hits, and the NumPy backend's
plan-vs-fallback — emits a typed :class:`Decision` into the ledger that
is active for the current compilation (or observed run). The ledger is
attached to ``CompiledProgram.provenance`` and rendered by
``python -m repro.tools explain <app>``.

The instrumentation contract is *zero overhead when disabled*: decision
sites call :func:`emit`, which returns immediately when no ledger scope
is active (one module-global ``None`` check), mutates no interpreter or
executor state either way, and therefore leaves ``ExecStats``
byte-identical (tested).

Each ledger has a stable :meth:`DecisionLedger.digest` — a hash of the
normalized decision sequence (symbol ids stripped, so it is reproducible
across processes) — which the benchmark history store records per run;
``repro.obs.regress`` fails CI when the digest drifts, i.e. when a
transform that used to fire no longer does.
"""

from __future__ import annotations

import enum
import hashlib
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: canonical outcome vocabulary; ``outcome`` is free-form but these cover
#: almost every site (stencil decisions use the Stencil value instead)
APPLIED = "applied"
REJECTED = "rejected"
VECTORIZED = "vectorized"
FALLBACK = "fallback"


class DecisionKind(enum.Enum):
    """Stable decision taxonomy (DESIGN.md §8a)."""

    #: §3.1 pipeline fusion of a Collect producer into its consumer
    FUSION_VERTICAL = "fusion-vertical"
    #: §3.1 merge of independent same-range loops into one traversal
    FUSION_HORIZONTAL = "fusion-horizontal"
    #: one of the four Fig. 3 nested-pattern rewrites
    TRANSFORM = "transform"
    #: §4.2 per-access read-stencil classification of a collection
    STENCIL = "stencil"
    #: Algorithm 1 layout choice (Local/Partitioned) for one collection
    PARTITION = "partition"
    #: Algorithm 1 per-loop placement (distributed or single-location)
    LOOP_PLACEMENT = "loop-placement"
    #: AoS→SoA split / kept-AoS decision for a struct collection
    SOA = "soa"
    #: common-subexpression merge
    CSE = "cse"
    #: dead statement / dead generator / dead field elimination
    DCE = "dce"
    #: loop-invariant statements hoisted out of a generator block
    CODE_MOTION = "code-motion"
    #: len(Collect) rewritten to a size or a conditional count
    LENGTH_REWRITE = "length-rewrite"
    #: NumPy backend static plan or recorded fallback for one loop
    BACKEND_PLAN = "backend-plan"
    #: a typed Diagnostic routed through the ledger (warnings included)
    DIAGNOSTIC = "diagnostic"
    #: serving layer: an app degraded to the reference-interpreter path
    #: after repeated kernel faults (``serve.scheduler``)
    SERVE_DEGRADE = "serve-degrade"


@dataclass
class Decision:
    """One compiler/backend decision, with its site and justification.

    ``site`` is the symbol the decision concerns (usually a loop's first
    output sym, ``repr(sym)`` so ids disambiguate same-named loops);
    ``outcome`` says which way the decision went; ``reason`` is the
    human-readable justification (for rejections: the failed precondition
    or the blocking dependency); ``evidence`` carries structured data.
    ``pass_name``/``phase``/``snapshot`` are stamped by the PassManager:
    ``snapshot`` is the ordinal of the executed pass, i.e. the id of the
    IR snapshot the decision was taken on.
    """

    kind: DecisionKind
    site: str
    outcome: str
    reason: str
    evidence: Dict[str, Any] = field(default_factory=dict)
    pass_name: str = ""
    phase: str = ""
    snapshot: int = -1
    #: identical non-applied decisions are folded into one record
    count: int = 1

    def dedup_key(self) -> Tuple:
        return (self.kind, self.site, self.outcome, self.reason)

    def render(self) -> str:
        where = f"{self.phase}/{self.pass_name}" if self.pass_name else "-"
        times = f" (x{self.count})" if self.count > 1 else ""
        return (f"[{where}] {self.kind.value} {self.outcome}: "
                f"{self.reason}{times}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value, "site": self.site,
            "outcome": self.outcome, "reason": self.reason,
            "evidence": self.evidence, "pass": self.pass_name,
            "phase": self.phase, "snapshot": self.snapshot,
            "count": self.count,
        }


_ID_RE = re.compile(r"\d+")


def strip_ids(s: str) -> str:
    """Replace symbol-id digits with ``#`` so decision text is comparable
    across processes (the global Sym counter is process-dependent)."""
    return _ID_RE.sub("#", s)


class DecisionLedger:
    """Ordered, deduplicating store of one compilation's decisions."""

    def __init__(self) -> None:
        self.decisions: List[Decision] = []
        self._dedup: Dict[Tuple, Decision] = {}
        # current pass context, maintained by the PassManager
        self.pass_name = ""
        self.phase = ""
        self.snapshot = -1

    # -- recording ---------------------------------------------------------

    def begin_pass(self, name: str, phase: str) -> None:
        """Called by the PassManager before each executed pass; bumps the
        IR snapshot ordinal that subsequent decisions are stamped with."""
        self.pass_name = name
        self.phase = phase
        self.snapshot += 1

    def record(self, kind: DecisionKind, site: str, outcome: str,
               reason: str, /, **evidence: Any) -> None:
        # core params are positional-only so evidence may legitimately
        # carry keys like "kind" (e.g. a diagnostic's payload)
        d = Decision(kind, site, outcome, reason, evidence,
                     self.pass_name, self.phase, self.snapshot)
        if outcome != APPLIED:
            # rejections/classifications repeat across fixpoint rounds and
            # re-analysis passes; fold exact repeats into a count
            prev = self._dedup.get(d.dedup_key())
            if prev is not None:
                prev.count += 1
                return
            self._dedup[d.dedup_key()] = d
        self.decisions.append(d)

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self.decisions)

    def of_kind(self, kind: DecisionKind) -> List[Decision]:
        return [d for d in self.decisions if d.kind is kind]

    def by_site(self) -> Dict[str, List[Decision]]:
        out: Dict[str, List[Decision]] = {}
        for d in self.decisions:
            out.setdefault(d.site, []).append(d)
        return out

    def for_loop(self, loop: str) -> List[Decision]:
        """Decisions whose site matches ``loop`` — exact, id-stripped, or
        prefix match, so users can say ``cs`` for site ``cs42``."""
        out = []
        for d in self.decisions:
            if (d.site == loop or strip_ids(d.site).rstrip("#") == loop
                    or d.site.startswith(loop)):
                out.append(d)
        return out

    # -- digest & diff -----------------------------------------------------

    def digest(self) -> str:
        """Stable hash of the normalized decision sequence.

        Symbol ids are stripped, so the digest is reproducible across
        processes for a deterministic compile; any decision that flips
        (a fusion that stops firing, a stencil that degrades to Unknown)
        changes it.
        """
        h = hashlib.sha256()
        for d in self.decisions:
            h.update(f"{d.kind.value}|{strip_ids(d.site)}|{d.outcome}|"
                     f"{strip_ids(d.reason)}|{d.count}\n".encode())
        return h.hexdigest()[:16]

    def normalized_keys(self, max_reason: int = 120) -> List[str]:
        """Sorted, id-stripped decision keys — the multiset the digest
        hashes, rendered as strings so run records can carry it and
        ``repro.obs.analyze`` can diff two records' key sets when their
        digests drift (``reason`` is truncated to keep records small)."""
        return sorted(
            f"{d.kind.value}|{strip_ids(d.site)}|{d.outcome}|"
            f"{strip_ids(d.reason)[:max_reason]}|x{d.count}"
            for d in self.decisions)

    def to_json(self) -> Dict[str, Any]:
        return {"digest": self.digest(),
                "decisions": [d.to_dict() for d in self.decisions]}

    # -- rendering ---------------------------------------------------------

    def render(self, loop: Optional[str] = None,
               title: Optional[str] = None) -> str:
        """Per-site "why" report (the ``repro explain`` body)."""
        chosen = self.decisions if loop is None else self.for_loop(loop)
        lines: List[str] = []
        if title:
            lines.append(title)
        lines.append(f"digest: {self.digest()}   "
                     f"({len(self.decisions)} decisions"
                     + (f", filtered to {len(chosen)}" if loop else "")
                     + ")")
        groups: Dict[str, List[Decision]] = {}
        for d in chosen:
            groups.setdefault(d.site, []).append(d)
        for site, ds in groups.items():
            lines.append(f"{site}:")
            for d in ds:
                lines.append(f"  {d.render()}")
        if not groups:
            lines.append("  (no matching decisions)")
        return "\n".join(lines)


def diff_ledgers(a: DecisionLedger, b: DecisionLedger,
                 label_a: str = "A", label_b: str = "B") -> str:
    """Show exactly which decisions diverge between two ledgers.

    Decisions are keyed on normalized (kind, site, reason); a divergence
    is a key present on one side only or with a different outcome —
    e.g. a fusion ``applied`` under the default pipeline that is simply
    absent under ``--no-fusion``.
    """

    def index(led: DecisionLedger) -> Dict[Tuple, List[str]]:
        out: Dict[Tuple, List[str]] = {}
        for d in led.decisions:
            k = (d.kind.value, strip_ids(d.site), strip_ids(d.reason))
            out.setdefault(k, []).append(d.outcome)
        return out

    ia, ib = index(a), index(b)
    only_a = [k for k in ia if k not in ib]
    only_b = [k for k in ib if k not in ia]
    # a *flip* means the outcome set itself changed; the same outcome
    # merely firing a different number of times (two producers fused vs
    # one) is reported separately so it doesn't read as a reversal
    flipped = [k for k in ia if k in ib and set(ia[k]) != set(ib[k])]
    recount = [k for k in ia
               if k in ib and set(ia[k]) == set(ib[k])
               and len(ia[k]) != len(ib[k])]
    lines = [f"ledger diff: {label_a} (digest {a.digest()}) vs "
             f"{label_b} (digest {b.digest()})"]
    if not (only_a or only_b or flipped or recount):
        lines.append("  identical decision sets")
        return "\n".join(lines)

    def fmt(k: Tuple, outcomes: List[str]) -> str:
        kind, site, reason = k
        return f"  {site}: {kind} {'/'.join(sorted(set(outcomes)))} — {reason}"

    if only_a:
        lines.append(f"only in {label_a} ({len(only_a)}):")
        lines.extend(fmt(k, ia[k]) for k in only_a)
    if only_b:
        lines.append(f"only in {label_b} ({len(only_b)}):")
        lines.extend(fmt(k, ib[k]) for k in only_b)
    if flipped:
        lines.append(f"outcome flipped ({len(flipped)}):")
        lines.extend(f"  {k[1]}: {k[0]} {label_a}={sorted(set(ia[k]))} "
                     f"{label_b}={sorted(set(ib[k]))} — {k[2]}"
                     for k in flipped)
    if recount:
        lines.append(f"same outcome, different multiplicity ({len(recount)}):")
        lines.extend(f"  {k[1]}: {k[0]} {'/'.join(sorted(set(ia[k])))} "
                     f"{label_a}×{len(ia[k])} {label_b}×{len(ib[k])} — {k[2]}"
                     for k in recount)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The active-ledger scope
# ---------------------------------------------------------------------------

_ACTIVE: Optional[DecisionLedger] = None


def active() -> Optional[DecisionLedger]:
    return _ACTIVE


@contextmanager
def ledger_scope(ledger: Optional[DecisionLedger]):
    """Make ``ledger`` the emission target for the dynamic extent.

    ``ledger_scope(None)`` explicitly disables provenance (used by the
    zero-overhead tests)."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = ledger
    try:
        yield ledger
    finally:
        _ACTIVE = prev


def emit(kind: DecisionKind, site: str, outcome: str, reason: str, /,
         **evidence: Any) -> None:
    """Record one decision into the active ledger; no-op when none is."""
    led = _ACTIVE
    if led is None:
        return
    led.record(kind, site, outcome, reason, **evidence)
