"""Trace analytics: latency decomposition, trace diff, root-cause reports.

This module turns the observatory's raw telemetry — span trees
(``repro.obs.spans``), request timelines, per-loop pricing breakdowns
and the decision-provenance ledger — into *answers*:

* :func:`decompose_timeline` — an **exact** latency decomposition of one
  served request from its :class:`~repro.obs.spans.RequestTimeline`
  marks. The components (admission, batching window, dispatch, stagger,
  execution) are consecutive intervals of the simulated clock and the
  last one is computed as the remainder, so they sum to the request's
  end-to-end latency with tolerance 0.0 — not "approximately".

* :func:`decomposition_summary` — per-app / per-machine aggregation of
  those components over a whole serve run (the ``decomposition``
  section of ``serve-sim``'s latency JSON).

* :func:`diff_loop_rows` / :func:`diff_span_trees` — differential trace
  diff: align two runs' per-loop breakdowns by *id-stripped* loop names
  (:func:`~repro.obs.provenance.strip_ids`, so alignment survives
  process-dependent symbol counters) and attribute the simulated-time
  delta to specific loops and their cost components.

* :func:`root_cause_from_records` — the report ``repro.obs.regress``
  emits on any gate failure: latest history record vs the
  rolling-median baseline record, ranked per-loop deltas, the dominant
  contributor named with its machine, and a cross-reference into the
  decision-ledger key diff when the provenance digest drifted.

Everything here is pure post-processing of recorded data: nothing is
imported or executed on the hot pricing/serving paths, so the
zero-cost-when-disabled contract is untouched.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..report.tables import render_table
from .history import RunRecord
from .provenance import strip_ids
from .spans import RequestTimeline, Span

# ---------------------------------------------------------------------------
# Exact per-request latency decomposition
# ---------------------------------------------------------------------------

#: decomposition components in order; each is the interval between two
#: consecutive lifecycle marks, except the last which is the remainder
COMPONENTS = ("admission_s", "batch_window_s", "dispatch_s", "stagger_s",
              "execution_s")

#: (component, end-mark) for every component except the remainder
_STAGE_ENDS = (("admission_s", "enqueue"), ("batch_window_s", "seal"),
               ("dispatch_s", "dispatch"), ("stagger_s", "exec_start"))


def decompose_timeline(tl: RequestTimeline) -> Optional[Dict[str, float]]:
    """Split one request's latency into its lifecycle components.

    ``admission_s``  — arrive → enqueue (admission-queue handoff);
    ``batch_window_s`` — enqueue → seal (waiting for the batch to fill
    or the max-wait timer);
    ``dispatch_s``   — seal → dispatch (waiting for a free replica);
    ``stagger_s``    — dispatch → exec_start (serial offset inside a
    fallback batch; 0 for lane-packed requests);
    ``execution_s``  — the remainder up to ``complete``.

    The remainder construction makes the identity exact: summing the
    components *in ``COMPONENTS`` order* reproduces
    ``complete - arrive`` bit-for-bit (float addition is deterministic),
    which the acceptance tests assert with tolerance 0.0.

    Returns ``None`` when the timeline lacks the bounding marks.
    """
    marks = tl.marks
    if "arrive" not in marks or "complete" not in marks:
        return None
    latency = marks["complete"] - marks["arrive"]
    comps: Dict[str, float] = {}
    prev = marks["arrive"]
    acc = 0.0
    for comp, mark in _STAGE_ENDS:
        t = marks.get(mark, prev)
        comps[comp] = t - prev
        acc += comps[comp]
        prev = t
    execution = latency - acc
    # make the identity bit-exact, not just correctly rounded: when
    # acc >= latency/2 Sterbenz's lemma already makes `latency - acc`
    # exact; otherwise the remainder dominates and a few one-ulp nudges
    # land `acc + execution` exactly on `latency`
    for _ in range(8):
        s = acc + execution
        if s == latency:
            break
        execution = math.nextafter(
            execution, math.inf if s < latency else -math.inf)
    comps["execution_s"] = execution
    comps["latency_s"] = latency
    return comps


def request_decomposition(server: Any) -> List[Dict[str, Any]]:
    """Per-request decomposition rows for a completed serve run.

    ``server`` is duck-typed (``ProgramServer``): it must expose
    ``responses`` and ``timeline_of(rid)``. Returns one row per request
    that has a timeline (i.e. the run was traced), ordered by rid so
    output is deterministic.
    """
    rows: List[Dict[str, Any]] = []
    for resp in sorted(server.responses, key=lambda r: r.request.rid):
        tl = server.timeline_of(resp.request.rid)
        if tl is None:
            continue
        comps = decompose_timeline(tl)
        if comps is None:
            continue
        rows.append({"rid": resp.request.rid, "app": resp.request.app,
                     "machine": resp.machine, **comps})
    return rows


def _aggregate(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    n = len(rows)
    out: Dict[str, Any] = {"count": n}
    for comp in COMPONENTS + ("latency_s",):
        vals = [r[comp] for r in rows]
        out[comp] = {"total_s": sum(vals),
                     "mean_s": sum(vals) / n if n else 0.0,
                     "max_s": max(vals) if vals else 0.0}
    return out


def decomposition_summary(server: Any) -> Optional[Dict[str, Any]]:
    """Aggregate decomposition for the ``decomposition`` JSON section.

    Shape::

        {"requests": N,
         "components": {<component>: {total_s, mean_s, max_s}, ...},
         "per_app": {app: {...same...}},
         "per_machine": {machine: {...same...}}}

    Returns ``None`` when the run recorded no timelines (tracing off),
    so untraced reports carry no section at all.
    """
    rows = request_decomposition(server)
    if not rows:
        return None
    by_app: Dict[str, List[Dict[str, Any]]] = {}
    by_machine: Dict[str, List[Dict[str, Any]]] = {}
    for r in rows:
        by_app.setdefault(r["app"], []).append(r)
        by_machine.setdefault(r["machine"], []).append(r)
    return {"requests": len(rows),
            "components": _aggregate(rows),
            "per_app": {k: _aggregate(by_app[k]) for k in sorted(by_app)},
            "per_machine": {k: _aggregate(by_machine[k])
                            for k in sorted(by_machine)}}


# ---------------------------------------------------------------------------
# Differential trace diff (per-loop)
# ---------------------------------------------------------------------------

#: per-loop cost components carried by breakdown rows
_LOOP_COMPONENTS = ("compute_s", "memory_s", "comm_s", "overhead_s")


def loop_rows_from_sim(sim: Any) -> List[Dict[str, Any]]:
    """Breakdown rows from a :class:`SimResult` (``sim.loops``)."""
    rows = []
    for ls in sim.loops:
        rows.append({"loop": ls.name, "key": strip_ids(ls.name),
                     "op": ls.op_name, "workers": ls.workers,
                     "time_s": ls.time_s, "compute_s": ls.compute_s,
                     "memory_s": ls.memory_s, "comm_s": ls.comm_s,
                     "overhead_s": ls.overhead_s})
    return rows


def loop_rows_from_span(root: Span) -> List[Dict[str, Any]]:
    """Breakdown rows recovered from a run's span tree (loop spans carry
    the full pricing record in their attrs)."""
    rows = []
    for sp, _ in root.walk():
        if sp.kind != "loop":
            continue
        a = sp.attrs
        rows.append({"loop": sp.name, "key": strip_ids(sp.name),
                     "op": str(a.get("op", "?")),
                     "workers": int(a.get("workers", 0)),
                     "time_s": sp.dur_s,
                     "compute_s": float(a.get("compute_s", 0.0)),
                     "memory_s": float(a.get("memory_s", 0.0)),
                     "comm_s": float(a.get("comm_s", 0.0)),
                     "overhead_s": float(a.get("overhead_s", 0.0))})
    return rows


@dataclass
class LoopDelta:
    """Simulated-time delta of one loop between two runs."""

    key: str                  # id-stripped loop name (alignment key)
    op: str
    time_a: float
    time_b: float
    components: Dict[str, float] = field(default_factory=dict)
    workers: int = 0
    #: loop present on one side only (compile structure changed)
    status: str = "both"      # "both" | "only_a" | "only_b"

    @property
    def delta_s(self) -> float:
        return self.time_b - self.time_a

    @property
    def pct(self) -> float:
        return 100.0 * self.delta_s / self.time_a if self.time_a else 0.0

    def driver(self) -> Tuple[str, float]:
        """The cost component explaining most of the delta."""
        if not self.components:
            return ("total", self.delta_s)
        comp = max(self.components, key=lambda k: abs(self.components[k]))
        return (comp, self.components[comp])

    def to_dict(self) -> Dict[str, Any]:
        return {"loop": self.key, "op": self.op, "status": self.status,
                "time_a_s": self.time_a, "time_b_s": self.time_b,
                "delta_s": self.delta_s, "pct": self.pct,
                "workers": self.workers, "components": self.components}


def diff_loop_rows(rows_a: Sequence[Dict[str, Any]],
                   rows_b: Sequence[Dict[str, Any]]) -> List[LoopDelta]:
    """Align two runs' per-loop breakdowns and rank their deltas.

    Rows align on ``(id-stripped loop name, op)`` with a per-key ordinal
    so two same-shaped loops (e.g. two fused map bodies with identical
    stripped names) pair up positionally. Loops present on one side
    only are reported with status ``only_a``/``only_b`` — a compile
    whose loop structure changed shows up explicitly instead of
    corrupting the alignment. Result is sorted by \\|delta\\| descending.
    """

    def index(rows: Sequence[Dict[str, Any]]) -> Dict[Tuple, Dict]:
        seen: Counter = Counter()
        out: Dict[Tuple, Dict] = {}
        for r in rows:
            base = (r.get("key") or strip_ids(str(r["loop"])),
                    str(r.get("op", "?")))
            out[base + (seen[base],)] = r
            seen[base] += 1
        return out

    ia, ib = index(rows_a), index(rows_b)
    deltas: List[LoopDelta] = []
    for k in ia:
        ra = ia[k]
        rb = ib.get(k)
        if rb is None:
            deltas.append(LoopDelta(k[0], k[1], float(ra["time_s"]), 0.0,
                                    workers=int(ra.get("workers", 0)),
                                    status="only_a"))
            continue
        comps = {c: float(rb.get(c, 0.0)) - float(ra.get(c, 0.0))
                 for c in _LOOP_COMPONENTS}
        deltas.append(LoopDelta(k[0], k[1], float(ra["time_s"]),
                                float(rb["time_s"]), comps,
                                int(rb.get("workers", 0))))
    for k in ib:
        if k not in ia:
            rb = ib[k]
            deltas.append(LoopDelta(k[0], k[1], 0.0, float(rb["time_s"]),
                                    workers=int(rb.get("workers", 0)),
                                    status="only_b"))
    deltas.sort(key=lambda d: (-abs(d.delta_s), d.key, d.op))
    return deltas


def diff_span_trees(root_a: Span, root_b: Span) -> List[LoopDelta]:
    """Trace diff of two runs straight from their span trees."""
    return diff_loop_rows(loop_rows_from_span(root_a),
                          loop_rows_from_span(root_b))


def render_loop_deltas(deltas: Sequence[LoopDelta],
                       label_a: str = "A", label_b: str = "B",
                       limit: int = 0) -> str:
    rows = []
    shown = deltas[:limit] if limit else deltas
    for d in shown:
        comp, cdelta = d.driver()
        rows.append((d.key, d.op, d.status,
                     f"{d.time_a * 1e3:.3f}", f"{d.time_b * 1e3:.3f}",
                     f"{d.delta_s * 1e3:+.3f}", f"{d.pct:+.1f}%",
                     f"{comp} {cdelta * 1e3:+.3f}"))
    return render_table(
        ["loop", "op", "status", f"{label_a} ms", f"{label_b} ms",
         "delta ms", "pct", "driver"],
        rows, title=f"per-loop sim delta: {label_a} vs {label_b}")


# ---------------------------------------------------------------------------
# Regression root-cause report
# ---------------------------------------------------------------------------

DEFAULT_WINDOW = 8


def _median(vals: Sequence[float]) -> float:
    s = sorted(vals)
    n = len(s)
    return s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2])


def _pct(a: float, b: float) -> float:
    return 100.0 * (b - a) / a if a else 0.0


@dataclass
class RootCause:
    """Why did this app's latest benchmark record regress?"""

    app: str
    baseline: RunRecord
    latest: RunRecord
    window: int
    problems: List[str] = field(default_factory=list)
    loop_deltas: List[LoopDelta] = field(default_factory=list)
    ledger_only_baseline: List[str] = field(default_factory=list)
    ledger_only_latest: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: how the baseline record was chosen (defaults to the rolling-median
    #: wording; explicit ``analyze --diff A B`` sets its own)
    baseline_desc: str = ""

    @property
    def digest_drifted(self) -> bool:
        return self.baseline.digest != self.latest.digest

    @property
    def cluster(self) -> str:
        return str(self.latest.extra.get("cluster")
                   or self.baseline.extra.get("cluster") or "?")

    def dominant(self) -> Optional[LoopDelta]:
        """The loop contributing the largest absolute sim delta."""
        return self.loop_deltas[0] if self.loop_deltas else None

    def to_json(self) -> Dict[str, Any]:
        return {
            "app": self.app, "window": self.window,
            "problems": list(self.problems),
            "baseline": {"git_sha": self.baseline.git_sha,
                         "wall_s": self.baseline.wall_s,
                         "sim_s": self.baseline.sim_s,
                         "cycles": self.baseline.cycles,
                         "fallbacks": self.baseline.fallbacks,
                         "digest": self.baseline.digest},
            "latest": {"git_sha": self.latest.git_sha,
                       "wall_s": self.latest.wall_s,
                       "sim_s": self.latest.sim_s,
                       "cycles": self.latest.cycles,
                       "fallbacks": self.latest.fallbacks,
                       "digest": self.latest.digest},
            "cluster": self.cluster,
            "digest_drifted": self.digest_drifted,
            "dominant": (self.dominant().to_dict()
                         if self.dominant() else None),
            "loop_deltas": [d.to_dict() for d in self.loop_deltas],
            "ledger_only_baseline": list(self.ledger_only_baseline),
            "ledger_only_latest": list(self.ledger_only_latest),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        b, l = self.baseline, self.latest
        lines = [f"root-cause report: {self.app}",
                 f"  latest   {l.git_sha:<10} wall {l.wall_s * 1e3:9.3f} ms"
                 f"  sim {l.sim_s * 1e3:9.3f} ms  cycles {l.cycles}"
                 f"  fallbacks {l.fallbacks}  digest {l.digest}",
                 f"  baseline {b.git_sha:<10} wall {b.wall_s * 1e3:9.3f} ms"
                 f"  sim {b.sim_s * 1e3:9.3f} ms  cycles {b.cycles}"
                 f"  fallbacks {b.fallbacks}  digest {b.digest}"
                 f"  ({self.baseline_desc or f'rolling-median of {self.window} priors'})",
                 f"  delta: wall {_pct(b.wall_s, l.wall_s):+.1f}%"
                 f"  sim {_pct(b.sim_s, l.sim_s):+.1f}%"
                 f"  cycles {_pct(b.cycles, l.cycles):+.2f}%"]
        if self.problems:
            lines.append("  gate problems:")
            lines.extend(f"    - {p}" for p in self.problems)
        dom = self.dominant()
        if dom is not None:
            comp, cdelta = dom.driver()
            total = sum(abs(d.delta_s) for d in self.loop_deltas) or 1.0
            lines.append(
                f"  dominant contributor: loop {dom.key} ({dom.op}, "
                f"W={dom.workers}) on {self.cluster} — sim "
                f"{dom.delta_s * 1e3:+.3f} ms ({dom.pct:+.1f}%, "
                f"{100.0 * abs(dom.delta_s) / total:.0f}% of run delta), "
                f"driven by {comp} ({cdelta * 1e3:+.3f} ms)")
            lines.append(render_loop_deltas(self.loop_deltas,
                                            "baseline", "latest"))
        if self.digest_drifted:
            lines.append(f"  decision provenance: digest drifted "
                         f"{b.digest} -> {l.digest}")
            if self.ledger_only_latest:
                lines.append(f"    ledger keys only in latest "
                             f"({len(self.ledger_only_latest)}):")
                lines.extend(f"      + {k}"
                             for k in self.ledger_only_latest)
            if self.ledger_only_baseline:
                lines.append(f"    ledger keys only in baseline "
                             f"({len(self.ledger_only_baseline)}):")
                lines.extend(f"      - {k}"
                             for k in self.ledger_only_baseline)
            lines.append(f"    hint: python -m repro.tools explain "
                         f"{self.app} --explain-diff <presetA> <presetB> "
                         f"reproduces a pipeline-level ledger diff")
        else:
            lines.append(f"  decision provenance: digest stable "
                         f"({l.digest}) — delta is cost-model or "
                         f"environment change, not a compiler decision "
                         f"flip")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def root_cause_from_records(app: str, records: Sequence[RunRecord],
                            window: int = DEFAULT_WINDOW,
                            problems: Optional[Sequence[str]] = None,
                            ) -> Optional[RootCause]:
    """Build a root-cause report for ``app``'s latest history record.

    The baseline is the *record* whose wall-clock sits at the rolling
    median of the prior ``window`` runs (closest-to-median, most recent
    on ties) — the same baseline semantics as the regress gate, but
    resolved to a concrete record so its per-loop breakdown and ledger
    keys can be diffed. Needs at least two records; returns ``None``
    otherwise.
    """
    if len(records) < 2:
        return None
    latest = records[-1]
    base = list(records[:-1])[-window:]
    med = _median([r.wall_s for r in base])
    baseline = min(reversed(base), key=lambda r: abs(r.wall_s - med))
    rc = RootCause(app, baseline, latest, len(base),
                   problems=list(problems or []))

    rows_a = baseline.extra.get("per_loop")
    rows_b = latest.extra.get("per_loop")
    if rows_a and rows_b:
        rc.loop_deltas = diff_loop_rows(rows_a, rows_b)
    else:
        rc.notes.append("per-loop breakdown missing on "
                        + ("both records" if not (rows_a or rows_b)
                           else ("baseline" if not rows_a else "latest"))
                        + "; loop attribution unavailable "
                          "(records predate per-loop telemetry)")

    if rc.digest_drifted:
        keys_a = Counter(baseline.extra.get("decisions") or [])
        keys_b = Counter(latest.extra.get("decisions") or [])
        if keys_a or keys_b:
            rc.ledger_only_baseline = sorted((keys_a - keys_b).elements())
            rc.ledger_only_latest = sorted((keys_b - keys_a).elements())
        else:
            rc.notes.append("digest drifted but neither record carries "
                            "normalized ledger keys; re-run benchmarks "
                            "to capture them")
    return rc


def root_cause_json(rc: RootCause) -> str:
    """Deterministic JSON encoding (sorted keys, fixed separators)."""
    return json.dumps(rc.to_json(), sort_keys=True, indent=2)
