"""Chrome-trace validator: ``python -m repro.obs.check t.json [...]``.

Checks the structural invariants a trace viewer relies on — the file is
valid JSON, events carry the required keys, complete ("X") events have
non-negative numeric ``ts``/``dur``, timestamps are monotonically
non-decreasing per track, child intervals do not escape the root run
span, and per-track slice nesting is well-formed: an event that starts
inside an open slice on its track must end inside it too
(:func:`validate_containment` reports the offending span *path*, e.g.
``run/loop cs42/machine cs42-m1`` — a child escaping its parent renders
as overlapping garbage in the viewer). Flow events (the request→batch arrows the serving tracer emits)
are checked pairwise: every flow id must have exactly one start ("s")
and one finish ("f") with matching name/category, the finish must not
precede the start, and both endpoints must land inside a complete event
on their own track — otherwise the viewer silently drops the arrow.
Exit status 0 when every file passes, 1 otherwise. Used by CI on the
traces emitted for every bundled app and on the serving traces.
"""

from __future__ import annotations

import json
import sys
from typing import List


def validate_events(events: List[dict]) -> List[str]:
    """Return a list of violations (empty = valid)."""
    errors: List[str] = []
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        errors.append("no complete ('X') events")
        return errors
    last_ts: dict = {}
    run_end = None
    for i, e in enumerate(xs):
        name = e.get("name")
        if not name or not isinstance(name, str):
            errors.append(f"event {i}: missing/invalid name")
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i} ({name}): bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"event {i} ({name}): bad dur {dur!r}")
            continue
        key = (e.get("pid"), e.get("tid"))
        if ts < last_ts.get(key, 0.0):
            errors.append(f"event {i} ({name}): ts {ts} goes backwards "
                          f"on track {key}")
        last_ts[key] = ts
        if e.get("cat") == "run":
            run_end = ts + dur
    if run_end is not None:
        for i, e in enumerate(xs):
            if (isinstance(e.get("ts"), (int, float))
                    and isinstance(e.get("dur"), (int, float))
                    and e["ts"] + e["dur"] > run_end + 1.0):  # 1us tolerance
                errors.append(f"event {i} ({e.get('name')}): interval ends "
                              f"after the run span")
    errors.extend(validate_containment(xs))
    errors.extend(validate_flows(events, xs))
    return errors


#: slack for interval checks on exported traces: ts/dur are rounded to
#: 3 decimals (µs) independently, so parent/child edges can disagree by
#: a few nanoseconds after rounding
_TOL_US = 0.01


def validate_containment(xs: List[dict]) -> List[str]:
    """Per-track slice-nesting check: every event overlapping an open
    slice must be fully enclosed by it (child ts/dur inside parent).

    Walks each (pid, tid) track in time order with a stack of open
    slices; on violation reports the offending event and the full path
    of open ancestors so the broken span is identifiable in the tree.
    """
    errors: List[str] = []
    tracks: dict = {}
    for e in xs:
        if (isinstance(e.get("ts"), (int, float))
                and isinstance(e.get("dur"), (int, float))):
            tracks.setdefault((e.get("pid"), e.get("tid")), []).append(e)
    for track in sorted(tracks, key=str):
        evs = sorted(tracks[track], key=lambda e: (e["ts"], -e["dur"]))
        stack: List[tuple] = []      # (name, end_ts) of open slices
        for e in evs:
            ts, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][1] <= ts + _TOL_US:
                stack.pop()
            if stack and end > stack[-1][1] + _TOL_US:
                path = "/".join(n for n, _ in stack)
                errors.append(
                    f"containment: event '{e.get('name')}' on track "
                    f"{track} ends at {end} after its enclosing span "
                    f"path '{path}' ends at {stack[-1][1]}")
                continue             # don't push the escapee as a parent
            stack.append((str(e.get("name")), end))
    return errors


def _enclosed(xs: List[dict], track, ts: float) -> bool:
    """Is ``ts`` inside (or on the edge of) some complete event on
    ``track``? Flow endpoints bind to enclosing slices; a bare endpoint
    is an arrow the viewer drops."""
    for e in xs:
        if ((e.get("pid"), e.get("tid")) == track
                and isinstance(e.get("ts"), (int, float))
                and isinstance(e.get("dur"), (int, float))
                and e["ts"] - 1e-6 <= ts <= e["ts"] + e["dur"] + 1e-6):
            return True
    return False


def validate_flows(events: List[dict], xs: List[dict]) -> List[str]:
    """Pairwise flow-event checks (empty list when no flows present)."""
    errors: List[str] = []
    flows: dict = {}
    for e in events:
        if e.get("ph") in ("s", "t", "f"):
            flows.setdefault(e.get("id"), []).append(e)
    for fid, evs in sorted(flows.items(), key=lambda kv: str(kv[0])):
        starts = [e for e in evs if e["ph"] == "s"]
        ends = [e for e in evs if e["ph"] == "f"]
        if len(starts) != 1 or len(ends) != 1:
            errors.append(f"flow {fid}: expected one start and one finish, "
                          f"got {len(starts)} start(s) / {len(ends)} "
                          f"finish(es)")
            continue
        s, f = starts[0], ends[0]
        if s.get("name") != f.get("name") or s.get("cat") != f.get("cat"):
            errors.append(f"flow {fid}: start/finish name or category "
                          f"mismatch")
        ts_s, ts_f = s.get("ts"), f.get("ts")
        if not isinstance(ts_s, (int, float)) \
                or not isinstance(ts_f, (int, float)):
            errors.append(f"flow {fid}: non-numeric ts")
            continue
        if ts_f < ts_s - 1e-6:
            errors.append(f"flow {fid}: finish ts {ts_f} precedes start "
                          f"ts {ts_s}")
        for e, which in ((s, "start"), (f, "finish")):
            track = (e.get("pid"), e.get("tid"))
            if not _enclosed(xs, track, e["ts"]):
                errors.append(f"flow {fid}: {which} endpoint at ts "
                              f"{e['ts']} has no enclosing slice on "
                              f"track {track}")
    return errors


def validate_file(path: str) -> List[str]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"cannot load: {exc}"]
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return ["neither a JSON array nor an object with 'traceEvents'"]
    return validate_events(events)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.check TRACE.json [...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for e in errors:
                print(f"  - {e}")
        else:
            with open(path) as f:
                doc = json.load(f)
            events = doc.get("traceEvents") if isinstance(doc, dict) else doc
            n = sum(1 for e in events if e.get("ph") == "X")
            print(f"{path}: ok ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
