"""Chrome-trace validator: ``python -m repro.obs.check t.json [...]``.

Checks the structural invariants a trace viewer relies on — the file is
valid JSON, events carry the required keys, complete ("X") events have
non-negative numeric ``ts``/``dur``, timestamps are monotonically
non-decreasing per track, and child intervals do not escape the root run
span. Exit status 0 when every file passes, 1 otherwise. Used by CI on
the traces emitted for every bundled app.
"""

from __future__ import annotations

import json
import sys
from typing import List


def validate_events(events: List[dict]) -> List[str]:
    """Return a list of violations (empty = valid)."""
    errors: List[str] = []
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        errors.append("no complete ('X') events")
        return errors
    last_ts: dict = {}
    run_end = None
    for i, e in enumerate(xs):
        name = e.get("name")
        if not name or not isinstance(name, str):
            errors.append(f"event {i}: missing/invalid name")
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i} ({name}): bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"event {i} ({name}): bad dur {dur!r}")
            continue
        key = (e.get("pid"), e.get("tid"))
        if ts < last_ts.get(key, 0.0):
            errors.append(f"event {i} ({name}): ts {ts} goes backwards "
                          f"on track {key}")
        last_ts[key] = ts
        if e.get("cat") == "run":
            run_end = ts + dur
    if run_end is not None:
        for i, e in enumerate(xs):
            if (isinstance(e.get("ts"), (int, float))
                    and isinstance(e.get("dur"), (int, float))
                    and e["ts"] + e["dur"] > run_end + 1.0):  # 1us tolerance
                errors.append(f"event {i} ({e.get('name')}): interval ends "
                              f"after the run span")
    return errors


def validate_file(path: str) -> List[str]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"cannot load: {exc}"]
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return ["neither a JSON array nor an object with 'traceEvents'"]
    return validate_events(events)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.check TRACE.json [...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for e in errors:
                print(f"  - {e}")
        else:
            with open(path) as f:
                doc = json.load(f)
            events = doc.get("traceEvents") if isinstance(doc, dict) else doc
            n = sum(1 for e in events if e.get("ph") == "X")
            print(f"{path}: ok ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
