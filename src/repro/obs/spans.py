"""Hierarchical spans over *simulated* time.

A span covers a half-open interval ``[start_s, start_s + dur_s)`` of the
simulated clock and carries structured attributes. The executor builds
one tree per priced run: run → statement/loop → machine → socket or GPU
chunk — the §5 execution hierarchy made visible.

Spans are plain data on purpose: the executor computes every duration
analytically, so there is no enter/exit bracketing to get wrong, and the
exporters (``repro.obs.export``) can walk the tree without any runtime
state. Tracing is strictly opt-in — when ``ExecOptions.tracer`` is unset
the executor never allocates a span.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class RequestContext:
    """Trace identity of one serving request.

    Both ids derive from ``(seed, rid)`` alone so two runs with the
    same traffic seed produce byte-identical traces: ``trace_id`` is a
    32-hex (OTel-sized) id for the request's whole lifecycle,
    ``span_id`` the 16-hex id of its request span. The numeric
    ``flow_id`` keys the Chrome-trace flow arrow from this request into
    the lane-packed execution that served it.
    """

    trace_id: str
    span_id: str
    rid: int

    @property
    def flow_id(self) -> int:
        return int(self.span_id, 16) & 0x7FFFFFFF

    @classmethod
    def derive(cls, seed: int, rid: int) -> "RequestContext":
        h = hashlib.sha256(f"serve:{seed}:{rid}".encode()).hexdigest()
        return cls(h[:32], h[32:48], rid)


#: lifecycle stages every request passes through, in order; the
#: timeline records the simulated second each one happened at
TIMELINE_MARKS = ("arrive", "enqueue", "seal", "dispatch", "exec_start",
                  "complete")


@dataclass
class RequestTimeline:
    """Per-request lifecycle timeline over the simulated serve clock.

    ``arrive`` — the request hits the server; ``enqueue`` — it enters
    its admission-queue group; ``seal`` — the batcher closes the group
    it belongs to; ``dispatch`` — the scheduler places the sealed batch
    on a machine; ``exec_start`` — its (possibly shared) execution
    begins; ``complete`` — its response is final. Marks are monotone
    non-decreasing, which ``repro.obs.check`` relies on.
    """

    ctx: RequestContext
    marks: Dict[str, float] = field(default_factory=dict)

    def mark(self, stage: str, t: float) -> None:
        if stage not in TIMELINE_MARKS:
            raise ValueError(f"unknown lifecycle stage {stage!r}")
        self.marks[stage] = t

    def get(self, stage: str) -> Optional[float]:
        return self.marks.get(stage)

    def ordered(self) -> List[Tuple[str, float]]:
        """(stage, t) pairs in lifecycle order, only recorded stages."""
        return [(s, self.marks[s]) for s in TIMELINE_MARKS
                if s in self.marks]


@dataclass
class Span:
    """One node of the span tree."""

    name: str
    kind: str                    # "run" | "loop" | "machine" | "socket" | "gpu"
    start_s: float
    dur_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def child(self, name: str, kind: str, start_s: float,
              dur_s: float = 0.0, **attrs: Any) -> "Span":
        sp = Span(name, kind, start_s, dur_s, attrs)
        self.children.append(sp)
        return sp

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first (pre-order) traversal: yields (span, depth)."""
        yield self, depth
        for c in self.children:
            yield from c.walk(depth + 1)

    def contains(self, other: "Span", tol: float = 1e-9) -> bool:
        """Does this span's interval cover ``other``'s (within ``tol``)?"""
        return (other.start_s >= self.start_s - tol
                and other.end_s <= self.end_s + tol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.kind}:{self.name} @{self.start_s:.6f}"
                f"+{self.dur_s:.6f}, {len(self.children)} children)")


class Tracer:
    """Collects span trees, one root per priced run.

    ``enabled`` is the single guard the executor checks before doing any
    observability work; flip it off (or simply pass no tracer) for
    zero-cost runs.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.runs: List[Span] = []

    def begin_run(self, name: str, **attrs: Any) -> Span:
        root = Span(name, "run", 0.0, 0.0, dict(attrs))
        self.runs.append(root)
        return root

    @property
    def last_run(self) -> Optional[Span]:
        return self.runs[-1] if self.runs else None

    def clear(self) -> None:
        self.runs.clear()
