"""Hierarchical spans over *simulated* time.

A span covers a half-open interval ``[start_s, start_s + dur_s)`` of the
simulated clock and carries structured attributes. The executor builds
one tree per priced run: run → statement/loop → machine → socket or GPU
chunk — the §5 execution hierarchy made visible.

Spans are plain data on purpose: the executor computes every duration
analytically, so there is no enter/exit bracketing to get wrong, and the
exporters (``repro.obs.export``) can walk the tree without any runtime
state. Tracing is strictly opt-in — when ``ExecOptions.tracer`` is unset
the executor never allocates a span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One node of the span tree."""

    name: str
    kind: str                    # "run" | "loop" | "machine" | "socket" | "gpu"
    start_s: float
    dur_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def child(self, name: str, kind: str, start_s: float,
              dur_s: float = 0.0, **attrs: Any) -> "Span":
        sp = Span(name, kind, start_s, dur_s, attrs)
        self.children.append(sp)
        return sp

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first (pre-order) traversal: yields (span, depth)."""
        yield self, depth
        for c in self.children:
            yield from c.walk(depth + 1)

    def contains(self, other: "Span", tol: float = 1e-9) -> bool:
        """Does this span's interval cover ``other``'s (within ``tol``)?"""
        return (other.start_s >= self.start_s - tol
                and other.end_s <= self.end_s + tol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.kind}:{self.name} @{self.start_s:.6f}"
                f"+{self.dur_s:.6f}, {len(self.children)} children)")


class Tracer:
    """Collects span trees, one root per priced run.

    ``enabled`` is the single guard the executor checks before doing any
    observability work; flip it off (or simply pass no tracer) for
    zero-cost runs.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.runs: List[Span] = []

    def begin_run(self, name: str, **attrs: Any) -> Span:
        root = Span(name, "run", 0.0, 0.0, dict(attrs))
        self.runs.append(root)
        return root

    @property
    def last_run(self) -> Optional[Span]:
        return self.runs[-1] if self.runs else None

    def clear(self) -> None:
        self.runs.clear()
