"""Exporters: text profile report and Chrome-trace JSON.

The profile report is the data behind Figs. 6/7/8 for any single run: a
per-loop table sorted by simulated time with the compute/memory/comm/
overhead split and each loop's share of the total.

The Chrome-trace exporter emits the `Trace Event Format`_ consumed by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
("X") events with microsecond timestamps, one track (pid/tid) per
simulated machine, plus metadata events naming the tracks.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Union

from ..report.tables import render_table
from .spans import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..runtime.executor import SimResult

_US = 1e6  # simulated seconds -> trace microseconds


# ---------------------------------------------------------------------------
# text profile report
# ---------------------------------------------------------------------------

def profile_report(sim: "SimResult", title: str = "") -> str:
    """Per-loop breakdown table, sorted by time, with % of total."""
    total = sim.total_seconds or 1e-30
    rows = []
    for l in sorted(sim.loops, key=lambda l: l.time_s, reverse=True):
        rows.append([
            l.name, l.op_name, l.iters, l.workers,
            f"{l.time_s * 1e3:10.3f}", f"{100.0 * l.time_s / total:5.1f}%",
            f"{l.compute_s * 1e3:.3f}", f"{l.memory_s * 1e3:.3f}",
            f"{l.comm_s * 1e3:.3f}", f"{l.overhead_s * 1e3:.3f}",
        ])
    rows.append(["TOTAL", "", "", "",
                 f"{sim.total_seconds * 1e3:10.3f}", "100.0%", "", "", "", ""])
    return render_table(
        ["loop", "op", "iters", "W", "time ms", "%",
         "compute", "memory", "comm", "overhead"],
        rows, title=title or "profile (simulated time, sorted by cost)")


def render_spans(root: Span) -> str:
    """Indented one-line-per-span view of a span tree (debug aid)."""
    lines = []
    for sp, depth in root.walk():
        lines.append(f"{'  ' * depth}{sp.kind}:{sp.name} "
                     f"@{sp.start_s * 1e3:.3f}ms +{sp.dur_s * 1e3:.3f}ms")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace
# ---------------------------------------------------------------------------

def _clean_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of span attributes."""
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        elif isinstance(v, dict):
            out[k] = {str(kk): str(vv) for kk, vv in v.items()}
        elif isinstance(v, (list, tuple)):
            out[k] = [str(x) for x in v]
        else:
            out[k] = str(v)
    return out


#: request-lifecycle spans live in their own trace process so each
#: request gets a private track and overlapping lifecycles never fight
#: over slice nesting on the machine tracks
_REQUEST_PID = 2
_REQUEST_KINDS = ("request", "queue", "exec")

#: per-attempt spans (retries, hedges, crash re-enqueues) live in a
#: third process: attempts of one request share a track, so a hedge
#: racing its primary nests instead of fighting the winning request
#: span's queue/exec children for slice nesting
_ATTEMPT_PID = 3


def _tid_of(sp: Span) -> int:
    """Track assignment: the run/loop timeline is tid 0; each simulated
    machine gets its own tid so its chunks nest under its loop row in the
    viewer."""
    m = sp.attrs.get("machine")
    return 0 if m is None else int(m) + 1


def _pid_tid_of(sp: Span) -> tuple:
    if sp.kind in _REQUEST_KINDS:
        return _REQUEST_PID, int(sp.attrs.get("rid", 0))
    if sp.kind == "attempt":
        return _ATTEMPT_PID, int(sp.attrs.get("rid", 0))
    return 1, _tid_of(sp)


def flow_events(roots: Iterable[Span]) -> List[dict]:
    """Chrome-trace flow arrows from request spans into the lane-packed
    execution spans that served them.

    Every ``request``-kind span carrying a ``batch_id`` contributes one
    flow: a start ("s") on the request's own track at its dispatch
    time, and a finish ("f", binding to the enclosing slice) on the
    matching ``batch`` span's machine track at the batch's start — N
    requests served by one execution render as N arrows converging on
    one slice. The flow id is the request's deterministic
    ``RequestContext.flow_id``, so traces diff byte-for-byte across
    same-seed runs.
    """
    batches: dict = {}
    requests: List[Span] = []
    for root in roots:
        for sp, _depth in root.walk():
            if sp.kind == "batch" and "batch_id" in sp.attrs:
                batches[sp.attrs["batch_id"]] = sp
            elif sp.kind == "request" and "batch_id" in sp.attrs:
                requests.append(sp)
    events: List[dict] = []
    for sp in sorted(requests, key=lambda s: int(s.attrs.get("rid", 0))):
        batch = batches.get(sp.attrs["batch_id"])
        if batch is None:
            continue
        fid = int(sp.attrs.get("flow_id", sp.attrs.get("rid", 0)))
        src_ts = float(sp.attrs.get("dispatch_s", sp.start_s))
        events.append({
            "name": "req", "cat": "flow", "ph": "s", "id": fid,
            "pid": _REQUEST_PID, "tid": int(sp.attrs.get("rid", 0)),
            "ts": round(src_ts * _US, 3),
        })
        events.append({
            "name": "req", "cat": "flow", "ph": "f", "bp": "e", "id": fid,
            "pid": 1, "tid": _tid_of(batch),
            "ts": round(batch.start_s * _US, 3),
        })
    return events


def _event_sort_key(e: dict) -> tuple:
    """Total order over complete events: track, then time, then longest
    slice first (so parents precede children at equal ts), then name.
    Sorting on it makes the trace byte-identical no matter what order
    spans were completed or dict iteration yielded them in."""
    return (e["pid"], e["tid"], e["ts"], -e["dur"], e["cat"], e["name"])


def chrome_trace_events(source: Union[Tracer, Span]) -> List[dict]:
    """Flatten span tree(s) into Chrome trace events (``ph: "X"``),
    plus request↔batch flow arrows when request spans are present.

    Output order is deterministic: metadata events first (sorted
    tracks), complete events sorted by :func:`_event_sort_key`, then
    flow arrows sorted by rid — two traces of the same run serialize
    byte-identically regardless of completion or insertion order."""
    roots: List[Span]
    roots = source.runs if isinstance(source, Tracer) else [source]
    events: List[dict] = []
    tids = {0}
    req_tids: dict = {}
    attempt_tids: set = set()
    for root in roots:
        for sp, _depth in root.walk():
            pid, tid = _pid_tid_of(sp)
            if pid == 1:
                tids.add(tid)
            elif sp.kind == "request":
                req_tids[tid] = sp.name
            elif pid == _ATTEMPT_PID:
                attempt_tids.add(tid)
            events.append({
                "name": sp.name,
                "cat": sp.kind,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round(sp.start_s * _US, 3),
                "dur": round(sp.dur_s * _US, 3),
                "args": _clean_args(sp.attrs),
            })
    events.sort(key=_event_sort_key)
    meta = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "dmll simulated run"}}]
    for tid in sorted(tids):
        label = "timeline" if tid == 0 else f"machine {tid - 1}"
        meta.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                     "args": {"name": label}})
    if req_tids:
        meta.append({"name": "process_name", "ph": "M", "pid": _REQUEST_PID,
                     "tid": 0, "args": {"name": "requests"}})
        for tid in sorted(req_tids):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": _REQUEST_PID, "tid": tid,
                         "args": {"name": req_tids[tid]}})
    if attempt_tids:
        meta.append({"name": "process_name", "ph": "M", "pid": _ATTEMPT_PID,
                     "tid": 0, "args": {"name": "attempts"}})
        for tid in sorted(attempt_tids):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": _ATTEMPT_PID, "tid": tid,
                         "args": {"name": f"r{tid} attempts"}})
    return meta + events + flow_events(roots)


def write_chrome_trace(path: str, source: Union[Tracer, Span]) -> None:
    """Write a ``{"traceEvents": [...]}`` JSON file loadable in Perfetto."""
    doc = {"traceEvents": chrome_trace_events(source),
           "displayTimeUnit": "ms"}
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
