"""Declarative SLOs over the serve timeline: error budgets, burn rates.

An :class:`SLOSpec` states what "good" means for served traffic —
latency-percentile objectives ("99% of requests finish within 80 ms")
and availability objectives ("99% of responses are served without a
fallback") — and :func:`evaluate_slo` reduces one serving run's
responses to per-objective compliance:

- **error budget** — the fraction of requests an objective *allows* to
  be bad (``1 - target``);
- **budget consumed** — the run's overall bad-fraction divided by the
  budget; ``> 1.0`` means the budget is exhausted and the run violates
  the objective;
- **burn rate** — the same ratio computed over sliding windows of the
  simulated completion timeline (window ``window_s``, half-window
  step), so a short queueing pathology shows up as a burn-rate spike
  even when the whole run stays inside budget. This is the
  Google-SRE-style multi-window signal, computed over simulated time so
  it is deterministic for a given traffic seed.

Everything is plain data in, plain data out: the engine never touches
the server, so it can score a live ``ServeSim`` run or a recorded
response list identically. ``repro.tools slo-report`` is the CLI and
CI gate (exit 0 within budget, 1 exhausted, 2 bad usage).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: objective kinds the engine scores
KINDS = ("latency", "availability")


@dataclass(frozen=True)
class SLOObjective:
    """One objective: at least ``target`` of requests must be good."""

    name: str
    kind: str                       # "latency" | "availability"
    #: good-fraction target in (0, 1), e.g. 0.99 — the error budget is
    #: ``1 - target``
    target: float
    #: latency objectives only: a response is good iff it finished
    #: within this many seconds of arriving
    threshold_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not (0.0 < self.target < 1.0):
            raise ValueError(f"objective {self.name!r}: target must be in "
                             f"(0, 1), got {self.target}")
        if self.kind == "latency" and (self.threshold_s is None
                                       or self.threshold_s <= 0):
            raise ValueError(f"latency objective {self.name!r} needs a "
                             f"positive threshold")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def is_bad(self, latency_s: float, fallback: bool) -> bool:
        if self.kind == "latency":
            return latency_s > self.threshold_s
        return fallback

    def describe(self) -> str:
        if self.kind == "latency":
            return (f"{self.target * 100:g}% of requests within "
                    f"{self.threshold_s * 1e3:g} ms")
        return f"{self.target * 100:g}% of responses without fallback"


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives plus the burn-rate window width."""

    name: str
    objectives: Tuple[SLOObjective, ...]
    window_s: float = 0.05

    def __post_init__(self):
        if not self.objectives:
            raise ValueError(f"SLO spec {self.name!r} has no objectives")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "SLOSpec":
        """Parse the declarative JSON form::

            {"name": "interactive", "window_s": 0.05,
             "objectives": [
               {"name": "p99", "kind": "latency",
                "target": 0.99, "threshold_ms": 80},
               {"name": "avail", "kind": "availability", "target": 0.99}]}
        """
        if not isinstance(doc, dict):
            raise ValueError("SLO spec must be a JSON object")
        objs = []
        for o in doc.get("objectives", []):
            thr = o.get("threshold_ms")
            objs.append(SLOObjective(
                name=o.get("name", o.get("kind", "?")),
                kind=o.get("kind", "latency"),
                target=float(o.get("target", 0.99)),
                threshold_s=(float(thr) / 1e3 if thr is not None
                             else o.get("threshold_s"))))
        return cls(name=doc.get("name", "slo"), objectives=tuple(objs),
                   window_s=float(doc.get("window_s", 0.05)))

    @classmethod
    def load(cls, path: str) -> "SLOSpec":
        with open(path) as f:
            return cls.from_json(json.load(f))


@dataclass
class BurnWindow:
    """Error-budget burn over one sliding window of the timeline."""

    t0_s: float
    t1_s: float
    total: int
    bad: int

    def burn_rate(self, budget: float) -> float:
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / budget


@dataclass
class ObjectiveResult:
    """One objective scored against one run."""

    objective: SLOObjective
    total: int
    bad: int
    windows: List[BurnWindow] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return (self.bad / self.total) if self.total else 0.0

    @property
    def budget_consumed(self) -> float:
        """Overall bad-fraction over the budget; > 1.0 = exhausted."""
        return self.error_rate / self.objective.budget

    @property
    def max_burn_rate(self) -> float:
        return max((w.burn_rate(self.objective.budget)
                    for w in self.windows), default=0.0)

    @property
    def worst_window(self) -> Optional[BurnWindow]:
        if not self.windows:
            return None
        return max(self.windows,
                   key=lambda w: (w.burn_rate(self.objective.budget), -w.t0_s))

    @property
    def ok(self) -> bool:
        return self.budget_consumed <= 1.0

    def to_json(self) -> Dict[str, Any]:
        worst = self.worst_window
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "threshold_ms": (self.objective.threshold_s * 1e3
                             if self.objective.threshold_s is not None
                             else None),
            "total": self.total,
            "bad": self.bad,
            "error_rate": self.error_rate,
            "budget": self.objective.budget,
            "budget_consumed": self.budget_consumed,
            "max_burn_rate": self.max_burn_rate,
            "worst_window": (None if worst is None else
                             {"t0_s": worst.t0_s, "t1_s": worst.t1_s,
                              "total": worst.total, "bad": worst.bad}),
            "status": "ok" if self.ok else "violated",
        }


@dataclass
class SLOReport:
    """All objectives of one spec scored against one run."""

    spec: SLOSpec
    results: List[ObjectiveResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_json(self) -> Dict[str, Any]:
        return {"spec": self.spec.name, "window_s": self.spec.window_s,
                "status": "ok" if self.ok else "violated",
                "objectives": [r.to_json() for r in self.results]}

    def render(self) -> str:
        from ..report.tables import render_table
        rows = []
        for r in self.results:
            rows.append([
                r.objective.name, r.objective.describe(),
                f"{r.bad}/{r.total}",
                f"{r.error_rate * 100:.2f}%",
                f"{r.budget_consumed * 100:.1f}%",
                f"{r.max_burn_rate:.2f}x",
                "ok" if r.ok else "VIOLATED",
            ])
        return render_table(
            ["objective", "goal", "bad", "error rate", "budget used",
             "max burn", "status"],
            rows, title=f"SLO report: {self.spec.name} "
                        f"(window {self.spec.window_s * 1e3:g} ms)")


def _windows(events: Sequence[Tuple[float, bool]], window_s: float,
             makespan_s: float) -> List[Tuple[float, float, int, int]]:
    """Sliding (t0, t1, total, bad) windows, half-window step, empty
    windows skipped — deterministic for a fixed event list."""
    if not events or makespan_s <= 0:
        return []
    step = window_s / 2.0
    n_steps = max(1, int(math.ceil(makespan_s / step)))
    out = []
    for i in range(n_steps):
        t0 = i * step
        t1 = t0 + window_s
        total = bad = 0
        for t, is_bad in events:
            if t0 <= t < t1 or (t == makespan_s and t1 >= makespan_s):
                total += 1
                bad += int(is_bad)
        if total:
            out.append((t0, t1, total, bad))
    return out


def evaluate_slo(spec: SLOSpec, responses: Sequence[Any],
                 rejected: Sequence[Any] = ()) -> SLOReport:
    """Score ``spec`` against serve responses (anything exposing
    ``finish_s``, ``latency_s`` and ``fallback_reason``).

    ``rejected`` takes the run's :class:`~repro.serve.resilience.Rejected`
    records (anything exposing ``t_s``): a request the server refused —
    shed, deadline, retries exhausted — is unconditionally *bad* for
    every objective, so availability objectives score real failures
    instead of the trivially-healthy pre-chaos world."""
    makespan = max((r.finish_s for r in responses), default=0.0)
    makespan = max(makespan, max((j.t_s for j in rejected), default=0.0))
    results = []
    for obj in spec.objectives:
        events = [(r.finish_s,
                   obj.is_bad(r.latency_s, r.fallback_reason is not None))
                  for r in responses]
        events += [(j.t_s, True) for j in rejected]
        events.sort(key=lambda e: e[0])
        bad = sum(1 for _, b in events if b)
        res = ObjectiveResult(obj, len(events), bad)
        res.windows = [BurnWindow(t0, t1, n, nb)
                       for t0, t1, n, nb in _windows(events, spec.window_s,
                                                     makespan)]
        results.append(res)
    return SLOReport(spec, results)
