"""Typed compiler/runtime diagnostics.

The paper mandates one observability hook structurally ("falling back to
runtime data movement **with a warning**", §4.1). The partitioning
analysis used to record that as a bare string; a ``Diagnostic`` keeps the
same human-readable message but adds a stable category, the loop symbol
it concerns, a severity, and free-form structured data — so tooling can
filter events without parsing prose. The old ``warnings`` string list
survives as a derived view (``PartitionReport.warnings``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union


class Severity(str, enum.Enum):
    """Diagnostic severity, shared with the partitioning analysis.

    A ``str`` enum so historical comparisons against the literal strings
    keep working — but constructing one from a typo'd string raises, so a
    misspelled severity can no longer silently drop a diagnostic from the
    ``warnings`` view (it used to filter on the literal ``"warning"``).
    """

    WARNING = "warning"
    INFO = "info"

    @classmethod
    def of(cls, value: Union["Severity", str]) -> "Severity":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown diagnostic severity {value!r}; expected one of "
                f"{[s.value for s in cls]}") from None


class DiagCategory(enum.Enum):
    """Stable event taxonomy (DESIGN.md §6d)."""

    #: a partitioned collection is accessed data-dependently and no Fig. 3
    #: rule removed the Unknown stencil — runtime movement/replication
    UNKNOWN_STENCIL_FALLBACK = "unknown-stencil-fallback"
    #: a sequential (non-loop) op consumes partitioned data and must run
    #: at a single location
    SEQUENTIAL_PARTITIONED = "sequential-partitioned"
    #: a GPU kernel reduces a vector-typed accumulator (temporaries exceed
    #: shared memory; Row-to-Column Reduce was not applicable / disabled)
    CUDA_VECTOR_REDUCE = "cuda-vector-reduce"
    #: the §4.2 replicate-vs-move policy chose full replication
    REPLICATION = "replication"
    #: the §4.2 policy chose dynamic remote fetches
    REMOTE_FETCH = "remote-fetch"


@dataclass(frozen=True)
class Diagnostic:
    """One typed, loop-attributed event."""

    category: DiagCategory
    message: str
    loop: Optional[str] = None       # name of the loop symbol it concerns
    severity: Severity = Severity.WARNING
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # normalize/validate str severities at construction time
        object.__setattr__(self, "severity", Severity.of(self.severity))

    def __str__(self) -> str:
        return self.message

    def render(self) -> str:
        where = f" loop={self.loop}" if self.loop else ""
        return f"[{self.category.value}{where}] {self.message}"
