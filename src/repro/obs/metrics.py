"""Metrics registry: counters, gauges, and histograms.

Fed by the executor (pricing decisions: replication vs dynamic fetches,
broadcast/shuffle volumes, per-loop seconds), by the distributed-array
runtime (remote-read traps, directory lookups — see
``repro.runtime.distarray.set_metrics``), and by the interpreter through
``MetricsObserver``.

Labels follow the Prometheus convention of being folded into the series
key: ``inc("executor.remote_fetch_bytes", n, loop="x12")`` records under
``executor.remote_fetch_bytes{loop=x12}``. Everything is in-process and
deterministic — the registry is a dict, not a server.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..core.interp import Def, LoopObserver


def _series(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters (monotonic), gauges (last value), histograms (all values)."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}

    # -- write side -----------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _series(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[_series(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histograms.setdefault(_series(name, labels), []).append(value)

    # -- read side ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> float:
        return self.counters.get(_series(name, labels), 0.0)

    def histogram_stats(self, name: str, **labels: Any) -> Dict[str, float]:
        return self.histogram_stats_of(
            self.histograms.get(_series(name, labels), []))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: self.histogram_stats_of(v)
                           for k, v in self.histograms.items()},
        }

    @staticmethod
    def histogram_stats_of(vals: List[float]) -> Dict[str, float]:
        # every key is always present: an empty histogram (count 0, all
        # stats 0.0) and a single sample (every percentile IS the
        # sample) must be well-defined, not KeyErrors or index errors
        # in whoever reads the snapshot
        if not vals:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
        s = sorted(vals)
        # tail percentiles use nearest-rank (exact sample, no
        # interpolation) so latency reports are deterministic; p50 keeps
        # the historical upper-median convention
        def rank(q: float) -> float:
            return s[min(len(s) - 1, max(0, math.ceil(q * len(s)) - 1))]
        return {"count": len(s), "min": s[0], "max": s[-1],
                "mean": sum(s) / len(s), "p50": s[len(s) // 2],
                "p90": rank(0.90), "p95": rank(0.95), "p99": rank(0.99)}

    def render(self) -> str:
        """Plain-text dump, one series per line, grouped by type."""
        lines: List[str] = []
        for title, table in (("counters", self.counters),
                             ("gauges", self.gauges)):
            if table:
                lines.append(f"{title}:")
                for k in sorted(table):
                    lines.append(f"  {k:<52} {table[k]:g}")
        if self.histograms:
            lines.append("histograms:")
            for k in sorted(self.histograms):
                st = self.histogram_stats_of(self.histograms[k])
                lines.append(
                    f"  {k:<52} n={st['count']} min={st['min']:.3g} "
                    f"mean={st['mean']:.3g} max={st['max']:.3g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


class MetricsObserver(LoopObserver):
    """Interpreter hook feeding loop execution counts into a registry."""

    def __init__(self, metrics: MetricsRegistry):
        self.metrics = metrics

    def on_loop_start(self, d: Def, size: int) -> None:
        self.metrics.inc("interp.loops_started")
        self.metrics.inc("interp.iterations", size,
                         loop=d.syms[0].name)

    def on_loop_end(self, d: Def) -> None:
        self.metrics.inc("interp.loops_finished")
