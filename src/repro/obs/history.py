"""Append-only benchmark history store (the regression observatory).

``BENCH_backend.json`` is fire-and-forget: each benchmark run overwrites
it, so a quiet slowdown between two PRs leaves no trace. The history
store keeps one JSONL file per app under ``benchmarks/history/`` — every
run *appends* a :class:`RunRecord` (git SHA, host wall-clock, simulated
seconds, cycle count, fallback count, and the compile's decision-ledger
digest) and never rewrites old lines. ``repro.obs.regress`` compares the
latest record against a rolling median baseline and fails CI on
wall-clock/cycle regressions or decision-digest drift.

The files are plain JSONL so they diff cleanly, survive partial writes
(a torn last line is skipped on load), and can be carried across CI runs
as an artifact.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: default store location, resolved relative to the repo root
_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_DIR = _REPO_ROOT / "benchmarks" / "history"


@dataclass
class RunRecord:
    """One app × backend × run observation."""

    app: str
    backend: str
    git_sha: str
    #: host wall-clock seconds of one functional execution (best-of-N)
    wall_s: float
    #: simulated seconds on the machine model (backend-invariant)
    sim_s: float
    #: simulated cycle count (deterministic for a given compile)
    cycles: int
    #: loops that fell back to the reference interpreter
    fallbacks: int
    #: DecisionLedger.digest() of the compile that produced the program
    digest: str
    timestamp: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json_line(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs = {k: v for k, v in doc.items() if k in known}
        # tolerate records written by newer versions: unknown keys -> extra
        kwargs.setdefault("extra", {})
        kwargs["extra"] = dict(kwargs["extra"],
                               **{k: v for k, v in doc.items()
                                  if k not in known})
        return cls(**kwargs)


def git_sha(root: Optional[pathlib.Path] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root or _REPO_ROOT), capture_output=True, text=True,
            timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def history_path(app: str,
                 root: Optional[pathlib.Path] = None) -> pathlib.Path:
    return pathlib.Path(root or DEFAULT_DIR) / f"{app}.jsonl"


def append_record(rec: RunRecord,
                  root: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Append one record to the app's JSONL file (creating it on first
    use). Records are stamped with the current time if unset."""
    if not rec.timestamp:
        rec.timestamp = time.time()
    path = history_path(rec.app, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(rec.to_json_line() + "\n")
    return path


def _chronological(records: List[RunRecord]) -> List[RunRecord]:
    """Order records by timestamp, not file position.

    History files merged from CI artifact caches can interleave lines
    out of append order, and the rolling-baseline window in ``regress``
    assumes the last record is the newest. Records carrying the ``0.0``
    default timestamp (hand-written or pre-timestamp lines) inherit the
    effective time of their predecessor, so a legacy block keeps its
    file order and stays glued where it appeared; the sort is stable on
    ``(effective_time, file_index)``.
    """
    keyed = []
    eff = 0.0
    for i, r in enumerate(records):
        if r.timestamp > 0:
            eff = r.timestamp
        keyed.append((eff, i, r))
    keyed.sort(key=lambda t: (t[0], t[1]))
    return [r for _, _, r in keyed]


def load_history(app: str,
                 root: Optional[pathlib.Path] = None) -> List[RunRecord]:
    """All records of one app, in chronological (timestamp) order —
    see :func:`_chronological`. Unparsable lines (e.g. a torn write from
    a killed run) are skipped."""
    path = history_path(app, root)
    if not path.exists():
        return []
    out: List[RunRecord] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(RunRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, TypeError):
            continue
    return _chronological(out)


def known_apps(root: Optional[pathlib.Path] = None) -> List[str]:
    base = pathlib.Path(root or DEFAULT_DIR)
    if not base.exists():
        return []
    return sorted(p.stem for p in base.glob("*.jsonl"))
