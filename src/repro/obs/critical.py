"""Critical-path extraction over simulated-time span trees (DESIGN.md §12).

A priced run's span tree already encodes everything the critical path
needs: every span covers an analytically computed interval of the
simulated clock, so the chain of spans that bounds end-to-end time can
be recovered with a backward walk — no sampling, no instrumentation.

Two extractors live here:

* :func:`critical_path` — for a single-app run tree
  (run → loop → machine → socket/GPU): walk backward from each span's
  end, repeatedly picking the child whose interval bounds the cursor;
  gaps between chosen children are the parent's *self time* (work not
  explained by any child — e.g. a loop's serial comm/overhead tail
  above its parallel machine chunks). Self times over the returned
  steps sum to the root duration.

* :func:`fleet_attribution` — for a serve-run tree (run → batch spans
  on per-machine tracks): the backward greedy chain over batch spans
  yields the sequence of executions that bounds makespan; per machine
  we report busy/idle/utilization and *time on the critical path*,
  which ranks replicas by how much of the end-to-end time they alone
  explain. Chain gaps are arrival-bound waiting (every machine idle).

Both are pure functions over :class:`~repro.obs.spans.Span` data —
they allocate nothing during execution and therefore keep the
zero-cost-when-disabled contract trivially (no tracer → no tree → the
analytics are simply never called).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..report.tables import render_table
from .spans import Span

#: slack below which two simulated times are considered equal
_TOL = 1e-12


@dataclass
class PathStep:
    """One span on the critical path with its self-time attribution."""

    span: Span
    depth: int
    #: simulated seconds on the path not explained by any chosen child
    self_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.span.name, "kind": self.span.kind,
            "depth": self.depth, "start_s": self.span.start_s,
            "dur_s": self.span.dur_s, "self_s": self.self_s,
        }


@dataclass
class CriticalPath:
    """The chain of spans bounding a run's end-to-end simulated time."""

    root: Span
    steps: List[PathStep] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.root.dur_s

    @property
    def attributed_s(self) -> float:
        return sum(s.self_s for s in self.steps)

    def dominant(self, kind: Optional[str] = None) -> Optional[PathStep]:
        """The step with the largest self time (optionally of one kind)."""
        cands = [s for s in self.steps
                 if kind is None or s.span.kind == kind]
        if not cands:
            return None
        return max(cands, key=lambda s: s.self_s)

    def to_json(self) -> Dict[str, Any]:
        return {"root": self.root.name, "total_s": self.total_s,
                "attributed_s": self.attributed_s,
                "steps": [s.to_dict() for s in self.steps]}

    def render(self) -> str:
        total = self.total_s or 1.0
        rows = []
        for s in self.steps:
            rows.append(("  " * s.depth + s.span.name, s.span.kind,
                         f"{s.span.start_s * 1e3:.3f}",
                         f"{s.span.dur_s * 1e3:.3f}",
                         f"{s.self_s * 1e3:.3f}",
                         f"{100.0 * s.self_s / total:5.1f}%"))
        table = render_table(
            ["span", "kind", "start ms", "dur ms", "self ms", "share"],
            rows, title=f"critical path: {self.root.name} "
                        f"({self.total_s * 1e3:.3f} ms end-to-end)")
        return table


def critical_path(root: Span,
                  kinds: Optional[Sequence[str]] = None) -> CriticalPath:
    """Extract the chain of spans that bounds ``root``'s duration.

    The walk is backward-greedy: starting from a span's end, repeatedly
    choose the child whose interval bounds the cursor (latest-ending
    child starting strictly before it), move the cursor to that child's
    start, and recurse into every chosen child. Time between chosen
    children — and before the first one — is the parent's self time, so
    ``sum(step.self_s) == root.dur_s`` up to float tolerance.

    ``kinds`` optionally restricts which child kinds may appear on the
    path (e.g. ``("loop", "machine")`` to stop above socket chunks);
    the root itself is always included.
    """
    cp = CriticalPath(root)
    _descend(root, 0, cp.steps, tuple(kinds) if kinds else None)
    cp.steps.sort(key=lambda s: (s.span.start_s, s.depth))
    return cp


def _descend(sp: Span, depth: int, steps: List[PathStep],
             kinds: Optional[Tuple[str, ...]]) -> None:
    cursor = sp.end_s
    self_s = 0.0
    chosen: List[Span] = []
    kids = [c for c in sp.children
            if (kinds is None or c.kind in kinds) and c.dur_s > _TOL]
    # Latest-ending child first; ties broken on start then name so the
    # path is deterministic under any child insertion order.
    for c in sorted(kids, key=lambda c: (-c.end_s, c.start_s, c.name)):
        if c.start_s >= cursor - _TOL:
            continue                      # cannot bound the cursor
        bounded_end = min(c.end_s, cursor)
        if cursor - bounded_end > _TOL:
            self_s += cursor - bounded_end    # parent-only execution gap
        chosen.append(c)
        cursor = c.start_s
        if cursor <= sp.start_s + _TOL:
            break
    self_s += max(0.0, cursor - sp.start_s)
    steps.append(PathStep(sp, depth, self_s))
    for c in chosen:
        _descend(c, depth + 1, steps, kinds)


# ---------------------------------------------------------------------------
# Fleet bottleneck attribution (serve-run trees)
# ---------------------------------------------------------------------------

@dataclass
class ChainSeg:
    """One segment of the serve critical chain: a batch execution or an
    arrival-bound wait (no batch running anywhere on the fleet)."""

    kind: str                 # "batch" | "wait"
    start_s: float
    end_s: float
    span: Optional[Span] = None

    @property
    def dur_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class MachineAttribution:
    """Per-replica share of fleet time and of the critical chain."""

    machine: int
    name: str
    busy_s: float = 0.0
    batches: int = 0
    critical_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"machine": self.machine, "name": self.name,
                "busy_s": self.busy_s, "batches": self.batches,
                "critical_s": self.critical_s}


@dataclass
class FleetReport:
    """Fleet bottleneck attribution for one serve run."""

    root: Span
    machines: List[MachineAttribution] = field(default_factory=list)
    chain: List[ChainSeg] = field(default_factory=list)
    wait_s: float = 0.0

    @property
    def makespan_s(self) -> float:
        return self.root.dur_s

    def ranked(self) -> List[MachineAttribution]:
        """Replicas ordered by time-on-critical-path (the bottleneck
        ranking), busiest first; ties broken on busy time then index."""
        return sorted(self.machines,
                      key=lambda m: (-m.critical_s, -m.busy_s, m.machine))

    def to_json(self) -> Dict[str, Any]:
        return {"makespan_s": self.makespan_s, "wait_s": self.wait_s,
                "machines": [m.to_dict() for m in self.ranked()]}

    def render(self) -> str:
        mk = self.makespan_s or 1.0
        rows = []
        for m in self.ranked():
            rows.append((f"{m.name}[{m.machine}]", str(m.batches),
                         f"{m.busy_s * 1e3:.3f}",
                         f"{100.0 * m.busy_s / mk:5.1f}%",
                         f"{m.critical_s * 1e3:.3f}",
                         f"{100.0 * m.critical_s / mk:5.1f}%"))
        table = render_table(
            ["replica", "batches", "busy ms", "util", "critical ms",
             "on-path"],
            rows, title=f"fleet attribution: {self.root.name} "
                        f"(makespan {mk * 1e3:.3f} ms, "
                        f"arrival-bound wait {self.wait_s * 1e3:.3f} ms)")
        return table


def fleet_attribution(root: Span) -> FleetReport:
    """Attribute a serve run's makespan across replicas.

    Batch spans (direct or nested children of ``root`` with kind
    ``"batch"``) carry a ``machine`` attribute (the replica index).
    The critical chain is the backward-greedy sequence of batch
    executions bounding the makespan; segments of the chain covered by
    no batch are arrival-bound waits charged to no machine.
    """
    rep = FleetReport(root)
    batches = [sp for sp, _ in root.walk() if sp.kind == "batch"]
    per: Dict[int, MachineAttribution] = {}
    for b in batches:
        idx = int(b.attrs.get("machine", -1))
        ma = per.get(idx)
        if ma is None:
            name = str(b.attrs.get("machine_name", f"m{idx}"))
            ma = per[idx] = MachineAttribution(idx, name)
        ma.busy_s += b.dur_s
        ma.batches += 1

    cursor = root.end_s
    while cursor > root.start_s + _TOL:
        cands = [b for b in batches if b.start_s < cursor - _TOL]
        if not cands:
            break
        b = max(cands, key=lambda b: (min(b.end_s, cursor), b.start_s,
                                      -int(b.attrs.get("machine", 0))))
        end = min(b.end_s, cursor)
        if cursor - end > _TOL:
            rep.chain.append(ChainSeg("wait", end, cursor))
        rep.chain.append(ChainSeg("batch", b.start_s, end, b))
        cursor = b.start_s
    if cursor > root.start_s + _TOL:
        rep.chain.append(ChainSeg("wait", root.start_s, cursor))
    rep.chain.reverse()

    for seg in rep.chain:
        if seg.kind == "wait":
            rep.wait_s += seg.dur_s
        else:
            idx = int(seg.span.attrs.get("machine", -1))
            per[idx].critical_s += seg.dur_s
    rep.machines = [per[k] for k in sorted(per)]
    return rep
