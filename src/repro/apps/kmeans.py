"""k-means clustering — the paper's running example (Fig. 1).

Both formulations are provided:

- ``kmeans_shared_program``  — the shared-memory style (top of Fig. 1):
  data implicitly shuffled through the indexing operation ``matrix(as)``.
  The Conditional Reduce rule plus fusion lowers this to the Fig. 5 form.
- ``kmeans_grouped_program`` — the distributed-memory style (bottom of
  Fig. 1): data explicitly shuffled via ``groupRowsBy``. The
  GroupBy-Reduce rule lowers this to the same optimized code.

``kmeans`` is the user-level driver that iterates either program.
"""

from __future__ import annotations

from typing import List, Sequence

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..core.interp import run_program


def _sq_dist(row: F.ArrayRep, centroid: F.ArrayRep) -> F.NumRep:
    """Squared Euclidean distance between two feature vectors."""
    return row.zip_with(centroid, lambda a, b: (a - b) * (a - b)).sum()


def _nearest(row: F.ArrayRep, clusters: F.ArrayRep) -> F.NumRep:
    return clusters.map_rows(lambda c: _sq_dist(row, c)).min_index()


def kmeans_inputs():
    return [F.matrix_input("matrix", partitioned=True),
            F.matrix_input("clusters", partitioned=False)]


def kmeans_shared_program() -> Program:
    """One iteration, shared-memory style (Fig. 1 lines 6-14)."""

    def prog(matrix: F.ArrayRep, clusters: F.ArrayRep):
        assigned = matrix.map_rows(lambda row: _nearest(row, clusters))

        def new_cluster(i):
            as_ = assigned.filter_indices(lambda a: a == i)
            total = as_.map(lambda j: matrix[j]).sum_rows()
            count = as_.count()
            return total.map(lambda s: s / count)

        return clusters.map_indices(new_cluster)

    return F.build(prog, kmeans_inputs())


def kmeans_grouped_program() -> Program:
    """One iteration, distributed-memory style (Fig. 1 lines 16-21)."""

    def prog(matrix: F.ArrayRep, clusters: F.ArrayRep):
        clustered = matrix.group_rows_by(lambda row: _nearest(row, clusters))
        return clustered.map(
            lambda e: e.sum_rows().map(lambda s: s / e.count()))

    return F.build(prog, kmeans_inputs())


def kmeans_oracle(matrix: Sequence[Sequence[float]],
                  clusters: Sequence[Sequence[float]]) -> List[List[float]]:
    """Plain-Python single-iteration oracle (dense cluster order).

    Note: the grouped formulation returns clusters in first-seen key order;
    this oracle returns them indexed by cluster id like the shared version.
    """
    k = len(clusters)
    sums = [[0.0] * len(clusters[0]) for _ in range(k)]
    counts = [0] * k
    for row in matrix:
        best, best_d = 0, float("inf")
        for ci, c in enumerate(clusters):
            dd = sum((a - b) ** 2 for a, b in zip(row, c))
            if dd < best_d:
                best, best_d = ci, dd
        counts[best] += 1
        for j, v in enumerate(row):
            sums[best][j] += v
    out = []
    for ci in range(k):
        if counts[ci] == 0:
            out.append([])
        else:
            out.append([s / counts[ci] for s in sums[ci]])
    return out


def kmeans(matrix: Sequence[Sequence[float]], k: int, iterations: int = 10,
           program: Program = None) -> List[List[float]]:
    """Run k-means via the DMLL reference interpreter (unoptimized program
    unless one is supplied). Initial centroids are the first k rows."""
    prog = program if program is not None else kmeans_shared_program()
    clusters = [list(matrix[i % len(matrix)]) for i in range(k)]
    for _ in range(iterations):
        (new,), _ = run_program(prog, {"matrix": matrix, "clusters": clusters})
        # keep empty clusters where they were
        clusters = [list(c) if len(c) else clusters[ci]
                    for ci, c in enumerate(new)]
    return clusters
