"""Gene barcoding — a single-pass genomics benchmark (Table 2).

Sequencing reads carry a barcode identifying their sample of origin. The
pipeline filters low-quality reads and aggregates per-barcode statistics
(read count, mean quality, gene hits) in one traversal — the "pipeline
fusion + DFE" row of Table 2. Reads are structs, so AoS→SoA and dead
field elimination (the unused ``flowcell``/``position`` columns) apply.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..optim.soa import register_table_schema

READ = T.Struct("Read", (
    ("barcode", T.INT),
    ("gene", T.INT),
    ("quality", T.DOUBLE),
    ("flowcell", T.INT),    # unread by the pipeline: exercises DFE
    ("position", T.INT),    # unread by the pipeline: exercises DFE
))

register_table_schema("reads", READ)

QUALITY_MIN = 0.3


def gene_inputs():
    return [F.table_input("reads", READ, partitioned=True)]


def gene_program() -> Program:
    """Per-barcode (count, quality sum, distinct-ish gene checksum)."""

    def prog(reads: F.ArrayRep):
        good = reads.filter(lambda r: r.quality > QUALITY_MIN)
        counts = good.group_by_reduce(
            lambda r: r.barcode, lambda r: 1, lambda a, b: a + b)
        qsums = good.group_by_reduce(
            lambda r: r.barcode, lambda r: r.quality, lambda a, b: a + b)
        gsums = good.group_by_reduce(
            lambda r: r.barcode, lambda r: r.gene, lambda a, b: a + b)
        return counts, qsums, gsums

    return F.build(prog, gene_inputs())


def gene_oracle(rows: Sequence[Tuple]) -> Tuple[Dict, Dict, Dict]:
    fi = {n: i for i, (n, _) in enumerate(READ.fields)}
    counts: Dict[int, int] = {}
    qsums: Dict[int, float] = {}
    gsums: Dict[int, int] = {}
    for r in rows:
        if r[fi["quality"]] <= QUALITY_MIN:
            continue
        b = r[fi["barcode"]]
        counts[b] = counts.get(b, 0) + 1
        qsums[b] = qsums.get(b, 0.0) + r[fi["quality"]]
        gsums[b] = gsums.get(b, 0) + r[fi["gene"]]
    return counts, qsums, gsums
