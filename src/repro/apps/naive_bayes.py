"""Gaussian naive Bayes training — a §3.2 Row-to-Column Reduce citation
("Examples in machine learning include ridge regression and Naïve Bayes"):
the per-class feature sums reduce the columns of the data matrix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program


def nb_inputs():
    return [F.matrix_input("x", partitioned=True),
            F.InputSpec("y", T.Coll(T.INT), True),
            F.scalar_input("num_classes", T.INT)]


def nb_program() -> Program:
    """Per-class priors and per-class feature means."""

    def prog(x: F.ArrayRep, y: F.ArrayRep, num_classes):
        m = x.length().to_double()

        def for_class(c):
            idxs = y.filter_indices(lambda v: v == c)
            cnt = idxs.count()
            sums = idxs.map(lambda i: x[i]).sum_rows()
            mean = sums.map(lambda s: s / cnt)
            prior = cnt.to_double() / m
            return F.pair(prior, mean)

        stats = F.irange(num_classes).map(for_class)
        priors = stats.map(lambda p: p.fst)
        means = stats.map(lambda p: p.snd)
        return priors, means

    return F.build(prog, nb_inputs())


def nb_oracle(x: Sequence[Sequence[float]], y: Sequence[int],
              num_classes: int) -> Tuple[List[float], List[List[float]]]:
    m = len(x)
    priors, means = [], []
    for c in range(num_classes):
        rows = [x[i] for i in range(m) if y[i] == c]
        cnt = len(rows)
        priors.append(cnt / m)
        means.append([sum(col) / cnt for col in zip(*rows)] if cnt else [])
    return priors, means
