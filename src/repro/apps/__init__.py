"""The paper's benchmark applications, written against the DMLL frontend."""

from .gda import gda_inputs, gda_oracle, gda_program
from .gene import READ, gene_inputs, gene_oracle, gene_program
from .gibbs import gibbs_inputs, gibbs_oracle_sweep, gibbs_sample, gibbs_sweep_program
from .kmeans import (kmeans, kmeans_grouped_program, kmeans_inputs,
                     kmeans_oracle, kmeans_shared_program)
from .knn import knn_inputs, knn_oracle, knn_program
from .logreg import logreg, logreg_inputs, logreg_oracle, logreg_program
from .naive_bayes import nb_inputs, nb_oracle, nb_program
from .tpch import LINEITEM, q1_inputs, q1_oracle, q1_program

__all__ = [
    "gda_inputs", "gda_oracle", "gda_program",
    "READ", "gene_inputs", "gene_oracle", "gene_program",
    "gibbs_inputs", "gibbs_oracle_sweep", "gibbs_sample",
    "gibbs_sweep_program",
    "kmeans", "kmeans_grouped_program", "kmeans_inputs", "kmeans_oracle",
    "kmeans_shared_program",
    "knn_inputs", "knn_oracle", "knn_program",
    "logreg", "logreg_inputs", "logreg_oracle", "logreg_program",
    "nb_inputs", "nb_oracle", "nb_program",
    "LINEITEM", "q1_inputs", "q1_oracle", "q1_program",
]
