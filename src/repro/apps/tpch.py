"""TPC-H Query 1 ("pricing summary report") on a lineitem table.

The classic groupBy-aggregate query from the evaluation (Table 2). The
table is staged as a collection of record structs; the compiler's AoS→SoA
pass splits it into primitive columns, dead field elimination drops the
unread ones, and GroupBy-Reduce + horizontal fusion collapse the whole
query into a single traversal — the optimizations Table 2 lists for Q1.

Schema (the Q1-relevant subset of TPC-H lineitem):
    quantity, extendedprice, discount, tax : Double
    returnflag, linestatus                 : Int (coded chars)
    shipdate                               : Int (days since epoch)
    comment, orderkey, suppkey             : unread by Q1 (exercise DFE)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..optim.soa import register_table_schema

LINEITEM = T.Struct("LineItem", (
    ("orderkey", T.INT),
    ("quantity", T.DOUBLE),
    ("extendedprice", T.DOUBLE),
    ("discount", T.DOUBLE),
    ("tax", T.DOUBLE),
    ("returnflag", T.INT),
    ("linestatus", T.INT),
    ("shipdate", T.INT),
    ("suppkey", T.INT),
))

register_table_schema("lineitems", LINEITEM)

#: Q1's date predicate: shipdate <= 1998-12-01 minus 90 days, as day number
SHIP_CUTOFF = 10000


def q1_inputs():
    return [F.table_input("lineitems", LINEITEM, partitioned=True)]


def q1_program() -> Program:
    """SELECT returnflag, linestatus, sum(qty), sum(base), sum(disc_price),
    sum(charge), avg(qty), avg(price), avg(disc), count(*)
    FROM lineitem WHERE shipdate <= cutoff GROUP BY returnflag, linestatus."""

    def prog(lineitems: F.ArrayRep):
        valid = lineitems.filter(lambda it: it.shipdate <= SHIP_CUTOFF)
        groups = valid.group_by(
            lambda it: it.returnflag * 256 + it.linestatus)

        def agg(g: F.ArrayRep):
            sum_qty = g.map(lambda it: it.quantity).sum()
            sum_base = g.map(lambda it: it.extendedprice).sum()
            sum_disc_price = g.map(
                lambda it: it.extendedprice * (1.0 - it.discount)).sum()
            sum_charge = g.map(
                lambda it: it.extendedprice * (1.0 - it.discount)
                * (1.0 + it.tax)).sum()
            sum_disc = g.map(lambda it: it.discount).sum()
            n = g.count()
            nd = n.to_double()
            row_t = T.Struct("Q1Row", (
                ("sum_qty", T.DOUBLE), ("sum_base", T.DOUBLE),
                ("sum_disc_price", T.DOUBLE), ("sum_charge", T.DOUBLE),
                ("avg_qty", T.DOUBLE), ("avg_price", T.DOUBLE),
                ("avg_disc", T.DOUBLE), ("count", T.INT)))
            return F.struct(row_t, sum_qty=sum_qty, sum_base=sum_base,
                            sum_disc_price=sum_disc_price,
                            sum_charge=sum_charge,
                            avg_qty=sum_qty / nd, avg_price=sum_base / nd,
                            avg_disc=sum_disc / nd, count=n)

        return groups.map(agg)

    return F.build(prog, q1_inputs())


def q1_oracle(rows: Sequence[Tuple]) -> Dict[int, Tuple]:
    """Plain-Python oracle keyed by (returnflag*256 + linestatus)."""
    fields = LINEITEM.field_names()
    fi = {n: i for i, n in enumerate(fields)}
    acc: Dict[int, List[float]] = {}
    for r in rows:
        if r[fi["shipdate"]] > SHIP_CUTOFF:
            continue
        key = r[fi["returnflag"]] * 256 + r[fi["linestatus"]]
        a = acc.setdefault(key, [0.0, 0.0, 0.0, 0.0, 0.0, 0])
        qty, price, disc, tax = (r[fi["quantity"]], r[fi["extendedprice"]],
                                 r[fi["discount"]], r[fi["tax"]])
        a[0] += qty
        a[1] += price
        a[2] += price * (1.0 - disc)
        a[3] += price * (1.0 - disc) * (1.0 + tax)
        a[4] += disc
        a[5] += 1
    out = {}
    for key, (sq, sb, sdp, sc, sd, n) in acc.items():
        out[key] = (sq, sb, sdp, sc, sq / n, sb / n, sd / n, n)
    return out
