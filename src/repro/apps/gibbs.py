"""Gibbs sampling on factor graphs — the §6.3 application case study.

The parallelization strategy is DimmWitted's: one model replica per
socket, Hogwild-style updates within a socket, replica averages at the
end. "Expressing this algorithm using data-parallel constructs
fundamentally requires the system to be able to exploit nested
parallelism": the outer pattern maps over replicas (mapped to sockets),
the inner pattern maps over variables (mapped to cores in a socket).

Randomness is an explicit input (per-replica uniform arrays), keeping the
staged program deterministic. Updates use the synchronous (Jacobi-style)
schedule, the standard deterministic surrogate for Hogwild's racy reads.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..core.interp import run_program
from ..data.factor_graphs import FactorGraph, random_states, random_uniforms


def gibbs_inputs():
    return [F.InputSpec("nbr_vars", T.Coll(T.Coll(T.INT)), True),
            F.InputSpec("nbr_weights", T.Coll(T.Coll(T.DOUBLE)), True),
            F.InputSpec("states", T.Coll(T.Coll(T.INT)), False),
            F.InputSpec("rand", T.Coll(T.Coll(T.DOUBLE)), False)]


def gibbs_sweep_program() -> Program:
    """One sweep over all variables of every replica (nested parallelism)."""

    def prog(nbr_vars: F.ArrayRep, nbr_weights: F.ArrayRep,
             states: F.ArrayRep, rand: F.ArrayRep):
        def sweep_replica(r):
            state = states[r]
            u_row = rand[r]

            def sample_var(v):
                nv = nbr_vars[v]
                nw = nbr_weights[v]
                # local field: sum of coupling * neighbor spin
                energy = nv.map_indices(
                    lambda k: nw[k] * state[nv[k]].to_double()).sum()
                p1 = F.sigmoid(2.0 * energy)
                return F.where(u_row[v] < p1, 1, -1)

            assert isinstance(state, F.ArrayRep)
            return state.map_indices(sample_var)

        return states.map_indices(sweep_replica)

    return F.build(prog, gibbs_inputs())


def gibbs_oracle_sweep(fg: FactorGraph, states: Sequence[Sequence[int]],
                       rand: Sequence[Sequence[float]]) -> List[List[int]]:
    out = []
    for r, state in enumerate(states):
        new = []
        for v in range(fg.n_vars):
            e = sum(w * state[u] for u, w in
                    zip(fg.nbr_vars[v], fg.nbr_weights[v]))
            p1 = 1.0 / (1.0 + math.exp(-2.0 * e)) if e > -350 else 0.0
            new.append(1 if rand[r][v] < p1 else -1)
        out.append(new)
    return out


def gibbs_sample(fg: FactorGraph, sweeps: int = 10, replicas: int = 4,
                 seed: int = 29, program: Program = None) -> List[float]:
    """Run the sampler; return per-variable marginals averaged over
    replicas and sweeps (after one burn-in sweep)."""
    prog = program if program is not None else gibbs_sweep_program()
    states = random_states(fg.n_vars, replicas, seed)
    pos_counts = [0] * fg.n_vars
    samples = 0
    for s in range(sweeps):
        rand = random_uniforms(fg.n_vars, replicas, seed + 1000 + s)
        (states,), _ = run_program(prog, {
            "nbr_vars": fg.nbr_vars, "nbr_weights": fg.nbr_weights,
            "states": states, "rand": rand})
        if s == 0:
            continue  # burn-in
        samples += replicas
        for st in states:
            for v, spin in enumerate(st):
                if spin > 0:
                    pos_counts[v] += 1
    if samples == 0:
        return [0.5] * fg.n_vars
    return [c / samples for c in pos_counts]
