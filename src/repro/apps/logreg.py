"""Logistic regression — the §3.2 loop-interchange example.

``logreg_program`` is the textbook column-major formulation: for each
feature ``j``, a nested summation over all samples. The Column-to-Row
Reduce rule turns the "vector of sums" into a "sum of vectors" so the
sample dimension can be partitioned; Row-to-Column Reduce inverts it again
inside GPU kernels.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..core.interp import run_program


def logreg_inputs():
    return [F.matrix_input("x", partitioned=True),
            F.vector_input("y", partitioned=True),
            F.vector_input("theta", partitioned=False),
            F.scalar_input("alpha", T.DOUBLE)]


def logreg_program() -> Program:
    """One batch-gradient step, written exactly as the paper's snippet."""

    def prog(x: F.ArrayRep, y: F.ArrayRep, theta: F.ArrayRep, alpha):
        rows = x.length()
        cols = theta.length()

        def hyp(xi: F.ArrayRep) -> F.NumRep:
            dot = F.irange(cols).sum(lambda j2: theta[j2] * xi[j2])
            return F.sigmoid(dot)

        def new_theta_j(j):
            gradient = F.irange(rows).sum(
                lambda i: x[i][j] * (y[i] - hyp(x[i])))
            return theta[j] + alpha * gradient

        return F.irange(cols).map(new_theta_j)

    return F.build(prog, logreg_inputs())


def logreg_oracle(x: Sequence[Sequence[float]], y: Sequence[float],
                  theta: Sequence[float], alpha: float) -> List[float]:
    def hyp(xi):
        d = sum(t * v for t, v in zip(theta, xi))
        return 1.0 / (1.0 + math.exp(-d)) if d > -700 else 0.0

    cols = len(theta)
    out = []
    for j in range(cols):
        g = sum(x[i][j] * (y[i] - hyp(x[i])) for i in range(len(x)))
        out.append(theta[j] + alpha * g)
    return out


def logreg(x, y, alpha: float = 0.1, iterations: int = 10,
           program: Program = None) -> List[float]:
    """Iterate the DMLL program to train a model."""
    prog = program if program is not None else logreg_program()
    theta = [0.0] * len(x[0])
    for _ in range(iterations):
        (theta,), _ = run_program(
            prog, {"x": x, "y": y, "theta": theta, "alpha": alpha})
    return theta
