"""k-nearest-neighbors classification (radius-weighted vote variant).

§3.2 cites kNN as another GroupBy-Reduce instance: "uses grouping to count
the fraction of k data samples per data label and select the label with
the largest count". We implement the radius/weighted-vote formulation
(votes weighted by inverse distance within a radius), which keeps the
exact grouping structure while staying a pure data-parallel pipeline.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program


def knn_inputs():
    return [F.matrix_input("train", partitioned=True),
            F.InputSpec("labels", T.Coll(T.INT), True),
            F.vector_input("query", partitioned=False),
            F.scalar_input("radius", T.DOUBLE)]


def knn_program() -> Program:
    """Predicted label: argmax over labels of summed inverse-distance votes
    among training points within ``radius`` of the query."""

    def prog(train: F.ArrayRep, labels: F.ArrayRep, query: F.ArrayRep,
             radius):
        def dist2(i):
            return train[i].zip_with(
                query, lambda a, b: (a - b) * (a - b)).sum()

        near = train.map_indices(dist2).filter_indices(
            lambda d: d < radius * radius)
        votes = near.group_by_reduce(
            lambda i: labels[i],
            lambda i: 1.0 / (1.0 + F.fsqrt(dist2(i))),
            lambda a, b: a + b)
        best = votes.keys().zip_with(
            votes.keys().map_indices(lambda p: votes.at(p)),
            lambda k, v: F.pair(-v, k))
        # argmax vote = min over (-vote, key) pairs
        n = best.length()
        winner = F.irange(n).map_reduce(
            lambda p: best[p],
            lambda a, b: F.where(b.fst < a.fst, b, a))
        assert isinstance(winner, F.StructRep)
        return winner.snd

    return F.build(prog, knn_inputs())


def knn_oracle(train: Sequence[Sequence[float]], labels: Sequence[int],
               query: Sequence[float], radius: float) -> int:
    votes = {}
    order: List[int] = []
    for row, lab in zip(train, labels):
        d2 = sum((a - b) ** 2 for a, b in zip(row, query))
        if d2 < radius * radius:
            if lab not in votes:
                order.append(lab)
            votes[lab] = votes.get(lab, 0.0) + 1.0 / (1.0 + math.sqrt(d2))
    best_lab, best_v = None, None
    for lab in order:
        if best_v is None or votes[lab] > best_v:
            best_lab, best_v = lab, votes[lab]
    return best_lab
