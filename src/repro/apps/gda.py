"""Gaussian Discriminant Analysis — a two-pass ML benchmark (Table 2).

Pass 1 accumulates class counts and per-class feature sums (a conditional
reduction over the dataset, lowered by the Conditional Reduce rule); pass
2 accumulates the shared covariance as a sum of flattened outer products
(a large vector reduction — the "horizontal fusion + CSE" entry of
Table 2, and a Row-to-Column Reduce candidate on GPUs).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..core.interp import run_program


def gda_inputs():
    return [F.matrix_input("x", partitioned=True),
            F.InputSpec("y", T.Coll(T.INT), True)]


def gda_program() -> Program:
    """Returns (phi, mu (2 rows), sigma flattened row-major)."""

    def prog(x: F.ArrayRep, y: F.ArrayRep):
        m = x.length()
        n = x[0].length()
        md = m.to_double()

        # class prior: fraction of label-1 samples
        ones = y.map_reduce(lambda v: v, lambda a, b: a + b)
        phi = ones.to_double() / md

        # per-class means: conditionally reduce rows by label
        def class_mean(c):
            idxs = y.filter_indices(lambda v: v == c)
            total = idxs.map(lambda i: x[i]).sum_rows()
            cnt = idxs.count()
            return total.map(lambda s: s / cnt)

        mu = F.irange(2).map(class_mean)

        # shared covariance: sum over samples of (x_i - mu_{y_i}) outer
        # (x_i - mu_{y_i}), as an n x n nested collection
        def outer(i):
            d = x[i].zip_with(mu[y[i]], lambda a, b: a - b)
            return F.irange(n).map(lambda j1: d.map(lambda v: d[j1] * v))

        sigma_m = x.map_indices(outer).sum_rows()
        sigma = sigma_m.map(lambda row: row.map(lambda s: s / md))
        return phi, mu, sigma

    return F.build(prog, gda_inputs())


def gda_oracle(x: Sequence[Sequence[float]], y: Sequence[int]
               ) -> Tuple[float, List[List[float]], List[List[float]]]:
    m, n = len(x), len(x[0])
    ones = sum(y)
    phi = ones / m
    mu = []
    for c in (0, 1):
        rows = [x[i] for i in range(m) if y[i] == c]
        cnt = len(rows)
        mu.append([sum(col) / cnt for col in zip(*rows)] if cnt else [])
    sigma = [[0.0] * n for _ in range(n)]
    for i in range(m):
        d = [x[i][j] - mu[y[i]][j] for j in range(n)]
        for j1 in range(n):
            for j2 in range(n):
                sigma[j1][j2] += d[j1] * d[j2]
    return phi, mu, [[s / m for s in row] for row in sigma]
