"""Benchmark harness: prepared applications with cached functional runs,
shared across the per-table/per-figure benchmark files."""

from .apps import AppBundle, PAPER_SIZES, get_bundle

__all__ = ["AppBundle", "PAPER_SIZES", "get_bundle"]
