"""Prepared benchmark applications.

Each ``AppBundle`` owns one functional dataset (scaled down so the
reference interpreter runs in seconds), the scale factor back to the
paper's dataset, and lazily-compiled program variants:

- ``opt``   — the full pipeline (fusion + Fig. 3 transforms + SoA);
- ``plain`` — nested pattern transformations disabled (the Fig. 6
  "non-transformed" ablation);
- ``gpu``   — the GPU pipeline (Row-to-Column Reduce applied).

Captures (one instrumented interpreter run per variant) are cached so the
figure sweeps price dozens of machine configurations from a single
functional execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional

from ..apps.gda import gda_program
from ..apps.gene import gene_program
from ..apps.gibbs import gibbs_sweep_program
from ..apps.kmeans import kmeans_shared_program
from ..apps.logreg import logreg_program
from ..apps.tpch import q1_program
from ..core.ir import Program
from ..data.datasets import binary_labeled, gaussian_clusters, logistic_data
from ..data.factor_graphs import grid_ising, random_states, random_uniforms
from ..data.genes import generate_reads
from ..data.graphs import power_law_graph
from ..data.tpch_gen import generate_lineitems
from ..graph.optigraph import pagerank_pull_program, triangle_program
from ..pipeline import CompiledProgram, compile_program
from ..runtime.executor import RunCapture, capture_run

#: the paper's dataset sizes each functional run is scaled to
PAPER_SIZES = {
    "kmeans": "500k x 100 matrix (835MB), k=6",
    "logreg": "500k x 100 matrix (835MB)",
    "gda": "500k x 100 matrix (835MB)",
    "q1": "TPC-H SF5 (30M rows, 5.3GB)",
    "gene": "3.5M reads (689MB)",
    "pagerank": "LiveJournal (4.8M nodes, 69M edges)",
    "triangle": "LiveJournal (4.8M nodes, 69M edges)",
    "gibbs": "DeepDive-scale factor graph (2M variables)",
}


class AppBundle:
    def __init__(self, name: str, program_factory: Callable[[], Program],
                 inputs: Dict[str, object], scale: float,
                 iterative: bool = False, data_scale: float = None):
        self.name = name
        self._factory = program_factory
        self.inputs = inputs
        self.scale = scale
        #: data volumes may scale differently from compute (see
        #: ExecOptions.data_scale)
        self.data_scale = data_scale if data_scale is not None else scale
        self.iterative = iterative
        self._compiled: Dict[str, CompiledProgram] = {}
        self._captures: Dict[tuple, RunCapture] = {}

    def compiled(self, variant: str = "opt") -> CompiledProgram:
        if variant not in self._compiled:
            if variant == "opt":
                c = compile_program(self._factory(), "distributed")
            elif variant == "plain":
                c = compile_program(self._factory(), "distributed",
                                    apply_nested_transforms=False)
            elif variant == "gpu":
                c = compile_program(self._factory(), "gpu")
            else:
                raise KeyError(variant)
            self._compiled[variant] = c
        return self._compiled[variant]

    def capture(self, variant: str = "opt",
                backend: Optional[str] = None) -> RunCapture:
        from ..backend import resolve_backend
        key = (variant, resolve_backend(backend))
        if key not in self._captures:
            self._captures[key] = capture_run(self.compiled(variant),
                                              self.inputs, backend=key[1])
        return self._captures[key]

    def simulate(self, variant: str = "opt", cluster=None, profile=None,
                 backend: Optional[str] = None, **opt_kwargs):
        """Price this bundle's cached capture on a machine/profile combo.

        Extra keyword arguments land on ``ExecOptions`` — including the
        observability knobs (``tracer=``, ``metrics=``), which is how the
        CLI profiler attaches to a bundle run. ``scale``/``data_scale``
        default to the bundle's own factors. ``backend`` picks the
        functional engine for the capture (reference interpreter or
        vectorized NumPy); the priced simulated time is backend-invariant
        because the cycle accounting is."""
        from ..runtime.executor import ExecOptions, Simulator
        from ..runtime.machine import DMLL_CPP, NUMA_BOX
        opt_kwargs.setdefault("scale", self.scale)
        opt_kwargs.setdefault("data_scale", self.data_scale)
        sim = Simulator(self.compiled(variant),
                        NUMA_BOX if cluster is None else cluster,
                        DMLL_CPP if profile is None else profile,
                        ExecOptions(**opt_kwargs))
        return sim.price(self.capture(variant, backend=backend))


def _kmeans_bundle() -> AppBundle:
    matrix, _ = gaussian_clusters(800, 20, k=8)
    clusters = matrix[:8]
    # compute volume is n*d*k (modeled k=6); data volume is n*d
    scale = (500_000 * 100 * 6) / (800 * 20 * 8)
    data_scale = (500_000 * 100) / (800 * 20)
    return AppBundle("kmeans", kmeans_shared_program,
                     {"matrix": matrix, "clusters": clusters}, scale,
                     iterative=True, data_scale=data_scale)


def _logreg_bundle() -> AppBundle:
    x, y = logistic_data(600, 20)
    scale = (500_000 * 100) / (600 * 20)
    return AppBundle("logreg", logreg_program,
                     {"x": x, "y": y, "theta": [0.0] * 20, "alpha": 0.1},
                     scale, iterative=True)


def _gda_bundle() -> AppBundle:
    x, y = binary_labeled(300, 24)
    # the covariance pass dominates and scales with n * d^2; the data
    # itself scales with n * d
    scale = (500_000 * 100 * 100) / (300 * 24 * 24)
    data_scale = (500_000 * 100) / (300 * 24)
    return AppBundle("gda", gda_program, {"x": x, "y": y}, scale,
                     data_scale=data_scale)


def _q1_bundle() -> AppBundle:
    rows = generate_lineitems(3000)
    scale = 30_000_000 / 3000
    return AppBundle("q1", q1_program, {"lineitems": rows}, scale)


def _gene_bundle() -> AppBundle:
    rows = generate_reads(3000)
    scale = 3_500_000 / 3000
    return AppBundle("gene", gene_program, {"reads": rows}, scale)


def _pagerank_bundle() -> AppBundle:
    g = power_law_graph(1200, 7)
    scale = 69_000_000 / (2 * g.m)     # LiveJournal edge traversals
    b = AppBundle("pagerank", pagerank_pull_program,
                  {"adj": g.adj, "ranks": [1.0] * g.n,
                   "degrees": g.degrees()}, scale, iterative=True)
    b.graph = g  # type: ignore[attr-defined]
    return b


def _triangle_bundle() -> AppBundle:
    g = power_law_graph(1200, 7)
    # intersection work scales with edges x average merge length
    avg_deg = 2 * g.m / g.n
    scale = (34_500_000 * 2 * 14.4) / (g.m * 2 * avg_deg)
    data_scale = 69_000_000 / (2 * g.m)
    b = AppBundle("triangle", triangle_program, {"adj": g.adj}, scale,
                  data_scale=data_scale)
    b.graph = g  # type: ignore[attr-defined]
    return b


def _gibbs_bundle() -> AppBundle:
    fg = grid_ising(20)
    replicas = 4
    states = random_states(fg.n_vars, replicas, seed=3)
    rand = random_uniforms(fg.n_vars, replicas, seed=4)
    scale = 2_000_000 / fg.n_vars
    b = AppBundle("gibbs", gibbs_sweep_program,
                  {"nbr_vars": fg.nbr_vars, "nbr_weights": fg.nbr_weights,
                   "states": states, "rand": rand}, scale, iterative=True)
    b.factor_graph = fg  # type: ignore[attr-defined]
    return b


_FACTORIES = {
    "kmeans": _kmeans_bundle,
    "logreg": _logreg_bundle,
    "gda": _gda_bundle,
    "q1": _q1_bundle,
    "gene": _gene_bundle,
    "pagerank": _pagerank_bundle,
    "triangle": _triangle_bundle,
    "gibbs": _gibbs_bundle,
}


@lru_cache(maxsize=None)
def get_bundle(name: str) -> AppBundle:
    return _FACTORIES[name]()
