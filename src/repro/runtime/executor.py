"""Hierarchical heterogeneous executor (§5) over simulated hardware.

Execution follows the paper's design: the cluster master partitions each
multiloop into chunks by combining the input stencils with the partition
directory ("move the computation to the data"); each machine further
chunks across sockets and cores with dynamic load balancing; GPU-targeted
loops run as device kernels.

The *work* is real: the program runs once on the instrumented reference
interpreter. The *clock* is modeled: every top-level statement's dynamic
record (cycles, bytes, per-iteration costs) is priced on a machine model
and a system profile (DESIGN.md §4). That split lets one functional run
answer "how long on 1/12/24/48 cores, on 20 EC2 nodes, on 4 GPUs" without
re-running.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.partitioning import DataLayout, LoopDistInfo
from ..analysis.stencil import Stencil
from ..core import types as T
from ..core.interp import (DefRecord, ExecStats, Interp, LoopObserver,
                           MultiObserver)
from ..core.ir import Def, Program, Sym
from ..core.multiloop import GenKind, MultiLoop
from ..core.ops import InputSource
from ..pipeline import CompiledProgram
from .distarray import Directory
from .machine import (DMLL_CPP, GB, ClusterSpec, GPUSpec, SystemProfile)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..obs.spans import Span, Tracer

#: collections up to this size are replicated per memory region rather
#: than fetched remotely (the §4.2 replicate-vs-move policy)
_REPLICATION_LIMIT_BYTES = 128 * 1024 * 1024


@dataclass
class ExecOptions:
    """Knobs the benchmark harness turns."""

    cores: Optional[int] = None        # limit cores per the scaling sweep
    sequential: bool = False           # single-core (Table 2)
    use_gpu: bool = False
    gpu_transposed: bool = False       # device copy of 2D inputs transposed
    include_gpu_transfer: bool = False  # charge PCIe per run (non-iterative)
    remote_read_cache_fraction: Optional[float] = None  # override locality
    #: workload scale: the functional run uses a subsampled dataset and all
    #: volume terms (cycles, bytes, footprints) are multiplied back up to
    #: the paper's dataset size. Fixed overheads are not scaled.
    scale: float = 1.0
    #: separate scale for data volumes when the compute volume grows faster
    #: than the data (e.g. k-means compute is n*k*d but data is n*d);
    #: defaults to ``scale``
    data_scale: Optional[float] = None
    #: observability (repro.obs): when a tracer is set (and enabled) every
    #: priced run produces a span tree (run → loop → machine →
    #: socket/GPU chunk); when a metrics registry is set the executor
    #: feeds counters/histograms into it. Both default to off — the
    #: pricing paths then do no observability work at all.
    tracer: Optional["Tracer"] = None
    metrics: Optional["MetricsRegistry"] = None

    @property
    def dscale(self) -> float:
        return self.data_scale if self.data_scale is not None else self.scale


@dataclass
class LoopSim:
    """Simulated execution of one top-level statement."""

    name: str
    op_name: str
    iters: int
    distributed: bool
    workers: int
    compute_s: float = 0.0
    memory_s: float = 0.0
    comm_s: float = 0.0
    overhead_s: float = 0.0
    #: structured pricing detail (byte flows, mapping decisions) — only
    #: populated when observability is on; ``None`` on plain runs
    detail: Optional[Dict[str, Any]] = None

    @property
    def time_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.comm_s + self.overhead_s


@dataclass
class SimResult:
    results: Tuple[Any, ...]
    stats: ExecStats
    loops: List[LoopSim] = field(default_factory=list)
    total_seconds: float = 0.0
    backend: str = "reference"
    fallbacks: List[Any] = field(default_factory=list)

    def breakdown(self) -> str:
        lines = [f"total {self.total_seconds * 1e3:.3f} ms"]
        for l in self.loops:
            lines.append(
                f"  {l.name:<14} {l.op_name:<22} iters={l.iters:<9} "
                f"W={l.workers:<4} t={l.time_s * 1e3:9.3f} ms "
                f"(cpu {l.compute_s * 1e3:.3f} / mem {l.memory_s * 1e3:.3f} "
                f"/ comm {l.comm_s * 1e3:.3f})")
        return "\n".join(lines)


class _PerIterObserver(LoopObserver):
    """Collects per-iteration cycle costs of top-level loops so the machine
    model can bound load imbalance."""

    def __init__(self, top_ids):
        self.top_ids = set(top_ids)
        self.costs: Dict[int, List[float]] = {}

    def on_loop_start(self, d: Def, size: int) -> None:
        if d.syms[0].id in self.top_ids:
            self.costs[d.syms[0].id] = []

    def on_iteration_cost(self, d: Def, i: int, cycles: float) -> None:
        lst = self.costs.get(d.syms[0].id)
        if lst is not None:
            lst.append(cycles)

    def on_iteration_costs(self, d: Def, cycles) -> None:
        # bulk hook used by the vectorized backend (one call per loop)
        lst = self.costs.get(d.syms[0].id)
        if lst is not None:
            lst.extend(cycles)


def _deep_bytes(value: Any, tpe: T.Type) -> int:
    """Payload size of a runtime collection. Nested collections are summed
    exactly (ragged rows — adjacency lists — would be badly estimated from
    the first row alone)."""
    if isinstance(tpe, (T.Coll, T.KeyedColl)) and hasattr(value, "__len__"):
        n = len(value)
        if n == 0:
            return 0
        et = T.element_type(tpe)
        if isinstance(et, (T.Coll, T.KeyedColl)):
            return sum(max(_deep_bytes(row, et), 8) for row in value)
        return n * et.byte_size
    return tpe.byte_size


@dataclass
class RunCapture:
    """One functional execution's complete dynamic record.

    Capturing once and pricing many (cluster, profile, options)
    combinations is how the benchmark harness sweeps Figs. 6-8 without
    re-running the interpreter per configuration."""

    compiled: CompiledProgram
    results: Tuple[Any, ...]
    stats: ExecStats
    per_iter: Dict[int, List[float]]
    footprints: Dict[int, int]   # unscaled payload bytes per collection
    backend: str = "reference"
    #: per-loop FallbackRecord list (vectorized backend only; empty means
    #: every loop executed vectorized)
    fallbacks: List[Any] = field(default_factory=list)
    #: host wall-clock seconds per top-level loop (``profile_host`` only;
    #: empty otherwise) — feeds calibration metrics, never simulated time
    host_loop_s: Dict[str, float] = field(default_factory=dict)


def capture_run(compiled: CompiledProgram, inputs: Dict[str, Any],
                observer: Optional[LoopObserver] = None,
                backend: Optional[str] = None,
                profile_host: bool = False) -> RunCapture:
    """Execute once on the instrumented interpreter.

    ``observer`` composes an extra hook (e.g. ``repro.obs.MetricsObserver``)
    with the per-iteration cost collector. ``backend`` selects the
    functional engine (``repro.backend.resolve_backend`` policy); the
    vectorized backend yields identical results/stats and records any
    per-loop interpreter fallbacks on the capture. ``profile_host``
    additionally records host wall-clock per top-level loop on the
    capture (``host_loop_s``) — real time for calibrating the cost
    model, kept strictly out of simulated pricing."""
    from ..backend import resolve_backend
    backend = resolve_backend(backend)
    prog = compiled.program
    prepared = compiled.prepare_inputs(inputs)
    top_ids = [d.syms[0].id for d in prog.body.stmts
               if isinstance(d.op, MultiLoop)]
    obs = _PerIterObserver(top_ids)
    composed = obs if observer is None else MultiObserver(obs, observer)
    if backend == "numpy":
        from ..backend import NumpyInterp
        interp = NumpyInterp(observer=composed, profile_host=profile_host)
    else:
        interp = Interp(observer=composed)
    results = interp.eval_program(prog, prepared)
    stats = interp.stats
    fallbacks = list(getattr(interp, "fallbacks", ()))
    host_loop_s = dict(getattr(interp, "host_loop_s", ()) or {})

    footprints: Dict[int, int] = {}
    for d in prog.body.stmts:
        if isinstance(d.op, InputSource) and d.op.label in prepared:
            footprints[d.syms[0].id] = _deep_bytes(prepared[d.op.label],
                                                   d.syms[0].tpe)
    for rec in stats.def_records:
        if rec.sym_id not in footprints and rec.output_len:
            footprints[rec.sym_id] = max(rec.bytes_alloc, rec.output_len * 8)
    return RunCapture(compiled, results, stats, obs.costs, footprints,
                      backend, fallbacks, host_loop_s)


#: fault-injection knob for the regression observatory's own tests:
#: ``REPRO_INFLATE_LOOP="cs:2.0"`` (comma-separated ``loop:factor`` pairs)
#: multiplies every priced cost component of the matching loop(s). A loop
#: matches on exact name, name prefix, or id-stripped name (``cs`` hits
#: ``cs42``). Unset — the common case — costs exactly one env lookup per
#: priced run and changes nothing.
INFLATE_ENV = "REPRO_INFLATE_LOOP"


def _parse_inflation(spec: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for part in spec.split(","):
        name, _, factor = part.partition(":")
        name = name.strip()
        if not name or not factor:
            continue
        try:
            out[name] = float(factor)
        except ValueError:
            continue
    return out


def _inflation_factor(table: Dict[str, float], loop_name: str) -> float:
    from ..obs.provenance import strip_ids
    for key, factor in table.items():
        if (loop_name == key or loop_name.startswith(key)
                or strip_ids(loop_name).rstrip("#") == key):
            return factor
    return 1.0


class Simulator:
    """Prices one compiled program on one machine/profile combination."""

    def __init__(self, compiled: CompiledProgram, cluster: ClusterSpec,
                 profile: SystemProfile = DMLL_CPP,
                 options: Optional[ExecOptions] = None):
        self.compiled = compiled
        self.cluster = cluster
        self.profile = profile
        self.options = options or ExecOptions()

    # -- entry points ------------------------------------------------------

    def run(self, inputs: Dict[str, Any],
            backend: Optional[str] = None) -> SimResult:
        return self.price(capture_run(self.compiled, inputs,
                                      backend=backend))

    def price(self, cap: RunCapture) -> SimResult:
        prog = self.compiled.program
        dscale = self.options.dscale
        footprints = {k: int(v * dscale) for k, v in cap.footprints.items()}
        self._footprints_now = footprints
        tr = self.options.tracer
        self._obs = tr is not None and tr.enabled
        self._mx = self.options.metrics
        inflate_spec = os.environ.get(INFLATE_ENV)
        inflate = _parse_inflation(inflate_spec) if inflate_spec else None
        sim = SimResult(cap.results, cap.stats, backend=cap.backend,
                        fallbacks=list(cap.fallbacks))
        root: Optional["Span"] = None
        if self._obs:
            root = tr.begin_run(
                self.cluster.name, target=self.compiled.target,
                **self.cluster.describe(), **self.profile.describe(),
                cores=self.options.cores, sequential=self.options.sequential,
                use_gpu=self.options.use_gpu, scale=self.options.scale,
                backend=cap.backend)
        cursor = 0.0
        for rec in cap.stats.def_records:
            if not rec.is_loop:
                continue
            info = self.compiled.report.loops.get(rec.sym_id)
            stencils = self.compiled.stencils.get(rec.sym_id)
            loop_def = self._find_def(prog, rec.sym_id)
            per_iter = cap.per_iter.get(rec.sym_id)
            ls = self._price_loop(rec, info, stencils, loop_def, per_iter,
                                  footprints)
            if inflate:
                factor = _inflation_factor(inflate, ls.name)
                if factor != 1.0:
                    ls.compute_s *= factor
                    ls.memory_s *= factor
                    ls.comm_s *= factor
                    ls.overhead_s *= factor
                    if ls.detail is not None:
                        ls.detail["cost_inflation"] = factor
            sim.loops.append(ls)
            if self._mx is not None:
                self._mx.inc("executor.loops_priced")
                self._mx.observe("executor.loop_seconds", ls.time_s,
                                 loop=ls.name)
            if self._obs:
                self._emit_loop_span(root, cursor, ls, rec, info, stencils,
                                     loop_def)
            cursor += ls.time_s
        sim.total_seconds = sum(l.time_s for l in sim.loops)
        if self._obs:
            root.dur_s = sim.total_seconds
            root.set(total_seconds=sim.total_seconds, loops=len(sim.loops))
        if self._mx is not None:
            self._mx.gauge("executor.total_seconds", sim.total_seconds)
            self._mx.gauge("interp.loop_iterations",
                           cap.stats.loop_iterations)
            self._mx.gauge("interp.total_cycles", cap.stats.total_cycles)
            for fb in cap.fallbacks:
                self._mx.inc("backend.fallback", loop=str(fb.loop),
                             reason=fb.reason)
        return sim

    # -- helpers ---------------------------------------------------------

    def _find_def(self, prog: Program, sym_id: int) -> Optional[Def]:
        for d in prog.body.stmts:
            if d.syms and d.syms[0].id == sym_id:
                return d
        return None

    def _fp_of(self, sym) -> int:
        return getattr(self, "_footprints_now", {}).get(sym.id, 0)

    # -- observability ---------------------------------------------------

    def _emit_loop_span(self, root: "Span", t0: float, ls: LoopSim,
                        rec: DefRecord, info: Optional[LoopDistInfo],
                        stencils, loop_def: Optional[Def]) -> None:
        """One loop's slice of the span tree: the loop span carries the
        full pricing record; its children mirror the §5 hierarchy —
        machine-level chunks (stencil ∩ partition directory), then
        socket chunks or the GPU kernel."""
        detail = ls.detail or {}
        attrs = {"op": ls.op_name, "iters": ls.iters, "workers": ls.workers,
                 "distributed": ls.distributed,
                 "compute_s": ls.compute_s, "memory_s": ls.memory_s,
                 "comm_s": ls.comm_s, "overhead_s": ls.overhead_s}
        if loop_def is not None and isinstance(loop_def.op, MultiLoop):
            attrs["generators"] = [g.kind.name for g in loop_def.op.gens]
            layouts = self.compiled.report.layouts
            attrs["layouts"] = {str(s): layouts[s].value
                                for s in loop_def.syms if s in layouts}
        if stencils is not None:
            attrs["stencils"] = {str(s): st.value
                                 for s, st in stencils.reads.items()}
        if info is not None:
            attrs["driving"] = (str(info.driving)
                                if info.driving is not None else None)
            attrs["broadcasts"] = [str(s) for s in info.broadcasts]
            attrs["remote_random"] = [str(s) for s in info.remote_random]
        attrs.update(detail)
        span = root.child(ls.name, "loop", t0, ls.time_s, **attrs)

        # the parallel region: machine chunks, then socket/GPU chunks
        par = max(ls.compute_s, ls.memory_s)
        if par <= 0.0:
            return
        n_mach = int(detail.get("machines_used", detail.get("machines", 1)))
        chunks = Directory.even(max(ls.iters, 1), max(1, n_mach))
        gpu = detail.get("gpu")
        sockets = int(detail.get("sockets", 1))
        cores = int(detail.get("cores_used", detail.get("cores", 1)))
        for m in range(chunks.num_partitions):
            lo, hi = chunks.range_of(m)
            mspan = span.child(f"{ls.name}/m{m}", "machine", t0, par,
                               machine=m, iter_lo=lo, iter_hi=hi)
            if gpu is not None:
                mspan.child(f"{ls.name}/m{m}/kernel", "gpu", t0, par,
                            machine=m, device=gpu)
            else:
                per_socket = Directory.even(max(cores, 1), sockets)
                for sk in range(per_socket.num_partitions):
                    mspan.child(f"{ls.name}/m{m}/s{sk}", "socket", t0, par,
                                machine=m, socket=sk,
                                cores=per_socket.size_of(sk))

    def _worker_layout(self) -> Tuple[int, int, int]:
        """(machines, sockets_per_machine, cores_per_machine) actually used."""
        node = self.cluster.node
        if self.options.sequential:
            return 1, 1, 1
        cores = self.options.cores or node.cores
        cores = max(1, min(cores, node.cores))
        sockets = min(node.sockets, math.ceil(cores / node.socket.cores))
        return self.cluster.nodes, sockets, cores

    # -- pricing ---------------------------------------------------------

    def _price_loop(self, rec: DefRecord, info: Optional[LoopDistInfo],
                    stencils, loop_def: Optional[Def],
                    per_iter: Optional[List[float]],
                    footprints: Dict[int, int]) -> LoopSim:
        opts = self.options
        prof = self.profile
        node = self.cluster.node
        machines, sockets, cores = self._worker_layout()
        distributed = bool(info and info.distributed) and machines > 1
        if not distributed:
            machines = 1

        scale = opts.scale
        cycles = (prof.effective_cycles(rec.compute_cycles,
                                        rec.overhead_cycles)
                  + rec.elements_emitted * prof.alloc_cycle_cost) * scale
        bytes_read = rec.bytes_read * opts.dscale
        iters = max(rec.size, 1)
        dram = self._dram_traffic(rec, stencils, footprints, iters,
                                  bytes_read)

        ls = LoopSim(rec.name, rec.op_name, rec.size, distributed,
                     machines * cores)
        if getattr(self, "_obs", False):
            ls.detail = {"machines": machines, "sockets": sockets,
                         "cores": cores, "dram_bytes": dram,
                         "bytes_streamed": bytes_read,
                         "cycles": cycles}

        nested_parallel = self._has_nested_loops(loop_def)
        if opts.use_gpu and loop_def is not None and node.gpu is not None:
            self._price_gpu(ls, rec, loop_def, cycles, bytes_read, machines,
                            footprints, stencils, info)
        else:
            self._price_cpu(ls, rec, cycles, dram, machines, sockets,
                            cores, per_iter, info, nested_parallel)

        # communication: broadcasts, shuffles, merges, remote reads
        self._price_comm(ls, rec, info, stencils, loop_def, machines,
                         sockets, footprints, bytes_read)

        # dispatch: tasks start in parallel; the driver pays a small serial
        # component that grows with the worker count
        per_machine_workers = max(1, ls.workers // max(1, machines))
        ls.overhead_s += prof.per_loop_overhead_us * 1e-6
        ls.overhead_s += (prof.task_overhead_us * 1e-6
                          * (1.0 + 0.1 * per_machine_workers))
        return ls

    def _dram_traffic(self, rec: DefRecord, stencils,
                      footprints: Dict[int, int], iters: int,
                      measured_bytes: float) -> float:
        """Memory-controller traffic of one loop: each consumed collection
        streams through DRAM once per pass (caches absorb repeated touches
        within a pass); an All-stencil input is re-scanned every iteration
        unless it fits in the last-level cache — but never more than the
        loop actually touched (condition-guarded scans skip rows, e-g.
        untransformed k-means reads each row once across all k passes).
        Writes stream out once."""
        llc = (self.cluster.node.socket.llc_bytes
               * self.cluster.node.sockets)
        traffic = rec.bytes_alloc * self.options.dscale
        if stencils is None or not stencils.reads:
            return traffic
        for sym, st in stencils.reads.items():
            fp = footprints.get(sym.id, 0)
            if st is Stencil.ALL and fp > llc:
                traffic += min(fp * iters, measured_bytes)
            else:
                traffic += fp
        return traffic

    def _has_nested_loops(self, loop_def: Optional[Def]) -> bool:
        """A loop whose body contains further multiloops exposes nested
        parallelism: the hierarchical runtime splits the inner loops across
        the remaining cores (§5/§6.3), so the outer trip count does not cap
        the worker count."""
        if loop_def is None or not isinstance(loop_def.op, MultiLoop):
            return False
        return any(isinstance(dd.op, MultiLoop)
                   for g in loop_def.op.gens
                   for b in g.blocks()
                   for dd in b.stmts)

    def _price_cpu(self, ls: LoopSim, rec: DefRecord, cycles: float,
                   bytes_read: int, machines: int, sockets: int,
                   cores: int, per_iter: Optional[List[float]],
                   info: Optional[LoopDistInfo],
                   nested_parallel: bool = False) -> None:
        node = self.cluster.node
        prof = self.profile
        rate = prof.effective_rate(node.socket)

        # chunk across machines (even by directory), then dynamic within.
        # A *flat* loop exposes at most ``iters``-way parallelism (§6: the
        # untransformed k-means "stops scaling due to the more limited
        # exposed parallelism"); loops with nested multiloops re-split the
        # inner work across idle cores (nested parallelism, §6.3).
        iters = max(rec.size, 1)
        if not nested_parallel:
            machines = max(1, min(machines, iters))
            cores_eff = max(1, min(cores, -(-iters // machines)))
        else:
            cores_eff = cores
        chunk_cycles = cycles / machines
        # the longest single iteration bounds dynamic balancing — unless
        # the iteration itself is a nested parallel region that re-splits
        max_iter = (max(per_iter) if per_iter and not nested_parallel
                    else 0.0)
        imbalance = self._machine_imbalance(per_iter, machines)
        compute = (chunk_cycles * imbalance) / (cores_eff * rate) \
            + max_iter / rate
        ls.compute_s = compute

        # memory: where do the bytes live?
        # - loops over *partitioned* data stream from every socket only when
        #   the arrays were physically split (numa_aware) and the stencil is
        #   Interval; under pin-only the input lives in one socket's memory
        #   and its controller caps the loop (the Fig. 7 plateau);
        # - loops over thread-local intermediates are local to their socket
        #   whenever threads are pinned ("pinning is sufficient", §6.1).
        chunk_bytes = bytes_read / machines
        socket_bw = node.socket.mem_bandwidth_gbs * GB
        reads_partitioned = bool(info and info.stencils)
        interval_driven = bool(
            info and any(s is Stencil.INTERVAL for s in info.stencils.values()))
        # Unknown-stencil collections small enough to replicate per socket
        # (§4.2) are local after replication — e.g. the Gibbs factor graph
        replicated = bool(
            info and info.remote_random and not interval_driven
            and all(self._fp_of(s) <= _REPLICATION_LIMIT_BYTES
                    for s in info.remote_random))
        if not reads_partitioned:
            bw = (sockets if prof.pinned else 1.0) * socket_bw
        elif prof.numa_aware and prof.pinned and (interval_driven or replicated):
            bw = sockets * socket_bw
        elif prof.pinned and replicated:
            bw = sockets * socket_bw  # replicas live in thread-local heaps
        elif prof.pinned:
            bw = socket_bw * (1.0 + 0.15 * (sockets - 1))  # QPI adds a little
        else:
            bw = socket_bw * 0.8  # first-touch on one socket
        ls.memory_s = chunk_bytes / bw
        if not prof.pinned and sockets > 1:
            # unpinned threads migrate across sockets: cache refills and
            # scheduler interference grow with the socket count
            ls.compute_s *= 1.0 + 0.3 * (sockets - 1)
        if ls.detail is not None:
            ls.detail.update(
                machines_used=machines, cores_used=cores_eff,
                nested_parallel=nested_parallel, imbalance=imbalance,
                mem_bandwidth_gbs=bw / GB, bytes_local=chunk_bytes,
                replicated_per_socket=replicated,
                interval_driven=interval_driven)

    def _machine_imbalance(self, per_iter: Optional[List[float]],
                           machines: int) -> float:
        """max-chunk/mean-chunk across machine-level static chunks."""
        if not per_iter or machines <= 1:
            return 1.0
        n = len(per_iter)
        if n < machines:
            return 1.0
        d = Directory.even(n, machines)
        sums = []
        for p in range(d.num_partitions):
            lo, hi = d.range_of(p)
            sums.append(sum(per_iter[lo:hi]))
        mean = sum(sums) / len(sums)
        return (max(sums) / mean) if mean > 0 else 1.0

    def _price_gpu(self, ls: LoopSim, rec: DefRecord, loop_def: Def,
                   cycles: float, bytes_read: int, machines: int,
                   footprints: Dict[int, int], stencils,
                   info: Optional[LoopDistInfo]) -> None:
        gpu: GPUSpec = self.cluster.node.gpu  # type: ignore[assignment]
        chunk_cycles = cycles / machines
        chunk_bytes = bytes_read / machines

        compute = chunk_cycles / (gpu.compute_rate_gops * GB)
        mem = chunk_bytes / (gpu.mem_bandwidth_gbs * GB)
        if self._has_vector_reduce(loop_def):
            mem *= gpu.vector_reduce_penalty
            compute *= gpu.vector_reduce_penalty * 0.5
        if self._reads_matrix(loop_def, stencils) and not self.options.gpu_transposed:
            mem *= gpu.uncoalesced_penalty
        if info is not None and info.remote_random:
            # data-dependent gathers defeat coalescing regardless of layout
            # (§6.3: the GPU "is limited by the random memory accesses")
            mem *= gpu.uncoalesced_penalty
        ls.compute_s = compute
        ls.memory_s = mem
        ls.overhead_s += gpu.kernel_launch_us * 1e-6
        if ls.detail is not None:
            ls.detail.update(
                gpu=gpu.name, machines_used=machines,
                vector_reduce=self._has_vector_reduce(loop_def),
                uncoalesced=(self._reads_matrix(loop_def, stencils)
                             and not self.options.gpu_transposed),
                random_gather=bool(info is not None and info.remote_random),
                kernel_launch_us=gpu.kernel_launch_us)
        if self.options.include_gpu_transfer and stencils is not None:
            moved = sum(footprints.get(s.id, 0) for s in stencils.reads)
            ls.comm_s += (moved / machines) / (gpu.pcie_bandwidth_gbs * GB)
            if ls.detail is not None:
                ls.detail["bytes_pcie"] = moved / machines
            mx = getattr(self, "_mx", None)
            if mx is not None:
                mx.inc("executor.pcie_bytes", moved / machines, loop=ls.name)

    def _has_vector_reduce(self, d: Def) -> bool:
        assert isinstance(d.op, MultiLoop)
        for g in d.op.gens:
            if g.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE):
                if isinstance(g.value.result_type, (T.Coll, T.KeyedColl)):
                    return True
        return False

    def _reads_matrix(self, d: Def, stencils) -> bool:
        if stencils is None:
            return False
        return any(isinstance(s.tpe, T.Coll) and
                   isinstance(T.element_type(s.tpe), (T.Coll, T.KeyedColl))
                   for s in stencils.reads)

    def _price_comm(self, ls: LoopSim, rec: DefRecord,
                    info: Optional[LoopDistInfo], stencils,
                    loop_def: Optional[Def], machines: int, sockets: int,
                    footprints: Dict[int, int], bytes_read: int) -> None:
        prof = self.profile
        node = self.cluster.node
        net_bw = self.cluster.network_gbs * GB if self.cluster.nodes > 1 else 0.0
        rate = prof.effective_rate(node.socket)
        comm = 0.0
        mx = getattr(self, "_mx", None)

        if info is not None and ls.distributed and machines > 1:
            # broadcast All/Const partitioned inputs to every machine
            for s in info.broadcasts:
                nbytes = footprints.get(s.id, 0)
                if net_bw > 0:
                    comm += nbytes / net_bw
                    comm += nbytes * prof.ser_cycles_per_byte / rate
                    if ls.detail is not None:
                        ls.detail["bytes_broadcast"] = (
                            ls.detail.get("bytes_broadcast", 0.0) + nbytes)
                    if mx is not None:
                        mx.inc("executor.broadcast_bytes", nbytes,
                               loop=ls.name)

            # dynamic remote fetches for Unknown accesses
            for s in info.remote_random:
                nbytes = footprints.get(s.id, 0)
                frac = self._remote_fraction(machines, nbytes)
                moved = bytes_read * frac
                if net_bw > 0:
                    comm += moved / net_bw / machines
                    comm += (moved * prof.ser_cycles_per_byte / rate
                             / machines)
                    comm += self.cluster.network_latency_us * 1e-6 * machines
                    if ls.detail is not None:
                        ls.detail["bytes_network"] = (
                            ls.detail.get("bytes_network", 0.0) + moved)
                        ls.detail["remote_fraction"] = frac
                    if mx is not None:
                        mx.inc("executor.remote_fetch_bytes", moved,
                               loop=ls.name)
                        mx.inc("executor.remote_fetch_decisions")
                else:
                    # NUMA: remote-socket reads at reduced bandwidth
                    s_frac = self._remote_fraction(sockets, nbytes)
                    remote = bytes_read * s_frac
                    bw = (node.socket.mem_bandwidth_gbs * GB
                          * node.numa_remote_factor * max(1, sockets - 1))
                    ls.memory_s += remote / bw
                    if ls.detail is not None:
                        ls.detail["bytes_remote_numa"] = (
                            ls.detail.get("bytes_remote_numa", 0.0) + remote)
                        ls.detail["remote_fraction"] = s_frac
                    if mx is not None:
                        mx.inc("executor.numa_remote_bytes", remote,
                               loop=ls.name)

            # merge partial reduction results across machines
            if loop_def is not None and net_bw > 0:
                out_bytes = sum(
                    footprints.get(s.id, rec.output_len * 8)
                    for s, g in zip(loop_def.syms, loop_def.op.gens)
                    if g.kind in (GenKind.REDUCE, GenKind.BUCKET_REDUCE))
                if out_bytes:
                    hops = max(1, int(math.log2(machines)))
                    comm += out_bytes * hops / net_bw
                    comm += out_bytes * prof.ser_cycles_per_byte / rate
                    if ls.detail is not None:
                        ls.detail["bytes_merge"] = out_bytes * hops
                    if mx is not None:
                        mx.inc("executor.merge_bytes", out_bytes * hops,
                               loop=ls.name)

            # a distributed BucketCollect is a shuffle of the whole payload
            if loop_def is not None and net_bw > 0:
                if any(g.kind is GenKind.BUCKET_COLLECT
                       for g in loop_def.op.gens):
                    payload = rec.bytes_alloc * self.options.dscale
                    moved = payload * (machines - 1) / machines
                    comm += moved / (net_bw * machines)
                    comm += moved * 2 * prof.ser_cycles_per_byte / rate / machines
                    if ls.detail is not None:
                        ls.detail["bytes_shuffle"] = moved
                    if mx is not None:
                        mx.inc("executor.shuffle_bytes", moved, loop=ls.name)

        # NUMA box, Unknown accesses on a single machine (graph apps):
        # cache misses land on a remote socket whether the array is
        # partitioned (1-1/s of misses remote) or lives on one socket
        # (the other sockets' threads always miss remotely) — comparable
        # either way, so charged for every profile
        # §4.2 gives the runtime two options for data-dependent accesses —
        # "fully replicate the collection or detect non-local accesses and
        # move data between partitions dynamically". Small collections (a
        # factor graph's adjacency) are replicated per socket once; big
        # ones (a social graph) are fetched per miss at remote bandwidth.
        if (info is not None and self.cluster.nodes == 1 and sockets > 1
                and info.remote_random):
            for s in info.remote_random:
                nbytes = footprints.get(s.id, 0)
                bw = (node.socket.mem_bandwidth_gbs * GB
                      * node.numa_remote_factor * max(1, sockets - 1))
                if nbytes <= _REPLICATION_LIMIT_BYTES:
                    # replicated once per socket at startup, amortized over
                    # the run (like input loading / device transfer)
                    if ls.detail is not None:
                        ls.detail.setdefault("replicated", []).append(str(s))
                    if mx is not None:
                        mx.inc("executor.replication_decisions")
                        mx.inc("executor.replicated_bytes", nbytes,
                               loop=ls.name)
                    continue
                frac = self._remote_fraction(sockets, nbytes)
                remote = bytes_read * frac
                ls.memory_s += remote / bw
                if ls.detail is not None:
                    ls.detail["bytes_remote_numa"] = (
                        ls.detail.get("bytes_remote_numa", 0.0) + remote)
                    ls.detail["remote_fraction"] = frac
                if mx is not None:
                    mx.inc("executor.numa_remote_bytes", remote, loop=ls.name)
                    mx.inc("executor.remote_fetch_decisions")

        ls.comm_s += comm

    def _remote_fraction(self, parts: int, footprint_bytes: int) -> float:
        """Fraction of random reads that leave the local partition: uniform
        over partitions, discounted by LLC residency (triangle counting's
        working set 'tends to fit in cache, hiding NUMA issues')."""
        if parts <= 1:
            return 0.0
        if self.options.remote_read_cache_fraction is not None:
            hit = self.options.remote_read_cache_fraction
        else:
            llc = self.cluster.node.socket.llc_bytes
            hit = min(1.0, llc / footprint_bytes) if footprint_bytes else 1.0
        return (parts - 1) / parts * (1.0 - hit)


def simulate(compiled: CompiledProgram, inputs: Dict[str, Any],
             cluster: ClusterSpec, profile: SystemProfile = DMLL_CPP,
             options: Optional[ExecOptions] = None) -> SimResult:
    """One-call façade: run functionally and price on the machine model."""
    return Simulator(compiled, cluster, profile, options).run(inputs)
