"""Simulated hardware models.

The paper's three testbeds are described by topology and a small set of
calibration constants. All constants used anywhere in the simulated-time
model live in this module and are documented in EXPERIMENTS.md.

Simulated time follows DESIGN.md §4::

    time(loop, worker) = max(compute, memory) ;  loop time = max over
    workers + dispatch overhead ; plus explicit communication terms.

Compute is the instrumented interpreter's abstract cycles divided by an
effective per-core rate; memory is bytes touched over the bandwidth of
wherever the bytes live (local socket / remote socket / network / device).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

GB = 1e9


@dataclass(frozen=True)
class GPUSpec:
    name: str
    mem_bandwidth_gbs: float     # device memory bandwidth
    pcie_bandwidth_gbs: float    # host <-> device transfer
    compute_rate_gops: float     # abstract cycles retired per second (×1e9)
    #: slowdown when reduction temporaries don't fit in shared memory
    #: (non-scalar accumulators, §6: "reducing non-scalar types on a GPU is
    #: typically very inefficient")
    vector_reduce_penalty: float = 4.5
    #: slowdown for non-coalesced global loads (input not transposed)
    uncoalesced_penalty: float = 2.4
    kernel_launch_us: float = 8.0


#: NVIDIA Tesla C2050 (the GPU-cluster card)
TESLA_C2050 = GPUSpec("Tesla C2050", mem_bandwidth_gbs=120.0,
                      pcie_bandwidth_gbs=5.5, compute_rate_gops=500.0)


@dataclass(frozen=True)
class SocketSpec:
    cores: int
    #: effective abstract-cycle rate per core, in Gcycles/s. Calibrated so
    #: one abstract interpreter cycle ≈ one issue slot of generated C++.
    core_rate_gops: float
    mem_bandwidth_gbs: float     # bandwidth of this socket's local memory
    llc_bytes: int = 30 * 1024 * 1024


@dataclass(frozen=True)
class NodeSpec:
    sockets: int
    socket: SocketSpec
    #: bandwidth multiplier for reads served by a remote socket (QPI)
    numa_remote_factor: float = 0.45
    numa_remote_latency_ns: float = 120.0
    gpu: Optional[GPUSpec] = None

    @property
    def cores(self) -> int:
        return self.sockets * self.socket.cores

    @property
    def total_bandwidth_gbs(self) -> float:
        return self.sockets * self.socket.mem_bandwidth_gbs


@dataclass(frozen=True)
class ClusterSpec:
    name: str
    nodes: int
    node: NodeSpec
    network_gbs: float           # per-link bandwidth
    network_latency_us: float = 80.0

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    def describe(self) -> dict:
        """Flat attribute dict for span/trace annotation."""
        return {
            "cluster": self.name,
            "nodes": self.nodes,
            "sockets_per_node": self.node.sockets,
            "cores_per_node": self.node.cores,
            "network_gbs": self.network_gbs,
            "gpu": self.node.gpu.name if self.node.gpu else None,
        }


# ---------------------------------------------------------------------------
# The paper's testbeds
# ---------------------------------------------------------------------------

#: §6: 4 sockets × 12 Xeon E5-4657L cores, 256 GB per socket
NUMA_BOX = ClusterSpec(
    name="numa-4x12",
    nodes=1,
    node=NodeSpec(
        sockets=4,
        # 2.4 GHz x ~4 retired ops/cycle (SIMD + superscalar ILP)
        socket=SocketSpec(cores=12, core_rate_gops=9.6,
                          mem_bandwidth_gbs=42.0),
        numa_remote_factor=0.45),
    network_gbs=0.0)

#: §6.2: 20 × EC2 m1.xlarge (4 weak virtual cores, 15 GB, 1 GbE)
EC2_CLUSTER = ClusterSpec(
    name="ec2-20",
    nodes=20,
    node=NodeSpec(
        sockets=1,
        socket=SocketSpec(cores=4, core_rate_gops=2.0,
                          mem_bandwidth_gbs=10.0, llc_bytes=8 * 1024 * 1024)),
    network_gbs=0.125,           # 1 Gb Ethernet
    network_latency_us=200.0)

#: §6.2: 4 nodes × 12 Xeon X5680 cores + Tesla C2050, 1 GbE in-rack
GPU_CLUSTER = ClusterSpec(
    name="gpu-4",
    nodes=4,
    node=NodeSpec(
        sockets=2,
        socket=SocketSpec(cores=6, core_rate_gops=13.2,
                          mem_bandwidth_gbs=32.0, llc_bytes=12 * 1024 * 1024),
        gpu=TESLA_C2050),
    network_gbs=0.125,
    network_latency_us=60.0)


def single_node(cluster: ClusterSpec) -> ClusterSpec:
    """The one-machine view of a cluster (for per-node kernels)."""
    return ClusterSpec(cluster.name + "-node", 1, cluster.node,
                       network_gbs=cluster.network_gbs,
                       network_latency_us=cluster.network_latency_us)


#: named machine models the serving layer (``repro.serve``) and the
#: ``serve-sim`` CLI can place requests on. ``numa`` is the big NUMA box,
#: ``ec2node``/``gpunode`` are single nodes of the two clusters (a serving
#: replica is one machine, not a whole cluster).
MACHINE_MODELS = {
    "numa": NUMA_BOX,
    "ec2node": single_node(EC2_CLUSTER),
    "gpunode": single_node(GPU_CLUSTER),
}


# ---------------------------------------------------------------------------
# System profiles: the per-framework calibration constants (§6 baselines)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SystemProfile:
    """How a framework's generated/library code behaves on the machines.

    ``cycle_factor``      — multiplier on algorithmic compute cycles
                            (1.0 = DMLL's generated C++; JVM library code
                            pays boxing/virtual-dispatch overhead).
    ``alloc_cycle_cost``  — extra cycles per allocated element (GC pressure
                            and allocator work).
    ``numa_aware``        — partitions large arrays across sockets (§5).
    ``pinned``            — pins threads and uses thread-local heaps.
    ``ser_cycles_per_byte`` — serialization cost on network transfers
                            (JVM systems serialize; C++ sends raw buffers).
    ``task_overhead_us``  — per-task dispatch cost (Spark's scheduler ships
                            closures; DMLL's runtime reuses resident
                            executors).
    """

    name: str
    cycle_factor: float = 1.0
    alloc_cycle_cost: float = 2.0
    numa_aware: bool = True
    pinned: bool = True
    ser_cycles_per_byte: float = 0.0
    task_overhead_us: float = 20.0
    per_loop_overhead_us: float = 15.0
    #: the interpreter separates *essential* cycles (loads/stores/flops,
    #: which survive compilation) from *overhead* cycles (branches, struct
    #: shuffling, hash machinery). An optimizing backend eliminates most of
    #: the overhead — register allocation, cross-block CSE, inlining —
    #: keeping 1/overhead_elim of it. Calibrated ONCE globally (never per
    #: app); systems that run their own cost accounting (mini-Spark,
    #: mini-PowerGraph, DimmWitted, hand-C++) charge machine-ops directly
    #: and use 1.0.
    overhead_elim: float = 1.0
    #: kept for the GPU path: device codegen efficiency relative to the
    #: abstract cycle scale
    codegen_efficiency: float = 1.0

    def effective_rate(self, socket: SocketSpec) -> float:
        """Essential cycles per second one core retires."""
        return socket.core_rate_gops * GB / self.cycle_factor

    def effective_cycles(self, essential: float, overhead: float) -> float:
        return essential + overhead / self.overhead_elim

    def describe(self) -> dict:
        """Flat attribute dict for span/trace annotation."""
        return {
            "profile": self.name,
            "numa_aware": self.numa_aware,
            "pinned": self.pinned,
            "cycle_factor": self.cycle_factor,
        }


#: DMLL generating C++ (NUMA experiments): a low-overhead resident runtime
DMLL_CPP = SystemProfile("dmll-cpp", cycle_factor=1.0, numa_aware=True,
                         pinned=True, task_overhead_us=3.0,
                         per_loop_overhead_us=8.0, overhead_elim=5.0)
#: DMLL with thread pinning but no array partitioning (Fig. 7 "Pin Only")
DMLL_PIN_ONLY = SystemProfile("dmll-pin", cycle_factor=1.0, numa_aware=False,
                              pinned=True, task_overhead_us=3.0,
                              per_loop_overhead_us=8.0, overhead_elim=5.0)
#: DMLL generating Scala for the EC2 comparison (§6.2: "ran entirely in the
#: JVM to provide the most fair comparison with Spark")
DMLL_JVM = SystemProfile("dmll-jvm", cycle_factor=3.0, alloc_cycle_cost=5.0,
                         numa_aware=False, pinned=True,
                         ser_cycles_per_byte=3.0, overhead_elim=2.0)
#: Delite: same code generation quality, no NUMA awareness, no pinning
DELITE = SystemProfile("delite", cycle_factor=1.0, numa_aware=False,
                       pinned=False, overhead_elim=5.0)
#: Spark: JVM library, boxed records, serialized shuffles, heavier scheduler
SPARK = SystemProfile("spark", cycle_factor=6.0, alloc_cycle_cost=10.0,
                      numa_aware=False, pinned=False,
                      ser_cycles_per_byte=6.0, task_overhead_us=2000.0,
                      per_loop_overhead_us=4000.0)
#: PowerGraph: efficient C++ library engine, no NUMA partitioning
POWERGRAPH = SystemProfile("powergraph", cycle_factor=1.6,
                           alloc_cycle_cost=3.0, numa_aware=False,
                           pinned=True, ser_cycles_per_byte=0.5,
                           task_overhead_us=100.0, per_loop_overhead_us=150.0)
#: hand-optimized C++ (Table 2 baseline): no abstraction or allocation
#: overhead at all — in-place accumulation, reused buffers
HAND_CPP = SystemProfile("hand-cpp", cycle_factor=1.0, alloc_cycle_cost=0.0,
                         numa_aware=True, pinned=True, task_overhead_us=5.0,
                         per_loop_overhead_us=2.0)
#: DimmWitted: hand-written C++ Gibbs engine with pointer-chasing factor
#: graph structures (§6.3: "more pointer indirections ... for the sake of
#: user-friendly abstractions")
DIMMWITTED = SystemProfile("dimmwitted", cycle_factor=2.3,
                           alloc_cycle_cost=1.0, numa_aware=True, pinned=True)
