"""Distributed array runtime types (§5).

A ``PartitionedArray`` holds the logical array plus a ``Directory`` of
index ranges → locations, mirroring the paper's design: "we build a
directory of index ranges to locations when the array is first
instantiated and broadcast the directory to every physical instance".
Reads at indices that are not local to the ambient reader location are
*trapped* and counted (and, on real hardware, would be fetched remotely).

The executor prices communication analytically from stencils, but these
types make the mechanism concrete and are exercised directly by tests and
by the remote-read accounting of Unknown-stencil loops.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

#: optional metrics sink for directory lookups and read traps. ``None``
#: (the default) keeps the hot paths guard-only — zero observability cost.
_METRICS: Optional["MetricsRegistry"] = None


def set_metrics(metrics: Optional["MetricsRegistry"]) -> Optional["MetricsRegistry"]:
    """Install (or clear, with ``None``) the registry that directory
    lookups and PartitionedArray read traps report into. Returns the
    previous registry so callers can restore it."""
    global _METRICS
    prev = _METRICS
    _METRICS = metrics
    return prev


@dataclass(frozen=True)
class Directory:
    """Index ranges of each partition of a logical array."""

    length: int
    starts: Tuple[int, ...]     # start index of each partition

    @staticmethod
    def even(length: int, parts: int) -> "Directory":
        parts = max(1, min(parts, max(length, 1)))
        base, extra = divmod(length, parts)
        starts = []
        pos = 0
        for p in range(parts):
            starts.append(pos)
            pos += base + (1 if p < extra else 0)
        return Directory(length, tuple(starts))

    @property
    def num_partitions(self) -> int:
        return len(self.starts)

    def range_of(self, part: int) -> Tuple[int, int]:
        lo = self.starts[part]
        hi = (self.starts[part + 1] if part + 1 < len(self.starts)
              else self.length)
        return lo, hi

    def size_of(self, part: int) -> int:
        lo, hi = self.range_of(part)
        return hi - lo

    def owner(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(index)
        if _METRICS is not None:
            _METRICS.inc("distarray.directory_lookups")
        return bisect_right(self.starts, index) - 1

    def ranges(self) -> List[Tuple[int, int]]:
        return [self.range_of(p) for p in range(self.num_partitions)]


class ReaderContext:
    """Ambient 'which partition is executing' state, set by the executor
    around each chunk so PartitionedArray can classify reads."""

    __slots__ = ("location",)

    def __init__(self) -> None:
        self.location: Optional[int] = None


_AMBIENT = ReaderContext()


def set_reader_location(loc: Optional[int]) -> None:
    _AMBIENT.location = loc


class PartitionedArray:
    """A logical array spread across memory regions.

    Supports the full sequence protocol so the reference interpreter can
    consume it unchanged. Local/remote read counters are kept per array.
    """

    __slots__ = ("data", "directory", "local_reads", "remote_reads",
                 "remote_bytes", "elem_bytes")

    def __init__(self, data: Sequence[Any], parts: int, elem_bytes: int = 8):
        self.data = data
        self.directory = Directory.even(len(data), parts)
        self.local_reads = 0
        self.remote_reads = 0
        self.remote_bytes = 0
        self.elem_bytes = elem_bytes

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, idx: int) -> Any:
        loc = _AMBIENT.location
        if loc is not None:
            if self.directory.owner(idx) == loc:
                self.local_reads += 1
                if _METRICS is not None:
                    _METRICS.inc("distarray.local_reads")
            else:
                # trapped: would be transparently fetched from the remote
                # location that the directory names (§5)
                self.remote_reads += 1
                self.remote_bytes += self.elem_bytes
                if _METRICS is not None:
                    _METRICS.inc("distarray.remote_reads")
                    _METRICS.inc("distarray.remote_bytes", self.elem_bytes)
        return self.data[idx]

    def __iter__(self):
        return iter(self.data)

    def __eq__(self, other):
        if isinstance(other, PartitionedArray):
            return list(self.data) == list(other.data)
        if isinstance(other, (list, tuple)):
            return list(self.data) == list(other)
        return NotImplemented

    def local_chunk(self, part: int) -> Sequence[Any]:
        lo, hi = self.directory.range_of(part)
        return self.data[lo:hi]

    def reset_counters(self) -> None:
        self.local_reads = 0
        self.remote_reads = 0
        self.remote_bytes = 0

    def __repr__(self) -> str:
        return (f"PartitionedArray(n={len(self.data)}, "
                f"parts={self.directory.num_partitions})")
