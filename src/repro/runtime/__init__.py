"""Simulated heterogeneous runtime: machine models, distributed arrays,
and the hierarchical executor (§5)."""

from .distarray import (Directory, PartitionedArray, set_metrics,
                        set_reader_location)
from .executor import (ExecOptions, LoopSim, RunCapture, SimResult,
                       Simulator, capture_run, simulate)
from .machine import (DELITE, DIMMWITTED, DMLL_CPP, DMLL_JVM, DMLL_PIN_ONLY,
                      EC2_CLUSTER, GPU_CLUSTER, HAND_CPP, NUMA_BOX,
                      POWERGRAPH, SPARK, TESLA_C2050, ClusterSpec, GPUSpec,
                      NodeSpec, SocketSpec, SystemProfile, single_node)

__all__ = [
    "Directory", "PartitionedArray", "set_metrics", "set_reader_location",
    "ExecOptions", "LoopSim", "RunCapture", "SimResult", "Simulator",
    "capture_run", "simulate",
    "DELITE", "DIMMWITTED", "DMLL_CPP", "DMLL_JVM", "DMLL_PIN_ONLY",
    "EC2_CLUSTER", "GPU_CLUSTER", "HAND_CPP", "NUMA_BOX", "POWERGRAPH",
    "SPARK", "TESLA_C2050", "ClusterSpec", "GPUSpec", "NodeSpec",
    "SocketSpec", "SystemProfile", "single_node",
]
