"""OptiGraph: a small graph-analytics DSL built on DMLL (§6.2).

The paper's graph benchmarks run on "OptiGraph, a graph analytics DSL
built on top of DMLL that uses ... domain-specific transformations [to]
transform applications between a pull model of computation (common in
shared memory) and a push model (common in distributed systems) based on
the hardware target" (citing Hong et al., CGO'14).

Both formulations are provided for PageRank; ``select_model`` implements
the domain-specific transformation policy. Triangle counting uses the
DSL's ``intersect_size`` primitive over sorted adjacency lists.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .. import frontend as F
from ..core import types as T
from ..core.ir import Program
from ..data.graphs import Graph

ADJ = T.Coll(T.Coll(T.INT))

DAMPING = 0.85


def pagerank_inputs():
    return [F.InputSpec("adj", ADJ, True),          # neighbor lists
            F.InputSpec("ranks", T.Coll(T.DOUBLE), True),
            F.InputSpec("degrees", T.Coll(T.INT), True)]


def pagerank_pull_program() -> Program:
    """Pull model: every vertex gathers its neighbors' contributions.

    The read ``ranks[u]`` at a data-dependent neighbor index is a textbook
    Unknown stencil: the partitioning analysis warns and the runtime falls
    back to remote fetches — the fundamental communication of graph
    analytics (§4.1: "sometimes the communication is fundamental").
    """

    def prog(adj: F.ArrayRep, ranks: F.ArrayRep, degrees: F.ArrayRep):
        # precompute each vertex's outgoing share once (saves a divide per
        # edge — the tuned C++ reference does the same)
        contrib = ranks.zip_with(degrees,
                                 lambda r, d: r / d.to_double())

        def new_rank(v):
            gathered = adj[v].map(lambda u: contrib[u]).sum()
            return (1.0 - DAMPING) + DAMPING * gathered

        return ranks.map_indices(new_rank)

    return F.build(prog, pagerank_inputs())


def pagerank_push_program() -> Program:
    """Push model: every vertex scatters its contribution to neighbors,
    aggregated by a bucket reduction — the distribution-friendly
    formulation ("pushing the required data to local nodes and then
    performing the computation locally", §6.2)."""

    def prog(adj: F.ArrayRep, ranks: F.ArrayRep, degrees: F.ArrayRep):
        n = ranks.length()

        def contributions(v):
            share = ranks[v] / degrees[v].to_double()
            return adj[v].map(lambda u: F.pair(u, share))

        pushed = F.irange(n).flat_map(contributions)
        sums = pushed.group_by_reduce(
            lambda p: p.fst, lambda p: p.snd, lambda a, b: a + b)
        return ranks.map_indices(
            lambda v: (1.0 - DAMPING) + DAMPING * sums[v])

    return F.build(prog, pagerank_inputs())


def select_model(target: str) -> Program:
    """The OptiGraph domain-specific push/pull transformation policy:
    pull in shared memory, push across distributed memory."""
    if target in ("cluster", "distributed"):
        return pagerank_push_program()
    return pagerank_pull_program()


def pagerank_oracle(g: Graph, ranks: Sequence[float]) -> List[float]:
    degs = g.degrees()
    out = []
    for v in range(g.n):
        c = sum(ranks[u] / degs[u] for u in g.adj[v])
        out.append((1.0 - DAMPING) + DAMPING * c)
    return out


def pagerank_run(g: Graph, iterations: int = 10,
                 program: Program = None) -> List[float]:
    from ..core.interp import run_program
    prog = program if program is not None else pagerank_pull_program()
    ranks = [1.0] * g.n
    for _ in range(iterations):
        (ranks,), _ = run_program(prog, {
            "adj": g.adj, "ranks": ranks, "degrees": g.degrees()})
    return list(ranks)


# ---------------------------------------------------------------------------
# Triangle counting
# ---------------------------------------------------------------------------

def triangle_inputs():
    return [F.InputSpec("adj", ADJ, True)]


def triangle_program() -> Program:
    """Per-edge sorted-neighborhood intersection; each triangle is counted
    once per edge orientation u < v and the intersections count each
    triangle three times in total — divided out at the end."""

    def prog(adj: F.ArrayRep):
        def per_vertex(u):
            return adj[u].map(
                lambda v: F.where(v > u,
                                  lambda: F.intersect_size(adj[u], adj[v]),
                                  lambda: 0)).sum()

        total = adj.map_indices(per_vertex).sum()
        return total // 3

    return F.build(prog, triangle_inputs())


def triangle_oracle(g: Graph) -> int:
    total = 0
    for u in range(g.n):
        su = set(g.adj[u])
        for v in g.adj[u]:
            if v > u:
                total += sum(1 for w in g.adj[v] if w in su)
    return total // 3
