"""OptiGraph: graph analytics DSL on DMLL with push/pull transformation."""

from .optigraph import (pagerank_inputs, pagerank_oracle,
                        pagerank_pull_program, pagerank_push_program,
                        pagerank_run, select_model, triangle_inputs,
                        triangle_oracle, triangle_program)

__all__ = [
    "pagerank_inputs", "pagerank_oracle", "pagerank_pull_program",
    "pagerank_push_program", "pagerank_run", "select_model",
    "triangle_inputs", "triangle_oracle", "triangle_program",
]
