"""Staged value wrappers (``Rep`` types) for the DMLL frontend.

User programs manipulate these wrappers with ordinary Python syntax; every
operation emits IR into the open staging scope. The surface API mirrors the
paper's examples: ``map``/``filter``/``flatMap``/``zipWith``/``reduce``/
``groupBy``/``groupByReduce``/``mapRows``/``sumRows``/``minIndex`` …
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from ..core import types as T
from ..core.ir import Block, Const, Exp, Sym
from ..core.multiloop import (GenKind, Generator, MultiLoop, bucket_collect,
                              bucket_reduce, collect, reduce_gen)
from ..core.ops import (ArrayApply, ArrayLength, ArrayLit, BucketKeys,
                        BucketLookup, IfThenElse, Prim, StructField, StructNew)
from ..core.staging import emit, emit1, stage_block

Liftable = Union["Rep", Exp, int, float, bool, str]


def unwrap(x: Liftable) -> Exp:
    if isinstance(x, Rep):
        return x.exp
    if isinstance(x, Exp):
        return x
    if isinstance(x, (bool, int, float, str)):
        return Const(x)
    raise TypeError(f"cannot lift {x!r} into DMLL")


def wrap(e: Exp) -> "Rep":
    t = e.tpe
    if isinstance(t, T.Coll):
        return ArrayRep(e)
    if isinstance(t, T.KeyedColl):
        return KeyedRep(e)
    if isinstance(t, T.Struct):
        return StructRep(e)
    if t is T.BOOL:
        return BoolRep(e)
    if t is T.STRING:
        return StrRep(e)
    return NumRep(e)


def lift(x: Liftable) -> "Rep":
    if isinstance(x, Rep):
        return x
    return wrap(unwrap(x))


class Rep:
    """Base wrapper around a staged expression."""

    __slots__ = ("exp",)

    def __init__(self, exp: Exp):
        self.exp = exp

    @property
    def tpe(self) -> T.Type:
        return self.exp.tpe

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.exp!r})"

    def __bool__(self):
        raise TypeError(
            "staged values cannot be used in Python control flow; "
            "use repro.frontend.where(cond, a, b) instead")


def _prim(name: str, *args: Liftable) -> Rep:
    return wrap(emit1(Prim(name, tuple(unwrap(a) for a in args)), name))


class NumRep(Rep):
    __slots__ = ()

    def __add__(self, o): return _prim("add", self, o)
    def __radd__(self, o): return _prim("add", o, self)
    def __sub__(self, o): return _prim("sub", self, o)
    def __rsub__(self, o): return _prim("sub", o, self)
    def __mul__(self, o): return _prim("mul", self, o)
    def __rmul__(self, o): return _prim("mul", o, self)
    def __truediv__(self, o): return _prim("div", self, o)
    def __rtruediv__(self, o): return _prim("div", o, self)
    def __floordiv__(self, o): return _prim("idiv", self, o)
    def __mod__(self, o): return _prim("mod", self, o)
    def __neg__(self): return _prim("neg", self)
    def __abs__(self): return _prim("abs", self)
    def __eq__(self, o): return _prim("eq", self, o)  # type: ignore[override]
    def __ne__(self, o): return _prim("ne", self, o)  # type: ignore[override]
    def __lt__(self, o): return _prim("lt", self, o)
    def __le__(self, o): return _prim("le", self, o)
    def __gt__(self, o): return _prim("gt", self, o)
    def __ge__(self, o): return _prim("ge", self, o)
    def __hash__(self):  # Reps are not hashable values
        raise TypeError("staged values are not hashable")

    def to_double(self): return _prim("to_double", self)
    def to_int(self): return _prim("to_int", self)


class BoolRep(Rep):
    __slots__ = ()

    def __and__(self, o): return _prim("and", self, o)
    def __or__(self, o): return _prim("or", self, o)
    def __invert__(self): return _prim("not", self)
    def __eq__(self, o): return _prim("eq", self, o)  # type: ignore[override]
    def __ne__(self, o): return _prim("ne", self, o)  # type: ignore[override]
    def __hash__(self):
        raise TypeError("staged values are not hashable")


class StrRep(Rep):
    __slots__ = ()

    def __add__(self, o): return _prim("str_concat", self, o)
    def __eq__(self, o): return _prim("eq", self, o)  # type: ignore[override]
    def __ne__(self, o): return _prim("ne", self, o)  # type: ignore[override]
    def __hash__(self):
        raise TypeError("staged values are not hashable")

    def length(self): return _prim("str_len", self)
    def char_at(self, i): return _prim("str_char_at", self, i)


class StructRep(Rep):
    __slots__ = ()

    def field(self, name: str) -> Rep:
        return wrap(emit1(StructField(self.exp, name), name))

    def __getattr__(self, name: str) -> Rep:
        st = self.exp.tpe
        if isinstance(st, T.Struct) and name in st.field_names():
            return self.field(name)
        raise AttributeError(name)

    @property
    def fst(self) -> Rep:
        return self.field("_0")

    @property
    def snd(self) -> Rep:
        return self.field("_1")


def _value_block(arr_exp: Exp, f: Optional[Callable]) -> Block:
    """Stage ``i => f(arr(i))`` (or ``i => arr(i)`` when f is None)."""
    def body(i: NumRep):
        elem = wrap(emit1(ArrayApply(arr_exp, i.exp), "e"))
        return f(elem) if f is not None else elem
    return stage_block([T.INT], body, ["i"], wrap=wrap, unwrap=unwrap)


def _index_block(f: Callable) -> Block:
    return stage_block([T.INT], f, ["i"], wrap=wrap, unwrap=unwrap)


def _binary_block(tpe: T.Type, f: Callable) -> Block:
    return stage_block([tpe, tpe], f, ["a", "b"], wrap=wrap, unwrap=unwrap)


def _scalar_add_reducer(tpe: T.Type) -> Block:
    return _binary_block(tpe, lambda a, b: a + b)


def _elementwise_add(x, y):
    """``+`` over scalars or, recursively, over collections."""
    if isinstance(x, ArrayRep):
        return x.zip_with(y, _elementwise_add)
    return x + y


def _vector_add_reducer(tpe: T.Coll) -> Block:
    def body(a: "ArrayRep", b: "ArrayRep"):
        return a.zip_with(b, _elementwise_add)
    return _binary_block(tpe, body)


def add_reducer(tpe: T.Type) -> Block:
    """``+`` lifted over scalars or (recursively) over collections."""
    if isinstance(tpe, T.Coll):
        return _vector_add_reducer(tpe)
    return _scalar_add_reducer(tpe)


class ArrayRep(Rep):
    """A staged flat collection (``Coll[V]``)."""

    __slots__ = ()

    # -- basic accessors -------------------------------------------------

    @property
    def elem_type(self) -> T.Type:
        return T.element_type(self.tpe)

    def length(self) -> NumRep:
        return NumRep(emit1(ArrayLength(self.exp), "n"))

    # paper alias
    def count(self) -> NumRep:
        return self.length()

    def __getitem__(self, i: Liftable) -> Rep:
        return self.apply(i)

    def apply(self, i: Liftable) -> Rep:
        return wrap(emit1(ArrayApply(self.exp, unwrap(i)), "e"))

    def _loop(self, gen: Generator, name: str,
              size: Optional[Exp] = None) -> Rep:
        size = size if size is not None else self.length().exp
        return wrap(emit(MultiLoop(size, (gen,)), [name])[0])

    # -- parallel patterns ------------------------------------------------

    def map(self, f: Callable, name: str = "map") -> "ArrayRep":
        gen = collect(_value_block(self.exp, f))
        out = self._loop(gen, name)
        assert isinstance(out, ArrayRep)
        return out

    # paper aliases for matrix-of-rows programs
    map_rows = map

    def map_indices(self, f: Callable, name: str = "mapidx") -> "ArrayRep":
        gen = collect(_index_block(f))
        out = self._loop(gen, name)
        assert isinstance(out, ArrayRep)
        return out

    def filter(self, p: Callable, name: str = "filter") -> "ArrayRep":
        gen = collect(_value_block(self.exp, None), cond=_value_block(self.exp, p))
        out = self._loop(gen, name)
        assert isinstance(out, ArrayRep)
        return out

    def filter_indices(self, p: Callable, name: str = "filteridx") -> "ArrayRep":
        cond = _value_block(self.exp, p)
        value = _index_block(lambda i: i)
        out = self._loop(collect(value, cond=cond), name)
        assert isinstance(out, ArrayRep)
        return out

    def flat_map(self, f: Callable, name: str = "flatmap") -> "ArrayRep":
        gen = collect(_value_block(self.exp, f), flatten=True)
        out = self._loop(gen, name)
        assert isinstance(out, ArrayRep)
        return out

    def zip_with(self, other: "ArrayRep", f: Callable,
                 name: str = "zip") -> "ArrayRep":
        other_exp = other.exp

        def body(i: NumRep):
            a = wrap(emit1(ArrayApply(self.exp, i.exp), "a"))
            b = wrap(emit1(ArrayApply(other_exp, i.exp), "b"))
            return f(a, b)

        gen = collect(stage_block([T.INT], body, ["i"], wrap=wrap, unwrap=unwrap))
        out = self._loop(gen, name)
        assert isinstance(out, ArrayRep)
        return out

    def reduce(self, r: Callable, name: str = "reduce") -> Rep:
        gen = reduce_gen(_value_block(self.exp, None),
                         _binary_block(self.elem_type, r))
        return self._loop(gen, name)

    def map_reduce(self, f: Callable, r: Callable, name: str = "mapreduce") -> Rep:
        vb = _value_block(self.exp, f)
        gen = reduce_gen(vb, _binary_block(vb.result_type, r))
        return self._loop(gen, name)

    def sum(self, name: str = "sum") -> Rep:
        gen = reduce_gen(_value_block(self.exp, None), add_reducer(self.elem_type))
        return self._loop(gen, name)

    # matrix alias: summing rows of a Coll[Coll[Double]] is a vector reduce
    sum_rows = sum

    def min_index(self, name: str = "minidx") -> NumRep:
        """Index of the minimum element (first on ties) — the paper's
        ``minIndex``. Reduces (value, index) pairs."""
        pair_t = T.tuple_type(self.elem_type, T.INT)

        def vb(i: NumRep):
            v = wrap(emit1(ArrayApply(self.exp, i.exp), "v"))
            return StructRep(emit1(StructNew(pair_t, (v.exp, i.exp)), "p"))

        def rb(a: StructRep, b: StructRep):
            return where(b.field("_0") < a.field("_0"), b, a)

        gen = reduce_gen(stage_block([T.INT], vb, ["i"], wrap=wrap, unwrap=unwrap),
                         _binary_block(pair_t, rb))
        pair = self._loop(gen, name)
        assert isinstance(pair, StructRep)
        out = pair.field("_1")
        assert isinstance(out, NumRep)
        return out

    def group_by(self, k: Callable, name: str = "groupby") -> "KeyedRep":
        gen = bucket_collect(_value_block(self.exp, k), _value_block(self.exp, None))
        out = self._loop(gen, name)
        assert isinstance(out, KeyedRep)
        return out

    # paper alias
    group_rows_by = group_by

    def group_by_value(self, k: Callable, v: Callable,
                       name: str = "groupby") -> "KeyedRep":
        gen = bucket_collect(_value_block(self.exp, k), _value_block(self.exp, v))
        out = self._loop(gen, name)
        assert isinstance(out, KeyedRep)
        return out

    def group_by_reduce(self, k: Callable, v: Callable, r: Callable,
                        name: str = "groupred") -> "KeyedRep":
        vb = _value_block(self.exp, v)
        gen = bucket_reduce(_value_block(self.exp, k), vb,
                            _binary_block(vb.result_type, r))
        out = self._loop(gen, name)
        assert isinstance(out, KeyedRep)
        return out


class KeyedRep(Rep):
    """A staged ``KeyedColl`` (result of bucket generators)."""

    __slots__ = ()

    @property
    def elem_type(self) -> T.Type:
        return T.element_type(self.tpe)

    def length(self) -> NumRep:
        return NumRep(emit1(ArrayLength(self.exp), "n"))

    def at(self, pos: Liftable) -> Rep:
        """Dense positional access (first-seen key order)."""
        return wrap(emit1(ArrayApply(self.exp, unwrap(pos)), "e"))

    def __getitem__(self, key: Liftable) -> Rep:
        return self.lookup(key)

    def lookup(self, key: Liftable) -> Rep:
        return wrap(emit1(BucketLookup(self.exp, unwrap(key)), "v"))

    def keys(self) -> ArrayRep:
        return ArrayRep(emit1(BucketKeys(self.exp), "ks"))

    def map(self, f: Callable, name: str = "map") -> ArrayRep:
        """Map over bucket values in dense order — the paper's
        ``groupBy(...).map(group => ...)``."""
        size = self.length().exp

        def body(i: NumRep):
            elem = wrap(emit1(ArrayApply(self.exp, i.exp), "g"))
            return f(elem)

        gen = collect(stage_block([T.INT], body, ["i"], wrap=wrap, unwrap=unwrap))
        sym = emit(MultiLoop(size, (gen,)), [name])[0]
        return ArrayRep(sym)


# ---------------------------------------------------------------------------
# Free functions
# ---------------------------------------------------------------------------

def where(cond: Liftable, then_val, else_val) -> Rep:
    """Staged conditional. Accepts values or zero-argument thunks (thunks
    stage lazily, i.e. only the taken branch's code runs at runtime)."""

    def as_block(v) -> Block:
        if callable(v):
            return stage_block([], v, [], wrap=wrap, unwrap=unwrap)
        return Block((), (), (unwrap(v),))

    tb, eb = as_block(then_val), as_block(else_val)
    return wrap(emit1(IfThenElse(unwrap(cond), tb, eb), "ite"))


def pair(a: Liftable, b: Liftable) -> StructRep:
    ea, eb = unwrap(a), unwrap(b)
    t = T.tuple_type(ea.tpe, eb.tpe)
    return StructRep(emit1(StructNew(t, (ea, eb)), "p"))


def struct(struct_type: T.Struct, **fields: Liftable) -> StructRep:
    values = tuple(unwrap(fields[n]) for n in struct_type.field_names())
    return StructRep(emit1(StructNew(struct_type, values), struct_type.name.lower()))


def array_lit(elems: Sequence[Liftable], elem_type: Optional[T.Type] = None) -> ArrayRep:
    exps = tuple(unwrap(e) for e in elems)
    et = elem_type or (exps[0].tpe if exps else T.DOUBLE)
    return ArrayRep(emit1(ArrayLit(exps, et), "lit"))


class RangeRep:
    """``Range(0, n)`` — not a value, only a loop domain (as in the paper's
    logistic-regression example)."""

    def __init__(self, n: Liftable):
        self.n = unwrap(n)

    def map(self, f: Callable, name: str = "rmap") -> ArrayRep:
        gen = collect(_index_block(f))
        sym = emit(MultiLoop(self.n, (gen,)), [name])[0]
        return ArrayRep(sym)

    def filter(self, p: Callable, name: str = "rfilter") -> ArrayRep:
        gen = collect(_index_block(lambda i: i), cond=_index_block(p))
        sym = emit(MultiLoop(self.n, (gen,)), [name])[0]
        return ArrayRep(sym)

    def flat_map(self, f: Callable, name: str = "rflatmap") -> ArrayRep:
        gen = collect(_index_block(f), flatten=True)
        sym = emit(MultiLoop(self.n, (gen,)), [name])[0]
        return ArrayRep(sym)

    def map_reduce(self, f: Callable, r: Callable, name: str = "rreduce") -> Rep:
        vb = _index_block(f)
        gen = reduce_gen(vb, _binary_block(vb.result_type, r))
        sym = emit(MultiLoop(self.n, (gen,)), [name])[0]
        return wrap(sym)

    def sum(self, f: Callable, name: str = "rsum") -> Rep:
        vb = _index_block(f)
        gen = reduce_gen(vb, add_reducer(vb.result_type))
        sym = emit(MultiLoop(self.n, (gen,)), [name])[0]
        return wrap(sym)


def irange(n: Liftable) -> RangeRep:
    return RangeRep(n)


def intersect_size(a: "ArrayRep", b: "ArrayRep") -> NumRep:
    """Size of the intersection of two *sorted* collections — an OptiGraph
    domain primitive (used by triangle counting)."""
    from ..core.ops import CollPrim
    out = wrap(emit1(CollPrim("sorted_intersect_count",
                              (unwrap(a), unwrap(b))), "isect"))
    assert isinstance(out, NumRep)
    return out


def contains(coll: "ArrayRep", x: Liftable) -> BoolRep:
    """Membership test over a collection (linear scan)."""
    from ..core.ops import CollPrim
    out = wrap(emit1(CollPrim("coll_contains",
                              (unwrap(coll), unwrap(x))), "has"))
    assert isinstance(out, BoolRep)
    return out


# math helpers -------------------------------------------------------------

def fexp(x: Liftable) -> NumRep:
    out = _prim("exp", x)
    assert isinstance(out, NumRep)
    return out


def flog(x: Liftable) -> NumRep:
    out = _prim("log", x)
    assert isinstance(out, NumRep)
    return out


def fsqrt(x: Liftable) -> NumRep:
    out = _prim("sqrt", x)
    assert isinstance(out, NumRep)
    return out


def sigmoid(x: Liftable) -> NumRep:
    out = _prim("sigmoid", x)
    assert isinstance(out, NumRep)
    return out


def fmin(a: Liftable, b: Liftable) -> NumRep:
    out = _prim("min", a, b)
    assert isinstance(out, NumRep)
    return out


def fmax(a: Liftable, b: Liftable) -> NumRep:
    out = _prim("max", a, b)
    assert isinstance(out, NumRep)
    return out
