"""DMLL frontend: an implicitly-parallel, pattern-based collections DSL.

Write programs as plain Python functions over staged collections::

    from repro import frontend as F

    def prog(xs):
        return xs.map(lambda x: x * x).sum()

    program = F.build(prog, [F.vector_input("xs", partitioned=True)])

The staged ``Program`` is then optimized and executed by
``repro.pipeline`` / ``repro.runtime``.
"""

from .program import (InputSpec, build, matrix_input, scalar_input,
                      table_input, vector_input)
from .reps import (ArrayRep, BoolRep, KeyedRep, NumRep, Rep, StrRep,
                   StructRep, array_lit, contains, fexp, flog, fmax, fmin,
                   fsqrt, intersect_size, irange, lift, pair, sigmoid,
                   struct, unwrap, where, wrap)

__all__ = [
    "InputSpec", "build", "matrix_input", "scalar_input", "table_input",
    "vector_input",
    "ArrayRep", "BoolRep", "KeyedRep", "NumRep", "Rep", "StrRep", "StructRep",
    "array_lit", "contains", "fexp", "flog", "fmax", "fmin", "fsqrt",
    "intersect_size", "irange", "lift", "pair", "sigmoid", "struct",
    "unwrap", "where", "wrap",
]
