"""Whole-program staging for the DMLL frontend.

A program is a Python function over staged inputs. Each input carries the
user's partitioning annotation (§4.1: "we obtain this information by having
the user annotate each data source").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core import types as T
from ..core.ir import Program
from ..core.ops import InputSource
from ..core.staging import build_program, emit1
from .reps import Rep, unwrap, wrap


@dataclass(frozen=True)
class InputSpec:
    """Declares one program input (a data source, e.g. a file reader)."""

    label: str
    tpe: T.Type
    partitioned: bool = False


def matrix_input(label: str, partitioned: bool = False,
                 elem: T.Type = T.DOUBLE) -> InputSpec:
    """A matrix as a collection of rows — ``Matrix.fromFile`` in Fig. 1."""
    return InputSpec(label, T.Coll(T.Coll(elem)), partitioned)


def vector_input(label: str, partitioned: bool = False,
                 elem: T.Type = T.DOUBLE) -> InputSpec:
    return InputSpec(label, T.Coll(elem), partitioned)


def table_input(label: str, row_type: T.Struct,
                partitioned: bool = False) -> InputSpec:
    """A table as a collection of record structs (AoS at the source; the
    compiler's AoS→SoA pass takes it from there)."""
    return InputSpec(label, T.Coll(row_type), partitioned)


def scalar_input(label: str, tpe: T.Type = T.DOUBLE) -> InputSpec:
    return InputSpec(label, tpe, partitioned=False)


def build(fn: Callable, specs: Sequence[InputSpec]) -> Program:
    """Stage ``fn`` applied to the declared inputs into a DMLL ``Program``."""

    def make_inputs():
        return [wrap(emit1(InputSource(s.tpe, s.label, s.partitioned), s.label))
                for s in specs]

    return build_program(fn, make_inputs, unwrap=_unwrap_result)


def _unwrap_result(x):
    if isinstance(x, Rep):
        return x.exp
    return unwrap(x)
