"""The GROUPBY-REDUCE rule (Fig. 3).

::

    A = BucketCollect_s(c)(k)(f1)
    Collect_A(_)(i => Reduce_{A(i)}(_)(f2)(r))
      -->  H = BucketReduce_s(c)(k)(f2(f1))(r)
           Collect_H(_)(i => H(i))

Eliminates materialized buckets when each bucket is only reduced: the
values are folded on the fly as they are assigned to buckets, in a single
traversal. A companion pattern rewrites ``A(i).length`` (the ``count`` of
a group, as in TPC-H Q1's ``avg``) into a horizontally-fusable
``BucketReduce`` of ones.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..core import types as T
from ..core.ir import (Block, Const, Def, Exp, Sym, def_index, fresh,
                       inline_block, op_used_syms, refresh_block, subst_block)
from ..core.multiloop import (GenKind, Generator, MultiLoop, bucket_reduce,
                              loop_def, single_gen)
from ..core.ops import ArrayApply, ArrayLength, Prim
from ..optim.fusion import _block_reads, _nested_reads, _refs_canonical, _replace_reads
from .common import Rule, block_is_free_of, locals_of


class GroupByReduce(Rule):
    name = "groupby-reduce"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        d = block.stmts[pos]
        if not isinstance(d.op, MultiLoop):
            return None
        idx = def_index(block)
        for gi, g in enumerate(d.op.gens):
            out = self._try_generator(block, idx, d, gi, g)
            if out is not None:
                return out
        return None

    def _try_generator(self, block: Block, idx, d: Def, gi: int,
                       g: Generator) -> Optional[List[Def]]:
        V = g.value
        if len(V.params) != 1:
            return None
        i = V.params[0]
        v_idx = def_index(V)
        v_locals = locals_of(V)
        # find a dense bucket access `bkt = A(i)` where A is a scope-local
        # BucketCollect and this loop ranges over len(A)
        for bdef in V.stmts:
            if not isinstance(bdef.op, ArrayApply):
                continue
            if bdef.op.idx != i:
                continue
            a_sym = bdef.op.arr
            if not isinstance(a_sym, Sym) or not isinstance(a_sym.tpe, T.KeyedColl):
                continue
            a_def = idx.get(a_sym)
            if a_def is None:
                continue
            a_gen = single_gen(a_def)
            if a_gen is None or a_gen.kind is not GenKind.BUCKET_COLLECT:
                continue
            if not self._loop_ranges_over(d.op.size, a_sym, idx):
                continue
            out = self._rewrite(block, d, gi, g, V, bdef, a_def, a_gen,
                                v_locals)
            if out is not None:
                return out
        return None

    def _loop_ranges_over(self, size: Exp, a_sym: Sym, idx) -> bool:
        if isinstance(size, Sym):
            sd = idx.get(size)
            return (sd is not None and isinstance(sd.op, ArrayLength)
                    and sd.op.arr == a_sym)
        return False

    def _rewrite(self, block: Block, d: Def, gi: int, g: Generator, V: Block,
                 bdef: Def, a_def: Def, a_gen: Generator,
                 v_locals: Set[Sym]) -> Optional[List[Def]]:
        bkt = bdef.sym
        v_idx = def_index(V)
        hoisted: List[Def] = []
        env = {}

        # (a) nested full reductions of the bucket
        reduces: List[Tuple[Def, Generator]] = []
        for rdef in V.stmts:
            rgen = single_gen(rdef)
            if rgen is None or rgen.kind is not GenKind.REDUCE:
                continue
            if rgen.cond is not None:
                continue
            if not self._ranges_over_bucket(rdef.op.size, bkt, v_idx):
                continue
            if not _refs_canonical(rgen.value, bkt, rgen.value.params[0]):
                continue
            # f2 and r must not capture outer-loop state (besides the bucket)
            if not block_is_free_of(rgen.value, v_locals - {bkt}):
                continue
            if not block_is_free_of(rgen.reducer, v_locals):
                continue
            reduces.append((rdef, rgen))
        if not reduces:
            return self.reject(
                d, f"loop densely reads bucket collection {a_def.syms[0]!r} "
                   f"but contains no unconditional full-bucket reduction to "
                   f"fold into the grouping pass", bucket=repr(a_def.syms[0]))

        for rdef, rgen in reduces:
            composed = self._compose_value(rgen.value, a_gen, bkt)
            h_gen = bucket_reduce(
                key=refresh_block(a_gen.key),
                value=composed,
                reducer=refresh_block(rgen.reducer),
                cond=refresh_block(a_gen.cond) if a_gen.cond else None,
                init=rgen.init)
            h_def = loop_def(a_def.op.size, [h_gen], ["bktred"])
            hoisted.append(h_def)
            env[rdef.syms[0]] = ("reduce", rdef, h_def.syms[0])

        # (b) bucket counts: n = len(bkt) used beyond the reduces' sizes
        count_h: Optional[Sym] = None
        dropped_lens: Set[int] = set()
        for ldef in V.stmts:
            if isinstance(ldef.op, ArrayLength) and ldef.op.arr == bkt:
                remaining_uses = self._uses_outside(V, ldef.sym,
                                                    {id(r[0]) for r in reduces})
                if not remaining_uses:
                    # only used as a removed reduce's size: drop it
                    dropped_lens.add(id(ldef))
                    continue
                if remaining_uses:
                    if count_h is None:
                        ones = Block((fresh(T.INT, "j"),), (), (Const(1),))
                        add = _int_add_block()
                        hc_gen = bucket_reduce(
                            key=refresh_block(a_gen.key), value=ones,
                            reducer=add,
                            cond=refresh_block(a_gen.cond) if a_gen.cond else None)
                        hc_def = loop_def(a_def.op.size, [hc_gen], ["bktcnt"])
                        hoisted.append(hc_def)
                        count_h = hc_def.syms[0]
                    env[ldef.sym] = ("count", ldef, count_h)

        # any other use of the bucket value blocks the transform for safety
        replaced_defs = {id(rdef) for rdef, _ in reduces}
        replaced_defs.update(id(ld) for s, (kind, ld, _) in env.items()
                             if kind == "count")
        replaced_defs.update(dropped_lens)
        for st in V.stmts:
            if id(st) in replaced_defs or st is bdef:
                continue
            if bkt in op_used_syms(st.op):
                return self.reject(
                    d, f"bucket value {bkt!r} is used beyond full "
                       f"reductions and counts (by {st.op.op_name()}); the "
                       f"materialized buckets are still needed",
                    bucket=repr(a_def.syms[0]))
        if bkt in (r for r in V.results if isinstance(r, Sym)):
            return self.reject(
                d, f"bucket value {bkt!r} escapes through the generator "
                   f"results; the materialized buckets are still needed",
                bucket=repr(a_def.syms[0]))

        # rebuild V: drop replaced defs, read H / Hc at the dense position
        i = V.params[0]
        new_stmts: List[Def] = []
        subst = {}
        for st in V.stmts:
            hit = None
            for old_sym, (kind, old_def, h_sym) in env.items():
                if st is old_def:
                    hit = (old_sym, h_sym)
                    break
            if hit is not None:
                old_sym, h_sym = hit
                nn = fresh(old_sym.tpe, old_sym.name)
                new_stmts.append(Def((nn,), ArrayApply(h_sym, i)))
                subst[old_sym] = nn
                continue
            if st is bdef or id(st) in dropped_lens:
                continue  # the bucket itself is no longer read
            new_stmts.append(st)
        new_V = subst_block(Block(V.params, tuple(new_stmts), V.results), subst)

        # the loop now ranges over len(H) instead of len(A)
        first_h = hoisted[0].syms[0]
        nlen = fresh(T.INT, "n")
        len_def = Def((nlen,), ArrayLength(first_h))

        new_gens = list(d.op.gens)
        new_gens[gi] = Generator(g.kind, new_V, cond=g.cond, key=g.key,
                                 reducer=g.reducer, init=g.init,
                                 flatten=g.flatten)
        new_loop = Def(d.syms, MultiLoop(nlen, tuple(new_gens)))
        return hoisted + [len_def, new_loop]

    def _ranges_over_bucket(self, size: Exp, bkt: Sym, v_idx) -> bool:
        if isinstance(size, Sym):
            sd = v_idx.get(size)
            return (sd is not None and isinstance(sd.op, ArrayLength)
                    and sd.op.arr == bkt)
        return False

    def _uses_outside(self, V: Block, sym: Sym, excluded_def_ids) -> bool:
        for st in V.stmts:
            if id(st) in excluded_def_ids:
                continue
            if sym in op_used_syms(st.op):
                return True
        return sym in V.results

    def _compose_value(self, f2: Block, a_gen: Generator, bkt: Sym) -> Block:
        """``f2(f1)``: the reduce's value function applied to the bucket
        source's value function."""
        j0 = fresh(T.INT, "j")
        pre: List[Def] = []
        v1 = inline_block(a_gen.value, [j0], pre)
        body = refresh_block(
            Block(f2.params[1:], f2.stmts, f2.results), {f2.params[0]: j0})
        body = _replace_reads(Block((j0,), body.stmts, body.results), bkt, j0, v1)
        return Block((j0,), tuple(pre) + body.stmts, body.results)


def _int_add_block() -> Block:
    a = fresh(T.INT, "a")
    b = fresh(T.INT, "b")
    s = fresh(T.INT, "s")
    return Block((a, b), (Def((s,), Prim("add", (a, b))),), (s,))
