"""Shared machinery for the nested pattern transformations (Fig. 3).

Each rule is a ``Rule`` subclass that tries to rewrite one statement of a
scope. The driver applies a single rule at a time — the paper keeps the
search linear and order-independent this way (§4.2: "we only try to apply
a single rule at a time rather than an exponential combination").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.ir import (Block, Def, Exp, Program, Sym, def_index,
                       free_sym_set, op_used_syms)
from ..core.multiloop import GenKind, Generator, MultiLoop
from ..obs.provenance import APPLIED, REJECTED, DecisionKind, emit


class Rule:
    """One rewrite rule over a statement in a scope."""

    name: str = "rule"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        """Attempt to rewrite ``block.stmts[pos]``.

        Returns the replacement statement list (which may include hoisted
        defs placed before the rewritten consumer), or ``None`` when the
        pattern does not match.
        """
        raise NotImplementedError

    def reject(self, d: Def, reason: str, **evidence) -> None:
        """Record "this rule matched the anchor pattern at ``d`` but a
        precondition failed" into the active decision ledger, and return
        ``None`` for convenience (``return self.reject(...)``).

        Rules call this only after recognizing their anchor — trivial
        "not even the right op" misses stay silent, so the ledger reports
        interesting near-misses rather than every statement."""
        emit(DecisionKind.TRANSFORM, repr(d.syms[0]), REJECTED,
             f"{self.name}: {reason}", rule=self.name, **evidence)
        return None


def locals_of(block: Block) -> Set[Sym]:
    """Params plus symbols defined anywhere at the top level of ``block``."""
    out = set(block.params)
    for d in block.stmts:
        out.update(d.syms)
    return out


def block_is_free_of(b: Block, forbidden: Set[Sym]) -> bool:
    """True if ``b`` references none of ``forbidden`` (they may be shadowed
    by b's own binders, which ``free_sym_set`` accounts for)."""
    return not (free_sym_set(b) & forbidden)


def exp_is_free_of(e: Exp, block: Block, forbidden: Set[Sym]) -> bool:
    """Whether ``e``, with definitions drawn from ``block``, transitively
    avoids all of ``forbidden``."""
    idx = def_index(block)
    seen: Set[Sym] = set()

    def visit(x: Exp) -> bool:
        if not isinstance(x, Sym):
            return True
        if x in forbidden:
            return False
        if x in seen:
            return True
        seen.add(x)
        d = idx.get(x)
        if d is None:
            return True
        return all(visit(s) for s in op_used_syms(d.op))

    return visit(e)


def slice_deps(block: Block, targets: Sequence[Exp]) -> List[Def]:
    """Minimal ordered subset of ``block.stmts`` needed to compute
    ``targets`` (dependencies resolved within the block only)."""
    idx = def_index(block)
    needed: Set[int] = set()
    work = [t for t in targets if isinstance(t, Sym)]
    while work:
        s = work.pop()
        d = idx.get(s)
        if d is None or id(d) in needed:
            continue
        needed.add(id(d))
        work.extend(x for x in op_used_syms(d.op) if isinstance(x, Sym))
    return [d for d in block.stmts if id(d) in needed]


def single_gen_loop(d: Def, kind: GenKind) -> Optional[Generator]:
    if isinstance(d.op, MultiLoop) and len(d.op.gens) == 1:
        g = d.op.gens[0]
        if g.kind is kind:
            return g
    return None


def find_loops(block: Block, kind: GenKind) -> List[Tuple[int, Def, Generator]]:
    out = []
    for p, d in enumerate(block.stmts):
        g = single_gen_loop(d, kind)
        if g is not None:
            out.append((p, d, g))
    return out


def replace_stmt(block: Block, pos: int, replacement: Sequence[Def]) -> Block:
    stmts = block.stmts[:pos] + tuple(replacement) + block.stmts[pos + 1:]
    return Block(block.params, stmts, block.results)


def apply_rule_once(block: Block, rule: Rule) -> Optional[Block]:
    """Apply ``rule`` at the first matching statement of ``block`` (this
    scope only). Returns the new block or ``None``."""
    for pos in range(len(block.stmts)):
        replacement = rule.apply_to(block, pos)
        if replacement is not None:
            # emitted here, not inside apply_to: the partitioning driver
            # also calls apply_to speculatively and may discard the result
            emit(DecisionKind.TRANSFORM, repr(block.stmts[pos].syms[0]),
                 APPLIED,
                 f"{rule.name}: nested-pattern rewrite fired (Fig. 3)",
                 rule=rule.name, new_stmts=len(replacement))
            return replace_stmt(block, pos, replacement)
    return None


def apply_rules_everywhere(prog: Program, rules: Sequence[Rule],
                           max_iters: int = 10,
                           log: Optional[List[str]] = None) -> Program:
    """Exhaustively apply rules through all scopes, one rule at a time.
    Applied rule names are appended to ``log`` when given."""

    def rewrite_block(block: Block) -> Block:
        changed = True
        iters = 0
        while changed and iters < max_iters:
            changed = False
            iters += 1
            for rule in rules:
                nb = apply_rule_once(block, rule)
                if nb is not None:
                    block = nb
                    changed = True
                    if log is not None:
                        log.append(rule.name)
        # recurse into nested blocks
        new_stmts = []
        for d in block.stmts:
            nested = [rewrite_block(b) for b in d.op.blocks()]
            new_stmts.append(Def(d.syms, d.op.with_children(
                list(d.op.inputs()), nested)))
        return Block(block.params, tuple(new_stmts), block.results)

    return Program(prog.inputs, rewrite_block(prog.body))
