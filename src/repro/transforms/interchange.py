"""Loop interchange rules (Fig. 3): COLUMN-TO-ROW and ROW-TO-COLUMN REDUCE.

::

    (C2R)  Collect_s1(_)(i => Reduce_s2(c)(f)(r))
             -->  R = Reduce_s2(c)(fv)(rv)
                  Collect_s1(_)(i => R(i))

    (R2C)  Reduce_s1(c)(fv)(rv: (a,b) => Collect_s2(_)(i => r(a(i),b(i))))
             -->  Collect_s2(_)(i => Reduce_s1(c)(f)(r))
           iff size(a) == size(b) == s2

``fv``/``rv`` are vectorized versions of ``f``/``r`` (each scalar function
wrapped in a Collect). C2R turns a "vector of sums" into a "sum of
vectors" — the distribution-friendly direction for logistic regression —
while R2C is its exact inverse, used on GPUs where reducing non-scalar
types is inefficient (§3.2). A bucket variant of R2C handles k-means'
vector-valued ``BucketReduce``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..core import types as T
from ..core.ir import (Block, Const, Def, Exp, Sym, def_index, fresh,
                       inline_block, op_used_syms, refresh_block, subst_block)
from ..core.multiloop import (GenKind, Generator, MultiLoop, bucket_reduce,
                              collect, loop_def, reduce_gen, single_gen)
from ..core.ops import (ArrayApply, ArrayLength, BucketKeys,
                        MakeKeyed, StructField, StructNew)
from .common import Rule, block_is_free_of, locals_of


def _vectorized_reducer(elem_t: T.Type, r: Block) -> Block:
    """``rv(a, b) = zipWith(r)(a, b)`` built explicitly in IR."""
    coll_t = T.Coll(elem_t)
    a = fresh(coll_t, "a")
    b = fresh(coll_t, "b")
    n = fresh(T.INT, "n")
    k = fresh(T.INT, "k")
    av = fresh(elem_t, "av")
    bv = fresh(elem_t, "bv")
    inner_stmts: List[Def] = [Def((av,), ArrayApply(a, k)),
                              Def((bv,), ArrayApply(b, k))]
    res = inline_block(r, [av, bv], inner_stmts)
    vblock = Block((k,), tuple(inner_stmts), (res,))
    ld = loop_def(n, [collect(vblock)], ["vsum"])
    return Block((a, b), (Def((n,), ArrayLength(a)), ld), (ld.syms[0],))


def _match_vectorized_reducer(rv: Block) -> Optional[Block]:
    """Recognize ``(a,b) => Collect_{len(a)}(k => r(a(k), b(k)))`` and
    recover the scalar ``r``; None if the shape doesn't match."""
    if len(rv.params) != 2:
        return None
    a, b = rv.params
    idx = def_index(rv)
    res = rv.result
    if not isinstance(res, Sym):
        return None
    ld = idx.get(res)
    if ld is None:
        return None
    g = single_gen(ld)
    if g is None or g.kind is not GenKind.COLLECT or g.cond is not None or g.flatten:
        return None
    # loop size must be len(a) or len(b)
    size = ld.op.size
    if isinstance(size, Sym):
        sd = idx.get(size)
        if sd is None or not isinstance(sd.op, ArrayLength) or sd.op.arr not in (a, b):
            return None
    else:
        return None
    # every other stmt must be a length def feeding the loop
    for st in rv.stmts:
        if st is ld:
            continue
        if isinstance(st.op, ArrayLength) and st.op.arr in (a, b):
            continue
        return None
    # inside the value block, a and b may only be read at the loop index
    vb = g.value
    k = vb.params[0]
    pa = fresh(_elem_t(a.tpe), "ra")
    pb = fresh(_elem_t(b.tpe), "rb")
    new_stmts: List[Def] = []
    env = {}
    for st in vb.stmts:
        op = st.op
        if isinstance(op, ArrayApply) and op.arr == a and op.idx == k:
            env[st.sym] = pa
            continue
        if isinstance(op, ArrayApply) and op.arr == b and op.idx == k:
            env[st.sym] = pb
            continue
        new_stmts.append(st)
    scalar = subst_block(Block((pa, pb), tuple(new_stmts), vb.results), env)
    bad = {a, b, k}
    from ..core.ir import free_sym_set
    if free_sym_set(scalar) & bad:
        return None
    return refresh_block(scalar)


def _elem_t(t: T.Type) -> T.Type:
    return T.element_type(t)


class ColumnToRowReduce(Rule):
    """Lift a scalar reduction out of an outer Collect by vectorizing it."""

    name = "column-to-row-reduce"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        d = block.stmts[pos]
        g = single_gen(d)
        if g is None or g.kind is not GenKind.COLLECT or g.cond is not None:
            return None
        V = g.value
        if len(V.params) != 1:
            return None
        i = V.params[0]
        v_locals = locals_of(V)
        for rpos, rdef in enumerate(V.stmts):
            rgen = single_gen(rdef)
            if rgen is None or rgen.kind is not GenKind.REDUCE:
                continue
            if rgen.init is not None:
                continue
            f = rgen.value
            if isinstance(f.result_type, (T.Coll, T.KeyedColl)):
                continue  # already vector-valued
            # f must depend only on its own index, the outer index i, and
            # scope-level values
            if not block_is_free_of(f, v_locals - {i}):
                self.reject(d, "nested reduce's value function reads other "
                               "outer-loop locals (beyond the outer index); "
                               "it cannot be vectorized over the outer "
                               "domain")
                continue
            if rgen.cond is not None and not block_is_free_of(rgen.cond, v_locals):
                self.reject(d, "nested reduce's filter condition captures "
                               "outer-loop state; the lifted reduction "
                               "would filter differently per row")
                continue
            if not block_is_free_of(rgen.reducer, v_locals):
                self.reject(d, "nested reduce's combine function captures "
                               "outer-loop state; it cannot be hoisted")
                continue
            s2 = rdef.op.size
            if isinstance(s2, Sym) and s2 in v_locals:
                self.reject(d, "inner reduction's domain size is computed "
                               "inside the outer loop body; the lifted "
                               "reduction has no loop-invariant range")
                continue
            return self._rewrite(block, d, g, V, rpos, rdef, rgen, i)
        return None

    def _rewrite(self, block: Block, d: Def, g: Generator, V: Block,
                 rpos: int, rdef: Def, rgen: Generator, i: Sym) -> List[Def]:
        s1 = d.op.size
        s2 = rdef.op.size
        f = rgen.value
        elem_t = f.result_type

        # fv(j) = Collect_s1(i2 => f[j, i -> i2])
        j = fresh(T.INT, "j")
        i2 = fresh(T.INT, "i2")
        inner_body = refresh_block(
            Block(f.params[1:], f.stmts, f.results),
            {f.params[0]: j, i: i2})
        inner_value = Block((i2,), inner_body.stmts, inner_body.results)
        inner_loop = loop_def(s1, [collect(inner_value)], ["fv"])
        fv = Block((j,), (inner_loop,), (inner_loop.syms[0],))

        rv = _vectorized_reducer(elem_t, rgen.reducer)

        # identity for the empty inner domain: a vector of zeros over s1
        zi = fresh(T.INT, "zi")
        zeros_block = Block((zi,), (), (Const(T.zero_value(elem_t), elem_t),))
        zeros_def = loop_def(s1, [collect(zeros_block)], ["zeros"])

        new_cond = refresh_block(rgen.cond) if rgen.cond is not None else None
        r_def = loop_def(s2, [reduce_gen(fv, rv, cond=new_cond,
                                         init=zeros_def.syms[0])], ["vred"])
        r_sym = r_def.syms[0]

        # outer loop now just indexes the vectorized result
        t = fresh(elem_t, "gv")
        read = Def((t,), ArrayApply(r_sym, i))
        new_stmts = V.stmts[:rpos] + (read,) + V.stmts[rpos + 1:]
        new_V = subst_block(Block(V.params, new_stmts, V.results),
                            {rdef.syms[0]: t})
        new_loop = Def(d.syms, MultiLoop(
            d.op.size, (Generator(g.kind, new_V, cond=g.cond, key=g.key,
                                  reducer=g.reducer, init=g.init,
                                  flatten=g.flatten),)))
        return [zeros_def, r_def, new_loop]


class RowToColumnReduce(Rule):
    """Inverse of C2R: split a vector reduction into scalar reductions."""

    name = "row-to-column-reduce"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        d = block.stmts[pos]
        g = single_gen(d)
        if g is None or g.kind is not GenKind.REDUCE:
            return None
        match = _vector_template(g.value, d.op.size)
        if match is None:
            return None
        prelude, s2, template = match
        if isinstance(s2, Sym) and s2 in locals_of(g.value):
            return self.reject(
                d, "vector-valued reduce, but the vector width is computed "
                   "inside the value function; the column loop cannot be "
                   "hoisted")
        scalar_r = _match_vectorized_reducer(g.reducer)
        if scalar_r is None:
            return self.reject(
                d, "vector-valued reduce whose combine function is not a "
                   "recognizable zipWith of a scalar reducer; cannot split "
                   "into per-column scalar reductions")

        s1 = d.op.size
        # Collect_s2(j => Reduce_s1(c)(i => f(i, j))(r))
        j = fresh(T.INT, "j")
        ir = fresh(T.INT, "ir")
        stmts: List[Def] = []
        res = inline_block(template, [ir, j], stmts)
        inner_value = Block((ir,), tuple(stmts), (res,))
        new_cond = refresh_block(g.cond) if g.cond is not None else None
        outer_stmts: List[Def] = []
        init_exp = None
        if g.init is not None:
            # element j of the vector identity is the scalar identity
            iv = fresh(template.result_type, "iv")
            outer_stmts.append(Def((iv,), ArrayApply(g.init, j)))
            init_exp = iv
        inner = loop_def(s1, [reduce_gen(inner_value, scalar_r, cond=new_cond,
                                         init=init_exp)], ["sred"])
        outer_stmts.append(inner)
        outer_value = Block((j,), tuple(outer_stmts), (inner.syms[0],))
        new_loop = Def(d.syms, MultiLoop(s2, (collect(outer_value),)))
        return prelude + [new_loop]


def _match_vector_value(fv: Block) -> Optional[Tuple[Exp, Block, List[Def], Block]]:
    """Recognize ``fv(i) = Collect_s2(j => f(i, j))``; return
    (s2, inner value block, the ``other`` prefix statements, fv)."""
    if len(fv.params) != 1:
        return None
    res = fv.result
    if not isinstance(res, Sym):
        return None
    idx = def_index(fv)
    ld = idx.get(res)
    if ld is None:
        return None
    g = single_gen(ld)
    if g is None or g.kind is not GenKind.COLLECT or g.cond is not None or g.flatten:
        return None
    # the inner collect's result must not be used elsewhere in fv
    uses = 0
    for st in fv.stmts:
        for s in op_used_syms(st.op):
            if s == res:
                uses += 1
    if uses:
        return None
    other = [st for st in fv.stmts if st is not ld]
    return ld.op.size, g.value, other, fv


def _fission_prefix(other: List[Def], fv: Block, vb: Block,
                    s1: Exp) -> Tuple[List[Def], Block]:
    """§3.2's loop fission: the ``other`` statements of ``fv`` (computed
    once per outer element, e.g. LogReg's per-sample error ``y - h(x)``)
    would be re-evaluated per inner element after the interchange.
    Materialize them once as a top-level Collect of (tuples of) the values
    the inner body consumes; return (prelude defs, template(i, j))."""
    i0 = fv.params[0]
    if not other:
        template = Block((i0, vb.params[0]), vb.stmts, vb.results)
        return [], refresh_block(template)
    defined = {s for st in other for s in st.syms}
    used = [s for s in sorted(defined, key=lambda x: x.id)
            if any(s in op_used_syms(st.op) for st in vb.stmts)
            or s in vb.results
            or (isinstance(vb.results[0], Sym) and s == vb.results[0])]
    if not used:
        template = Block((i0, vb.params[0]), vb.stmts, vb.results)
        return [], refresh_block(template)

    # E = Collect_s1(i => (u1, u2, ...))
    if len(used) == 1:
        e_value = Block((i0,), tuple(other), (used[0],))
        e_def = loop_def(s1, [collect(refresh_block(e_value), no_fuse=True)],
                         ["fission"])
        e_sym = e_def.syms[0]
        i = fresh(T.INT, "ti")
        j = fresh(T.INT, "tj")
        u = fresh(used[0].tpe, used[0].name)
        pre = [Def((u,), ArrayApply(e_sym, i))]
        inner = refresh_block(Block((), vb.stmts, vb.results),
                              {used[0]: u, i0: i, vb.params[0]: j})
        template = Block((i, j), tuple(pre) + inner.stmts, inner.results)
        return [e_def], template

    st_t = T.tuple_type(*(u.tpe for u in used))
    pk = fresh(st_t, "pack")
    e_value = Block((i0,), tuple(other) + (Def((pk,), StructNew(st_t, tuple(used))),),
                    (pk,))
    e_def = loop_def(s1, [collect(refresh_block(e_value), no_fuse=True)],
                     ["fission"])
    e_sym = e_def.syms[0]
    i = fresh(T.INT, "ti")
    j = fresh(T.INT, "tj")
    elem = fresh(st_t, "pk")
    pre: List[Def] = [Def((elem,), ArrayApply(e_sym, i))]
    env = {i0: i, vb.params[0]: j}
    for pos, u in enumerate(used):
        nu = fresh(u.tpe, u.name)
        pre.append(Def((nu,), StructField(elem, f"_{pos}")))
        env[u] = nu
    inner = refresh_block(Block((), vb.stmts, vb.results), env)
    template = Block((i, j), tuple(pre) + inner.stmts, inner.results)
    return [e_def], template


def _generic_vector_template(fv: Block) -> Tuple[List[Def], Exp, Block]:
    """Fallback when ``fv``'s vector is not an explicit Collect (e.g. the
    k-means value ``j => matrix(j)``): elementwise template
    ``(i, j) => fv(i)(j)`` plus prelude defs deriving the vector width from
    element 0 (all rows are assumed equal-length, as the paper's
    ``iff size(a1) == size(b1) == s2`` side condition states)."""
    prelude: List[Def] = []
    v0 = inline_block(fv, [Const(0)], prelude)
    s2 = fresh(T.INT, "s2")
    prelude.append(Def((s2,), ArrayLength(v0)))

    i = fresh(T.INT, "ti")
    j = fresh(T.INT, "tj")
    body: List[Def] = []
    vec = inline_block(fv, [i], body)
    v = fresh(T.element_type(fv.result_type), "v")
    body.append(Def((v,), ArrayApply(vec, j)))
    template = Block((i, j), tuple(body), (v,))
    return prelude, s2, template


def _vector_template(fv: Block, s1: Exp) -> Optional[Tuple[List[Def], Exp, Block]]:
    """(prelude, s2, template) for either the explicit-Collect shape (with
    loop fission of the per-outer-element prefix) or the generic
    element-indexed fallback. None if fv isn't vector-valued."""
    if not isinstance(fv.result_type, T.Coll):
        return None
    explicit = _match_vector_value(fv)
    if explicit is not None:
        s2, vb, other, fv_block = explicit
        prelude, template = _fission_prefix(other, fv_block, vb, s1)
        return prelude, s2, template
    return _generic_vector_template(fv)


class BucketRowToColumnReduce(Rule):
    """R2C for vector-valued ``BucketReduce`` (k-means on GPUs, §3.2).

    ::

        H = BucketReduce_s1(c)(k)(fv)(rv)          # Coll values
          -->  SS = Collect_s2(j => BucketReduce_s1(c)(k)(f_j)(r))
               H  = keyed(keys(SS(0)), transpose(SS))
    """

    name = "bucket-row-to-column-reduce"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        d = block.stmts[pos]
        g = single_gen(d)
        if g is None or g.kind is not GenKind.BUCKET_REDUCE:
            return None
        match = _vector_template(g.value, d.op.size)
        if match is None:
            return None
        prelude, s2, template = match
        if isinstance(s2, Sym) and s2 in locals_of(g.value):
            return self.reject(
                d, "vector-valued BucketReduce, but the vector width is "
                   "computed inside the value function; the column loop "
                   "cannot be hoisted")
        scalar_r = _match_vectorized_reducer(g.reducer)
        if scalar_r is None:
            return self.reject(
                d, "vector-valued BucketReduce whose combine function is "
                   "not a recognizable zipWith of a scalar reducer")
        if g.init is not None:
            return self.reject(
                d, "vector-valued BucketReduce carries an explicit init; "
                   "the transposed per-column form assumes none")

        s1 = d.op.size
        j = fresh(T.INT, "j")
        ir = fresh(T.INT, "ir")
        stmts: List[Def] = []
        res = inline_block(template, [ir, j], stmts)
        inner_value = Block((ir,), tuple(stmts), (res,))
        inner = loop_def(
            s1, [bucket_reduce(key=refresh_block(g.key), value=inner_value,
                               reducer=scalar_r,
                               cond=refresh_block(g.cond) if g.cond else None)],
            ["sbred"])
        outer_value = Block((j,), (inner,), (inner.syms[0],))
        ss = loop_def(s2, [collect(outer_value)], ["ss"])
        ss_sym = ss.syms[0]

        # reassemble the keyed vector result: keys from column 0, values
        # transposed back to one vector per key
        first = fresh(T.element_type(ss_sym.tpe), "ss0")
        first_def = Def((first,), ArrayApply(ss_sym, Const(0)))
        ks = fresh(T.Coll(g.key_type), "ks")
        ks_def = Def((ks,), BucketKeys(first))
        nk = fresh(T.INT, "nk")
        nk_def = Def((nk,), ArrayLength(ks))

        p = fresh(T.INT, "p")
        j2 = fresh(T.INT, "j2")
        col = fresh(T.element_type(ss_sym.tpe), "col")
        v = fresh(template.result_type, "v")
        row_value = Block((j2,), (Def((col,), ArrayApply(ss_sym, j2)),
                                  Def((v,), ArrayApply(col, p))), (v,))
        row_loop = loop_def(s2, [collect(row_value)], ["row"])
        vals_value = Block((p,), (row_loop,), (row_loop.syms[0],))
        vals = loop_def(nk, [collect(vals_value)], ["vals"])

        new_h = Def(d.syms, MakeKeyed(ks, vals.syms[0]))
        return prelude + [ss, first_def, ks_def, nk_def, vals, new_h]
