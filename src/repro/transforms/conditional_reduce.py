"""The CONDITIONAL REDUCE rule (Fig. 3).

::

    Collect_s1(_)(i => Reduce_s2(j => g(j) == h(i))(f)(r))
      -->  H = BucketReduce_s2(_)(g)(f)(r)
           Collect_s1(_)(i => H(h(i)))

Matches a reduction, nested in an outer pattern, whose *predicate* compares
a function of the inner index against a function of the outer index. The
rewrite pre-computes every partial reduction in one pass over the inner
domain (bucketed by ``g``), breaking the dependency on the outer loop —
this is precisely what makes shared-memory k-means distributable (§3.2).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core import types as T
from ..core.ir import (Block, Const, Def, Exp, Sym, def_index, fresh,
                       refresh_block, subst_block)
from ..core.multiloop import (GenKind, Generator, MultiLoop, bucket_reduce,
                              loop_def, single_gen)
from ..core.ops import BucketLookup, Prim
from .common import (Rule, block_is_free_of, exp_is_free_of, locals_of,
                     slice_deps)


class ConditionalReduce(Rule):
    name = "conditional-reduce"

    def apply_to(self, block: Block, pos: int) -> Optional[List[Def]]:
        d = block.stmts[pos]
        if not isinstance(d.op, MultiLoop):
            return None
        scope_locals = locals_of(block)
        for gi, g in enumerate(d.op.gens):
            out = self._try_generator(block, d, gi, g, scope_locals)
            if out is not None:
                return out
        return None

    def _try_generator(self, block: Block, d: Def, gi: int, g: Generator,
                       scope_locals: Set[Sym]) -> Optional[List[Def]]:
        V = g.value
        v_locals = locals_of(V)
        # rewrite every matching reduce in one application (k-means has two:
        # the per-cluster sums and counts, Fig. 5's ss and cs)
        matches = []
        for rdef in V.stmts:
            rgen = single_gen(rdef)
            if rgen is None or rgen.kind is not GenKind.REDUCE:
                continue
            match = self._match_reduce(V, rdef, rgen, v_locals, d)
            if match is None:
                continue
            key_block, h_stmts, h_exp = match
            # everything hoisted must be computable at this scope
            if not self._hoistable(rdef.op.size, rgen, key_block, v_locals):
                self.reject(d, "nested reduce has the g(j)==h(i) predicate "
                               "but its size, value, or combine function "
                               "captures outer-loop state (or a non-constant "
                               "init); the BucketReduce cannot be hoisted")
                continue
            matches.append((rdef, rgen, key_block, h_stmts, h_exp))
        if not matches:
            return None
        return self._rewrite(block, d, gi, g, V, matches)

    def _match_reduce(self, V: Block, rdef: Def, rgen: Generator,
                      v_locals: Set[Sym], outer: Def):
        """Recognize ``cond = (g(j) == h(i))`` and split its two sides."""
        cb = rgen.cond
        if cb is None or len(cb.params) != 1:
            return None
        res = cb.result
        if not isinstance(res, Sym):
            return None
        idx = def_index(cb)
        eq = idx.get(res)
        if eq is None or not isinstance(eq.op, Prim) or eq.op.name != "eq":
            return None
        j = cb.params[0]
        a, b = eq.op.args
        a_free_of_j = exp_is_free_of(a, cb, {j})
        b_free_of_j = exp_is_free_of(b, cb, {j})
        if a_free_of_j == b_free_of_j:
            # an equality predicate, but not of the g(j)==h(i) shape
            return self.reject(
                outer, "nested reduce filters on an equality whose sides "
                       "do not split into inner-only vs outer-only; need "
                       "exactly one side depending on the inner index")
        g_exp, h_exp = (b, a) if a_free_of_j else (a, b)
        key_stmts = slice_deps(cb, [g_exp])
        key_block = Block((j,), tuple(key_stmts), (g_exp,))
        # the key function must not capture outer-loop state
        if not block_is_free_of(key_block, v_locals):
            return self.reject(
                outer, "bucket key g(j) captures outer-loop state; the "
                       "pre-computed BucketReduce would differ per outer "
                       "iteration")
        h_stmts = slice_deps(cb, [h_exp])
        # the h side must not touch the inner index
        if any(s == j for st in h_stmts for s in _used(st)):
            return self.reject(
                outer, "outer-side expression h(i) also reads the inner "
                       "index; the lookup key is not outer-computable")
        return key_block, h_stmts, h_exp

    def _hoistable(self, size: Exp, rgen: Generator, key_block: Block,
                   v_locals: Set[Sym]) -> bool:
        if isinstance(size, Sym) and size in v_locals:
            return False
        if not block_is_free_of(rgen.value, v_locals):
            return False
        if rgen.reducer is not None and not block_is_free_of(rgen.reducer, v_locals):
            return False
        if rgen.init is not None and not isinstance(rgen.init, Const):
            return False
        return True

    def _rewrite(self, block: Block, d: Def, gi: int, g: Generator, V: Block,
                 matches) -> List[Def]:
        from ..core.ir import subst_op
        hoisted: List[Def] = []
        replacements = {}  # id(rdef) -> (rdef, rgen, h_sym, h_stmts, h_exp)
        for rdef, rgen, key_block, h_stmts, h_exp in matches:
            # H = BucketReduce_s2(_)(g)(f)(r), hoisted before the outer loop
            h_gen = bucket_reduce(key=refresh_block(key_block),
                                  value=refresh_block(rgen.value),
                                  reducer=refresh_block(rgen.reducer),
                                  cond=None, init=rgen.init)
            h_def = loop_def(rdef.op.size, [h_gen], ["bktred"])
            hoisted.append(h_def)
            replacements[id(rdef)] = (rdef, rgen, h_def.syms[0], h_stmts, h_exp)

        # inside V: materialize each h(i) and look it up in its H
        new_stmts: List[Def] = []
        subst = {}
        for st in V.stmts:
            hit = replacements.get(id(st))
            if hit is None:
                new_stmts.append(st)
                continue
            rdef, rgen, h_sym, h_stmts, h_exp = hit
            env = {}
            for hs in h_stmts:
                new_syms = tuple(fresh(s.tpe, s.name) for s in hs.syms)
                new_stmts.append(Def(new_syms, subst_op(hs.op, env)))
                env.update(dict(zip(hs.syms, new_syms)))
            h_mapped = env.get(h_exp, h_exp) if isinstance(h_exp, Sym) else h_exp
            lk = fresh(rgen.value.result_type, "partial")
            new_stmts.append(Def((lk,), BucketLookup(h_sym, h_mapped)))
            subst[rdef.syms[0]] = lk

        new_V = subst_block(Block(V.params, tuple(new_stmts), V.results), subst)
        new_gens = list(d.op.gens)
        new_gens[gi] = Generator(g.kind, new_V, cond=g.cond, key=g.key,
                                 reducer=g.reducer, init=g.init,
                                 flatten=g.flatten)
        new_loop = Def(d.syms, MultiLoop(d.op.size, tuple(new_gens)))
        return hoisted + [new_loop]


def _used(d: Def):
    from ..core.ir import op_used_syms
    return op_used_syms(d.op)
