"""Nested parallel pattern transformations (Fig. 3).

The four rules do not overlap and the driver applies a single rule at a
time, keeping the search space linear and order-independent (§4.2).
"""

from .common import Rule, apply_rule_once, apply_rules_everywhere
from .conditional_reduce import ConditionalReduce
from .groupby_reduce import GroupByReduce
from .interchange import (BucketRowToColumnReduce, ColumnToRowReduce,
                          RowToColumnReduce)

#: the rules tried when stencil analysis reports an Unknown access (§4.2) —
#: these restructure for *distribution* (the interchange direction that
#: parallelizes over the large dataset).
DISTRIBUTION_RULES = (GroupByReduce(), ConditionalReduce(), ColumnToRowReduce())

#: the rules applied when lowering to GPUs (§3.2: "for the GPU we always
#: perform a Row-to-Column Reduce when possible").
GPU_RULES = (RowToColumnReduce(), BucketRowToColumnReduce())

__all__ = [
    "Rule", "apply_rule_once", "apply_rules_everywhere",
    "ConditionalReduce", "GroupByReduce", "ColumnToRowReduce",
    "RowToColumnReduce", "BucketRowToColumnReduce",
    "DISTRIBUTION_RULES", "GPU_RULES",
]
