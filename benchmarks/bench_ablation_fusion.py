"""Ablation: the impact of multiloop fusion itself.

§3.1: "Making parallel patterns compose efficiently is often the single
most important optimization required." This ablation compares sequential
simulated time of each application compiled (a) without any optimization
(every pattern materializes its output), (b) with fusion/CSE/DCE but no
nested pattern transformations, and (c) with the full pipeline — plus the
count of traversals (top-level loops) at each stage.
"""

from conftest import emit, emit_json, once, record_sim

from repro.analysis.partitioning import partition_and_transform
from repro.analysis.stencil import analyze_program
from repro.bench import get_bundle
from repro.core.multiloop import MultiLoop
from repro.pipeline import CompiledProgram
from repro.report.tables import render_table
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, Simulator, capture_run

APPS = ("q1", "gene", "kmeans", "logreg", "gda")


def raw_compiled(bundle) -> CompiledProgram:
    """The staged program with *no* optimization at all."""
    prog = bundle._factory()
    prog, report = partition_and_transform(prog, rules=())
    return CompiledProgram(prog, report, analyze_program(prog), "cpu")


def loops_of(compiled) -> int:
    return sum(1 for d in compiled.program.body.stmts
               if isinstance(d.op, MultiLoop))


def seconds(bundle, compiled, stage) -> float:
    cap = capture_run(compiled, bundle.inputs)
    sim = Simulator(compiled, NUMA_BOX, DMLL_CPP,
                    ExecOptions(sequential=True, scale=bundle.scale,
                                data_scale=bundle.data_scale)).price(cap)
    return record_sim("ablation_fusion", f"{bundle.name}/{stage}", sim)


def compute_ablation():
    rows = []
    gains = {}
    for name in APPS:
        b = get_bundle(name)
        raw = raw_compiled(b)
        fused = b.compiled("plain")    # fusion, no Fig. 3 transforms
        full = b.compiled("opt")
        t_raw = seconds(b, raw, "raw")
        t_fused = seconds(b, fused, "fused")
        t_full = seconds(b, full, "full")
        gains[name] = (t_raw / t_fused, t_raw / t_full)
        rows.append([name,
                     f"{loops_of(raw)}", f"{loops_of(fused)}",
                     f"{loops_of(full)}",
                     f"{t_raw:.3f}s", f"{t_fused:.3f}s", f"{t_full:.3f}s",
                     f"{t_raw / t_fused:.2f}x", f"{t_raw / t_full:.2f}x"])
    return rows, gains


def test_ablation_fusion(benchmark):
    rows, gains = once(benchmark, compute_ablation)
    text = render_table(
        ["App", "loops raw", "loops fused", "loops full",
         "t raw", "t fused", "t full", "fusion gain", "full gain"],
        rows, title="Ablation: pipeline/horizontal fusion and the full "
                    "pipeline vs the unoptimized program (sequential)")
    emit("ablation_fusion", text)
    emit_json("ablation_fusion")

    for name, (fusion_gain, full_gain) in gains.items():
        # fusion alone always helps, and never exceeds the full pipeline
        assert fusion_gain > 1.0, (name, fusion_gain)
        assert full_gain >= fusion_gain * 0.9, (name, gains[name])
