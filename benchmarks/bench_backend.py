"""Wall-clock benchmark: reference interpreter vs vectorized NumPy
backend on the eight bundled applications.

Unlike the figure benchmarks, which report *simulated* seconds on the
machine models, this one measures real host wall-clock of the functional
execution — the thing the vectorized backend exists to improve. The
simulated per-loop pricing is recorded alongside (it is backend-invariant
by construction, which the differential assertions below re-check).

Writes ``benchmarks/results/backend_wallclock.{txt,json}`` and the
top-level ``BENCH_backend.json`` consumed by CI.
"""

from statistics import median

from conftest import (emit, emit_json, measure_backends, once, profile_loops,
                      record_history, record_sim, write_bench_backend)

from repro.bench import get_bundle
from repro.report.tables import render_table

APPS = ["kmeans", "logreg", "gda", "q1", "gene", "pagerank", "triangle",
        "gibbs"]

#: lenient CI floor — measured median is ~10-12x, but wall-clock on shared
#: runners is noisy and the hard ≥10x gate belongs to the committed
#: BENCH_backend.json, not every re-run
MIN_MEDIAN_SPEEDUP = 3.0


def run_measurements() -> dict:
    return {app: measure_backends(app, repeats=3) for app in APPS}


def test_backend_wallclock(benchmark):
    summary = once(benchmark, run_measurements)

    rows = []
    for app in APPS:
        s = summary[app]
        bundle = get_bundle(app)
        # per-loop host wall-clock attribution under both backends: the
        # aggregate speedup says *whether* vectorization paid off, the
        # attribution says *which loop* is responsible when it didn't
        # (cf. gibbs, DESIGN.md §8e)
        s["per_loop"] = {
            backend: profile_loops(bundle.compiled("opt"), bundle.inputs,
                                   backend)
            for backend in ("reference", "numpy")
        }
        sim = bundle.simulate("opt", backend="numpy")
        record_sim("backend_wallclock", f"{app}/numpy", sim, wall=s)
        record_history(app, s, sim=sim)
        rows.append([app, f"{s['reference_s'] * 1e3:9.2f}",
                     f"{s['numpy_s'] * 1e3:9.2f}",
                     f"{s['speedup']:6.1f}x",
                     "none" if not s["fallbacks"] else
                     "; ".join(f["reason"] for f in s["fallbacks"])])
    med = median(summary[a]["speedup"] for a in APPS)
    rows.append(["MEDIAN", "", "", f"{med:6.1f}x", ""])
    emit("backend_wallclock", render_table(
        ["app", "reference ms", "numpy ms", "speedup", "fallbacks"], rows,
        title="host wall-clock: reference interpreter vs numpy backend "
              "(best of 3)"))
    emit_json("backend_wallclock")
    write_bench_backend(summary)

    for app in APPS:
        s = summary[app]
        assert s["identical_results"], f"{app}: results diverged"
        assert s["identical_cycles"], f"{app}: cycle accounting diverged"
        assert s["fallbacks"] == [], (
            f"{app} fell back to the interpreter: {s['fallbacks']}")
    assert med >= MIN_MEDIAN_SPEEDUP, (
        f"median speedup {med:.1f}x below floor {MIN_MEDIAN_SPEEDUP}x")
