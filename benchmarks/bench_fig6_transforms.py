"""Figure 6: speedups from the nested pattern transformations.

Left chart — GPU: LogReg and k-means, speedup over the non-transformed
GPU implementation from (a) transposing the input matrix, (b) the
Row-to-Column Reduce (scalar reductions), and (c) both.

Right chart — CPU: Query 1, LogReg, k-means; speedup of the transformed
program over the non-transformed one on 1 socket and on 4 sockets.

Paper shape: on the GPU both apps need the transforms, k-means gets most
of its win from the transpose, LogReg needs both combined; on the CPU
Query 1 and LogReg win even on one socket, k-means' win is small on one
socket and grows to ~3x on four (limited parallelism + cross-socket
shuffling in the untransformed version).
"""

from conftest import emit, emit_json, once, record_sim

from repro.bench import get_bundle
from repro.report.tables import render_table
from repro.runtime import (DMLL_CPP, GPU_CLUSTER, NUMA_BOX, ExecOptions,
                           Simulator, single_node)


def gpu_seconds(bundle, variant, transposed):
    cap = bundle.capture(variant)
    sim = Simulator(bundle.compiled(variant), single_node(GPU_CLUSTER),
                    DMLL_CPP,
                    ExecOptions(use_gpu=True, gpu_transposed=transposed,
                                scale=bundle.scale,
                                data_scale=bundle.data_scale)).price(cap)
    return record_sim("fig6_gpu_transforms",
                      f"{bundle.name}/{variant}/transposed={int(transposed)}",
                      sim)


def cpu_seconds(bundle, variant, cores):
    cap = bundle.capture(variant)
    sim = Simulator(bundle.compiled(variant), NUMA_BOX, DMLL_CPP,
                    ExecOptions(cores=cores, scale=bundle.scale,
                                data_scale=bundle.data_scale)).price(cap)
    return record_sim("fig6_cpu_transforms",
                      f"{bundle.name}/{variant}/cores={cores}", sim)


def compute_gpu():
    out = {}
    for name in ("logreg", "kmeans"):
        b = get_bundle(name)
        base = gpu_seconds(b, "opt", transposed=False)  # vector reduces
        out[name] = {
            "transpose": base / gpu_seconds(b, "opt", True),
            "scalar reduce": base / gpu_seconds(b, "gpu", False),
            "both": base / gpu_seconds(b, "gpu", True),
        }
    return out


def compute_cpu():
    out = {}
    for name in ("q1", "logreg", "kmeans"):
        b = get_bundle(name)
        out[name] = {
            "1 socket": cpu_seconds(b, "plain", 12) / cpu_seconds(b, "opt", 12),
            "4 sockets": cpu_seconds(b, "plain", 48) / cpu_seconds(b, "opt", 48),
        }
    return out


def test_fig6_gpu_transforms(benchmark):
    gpu = once(benchmark, compute_gpu)
    rows = [[app] + [f"{gpu[app][k]:.2f}x"
                     for k in ("transpose", "scalar reduce", "both")]
            for app in ("logreg", "kmeans")]
    text = render_table(["App (GPU)", "transpose", "scalar reduce", "both"],
                        rows, title="Figure 6 (left): GPU transformation "
                                    "speedups over non-transformed")
    emit("fig6_gpu_transforms", text)
    emit_json("fig6_gpu_transforms")

    # both transformations combined always win
    for app in ("logreg", "kmeans"):
        assert gpu[app]["both"] >= max(gpu[app]["transpose"],
                                       gpu[app]["scalar reduce"]) - 1e-9
        assert gpu[app]["both"] > 1.2
    # k-means: the transpose provides most of the improvement (§6)
    assert gpu["kmeans"]["transpose"] > 1.3
    # logreg: needs the combination for maximum performance (§6)
    assert gpu["logreg"]["both"] > gpu["logreg"]["transpose"]


def test_fig6_cpu_transforms(benchmark):
    cpu = once(benchmark, compute_cpu)
    rows = [[app, f"{cpu[app]['1 socket']:.2f}x",
             f"{cpu[app]['4 sockets']:.2f}x"]
            for app in ("q1", "logreg", "kmeans")]
    text = render_table(["App (CPU)", "1 socket", "4 sockets"], rows,
                        title="Figure 6 (right): CPU transformation "
                              "speedups over non-transformed")
    emit("fig6_cpu_transforms", text)
    emit_json("fig6_cpu_transforms")

    # Query 1 and LogReg benefit even within a single socket (§6: "always
    # beneficial for CPUs")
    assert cpu["q1"]["1 socket"] > 1.5
    assert cpu["logreg"]["1 socket"] > 1.5
    # k-means: the transform is required for scaling (§6 reports ~3% on
    # one socket growing to ~3x on four; in this model the untransformed
    # version is already bandwidth-penalized on one socket, so the ratio
    # starts higher and stays >2x — see EXPERIMENTS.md)
    assert cpu["kmeans"]["1 socket"] > 1.3
    assert cpu["kmeans"]["4 sockets"] > 1.5
    assert cpu["kmeans"]["4 sockets"] > 0.9 * cpu["kmeans"]["1 socket"]
