"""Figure 8 (right chart), §6.3: Gibbs sampling on factor graphs — DMLL vs
DimmWitted, reported as sampling-throughput speedup over *sequential
DimmWitted* at 12 CPUs, 48 CPUs, and on the GPU.

Paper shape: both systems scale nearly linearly across sockets with the
replica-per-socket strategy (nested parallelism); DMLL is over 2x faster
sequentially and ~3x with multi-core thanks to unwrapped arrays of
primitives vs DimmWitted's pointer-linked factor graph; the GPU version
is limited by random memory access into the factor graph.
"""

from conftest import emit, emit_json, once, record_sim

from repro.baselines import DimmWittedEngine
from repro.bench import get_bundle
from repro.report.tables import render_table
from repro.runtime import (DMLL_CPP, NUMA_BOX, GPU_CLUSTER, ExecOptions,
                           Simulator, single_node)

SWEEPS = 3


def dmll_sweep_seconds(bundle, cores=None, use_gpu=False):
    cap = bundle.capture("opt")
    cluster = single_node(GPU_CLUSTER) if use_gpu else NUMA_BOX
    sim = Simulator(bundle.compiled("opt"), cluster, DMLL_CPP,
                    ExecOptions(cores=cores, sequential=(cores == 1),
                                use_gpu=use_gpu, scale=bundle.scale,
                                data_scale=bundle.scale)).price(cap)
    label = "gibbs/gpu" if use_gpu else f"gibbs/cores={cores}"
    return record_sim("fig8e_gibbs", label, sim)


def compute_fig8e():
    b = get_bundle("gibbs")
    fg = b.factor_graph
    replicas = len(b.inputs["states"])
    samples_per_sweep = replicas * fg.n_vars

    def dw_throughput(cores):
        eng = DimmWittedEngine(fg, NUMA_BOX, cores=cores, scale=b.scale)
        eng.run(sweeps=SWEEPS, replicas=max(1, min(replicas, cores // 12 or 1)))
        return eng.stats.variable_samples / eng.stats.sim_seconds

    def dmll_throughput(cores=None, use_gpu=False):
        t = dmll_sweep_seconds(b, cores=cores, use_gpu=use_gpu)
        return samples_per_sweep / t

    base = dw_throughput(1)
    return {
        "DimmWitted 12 CPU": dw_throughput(12) / base,
        "DimmWitted 48 CPU": dw_throughput(48) / base,
        "DMLL sequential": dmll_throughput(cores=1) / base,
        "DMLL 12 CPU": dmll_throughput(cores=12) / base,
        "DMLL 48 CPU": dmll_throughput(cores=48) / base,
        "DMLL GPU": dmll_throughput(use_gpu=True) / base,
    }


def test_fig8e_gibbs_sampling(benchmark):
    sp = once(benchmark, compute_fig8e)
    rows = [[k, f"{v:.2f}x"] for k, v in sp.items()]
    emit("fig8e_gibbs", render_table(
        ["Configuration", "speedup over sequential DimmWitted"], rows,
        title="Figure 8e: Gibbs sampling vs DimmWitted"))
    emit_json("fig8e_gibbs")

    # DMLL over 2x faster sequentially (§6.3)
    assert sp["DMLL sequential"] > 1.8
    # ~3x with multi-core
    assert sp["DMLL 48 CPU"] > 2.0 * sp["DimmWitted 48 CPU"]
    # both scale near-linearly across sockets
    assert sp["DimmWitted 48 CPU"] > 2.5 * sp["DimmWitted 12 CPU"]
    assert sp["DMLL 48 CPU"] > 2.5 * sp["DMLL 12 CPU"]
    # the GPU is held back by random factor-graph accesses (§6.3): far
    # below the 48-CPU configuration
    assert sp["DMLL GPU"] < sp["DMLL 48 CPU"]
