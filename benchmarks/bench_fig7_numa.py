"""Figure 7: performance and scalability of DMLL, DMLL pin-only, Delite,
Spark, and PowerGraph on the 4-socket NUMA machine at 1/12/24/48 cores,
reported as speedup over sequential DMLL.

Paper shape: most benchmarks scale to two sockets and then stop for
Delite while DMLL keeps scaling; NUMA-aware partitioning matters most for
TPC-H Q1 and Gene (partitioned-data-bound), pinning alone suffices for
GDA/LogReg/k-means (thread-local compute); Triangle Counting hides NUMA in
the cache; every DMLL variant is far faster than Spark and PowerGraph.
"""

from conftest import emit, emit_json, once, record_sim

from repro.baselines import SparkContext, powergraph_pagerank, powergraph_triangles
from repro.baselines.spark_apps import (spark_gda, spark_gene,
                                        spark_kmeans_iteration,
                                        spark_logreg_iteration, spark_q1)
from repro.bench import get_bundle
from repro.report.tables import render_table
from repro.runtime import (DELITE, DMLL_CPP, DMLL_PIN_ONLY, NUMA_BOX,
                           ExecOptions, Simulator)

CORES = (1, 12, 24, 48)
ML_APPS = ("q1", "gene", "gda", "logreg", "kmeans")
GRAPH_APPS = ("pagerank", "triangle")


#: §6.1: triangle counting's "working sets tend to fit in cache, thereby
#: hiding NUMA issues" — power-law access streams hit the hot hub lists.
#: The uniform-footprint cache model underestimates that, so the bench
#: sets the measured-skew residency explicitly.
CACHE_FRACTION = {"triangle": 0.95}


def dmll_seconds(bundle, profile, cores, sequential=False):
    cap = bundle.capture("opt")
    sim = Simulator(bundle.compiled("opt"), NUMA_BOX, profile,
                    ExecOptions(cores=cores, sequential=sequential,
                                scale=bundle.scale,
                                data_scale=bundle.data_scale,
                                remote_read_cache_fraction=CACHE_FRACTION.get(
                                    bundle.name))).price(cap)
    label = f"{bundle.name}/{profile.name}/cores={cores}"
    if sequential:
        label += "/seq"
    return record_sim("fig7_numa", label, sim)


def spark_seconds(name, cores):
    b = get_bundle(name)
    sc = SparkContext(NUMA_BOX, cores=cores, scale=b.data_scale)
    if name == "kmeans":
        pts = sc.parallelize(b.inputs["matrix"]).cache()
        base = sc.stats.sim_seconds
        spark_kmeans_iteration(sc, pts, b.inputs["clusters"])
    elif name == "logreg":
        data = sc.parallelize(list(zip(b.inputs["x"], b.inputs["y"]))).cache()
        base = sc.stats.sim_seconds
        spark_logreg_iteration(sc, data, b.inputs["theta"], 0.1)
    elif name == "gda":
        data = sc.parallelize(list(zip(b.inputs["x"], b.inputs["y"]))).cache()
        base = sc.stats.sim_seconds
        spark_gda(sc, data, len(b.inputs["x"][0]))
    elif name == "q1":
        rows = sc.parallelize(b.inputs["lineitems"]).cache()
        base = sc.stats.sim_seconds
        spark_q1(sc, rows)
    elif name == "gene":
        rows = sc.parallelize(b.inputs["reads"]).cache()
        base = sc.stats.sim_seconds
        spark_gene(sc, rows)
    else:
        raise KeyError(name)
    return sc.stats.sim_seconds - base


def powergraph_seconds(name, cores):
    b = get_bundle(name)
    g = b.graph
    if name == "pagerank":
        _, stats = powergraph_pagerank(g, NUMA_BOX, 1, cores=cores,
                                       scale=b.scale)
    else:
        _, stats = powergraph_triangles(g, NUMA_BOX, cores=cores,
                                        scale=b.scale)
    return stats.sim_seconds


def compute_fig7():
    table = {}
    for name in ML_APPS + GRAPH_APPS:
        b = get_bundle(name)
        seq = dmll_seconds(b, DMLL_CPP, 1, sequential=True)
        rows = {}
        for cores in CORES:
            entry = {
                "DMLL": seq / dmll_seconds(b, DMLL_CPP, cores),
                "Pin": seq / dmll_seconds(b, DMLL_PIN_ONLY, cores),
                "Delite": seq / dmll_seconds(b, DELITE, cores),
            }
            if name in ML_APPS:
                entry["Spark"] = seq / spark_seconds(name, cores)
            else:
                entry["PowerGraph"] = seq / powergraph_seconds(name, cores)
            rows[cores] = entry
        table[name] = rows
    return table


def test_fig7_numa_scalability(benchmark):
    table = once(benchmark, compute_fig7)

    lines = []
    for name, rows in table.items():
        systems = list(rows[1].keys())
        body = [[f"{c}"] + [f"{rows[c][s]:.1f}x" for s in systems]
                for c in CORES]
        lines.append(render_table(["cores"] + systems, body,
                                  title=f"Figure 7 — {name} (speedup over "
                                        f"sequential DMLL)"))
    text = "\n\n".join(lines)
    emit("fig7_numa", text)
    emit_json("fig7_numa")

    for name, rows in table.items():
        # DMLL scales monotonically with the core count
        dm = [rows[c]["DMLL"] for c in CORES]
        assert all(b >= a * 0.95 for a, b in zip(dm, dm[1:])), (name, dm)
        # Delite stops scaling beyond two sockets (§6.1) — except triangle
        # counting, whose cached working set hides NUMA entirely
        assert rows[48]["Delite"] < rows[48]["DMLL"], name
        if name != "triangle":
            assert rows[48]["Delite"] < rows[24]["Delite"] * 1.5, name

    # partitioned-data-bound apps need NUMA-aware allocation (§6.1)
    for name in ("q1", "gene"):
        assert table[name][48]["DMLL"] > 1.5 * table[name][48]["Pin"], name
    # compute-bound apps: pinning alone suffices (§6.1 says this also of
    # LogReg and k-means; in this model those two are bandwidth-bound at
    # full scale and still gain from partitioning — see EXPERIMENTS.md)
    assert table["gda"][48]["Pin"] > 0.8 * table["gda"][48]["DMLL"]
    for name in ("logreg", "kmeans"):
        assert table[name][48]["Pin"] > 0.3 * table[name][48]["DMLL"], name

    # DMLL is significantly faster than Spark at every scale (§6.1,
    # "up to 40x"), and faster than PowerGraph on the graph apps
    for name in ML_APPS:
        ratio = table[name][48]["DMLL"] / table[name][48]["Spark"]
        assert ratio > 3.0, (name, ratio)
    for name in GRAPH_APPS:
        assert table[name][48]["DMLL"] > table[name][48]["PowerGraph"], name
