"""Table 2: sequential DMLL vs hand-optimized C++ for the seven benchmark
applications, with the compiler optimizations each one receives.

Paper shape: DMLL within ~25% of hand-optimized everywhere, and *faster*
on Query 1 (the generated hash map beats std::unordered_map).
"""

from conftest import emit, emit_json, once, record_sim

from repro.baselines import handopt as H
from repro.bench import PAPER_SIZES, get_bundle
from repro.report.tables import render_table
from repro.runtime import DMLL_CPP, NUMA_BOX, ExecOptions, Simulator

#: paper-reported deltas, for the side-by-side report
PAPER_DELTAS = {
    "q1": -41.0, "gene": 9.6, "gda": 23.0, "kmeans": 5.0,
    "logreg": 9.3, "pagerank": 25.0, "triangle": -0.8,
}

HAND_COSTS = {
    "q1": lambda b: H.tpch_q1(30_000_000),
    "gene": lambda b: H.gene_barcoding(3_500_000),
    "gda": lambda b: H.gda(500_000, 100),
    "kmeans": lambda b: H.kmeans_iteration(500_000, 100, 6),
    "logreg": lambda b: H.logreg_iteration(500_000, 100),
    "pagerank": lambda b: H.pagerank_iteration(4_800_000, 34_500_000),
    "triangle": lambda b: H.triangle_counting(4_800_000, 34_500_000, 28.8),
}

APPS = ["q1", "gene", "gda", "kmeans", "logreg", "pagerank", "triangle"]


def dmll_sequential_seconds(name: str) -> float:
    b = get_bundle(name)
    cap = b.capture("opt")
    sim = Simulator(b.compiled("opt"), NUMA_BOX, DMLL_CPP,
                    ExecOptions(sequential=True, scale=b.scale,
                                data_scale=b.data_scale)).price(cap)
    return record_sim("table2_sequential", f"{name}/sequential", sim)


def compute_table2():
    rows = []
    deltas = {}
    for name in APPS:
        b = get_bundle(name)
        t_dmll = dmll_sequential_seconds(name)
        t_cpp = HAND_COSTS[name](b).seconds(NUMA_BOX)
        delta = (t_dmll - t_cpp) / t_cpp * 100.0
        deltas[name] = delta
        opts = sorted(set(b.compiled("opt").report.applied_rules))
        rows.append([name, ", ".join(opts) or "fusion only",
                     PAPER_SIZES[name],
                     f"{t_dmll:.3f}s", f"{t_cpp:.3f}s",
                     f"{delta:+.1f}%", f"{PAPER_DELTAS[name]:+.1f}%"])
    return rows, deltas


def test_table2_sequential_baseline(benchmark):
    rows, deltas = once(benchmark, compute_table2)
    text = render_table(
        ["Benchmark", "Optimizations", "Data Set (modeled)",
         "DMLL", "C++", "delta", "paper delta"],
        rows, title="Table 2: sequential performance vs hand-optimized C++")
    emit("table2_sequential", text)
    emit_json("table2_sequential")

    # shape: within ~35% of hand-optimized for every application...
    for name, d in deltas.items():
        assert abs(d) <= 35.0, f"{name} delta {d:+.1f}% out of band"
    # ...and DMLL wins on Query 1 (generated hash map beats std::)
    assert deltas["q1"] < 0
    # the headline optimizations are actually applied
    q1_opts = get_bundle("q1").compiled("opt").report.applied_rules
    assert "groupby-reduce" in q1_opts and "aos-to-soa" in q1_opts
    km_opts = get_bundle("kmeans").compiled("opt").report.applied_rules
    assert "conditional-reduce" in km_opts
    lr_opts = get_bundle("logreg").compiled("opt").report.applied_rules
    assert "column-to-row-reduce" in lr_opts
