"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper: it prints the
same rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the qualitative *shape* (who wins, by
roughly what factor, where crossovers fall). Absolute numbers are
simulated times on the machine models — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def once(benchmark, fn):
    """Run a harness function exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
