"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper: it prints the
same rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the qualitative *shape* (who wins, by
roughly what factor, where crossovers fall). Absolute numbers are
simulated times on the machine models — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: per-loop breakdowns accumulated by ``record_sim`` during a sweep,
#: keyed by results-file name; ``emit_json`` flushes one file's worth
_BREAKDOWNS: dict = {}


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def sim_breakdown(sim) -> dict:
    """JSON-able per-loop time split of one priced run."""
    return {
        "total_seconds": sim.total_seconds,
        "loops": [
            {"loop": ls.name, "op": ls.op_name, "iters": ls.iters,
             "workers": ls.workers, "time_s": ls.time_s,
             "compute_s": ls.compute_s, "memory_s": ls.memory_s,
             "comm_s": ls.comm_s, "overhead_s": ls.overhead_s}
            for ls in sim.loops
        ],
    }


def record_sim(name: str, label: str, sim) -> float:
    """Stash ``sim``'s per-loop breakdown under ``label`` for the results
    file ``name`` and return the headline time (seconds)."""
    _BREAKDOWNS.setdefault(name, {})[label] = sim_breakdown(sim)
    return sim.total_seconds


def emit_json(name: str) -> None:
    """Write every breakdown recorded so far for ``name`` next to the
    headline ``.txt`` results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(_BREAKDOWNS.get(name, {}), indent=2, sort_keys=True)
        + "\n")


def once(benchmark, fn):
    """Run a harness function exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
