"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper: it prints the
same rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the qualitative *shape* (who wins, by
roughly what factor, where crossovers fall). Absolute numbers are
simulated times on the machine models — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: per-loop breakdowns accumulated by ``record_sim`` during a sweep,
#: keyed by results-file name; ``emit_json`` flushes one file's worth
_BREAKDOWNS: dict = {}


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def sim_breakdown(sim) -> dict:
    """JSON-able per-loop time split of one priced run."""
    return {
        "total_seconds": sim.total_seconds,
        "backend": getattr(sim, "backend", "reference"),
        "loops": [
            {"loop": ls.name, "op": ls.op_name, "iters": ls.iters,
             "workers": ls.workers, "time_s": ls.time_s,
             "compute_s": ls.compute_s, "memory_s": ls.memory_s,
             "comm_s": ls.comm_s, "overhead_s": ls.overhead_s}
            for ls in sim.loops
        ],
    }


def record_sim(name: str, label: str, sim, wall: dict = None) -> float:
    """Stash ``sim``'s per-loop breakdown under ``label`` for the results
    file ``name`` and return the headline time (seconds).

    ``wall``, when given, is a per-backend host wall-clock dict (see
    ``measure_backends``) recorded alongside the simulated seconds —
    simulated time is the paper's metric, host wall-clock is ours."""
    bd = sim_breakdown(sim)
    if wall is not None:
        bd["host_wallclock"] = wall
    _BREAKDOWNS.setdefault(name, {})[label] = bd
    return sim.total_seconds


# ---------------------------------------------------------------------------
# Host wall-clock measurement (reference interpreter vs numpy backend)
# ---------------------------------------------------------------------------

def time_backend(compiled, inputs, backend: str, repeats: int = 3):
    """Best-of-``repeats`` host wall-clock seconds of one functional
    execution of ``compiled`` on ``backend``; returns
    ``(seconds, results, stats, fallbacks)``."""
    from repro.backend import run_program_numpy
    from repro.core.interp import run_program
    prepared = compiled.prepare_inputs(inputs)
    best = None
    out = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        if backend == "numpy":
            results, stats, fallbacks = run_program_numpy(
                compiled.program, prepared)
        else:
            results, stats = run_program(compiled.program, prepared)
            fallbacks = []
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best, out = dt, (results, stats, fallbacks)
    return (best,) + out


def measure_backends(app: str, repeats: int = 3) -> dict:
    """Time the ``opt`` variant of a bundled app under both backends and
    differentially check results/cycles while at it."""
    from repro.bench import get_bundle
    from repro.core.values import deep_eq
    b = get_bundle(app)
    compiled = b.compiled("opt")
    ref_s, ref_res, ref_stats, _ = time_backend(
        compiled, b.inputs, "reference", repeats)
    np_s, np_res, np_stats, fallbacks = time_backend(
        compiled, b.inputs, "numpy", repeats)
    return {
        "reference_s": ref_s,
        "numpy_s": np_s,
        "speedup": ref_s / np_s if np_s > 0 else float("inf"),
        "identical_results": deep_eq(ref_res, np_res),
        "identical_cycles": ref_stats.total_cycles == np_stats.total_cycles,
        "cycles": ref_stats.total_cycles,
        "fallbacks": [{"loop": str(f.loop), "op": f.op, "reason": f.reason}
                      for f in fallbacks],
    }


# ---------------------------------------------------------------------------
# Per-loop host wall-clock attribution
# ---------------------------------------------------------------------------
#
# The loop observers cannot time the numpy backend: its hooks fire
# back-to-back at the *end* of a vectorized loop (stats are staged until
# the loop is known not to fall back, so a mid-loop failure leaves the
# accounting untouched). Timing therefore wraps ``_eval_loop`` itself in
# interpreter subclasses; only top-level loops are attributed — time
# spent in loops nested inside a fallback rolls up into their parent,
# matching how the simulator's per-loop breakdown reports them.

def _timed_interp(base):
    class Timed(base):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.loop_wall = {}
            self.loop_ops = {}
            self._timing_depth = 0

        def _eval_loop(self, d, loop):
            if self._timing_depth:
                return super()._eval_loop(d, loop)
            self._timing_depth += 1
            t0 = time.perf_counter()
            try:
                return super()._eval_loop(d, loop)
            finally:
                self._timing_depth -= 1
                dt = time.perf_counter() - t0
                key = str(d.syms[0])
                self.loop_wall[key] = self.loop_wall.get(key, 0.0) + dt
                self.loop_ops.setdefault(key, loop.op_name())
    return Timed


def profile_loops(compiled, inputs, backend: str) -> list:
    """One instrumented functional execution; returns the per-loop host
    wall-clock attribution as ``[{loop, op, wall_s, share}, ...]`` sorted
    by descending time."""
    if backend == "numpy":
        from repro.backend.executor import NumpyInterp
        interp = _timed_interp(NumpyInterp)()
    else:
        from repro.core.interp import Interp
        interp = _timed_interp(Interp)()
    interp.eval_program(compiled.program, compiled.prepare_inputs(inputs))
    total = sum(interp.loop_wall.values()) or 1.0
    return [{"loop": k, "op": interp.loop_ops[k], "wall_s": v,
             "share": v / total}
            for k, v in sorted(interp.loop_wall.items(),
                               key=lambda kv: -kv[1])]


def record_history(app: str, summary: dict, sim=None) -> None:
    """Append one observatory record for ``app`` from a
    ``measure_backends`` summary (see ``repro.obs.history``).

    Besides the headline gate metrics the record carries the inputs the
    root-cause analyzer (``repro.obs.analyze``) diffs when a gate
    fails: the per-loop pricing breakdown (id-stripped keys so two
    processes' records align) and the compile's normalized
    decision-ledger keys (so digest drift can be resolved to the exact
    decisions that changed)."""
    from repro.bench import get_bundle
    from repro.obs.history import RunRecord, append_record, git_sha
    from repro.obs.provenance import strip_ids
    from repro.runtime import NUMA_BOX
    bundle = get_bundle(app)
    if sim is None:
        sim = bundle.simulate("opt", backend="numpy")
    led = bundle.compiled("opt").provenance
    per_loop = [{"loop": ls.name, "key": strip_ids(ls.name),
                 "op": ls.op_name, "workers": ls.workers,
                 "time_s": ls.time_s, "compute_s": ls.compute_s,
                 "memory_s": ls.memory_s, "comm_s": ls.comm_s,
                 "overhead_s": ls.overhead_s} for ls in sim.loops]
    append_record(RunRecord(
        app=app, backend="numpy", git_sha=git_sha(),
        wall_s=summary["numpy_s"], sim_s=sim.total_seconds,
        cycles=summary["cycles"], fallbacks=len(summary["fallbacks"]),
        digest=led.digest() if led is not None else "",
        extra={"reference_s": summary["reference_s"],
               "speedup": summary["speedup"],
               "cluster": NUMA_BOX.name,
               "per_loop": per_loop,
               "decisions": (led.normalized_keys()
                             if led is not None else [])}))


def write_bench_backend(summary: dict) -> None:
    """Write the top-level reference-vs-numpy wall-clock summary the CI
    perf trajectory reads (``BENCH_backend.json`` at the repo root)."""
    from statistics import median
    doc = {
        "metric": "host wall-clock seconds of functional execution "
                  "(best of repeats), opt variant",
        "apps": summary,
        "median_speedup": median(s["speedup"] for s in summary.values()),
        "generated_by": "benchmarks/bench_backend.py",
    }
    (REPO_ROOT / "BENCH_backend.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")


def emit_json(name: str) -> None:
    """Write every breakdown recorded so far for ``name`` next to the
    headline ``.txt`` results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(_BREAKDOWNS.get(name, {}), indent=2, sort_keys=True)
        + "\n")


def once(benchmark, fn):
    """Run a harness function exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
