"""Figure 8 (left three charts): the 20-node EC2 cluster and the 4-node
GPU cluster, DMLL vs manually-optimized Spark.

- (a) Q1 / Gene / GDA: compute-component speedup over Spark (input loading
  excluded — both systems are I/O bound on first read, §6.2).
- (b) k-means and LogReg at two dataset sizes (1.7GB/17GB and 3.4GB/17GB):
  iterative, so I/O amortizes; the gap is "comparable to the
  single-threaded performance difference" on these weak 4-core nodes.
- (c) the GPU cluster: k-means / LogReg / GDA vs Spark, after the GPU
  transformations (§6.2: k-means 7.2x over Spark, GDA over 5x).

DMLL runs its JVM backend on EC2 ("to provide the most fair comparison
with Spark") and the C++/CUDA backends on the GPU cluster.
"""

from conftest import emit, emit_json, once, record_sim

from repro.baselines import SparkContext
from repro.baselines.spark_apps import (spark_gda, spark_gene,
                                        spark_kmeans_iteration,
                                        spark_logreg_iteration, spark_q1)
from repro.bench import get_bundle
from repro.report.tables import render_table
from repro.runtime import (DMLL_CPP, DMLL_JVM, EC2_CLUSTER, GPU_CLUSTER,
                           ExecOptions, Simulator)


def dmll_seconds(bundle, cluster, profile, scale_mult=1.0, use_gpu=False):
    variant = "gpu" if use_gpu else "opt"
    cap = bundle.capture(variant)
    sim = Simulator(bundle.compiled(variant), cluster, profile,
                    ExecOptions(scale=bundle.scale * scale_mult,
                                data_scale=bundle.data_scale * scale_mult,
                                use_gpu=use_gpu,
                                gpu_transposed=use_gpu)).price(cap)
    return record_sim(
        "fig8_cluster",
        f"{bundle.name}/{cluster.name}/{profile.name}/x{scale_mult:g}", sim)


def spark_seconds(name, cluster, scale_mult=1.0):
    b = get_bundle(name)
    sc = SparkContext(cluster, scale=b.data_scale * scale_mult)
    if name == "kmeans":
        rdd = sc.parallelize(b.inputs["matrix"]).cache()
        base = sc.stats.sim_seconds
        spark_kmeans_iteration(sc, rdd, b.inputs["clusters"])
    elif name == "logreg":
        rdd = sc.parallelize(list(zip(b.inputs["x"], b.inputs["y"]))).cache()
        base = sc.stats.sim_seconds
        spark_logreg_iteration(sc, rdd, b.inputs["theta"], 0.1)
    elif name == "gda":
        rdd = sc.parallelize(list(zip(b.inputs["x"], b.inputs["y"]))).cache()
        base = sc.stats.sim_seconds
        spark_gda(sc, rdd, len(b.inputs["x"][0]))
    elif name == "q1":
        rdd = sc.parallelize(b.inputs["lineitems"]).cache()
        base = sc.stats.sim_seconds
        spark_q1(sc, rdd)
    elif name == "gene":
        rdd = sc.parallelize(b.inputs["reads"]).cache()
        base = sc.stats.sim_seconds
        spark_gene(sc, rdd)
    return sc.stats.sim_seconds - base


def compute_fig8a():
    out = {}
    for name in ("q1", "gene", "gda"):
        b = get_bundle(name)
        dm = dmll_seconds(b, EC2_CLUSTER, DMLL_JVM)
        sp = spark_seconds(name, EC2_CLUSTER)
        out[name] = sp / dm
    return out


#: Fig 8b dataset sizes as multiples of the Fig 7 datasets
SIZES_8B = {"kmeans": {"1.7GB": 2.0, "17GB": 20.0},
            "logreg": {"3.4GB": 4.0, "17GB": 20.0}}


def compute_fig8b():
    out = {}
    for name, sizes in SIZES_8B.items():
        b = get_bundle(name)
        out[name] = {}
        for label, mult in sizes.items():
            dm = dmll_seconds(b, EC2_CLUSTER, DMLL_JVM, scale_mult=mult)
            sp = spark_seconds(name, EC2_CLUSTER, scale_mult=mult)
            out[name][label] = sp / dm
    return out


def compute_fig8c():
    """§3.2's GPU-cluster recipe: Column-to-Row Reduce distributes over
    samples across the cluster; Row-to-Column Reduce shapes each node's
    device kernel. Priced accordingly: the C2R variant's distribution
    (chunking + comm) plus each node's R2C'd kernel over its quarter."""
    from repro.runtime import single_node
    out = {}
    for name in ("kmeans", "logreg", "gda"):
        b = get_bundle(name)
        # communication of the row-distributed program on the cluster
        cap_opt = b.capture("opt")
        dist = Simulator(b.compiled("opt"), GPU_CLUSTER, DMLL_CPP,
                         ExecOptions(scale=b.scale,
                                     data_scale=b.data_scale)).price(cap_opt)
        record_sim("fig8_cluster", f"{name}/gpu-4/distribution", dist)
        comm = sum(l.comm_s for l in dist.loops)
        # each node's GPU kernel processes 1/nodes of the data
        frac = 1.0 / GPU_CLUSTER.nodes
        cap_gpu = b.capture("gpu")
        kernel = Simulator(b.compiled("gpu"), single_node(GPU_CLUSTER),
                           DMLL_CPP,
                           ExecOptions(use_gpu=True, gpu_transposed=True,
                                       scale=b.scale * frac,
                                       data_scale=b.data_scale * frac)
                           ).price(cap_gpu)
        record_sim("fig8_cluster", f"{name}/gpu-4/node-kernel", kernel)
        dm = kernel.total_seconds + comm
        sp = spark_seconds(name, GPU_CLUSTER)
        out[name] = sp / dm
    return out


def _numa_ratio(name):
    """DMLL-over-Spark on the 48-core NUMA box (the Fig. 7 gap)."""
    from repro.runtime import NUMA_BOX as BOX
    b = get_bundle(name)
    cap = b.capture("opt")
    dm = Simulator(b.compiled("opt"), BOX, DMLL_CPP,
                   ExecOptions(cores=48, scale=b.scale,
                               data_scale=b.data_scale)).price(cap)
    sp = spark_seconds(name, BOX)
    return sp / dm.total_seconds


def test_fig8a_cluster_compute_component(benchmark):
    speedups = once(benchmark, compute_fig8a)
    rows = [[k, f"{v:.2f}x", f"{_numa_ratio(k):.2f}x"]
            for k, v in speedups.items()]
    emit("fig8a_cluster", render_table(
        ["App", "DMLL/Spark (EC2 compute)", "DMLL/Spark (NUMA box)"], rows,
        title="Figure 8a: 20-node EC2 cluster, compute component"))
    emit_json("fig8_cluster")
    # DMLL wins, but by less than on the NUMA box (§6.2: "the performance
    # difference between DMLL and Spark is much smaller on this
    # configuration ... as each machine has very few resources")
    for name, s in speedups.items():
        assert s > 1.0, (name, s)
        assert s < _numa_ratio(name), (name, s)


def test_fig8b_cluster_iterative(benchmark):
    speedups = once(benchmark, compute_fig8b)
    rows = [[app, label, f"{v:.2f}x"]
            for app, sizes in speedups.items() for label, v in sizes.items()]
    emit("fig8b_cluster_sizes", render_table(
        ["App", "Dataset", "DMLL speedup over Spark"], rows,
        title="Figure 8b: EC2 cluster, iterative apps at two sizes"))
    emit_json("fig8_cluster")
    for app, sizes in speedups.items():
        for label, v in sizes.items():
            assert v > 1.0, (app, label, v)


def test_fig8c_gpu_cluster(benchmark):
    speedups = once(benchmark, compute_fig8c)
    rows = [[k, f"{v:.2f}x"] for k, v in speedups.items()]
    emit("fig8c_gpu_cluster", render_table(
        ["App", "DMLL-GPU speedup over Spark"], rows,
        title="Figure 8c: 4-node GPU cluster"))
    emit_json("fig8_cluster")
    # §6.2: GDA "runs over 5x faster than Spark"; k-means 7.2x with the
    # transformations; higher-end nodes increase the gap vs Fig 8a
    assert speedups["gda"] > 3.0
    assert speedups["kmeans"] > 3.0
    assert speedups["logreg"] > 1.5
