"""Serving-layer benchmark: lane-packed batching vs single-request
execution, plus a seeded closed-loop latency profile.

The serving claim (ROADMAP open item 1, DESIGN.md §9) is that N pending
invocations of the same cached program cost ONE vectorized execution,
not N — so at batch size 8 the host wall-clock of serving 8 requests
should be a small multiple of one execution, and batched throughput
must clear 3x single-request throughput on kmeans (the acceptance
floor; the other apps get a lenient 1.5x noise floor).

Writes ``benchmarks/results/serve.{txt,json}`` and appends one
``serve-<app>`` record per app to ``benchmarks/history/`` so the
regression observatory gates serving throughput like any other
benchmark.
"""

import time

from conftest import emit, emit_json, once

from repro.backend import run_program_numpy
from repro.core.values import deep_eq
from repro.obs.history import RunRecord, append_record, git_sha
from repro.report.tables import render_table
from repro.serve import (ProgramCache, ProgramServer, ServeSim, ServedApp,
                         make_machines)

APPS = ["kmeans", "logreg", "q1"]
BATCH = 8
#: batched-vs-single throughput floors; kmeans carries the hard
#: acceptance bar, the rest guard against the batcher regressing into
#: per-request execution
FLOORS = {"kmeans": 3.0, "logreg": 1.5, "q1": 1.5}


def measure_app(app: str) -> dict:
    served = ServedApp.from_bundle(app)
    cache = ProgramCache({app: served.factory})
    entry = cache.get(app)  # compile outside both timed regions
    prepared = entry.compiled.prepare_inputs(served.default_inputs)

    # single-request baseline: BATCH genuinely sequential executions,
    # measured directly (NOT through the server, whose capture memo
    # would make runs 2..N free and fake the baseline)
    t0 = time.perf_counter()
    for _ in range(BATCH):
        seq_results, seq_stats, seq_fallbacks = run_program_numpy(
            entry.compiled.program, prepared)
    single_wall = time.perf_counter() - t0

    # batched: BATCH simultaneous requests lane-pack into one execution
    server = ProgramServer([served], make_machines("numa"),
                           max_batch=BATCH, max_wait_s=0.05,
                           backend="numpy", cache=cache)
    for _ in range(BATCH):
        server.submit(app, at=0.0)
    t1 = time.perf_counter()
    responses = server.run()
    batched_wall = time.perf_counter() - t1

    assert len(responses) == BATCH
    assert all(r.lane_packed and r.batch_size == BATCH for r in responses)
    assert not server.fallbacks and not seq_fallbacks
    # the batch is the same execution a lone request runs: results and
    # cycle accounting must be bit-identical (tests/test_serve.py holds
    # the full ExecStats bar; the bench re-checks the headline)
    assert deep_eq(responses[0].results, seq_results)
    assert responses[0].stats.total_cycles == seq_stats.total_cycles

    # seeded closed-loop latency profile on the shared cache; traced so
    # the report carries the exact per-request latency decomposition
    from repro.obs import Tracer
    sim = ServeSim([app], machines="numa", max_batch=BATCH,
                   max_wait_s=0.02, backend="numpy", tracer=Tracer())
    sim.cache = cache
    report = sim.run_closed(clients=BATCH, requests=4 * BATCH, seed=0)

    speedup = single_wall / batched_wall if batched_wall > 0 else float("inf")
    return {
        "single_wall_s": single_wall,
        "batched_wall_s": batched_wall,
        "speedup": speedup,
        "service_s": responses[0].finish_s - responses[0].start_s,
        "cycles": seq_stats.total_cycles,
        "digest": entry.digest,
        "compile_s": entry.compile_s,
        "sim_throughput_rps": report.throughput_rps,
        "sim_p50_s": report.latency_p50_s,
        "sim_p99_s": report.latency_p99_s,
        # the per-app/per-replica breakdowns ride into the JSON artifact
        # so a latency shift can be localized without re-running
        "sim_latency_by_app": report.latency_by_app,
        "sim_latency_by_machine": report.latency_by_machine,
        "sim_machine_util": report.machine_util,
        "sim_decomposition_mean_s": (
            {c: report.decomposition["components"][c]["mean_s"]
             for c in ("admission_s", "batch_window_s", "dispatch_s",
                       "stagger_s", "execution_s", "latency_s")}
            if report.decomposition else None),
    }


def test_serve_batching(benchmark):
    summary = once(benchmark, lambda: {a: measure_app(a) for a in APPS})

    rows = []
    for app in APPS:
        s = summary[app]
        rows.append([app, f"{s['single_wall_s'] * 1e3:9.2f}",
                     f"{s['batched_wall_s'] * 1e3:9.2f}",
                     f"{s['speedup']:6.1f}x",
                     f"{s['sim_throughput_rps']:8.1f}",
                     f"{s['sim_p99_s'] * 1e3:8.3f}"])
        append_record(RunRecord(
            app=f"serve-{app}", backend="numpy", git_sha=git_sha(),
            wall_s=s["batched_wall_s"], sim_s=s["service_s"],
            cycles=s["cycles"], fallbacks=0, digest=s["digest"],
            extra={"single_wall_s": s["single_wall_s"],
                   "speedup": s["speedup"],
                   "sim_throughput_rps": s["sim_throughput_rps"],
                   "sim_p50_s": s["sim_p50_s"],
                   "sim_p99_s": s["sim_p99_s"],
                   "sim_machine_util": s["sim_machine_util"],
                   "sim_decomposition_mean_s":
                       s["sim_decomposition_mean_s"]}))
    emit("serve", render_table(
        ["app", f"{BATCH} single ms", "batched ms", "speedup",
         "sim req/s", "sim p99 ms"], rows,
        title=f"serving: {BATCH} sequential runs vs one lane-packed "
              f"batch (host wall-clock) + seeded closed-loop sim"))
    import conftest
    conftest._BREAKDOWNS["serve"] = summary
    emit_json("serve")

    for app in APPS:
        assert summary[app]["speedup"] >= FLOORS[app], (
            f"{app}: batched speedup {summary[app]['speedup']:.2f}x below "
            f"floor {FLOORS[app]}x at batch size {BATCH}")
