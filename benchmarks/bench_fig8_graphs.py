"""Figure 8 (fourth chart): PageRank and Triangle Counting on the 4-node
cluster, DMLL (OptiGraph, push model) vs PowerGraph.

Paper shape: both systems push data to local nodes and compute locally;
network transfer dominates, so overall performance is comparable (DMLL's
generated compute is faster but "largely overshadowed by the
communication") — and both are slower than the single NUMA machine, which
is the paper's argument for big-memory boxes in graph analytics.
"""

from conftest import emit, emit_json, once, record_sim

from repro.baselines import powergraph_pagerank, powergraph_triangles
from repro.bench import get_bundle
from repro.graph.optigraph import pagerank_push_program, triangle_program
from repro.pipeline import compile_program
from repro.report.tables import render_table
from repro.runtime import (DMLL_CPP, GPU_CLUSTER, NUMA_BOX, ExecOptions,
                           Simulator, capture_run)


def compute_fig8d():
    out = {}
    pr = get_bundle("pagerank")
    g = pr.graph

    # OptiGraph selects the push formulation for distributed targets
    push = compile_program(pagerank_push_program(), "distributed")
    cap = capture_run(push, pr.inputs)
    dmll_pr = Simulator(push, GPU_CLUSTER, DMLL_CPP,
                        ExecOptions(scale=pr.scale,
                                    data_scale=pr.data_scale)).price(cap)
    record_sim("fig8d_graphs", "pagerank-push/gpu-4", dmll_pr)
    _, pg_pr = powergraph_pagerank(g, GPU_CLUSTER, 1, scale=pr.scale)
    out["pagerank"] = {"dmll": dmll_pr.total_seconds,
                       "powergraph": pg_pr.sim_seconds}

    tg = get_bundle("triangle")
    cap_t = tg.capture("opt")
    # 0.95: the hot hub adjacency lists are served by each node's local
    # replica/cache (the skewed-access argument of §6.1, and what
    # PowerGraph's high-degree mirrors achieve structurally)
    dmll_tg = Simulator(tg.compiled("opt"), GPU_CLUSTER, DMLL_CPP,
                        ExecOptions(scale=tg.scale,
                                    data_scale=tg.data_scale,
                                    remote_read_cache_fraction=0.95)
                        ).price(cap_t)
    record_sim("fig8d_graphs", "triangle/gpu-4", dmll_tg)
    _, pg_tg = powergraph_triangles(tg.graph, GPU_CLUSTER, scale=tg.scale)
    out["triangle"] = {"dmll": dmll_tg.total_seconds,
                       "powergraph": pg_tg.sim_seconds}

    # the NUMA-machine comparison the paper closes §6.2 with
    numa_pr = Simulator(pr.compiled("opt"), NUMA_BOX, DMLL_CPP,
                        ExecOptions(scale=pr.scale, data_scale=pr.data_scale,
                                    )).price(pr.capture("opt"))
    record_sim("fig8d_graphs", "pagerank-pull/numa-4x12", numa_pr)
    out["pagerank"]["dmll_numa_box"] = numa_pr.total_seconds
    return out


def test_fig8d_graph_cluster(benchmark):
    data = once(benchmark, compute_fig8d)
    rows = []
    speedups = {}
    for app in ("pagerank", "triangle"):
        s = data[app]["powergraph"] / data[app]["dmll"]
        speedups[app] = s
        rows.append([app, f"{data[app]['dmll']:.3f}s",
                     f"{data[app]['powergraph']:.3f}s", f"{s:.2f}x"])
    emit("fig8d_graphs", render_table(
        ["App", "DMLL", "PowerGraph", "DMLL speedup"], rows,
        title="Figure 8d: graph apps on the 4-node cluster vs PowerGraph"))
    emit_json("fig8d_graphs")

    # comparable overall performance (§6.2: "the computation portion runs
    # faster in DMLL ... largely overshadowed by the communication")
    for app, s in speedups.items():
        assert 0.5 < s < 4.0, (app, s)

    # the big-memory NUMA machine beats the cluster for PageRank (§6.2)
    assert data["pagerank"]["dmll_numa_box"] < data["pagerank"]["dmll"]
