"""Chaos drill: the scripted outage must be survivable, deterministically.

Replays ``examples/faults_outage.json`` — a replica crash window,
transient hard kernel faults, and a slow replica — against a seeded
closed-loop run of each app with the full resilience stack on
(deadlines, retries, hedging, circuit breakers, shedding), and asserts
the robustness contract:

- **zero lost requests** — every submitted request either comes back as
  a response or leaves as a typed rejection; the two sets partition the
  traffic;
- **the outage is absorbed** — availability stays above the floor and
  no app permanently degrades to the reference path;
- **chaos actually fired** — the run is vacuous unless the plan injected
  at least one fault.

Appends one ``chaos-<app>`` record per app to ``benchmarks/history/``:
makespan and cycle totals under a *fixed* fault plan are deterministic
for a fixed seed, so the regression observatory gates them near-exactly
like any other simulated metric — a drift means the scheduler's
fault-handling (placement, retry timing, breaker windows) changed
behaviour.
"""

import pathlib
import time

from conftest import emit, emit_json, once

from repro.obs.history import RunRecord, append_record, git_sha
from repro.report.tables import render_table
from repro.serve import (BreakerConfig, FaultPlan, ResilienceConfig,
                         RetryPolicy, ServeSim)

APPS = ["kmeans", "q1"]
PLAN = pathlib.Path(__file__).parent.parent / "examples" / "faults_outage.json"
REQUESTS = 48
#: served fraction the drill must clear even mid-outage
AVAILABILITY_FLOOR = 0.95


def measure_app(app: str) -> dict:
    plan = FaultPlan.load(str(PLAN))
    res = ResilienceConfig(deadline_s=2.0,
                           retry=RetryPolicy(max_attempts=3),
                           hedge_delay_s=0.03, shed_depth=64,
                           breaker=BreakerConfig())
    sim = ServeSim([app], machines="numa*2", max_batch=4, max_wait_s=0.02,
                   backend="numpy", faults=plan, resilience=res)
    t0 = time.perf_counter()
    report = sim.run_closed(clients=6, requests=REQUESTS, seed=1)
    wall = time.perf_counter() - t0
    server = sim.last_server
    summary = server.resilience_summary()

    # zero-lost contract: responses + rejections partition the traffic
    served = {r.request.rid for r in server.responses}
    rejected = {j.rid for j in server.rejected}
    assert not served & rejected
    assert len(served) + len(rejected) == REQUESTS

    assert report.availability >= AVAILABILITY_FLOOR, (
        f"{app}: availability {report.availability:.3f} below "
        f"{AVAILABILITY_FLOOR} under the scripted outage")
    assert not summary["degraded"], (
        f"{app}: permanently degraded under a transient fault plan: "
        f"{summary['degraded']}")
    assert summary["fault_counts"], f"{app}: the chaos plan injected nothing"

    return {
        "wall_s": wall,
        "makespan_s": report.makespan_s,
        "served": len(served),
        "rejected": len(rejected),
        "availability": report.availability,
        "cycles": sum(r.stats.total_cycles for r in server.responses),
        "digest": sim.cache.get(app).digest,
        "fallbacks": len(server.fallbacks),
        "retries": summary["retries"],
        "requeues": summary["requeues"],
        "hedges": summary["hedges"],
        "fault_counts": summary["fault_counts"],
        "p99_s": report.latency_p99_s,
    }


def test_chaos_drill(benchmark):
    summary = once(benchmark, lambda: {a: measure_app(a) for a in APPS})

    rows = []
    for app in APPS:
        s = summary[app]
        rows.append([app, f"{s['served']}/{REQUESTS}",
                     f"{s['availability'] * 100:6.2f}%",
                     s["retries"], s["requeues"], s["hedges"],
                     f"{s['makespan_s'] * 1e3:8.3f}",
                     f"{s['p99_s'] * 1e3:8.3f}"])
        append_record(RunRecord(
            app=f"chaos-{app}", backend="numpy", git_sha=git_sha(),
            wall_s=s["wall_s"], sim_s=s["makespan_s"],
            cycles=s["cycles"], fallbacks=s["fallbacks"],
            digest=s["digest"],
            extra={"availability": s["availability"],
                   "served": s["served"], "rejected": s["rejected"],
                   "retries": s["retries"], "requeues": s["requeues"],
                   "hedges": s["hedges"],
                   "fault_counts": s["fault_counts"],
                   "sim_p99_s": s["p99_s"]}))
    emit("chaos", render_table(
        ["app", "served", "avail", "retries", "requeues", "hedges",
         "makespan ms", "p99 ms"], rows,
        title=f"chaos drill: {PLAN.name} over {REQUESTS} closed-loop "
              f"requests, full resilience stack"))
    import conftest
    conftest._BREAKDOWNS["chaos"] = summary
    emit_json("chaos")
