"""Table 1: programming model features / hardware targets of parallel
frameworks. Static, but verified against what this codebase implements."""

from conftest import emit, once

from repro.report.feature_matrix import (DMLL_EVIDENCE, FEATURES, SYSTEMS,
                                         render_feature_matrix)


def test_table1_feature_matrix(benchmark):
    text = once(benchmark, render_feature_matrix)
    emit("table1_features", text)

    marks = dict(SYSTEMS)
    # DMLL is the only row with every feature (the paper's punchline)
    assert all(marks["DMLL"])
    for name, row in marks.items():
        if name != "DMLL":
            assert not all(row), f"{name} should not match DMLL's coverage"
    # every DMLL claim is backed by a module of this reproduction
    assert set(DMLL_EVIDENCE) == set(FEATURES)
