"""Chaos-ready serving (DESIGN.md §13): deterministic fault injection
and the resilience stack that absorbs it.

The load-bearing contracts:

- **determinism** — a fixed ``(seed, FaultPlan)`` reproduces the serve
  report and the Chrome trace byte-for-byte, and an *empty* plan is
  bit-identical to no plan at all;
- **zero lost requests** — under any scripted outage every submitted
  request ends as exactly one ``Response`` or one typed ``Rejected``;
- **exact accounting survives chaos** — per-attempt latency
  decompositions sum bit-exactly (tolerance 0.0) even for requests that
  were retried, hedged, or re-enqueued off a crashed replica.
"""

import json
import math
import pathlib

import pytest

from repro import tools
from repro.obs import Tracer, chrome_trace_events, evaluate_slo
from repro.obs.analyze import COMPONENTS, decompose_timeline
from repro.obs.check import validate_file
from repro.obs.provenance import DecisionKind
from repro.obs.slo import SLOSpec
from repro.serve import (BreakerConfig, CircuitBreaker, FaultPlan,
                         FaultSpec, Rejected, ResilienceConfig, RetryPolicy,
                         ServeSim, derive_unit)
from repro.serve.resilience import (CLOSED, HALF_OPEN, OPEN, REJECT_DEADLINE,
                                    REJECT_SHED)

REPO = pathlib.Path(__file__).parent.parent
PLAN_PATH = REPO / "examples" / "faults_outage.json"


def outage_sim(app="kmeans", tracer=None, requests=24, faults="plan"):
    """The scripted outage the CI chaos leg replays: transient hard
    kernel faults, one replica crash, one slow replica."""
    plan = FaultPlan.load(str(PLAN_PATH)) if faults == "plan" else faults
    res = ResilienceConfig(deadline_s=2.0,
                           retry=RetryPolicy(max_attempts=3),
                           hedge_delay_s=0.03, shed_depth=64,
                           breaker=BreakerConfig())
    sim = ServeSim([app], machines="numa*2", max_batch=4, max_wait_s=0.02,
                   backend="numpy", faults=plan, resilience=res,
                   tracer=tracer)
    rep = sim.run_closed(clients=6, requests=requests, seed=1)
    return sim, rep


# ---------------------------------------------------------------------------
# fault plan: typed specs, seeded draws, JSON round-trip
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_example_plan_loads_and_round_trips(self):
        plan = FaultPlan.load(str(PLAN_PATH))
        assert plan and len(plan.specs) == 3
        again = FaultPlan.from_json(plan.to_json())
        assert again.specs == plan.specs and again.seed == plan.seed

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan((FaultSpec("crash", "numa[0]"),))

    @pytest.mark.parametrize("bad", [
        dict(kind="meteor", target="*"),
        dict(kind="crash", target=""),
        dict(kind="crash", target="numa[0]", t0_s=-1.0),
        dict(kind="crash", target="numa[0]", t0_s=2.0, t1_s=1.0),
        dict(kind="slow", target="numa[0]", factor=0.0),
        dict(kind="kernel", target="*", mode="explode"),
        dict(kind="kernel", target="*", rate=1.5),
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_json({"faults": [], "chaos_level": 11})
        with pytest.raises(ValueError, match="unknown keys"):
            FaultPlan.from_json(
                {"faults": [{"kind": "crash", "target": "*", "blast": 1}]})

    def test_window_units(self):
        plan = FaultPlan.from_json({"faults": [
            {"kind": "crash", "target": "m", "t0_ms": 2, "t1_ms": 12}]})
        assert plan.specs[0].t0_s == pytest.approx(0.002)
        assert plan.specs[0].t1_s == pytest.approx(0.012)
        with pytest.raises(ValueError, match="both t0_s and t0_ms"):
            FaultPlan.from_json({"faults": [
                {"kind": "crash", "target": "m", "t0_s": 1, "t0_ms": 1000}]})
        # omitted t1 leaves the fault active forever
        plan = FaultPlan.from_json(
            {"faults": [{"kind": "slow", "target": "m", "factor": 2.0}]})
        assert math.isinf(plan.specs[0].t1_s)

    def test_derive_unit_deterministic_and_uniform_range(self):
        a = derive_unit(7, "kernel", "kmeans", 3)
        assert a == derive_unit(7, "kernel", "kmeans", 3)
        assert 0.0 <= a < 1.0
        assert a != derive_unit(7, "kernel", "kmeans", 4)
        assert a != derive_unit(8, "kernel", "kmeans", 3)

    def test_kernel_fault_draw_is_seeded(self):
        spec = FaultSpec("kernel", "q1", t1_s=1.0, mode="error", rate=0.5)
        plan = FaultPlan((spec,), seed=3)
        hits = [plan.kernel_fault("q1", 0.5, a) is not None
                for a in range(32)]
        assert hits == [plan.kernel_fault("q1", 0.5, a) is not None
                        for a in range(32)]
        assert any(hits) and not all(hits)
        assert plan.kernel_fault("kmeans", 0.5, 0) is None  # other app
        assert plan.kernel_fault("q1", 2.0, 0) is None      # window over

    def test_machine_windows_and_slow_factor(self):
        plan = FaultPlan((
            FaultSpec("crash", "numa[1]", t0_s=0.01, t1_s=0.02),
            FaultSpec("slow", "numa", t0_s=0.0, t1_s=1.0, factor=2.0),
            FaultSpec("slow", "numa[0]", t0_s=0.0, t1_s=1.0, factor=3.0),
        ))
        assert plan.crash_windows("numa[1]", "numa") == [(0.01, 0.02)]
        assert plan.crash_windows("numa[0]", "numa") == []
        assert plan.slow_factor("numa[0]", "numa", 0.5) == 6.0
        assert plan.slow_factor("numa[1]", "numa", 0.5) == 2.0
        assert plan.slow_factor("numa[1]", "numa", 2.0) == 1.0

    def test_last_disruption_prefers_finite_ends(self):
        plan = FaultPlan((
            FaultSpec("crash", "m", t0_s=0.01, t1_s=0.03),
            FaultSpec("kernel", "a", t0_s=0.05),  # open-ended
        ))
        assert plan.last_disruption_s() == 0.05
        assert FaultPlan().last_disruption_s() == 0.0


# ---------------------------------------------------------------------------
# resilience primitives
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_delays_grow_and_are_seeded(self):
        pol = RetryPolicy(max_attempts=4, backoff_s=0.001, multiplier=2.0,
                          jitter=0.5)
        d1 = pol.delay_s(0, 5, 1)
        d2 = pol.delay_s(0, 5, 2)
        d3 = pol.delay_s(0, 5, 3)
        assert d1 == pol.delay_s(0, 5, 1)           # deterministic
        assert 0.0005 <= d1 <= 0.0015               # within jitter band
        assert d2 > d1 and d3 > d2                  # exponential growth
        assert pol.delay_s(1, 5, 1) != d1           # seed moves the draw
        assert RetryPolicy(jitter=0.0).delay_s(0, 5, 1) == 0.001

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0), dict(backoff_s=-1.0), dict(multiplier=0.5),
        dict(jitter=2.0), dict(budget=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


class TestCircuitBreaker:
    def test_state_machine(self):
        br = CircuitBreaker(BreakerConfig(window=4, threshold=0.5,
                                          min_events=2, cooldown_s=0.01))
        assert br.state == CLOSED and br.allow(0.0)
        br.record(0.001, True)
        br.record(0.002, False)
        assert br.state == OPEN and br.trips == 1   # 1/2 failures >= 0.5
        assert not br.allow(0.005)                  # cooling down
        assert br.allow(0.012)                      # cooled: probe allowed
        br.on_dispatch(0.012)
        assert br.state == HALF_OPEN
        assert not br.allow(0.013)                  # one probe at a time
        br.record(0.014, False)                     # probe failed
        assert br.state == OPEN and br.trips == 2
        assert br.allow(0.03)
        br.on_dispatch(0.03)
        br.record(0.031, True)                      # probe succeeded
        assert br.state == CLOSED and br.allow(0.032)

    def test_closed_needs_min_events(self):
        br = CircuitBreaker(BreakerConfig(window=8, threshold=0.5,
                                          min_events=4))
        for t in range(3):
            br.record(t * 0.001, False)
        assert br.state == CLOSED                   # not enough evidence


class TestResilienceConfig:
    @pytest.mark.parametrize("bad", [
        dict(deadline_s=0.0), dict(hedge_delay_s=-0.1),
        dict(shed_depth=0), dict(degrade_after=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ResilienceConfig(**bad)


# ---------------------------------------------------------------------------
# the scripted outage, end to end
# ---------------------------------------------------------------------------

class TestOutageEndToEnd:
    def test_zero_lost_requests_and_chaos_fired(self):
        sim, rep = outage_sim()
        server = sim.last_server
        served = {r.request.rid for r in server.responses}
        rejected = {j.rid for j in server.rejected}
        assert not served & rejected
        assert len(served) + len(rejected) == 24
        summary = server.resilience_summary()
        # the plan actually bit: kernel faults retried, a replica
        # crashed, a slow window stretched batches
        assert summary["fault_counts"].get("kernel-error", 0) >= 1
        assert summary["fault_counts"].get("crash", 0) == 1
        assert summary["retries"] >= 1
        assert rep.availability == 1.0 and rep.rejected == 0
        assert rep.resilience is not None

    def test_same_seed_byte_identical_report_and_trace(self):
        a = outage_sim()[1].to_json()
        b = outage_sim()[1].to_json()
        assert json.dumps(a, sort_keys=True, default=str) == \
            json.dumps(b, sort_keys=True, default=str)
        ta = chrome_trace_events(outage_sim(tracer=Tracer())[0].tracer)
        tb = chrome_trace_events(outage_sim(tracer=Tracer())[0].tracer)
        assert json.dumps(ta, sort_keys=True) == json.dumps(tb, sort_keys=True)

    def test_empty_plan_identical_to_no_plan(self):
        def run(faults):
            tr = Tracer()
            sim = ServeSim(["q1"], machines="numa*2", max_batch=4,
                           max_wait_s=0.005, backend="numpy", faults=faults,
                           tracer=tr)
            rep = sim.run_closed(clients=4, requests=12, seed=3)
            return rep.to_json(), chrome_trace_events(tr)
        ra, ta = run(None)
        rb, tb = run(FaultPlan())
        assert json.dumps(ra, sort_keys=True, default=str) == \
            json.dumps(rb, sort_keys=True, default=str)
        assert json.dumps(ta, sort_keys=True) == json.dumps(tb, sort_keys=True)

    def test_chaos_trace_validates(self, tmp_path):
        from repro.obs import write_chrome_trace
        tr = Tracer()
        outage_sim(tracer=tr)
        path = tmp_path / "chaos-trace.json"
        write_chrome_trace(str(path), tr)
        assert validate_file(str(path)) == []

    def test_per_attempt_decomposition_exact(self):
        sim, _rep = outage_sim(tracer=Tracer())
        server = sim.last_server
        assert server.resilience_summary()["retries"] >= 1
        checked_multi = 0
        for resp in server.responses:
            rid = resp.request.rid
            # the rid-level timeline decomposes to the *end-to-end*
            # latency (backoff and earlier attempts land in admission)
            tl = server.timeline_of(rid)
            comps = decompose_timeline(tl)
            assert comps is not None
            assert sum(comps[c] for c in COMPONENTS) == comps["latency_s"]
            assert comps["latency_s"] == resp.latency_s
            # and every recorded attempt decomposes exactly on its own
            attempts = server.attempt_timelines_of(rid)
            if len(attempts) > 1:
                checked_multi += 1
            for _attempt, _status, atl in attempts:
                acomps = decompose_timeline(atl)
                if acomps is None:
                    continue
                assert sum(acomps[c] for c in COMPONENTS) == \
                    acomps["latency_s"]
        assert checked_multi >= 1  # retries really were decomposed

    def test_attempt_spans_in_trace(self):
        tr = Tracer()
        outage_sim(tracer=tr)
        events = chrome_trace_events(tr)
        attempts = [e for e in events if e.get("cat") == "attempt"]
        assert attempts, "retried requests must emit attempt spans"
        assert {e["args"]["status"] for e in attempts} & \
            {"failed", "served", "requeued", "superseded"}
        faults = [e for e in events if e.get("cat") == "fault"]
        assert any(e["args"].get("fault") == "crash" for e in faults)


# ---------------------------------------------------------------------------
# individual policies under targeted fault scripts
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_shedding_rejects_over_depth(self):
        res = ResilienceConfig(shed_depth=2)
        sim = ServeSim(["q1"], machines="numa", max_batch=2,
                       max_wait_s=0.05, backend="numpy", resilience=res)
        rep = sim.run_open(rate_rps=5000, requests=16, seed=2)
        server = sim.last_server
        shed = [j for j in server.rejected if j.reason == REJECT_SHED]
        assert shed and rep.availability < 1.0
        assert len(server.responses) + len(server.rejected) == 16
        assert rep.resilience["rejected_by_reason"][REJECT_SHED] == len(shed)

    def test_deadline_rejects_late_requests(self):
        res = ResilienceConfig(deadline_s=0.001)
        sim = ServeSim(["q1"], machines="numa", max_batch=8,
                       max_wait_s=0.05, backend="numpy", resilience=res)
        sim.run_closed(clients=4, requests=8, seed=1)
        server = sim.last_server
        late = [j for j in server.rejected if j.reason == REJECT_DEADLINE]
        assert late, "a 1ms deadline under a 50ms batch window must reject"
        assert len(server.responses) + len(server.rejected) == 8

    def test_hedge_launches_duplicate(self):
        plan = FaultPlan((FaultSpec("slow", "numa[0]", factor=20.0),))
        res = ResilienceConfig(hedge_delay_s=0.002)
        sim = ServeSim(["q1"], machines="numa*2", max_batch=2,
                       max_wait_s=0.001, backend="numpy", faults=plan,
                       resilience=res)
        sim.run_closed(clients=4, requests=12, seed=1)
        summary = sim.last_server.resilience_summary()
        assert summary["hedges"] >= 1
        assert summary["hedges_wasted"] <= summary["hedges"]
        assert len(sim.last_server.responses) == 12

    def test_persistent_kernel_faults_degrade_with_decision(self):
        plan = FaultPlan((FaultSpec("kernel", "q1", mode="error",
                                    rate=1.0),))
        res = ResilienceConfig(retry=RetryPolicy(max_attempts=2,
                                                 backoff_s=0.0001),
                               breaker=BreakerConfig(window=4, min_events=2,
                                                     cooldown_s=0.001),
                               degrade_after=2)
        sim = ServeSim(["q1"], machines="numa*2", max_batch=4,
                       max_wait_s=0.002, backend="numpy", faults=plan,
                       resilience=res)
        sim.run_closed(clients=4, requests=16, seed=1)
        server = sim.last_server
        assert "q1" in server.degraded
        dec = [d for d in server.ledger.decisions
               if d.kind == DecisionKind.SERVE_DEGRADE]
        assert dec and dec[0].site == "serve:q1"
        assert "consecutive kernel faults" in dec[0].reason
        # degraded responses are served (reference path), not lost
        degraded = [r for r in server.responses
                    if r.fallback_reason and "degraded" in r.fallback_reason]
        assert degraded
        assert len(server.responses) + len(server.rejected) == 16

    def test_cache_fault_forces_recompile(self):
        plan = FaultPlan((FaultSpec("cache", "*", t0_s=0.005),))
        sim = ServeSim(["q1"], machines="numa", max_batch=4,
                       max_wait_s=0.002, backend="numpy", faults=plan)
        sim.run_closed(clients=2, requests=12, seed=1)
        assert len(sim.last_server.responses) == 12
        # one compile at first use, one after the scripted invalidation
        assert sim.cache.stats()["misses"] == 2

    def test_program_cache_invalidate(self):
        from repro.serve import ProgramCache, ServedApp
        served = ServedApp.from_bundle("q1")
        cache = ProgramCache({"q1": served.factory})
        cache.get("q1")
        assert cache.invalidate("other") == 0
        assert cache.invalidate("q1") == 1
        assert cache.invalidate() == 0  # already empty
        cache.get("q1")
        assert cache.stats()["misses"] == 2


# ---------------------------------------------------------------------------
# SLO scoring of refused traffic
# ---------------------------------------------------------------------------

class TestSLORejections:
    def test_rejections_burn_every_objective(self):
        class R:
            def __init__(self, finish, lat):
                self.finish_s, self.latency_s = finish, lat
                self.fallback_reason = None
        spec = SLOSpec.from_json({"name": "t", "objectives": [
            {"name": "avail", "kind": "availability", "target": 0.9},
            {"name": "p", "kind": "latency", "target": 0.9,
             "threshold_ms": 100}]})
        responses = [R(0.01 * i, 0.001) for i in range(1, 10)]
        clean = evaluate_slo(spec, responses)
        assert clean.ok
        burned = evaluate_slo(spec, responses, rejected=[
            Rejected(rid=99, app="q1", reason="shed", t_s=0.15),
            Rejected(rid=98, app="q1", reason="deadline", t_s=0.2)])
        assert not burned.ok
        for res in burned.results:
            assert res.total == 11 and res.bad == 2


# ---------------------------------------------------------------------------
# CLI: --faults / resilience flags / --chaos recovery gate
# ---------------------------------------------------------------------------

class TestChaosCLI:
    def run(self, *argv):
        import io
        from contextlib import redirect_stdout
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = tools.main(list(argv))
        return code, buf.getvalue()

    def chaos_args(self, *extra):
        return ("serve-sim", "kmeans", "--machines", "numa*2",
                "--clients", "6", "--requests", "48", "--batch", "4",
                "--max-wait-ms", "20", "--seed", "1",
                "--faults", str(PLAN_PATH),
                "--retry", "3", "--timeout-ms", "2000",
                "--hedge-ms", "30", "--shed-depth", "64", "--breaker",
                *extra)

    def test_chaos_gate_recovers(self):
        code, out = self.run(*self.chaos_args(
            "--chaos", "--slo", str(REPO / "examples" / "slo_chaos.json"),
            "--json"))
        assert code == 0
        doc = json.loads(out)
        assert doc["chaos"]["recovered"] is True
        assert doc["chaos"]["post_responses"] > 0
        assert doc["chaos"]["slo"]["status"] == "ok"
        assert doc["availability"] == 1.0
        assert doc["resilience"]["fault_counts"]

    def test_chaos_requires_faults_and_slo(self):
        assert self.run("serve-sim", "kmeans", "--chaos")[0] == 2
        assert self.run("serve-sim", "kmeans", "--chaos",
                        "--faults", str(PLAN_PATH))[0] == 2

    def test_flag_validation(self):
        assert self.run("serve-sim", "q1", "--retry", "0")[0] == 2
        assert self.run("serve-sim", "q1", "--timeout-ms", "-5")[0] == 2
        assert self.run("serve-sim", "q1", "--shed-depth", "0")[0] == 2
        assert self.run("serve-sim", "q1",
                        "--faults", "nosuch-plan.json")[0] == 2

    def test_slo_report_scores_rejections(self, tmp_path):
        out_file = tmp_path / "slo.json"
        code, _ = self.run(
            "slo-report", "q1", "--clients", "2", "--requests", "8",
            "--seed", "1", "--shed-depth", "1", "--rate", "5000",
            "--spec", str(REPO / "examples" / "slo_chaos.json"),
            "--out", str(out_file), "--json")
        doc = json.loads(out_file.read_text())
        avail = [o for o in doc["objectives"] if o["kind"] == "availability"]
        assert avail[0]["total"] == 8
        # shed requests are scored as bad; with depth 1 at 5000 rps the
        # budget is gone and the gate exits nonzero
        assert avail[0]["bad"] > 0
        assert code == 1
