"""Tests for the Fig. 3 nested pattern transformations.

Each rule is exercised on the paper's own motivating program shapes
(k-means, logistic regression, SQL-style aggregation) and checked for both
*applicability* (the structure changes as Fig. 3 says) and *semantic
preservation* (identical results on real data).
"""

import pytest

from repro import frontend as F
from repro.core import run_program
from repro.core import types as T
from repro.core.multiloop import GenKind, MultiLoop
from repro.core.values import deep_eq
from repro.optim import code_motion, cse, dce, fuse_vertical
from repro.transforms import (BucketRowToColumnReduce, ColumnToRowReduce,
                              ConditionalReduce, GroupByReduce,
                              RowToColumnReduce, apply_rule_once)

MAT = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0], [1.5, 0.5, 2.5]]
ASSIGN = [0, 1, 0, 1]


def mat_input(label="m", partitioned=True):
    return F.InputSpec(label, T.Coll(T.Coll(T.DOUBLE)), partitioned)


def prep(prog):
    """The standard phases that run before pattern transformation."""
    return code_motion(dce(fuse_vertical(cse(prog))))


def loop_kinds(prog):
    out = []
    for d in prog.body.stmts:
        if isinstance(d.op, MultiLoop):
            out.append(tuple(g.kind for g in d.op.gens))
    return out


def apply_at_top(prog, rule):
    new_body = apply_rule_once(prog.body, rule)
    if new_body is None:
        return None
    from repro.core.ir import Program
    return Program(prog.inputs, new_body)


class TestConditionalReduce:
    def _kmeans_inner(self):
        """The shared-memory k-means core (Fig. 1 top) reduced to its
        essential shape: per-cluster conditional sums over the dataset."""
        def fn(m, assigned):
            k = 2
            return F.irange(k).map(
                lambda i: assigned.filter_indices(lambda a: a == i)
                                  .map(lambda j: m[j])
                                  .sum_rows())
        return F.build(fn, [mat_input(), F.InputSpec("assigned", T.Coll(T.INT), True)])

    def test_matches_after_fusion(self):
        prog = prep(self._kmeans_inner())
        out = apply_at_top(prog, ConditionalReduce())
        assert out is not None, "Conditional Reduce did not match k-means"
        kinds = loop_kinds(out)
        assert (GenKind.BUCKET_REDUCE,) in kinds

    def test_preserves_semantics(self):
        prog = prep(self._kmeans_inner())
        out = apply_at_top(prog, ConditionalReduce())
        inputs = {"m": MAT, "assigned": ASSIGN}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(dce(out), inputs)
        assert deep_eq(before, after)
        # oracle check
        expect = []
        for c in (0, 1):
            rows = [MAT[j] for j in range(len(MAT)) if ASSIGN[j] == c]
            expect.append([sum(col) for col in zip(*rows)])
        assert deep_eq(before[0], expect)

    def test_does_not_match_without_eq_condition(self):
        def fn(m, assigned):
            return F.irange(2).map(
                lambda i: assigned.filter_indices(lambda a: a > i)
                                  .map(lambda j: m[j])
                                  .sum_rows())
        prog = prep(F.build(fn, [mat_input(),
                                 F.InputSpec("assigned", T.Coll(T.INT), True)]))
        assert apply_at_top(prog, ConditionalReduce()) is None

    def test_does_not_match_key_capturing_outer_index(self):
        # predicate sides both depend on the inner index -> no match
        def fn(xs):
            return F.irange(3).map(
                lambda i: xs.filter_indices(lambda x: x == x * 2).sum())
        prog = prep(F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)]))
        assert apply_at_top(prog, ConditionalReduce()) is None

    def test_scalar_conditional_sum(self):
        """Counting variant: how many elements fall in each class."""
        def fn(xs):
            return F.irange(3).map(
                lambda i: xs.filter_indices(lambda x: x % 3 == i)
                            .map(lambda j: 1)
                            .sum())
        prog = prep(F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)]))
        out = apply_at_top(prog, ConditionalReduce())
        assert out is not None
        xs = [4, 7, 2, 9, 6, 1]
        before, _ = run_program(prog, {"xs": xs})
        after, _ = run_program(dce(out), {"xs": xs})
        assert deep_eq(before, after)
        assert before[0] == [sum(1 for x in xs if x % 3 == i) for i in range(3)]


class TestGroupByReduce:
    def _aggregation(self):
        """§3.2's SQL aggregation: groupBy + per-group sum."""
        def fn(items):
            return items.group_by_value(lambda it: it % 4, lambda it: it) \
                        .map(lambda g: g.sum())
        return F.build(fn, [F.InputSpec("items", T.Coll(T.INT), True)])

    def test_matches_and_produces_bucket_reduce(self):
        prog = prep(self._aggregation())
        out = apply_at_top(prog, GroupByReduce())
        assert out is not None
        kinds = loop_kinds(dce(out))
        assert (GenKind.BUCKET_REDUCE,) in kinds
        assert (GenKind.BUCKET_COLLECT,) not in kinds  # buckets eliminated

    def test_preserves_semantics(self):
        prog = prep(self._aggregation())
        out = dce(apply_at_top(prog, GroupByReduce()))
        items = [13, 7, 22, 9, 4, 18, 31, 2]
        before, _ = run_program(prog, {"items": items})
        after, _ = run_program(out, {"items": items})
        assert deep_eq(before, after)

    def test_average_uses_count_bucket(self):
        """group average = sum/count: count becomes a BucketReduce of ones."""
        def fn(items):
            return items.group_by_value(lambda it: it % 3, lambda it: it) \
                        .map(lambda g: g.sum().to_double() / g.count())
        prog = prep(F.build(fn, [F.InputSpec("items", T.Coll(T.INT), True)]))
        out = apply_at_top(prog, GroupByReduce())
        assert out is not None
        out = dce(out)
        kinds = [k for ks in loop_kinds(out) for k in ks]
        assert kinds.count(GenKind.BUCKET_REDUCE) == 2  # sum + count
        items = [5, 9, 14, 3, 2, 8]
        before, _ = run_program(prog, {"items": items})
        after, _ = run_program(out, {"items": items})
        assert deep_eq(before, after)

    def test_no_match_when_bucket_escapes(self):
        def fn(items):
            # the group itself is the result — cannot eliminate buckets
            return items.group_by(lambda it: it % 3).map(lambda g: g)
        prog = prep(F.build(fn, [F.InputSpec("items", T.Coll(T.INT), True)]))
        assert apply_at_top(prog, GroupByReduce()) is None

    def test_vector_group_sums(self):
        """k-means as written distributed-style (Fig. 1 bottom)."""
        def fn(m, assigned):
            grouped = m.map_indices(lambda i: i).group_by_value(
                lambda i: assigned[i], lambda i: m[i])
            return grouped.map(lambda g: g.sum_rows())
        prog = prep(F.build(fn, [mat_input(),
                                 F.InputSpec("assigned", T.Coll(T.INT), True)]))
        out = apply_at_top(prog, GroupByReduce())
        assert out is not None
        inputs = {"m": MAT, "assigned": ASSIGN}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(dce(out), inputs)
        assert deep_eq(before, after)


class TestColumnToRow:
    def _logreg_gradient(self):
        """The §3.2 logistic-regression shape (hyp simplified to a dot
        product surrogate that keeps the access pattern)."""
        def fn(x, y):
            cols = x[0].length()
            return F.irange(cols).map(
                lambda j: x.length().to_double() * 0.0 + F.irange(x.length()).sum(
                    lambda i: x[i][j] * (y[i] - x[i][0])))
        return F.build(fn, [mat_input("x"),
                            F.InputSpec("y", T.Coll(T.DOUBLE), True)])

    def test_matches_and_vectorizes(self):
        prog = prep(self._logreg_gradient())
        out = apply_at_top(prog, ColumnToRowReduce())
        assert out is not None
        # a top-level Reduce over the rows now exists
        kinds = loop_kinds(dce(out))
        assert (GenKind.REDUCE,) in kinds

    def test_preserves_semantics(self):
        prog = prep(self._logreg_gradient())
        out = dce(apply_at_top(prog, ColumnToRowReduce()))
        y = [0.5, 1.5, -1.0, 2.0]
        inputs = {"x": MAT, "y": y}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(out, inputs)
        assert deep_eq(before, after)
        expect = [sum(MAT[i][j] * (y[i] - MAT[i][0]) for i in range(len(MAT)))
                  for j in range(3)]
        assert deep_eq(before[0], expect)

    def test_empty_inner_domain_yields_zero_vector(self):
        # zero rows: the transformed Reduce is empty and must fall back to
        # its zeros-vector identity, matching the untransformed program
        def fn(x, y, cols):
            return F.irange(cols).map(
                lambda j: F.irange(x.length()).sum(lambda i: x[i][j] * y[i]))
        prog = prep(F.build(fn, [mat_input("x"),
                                 F.InputSpec("y", T.Coll(T.DOUBLE), True),
                                 F.scalar_input("cols", T.INT)]))
        out = dce(apply_at_top(prog, ColumnToRowReduce()))
        inputs = {"x": [], "y": [], "cols": 3}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(out, inputs)
        assert deep_eq(before, after)
        assert before[0] == [0.0, 0.0, 0.0]


class TestRowToColumn:
    def test_inverts_column_to_row(self):
        """Reversibility (§3.2): C2R then R2C preserves semantics."""
        def fn(x, y):
            cols = x[0].length()
            return F.irange(cols).map(
                lambda j: F.irange(x.length()).sum(lambda i: x[i][j] * y[i]))
        prog = prep(F.build(fn, [mat_input("x"),
                                 F.InputSpec("y", T.Coll(T.DOUBLE), True)]))
        c2r = dce(apply_at_top(prog, ColumnToRowReduce()))
        r2c = apply_at_top(c2r, RowToColumnReduce())
        assert r2c is not None
        y = [1.0, -2.0, 0.5, 3.0]
        a, _ = run_program(prog, {"x": MAT, "y": y})
        b, _ = run_program(c2r, {"x": MAT, "y": y})
        c, _ = run_program(dce(r2c), {"x": MAT, "y": y})
        assert deep_eq(a, b) and deep_eq(b, c)

    def test_matches_direct_vector_reduce(self):
        """sumRows is a vector Reduce as written — R2C via the generic
        (element-indexed) template."""
        def fn(m):
            return m.sum_rows()
        prog = prep(F.build(fn, [mat_input()]))
        out = apply_at_top(prog, RowToColumnReduce())
        assert out is not None
        before, _ = run_program(prog, {"m": MAT})
        after, _ = run_program(dce(out), {"m": MAT})
        assert deep_eq(before, after)
        assert deep_eq(before[0], [sum(c) for c in zip(*MAT)])


class TestBucketRowToColumn:
    def test_kmeans_bucket_sums_transpose(self):
        """Vector-valued BucketReduce (k-means after Conditional Reduce)
        becomes per-feature scalar BucketReduces."""
        def fn(m, assigned):
            idx = m.map_indices(lambda i: i)
            return idx.group_by_reduce(
                lambda i: assigned[i], lambda i: m[i],
                lambda a, b: a.zip_with(b, lambda p, q: p + q))
        prog = prep(F.build(fn, [mat_input(),
                                 F.InputSpec("assigned", T.Coll(T.INT), True)]))
        out = apply_at_top(prog, BucketRowToColumnReduce())
        assert out is not None
        inputs = {"m": MAT, "assigned": ASSIGN}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(dce(out), inputs)
        assert deep_eq(before, after)

    def test_no_match_on_scalar_bucket_reduce(self):
        def fn(xs):
            return xs.group_by_reduce(lambda x: x % 2, lambda x: x,
                                      lambda a, b: a + b)
        prog = prep(F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)]))
        assert apply_at_top(prog, BucketRowToColumnReduce()) is None
