"""Tests for the simulated runtime: directories, partitioned arrays with
remote-read trapping, and the executor's scaling behavior."""

import pytest

from repro import frontend as F
from repro.core import types as T
from repro.core.values import deep_eq
from repro.data.datasets import gaussian_clusters
from repro.apps.kmeans import kmeans_oracle, kmeans_shared_program
from repro.pipeline import compile_program
from repro.runtime import (DELITE, DMLL_CPP, DMLL_PIN_ONLY, EC2_CLUSTER,
                           GPU_CLUSTER, NUMA_BOX, SPARK, Directory,
                           ExecOptions, PartitionedArray, simulate,
                           set_reader_location)


class TestDirectory:
    def test_even_split(self):
        d = Directory.even(10, 3)
        assert d.ranges() == [(0, 4), (4, 7), (7, 10)]
        assert sum(d.size_of(p) for p in range(3)) == 10

    def test_owner(self):
        d = Directory.even(10, 3)
        assert d.owner(0) == 0
        assert d.owner(3) == 0
        assert d.owner(4) == 1
        assert d.owner(9) == 2
        with pytest.raises(IndexError):
            d.owner(10)

    def test_more_parts_than_elements(self):
        d = Directory.even(2, 8)
        assert d.num_partitions == 2

    def test_empty(self):
        d = Directory.even(0, 4)
        assert d.num_partitions == 1
        assert d.ranges() == [(0, 0)]


class TestPartitionedArray:
    def test_reads_without_context_are_untracked(self):
        pa = PartitionedArray([1, 2, 3, 4], parts=2)
        assert pa[0] == 1
        assert pa.local_reads == 0 and pa.remote_reads == 0

    def test_remote_read_trapping(self):
        pa = PartitionedArray(list(range(8)), parts=2)
        set_reader_location(0)
        try:
            assert pa[1] == 1    # local to partition 0
            assert pa[6] == 6    # owned by partition 1 -> trapped
        finally:
            set_reader_location(None)
        assert pa.local_reads == 1
        assert pa.remote_reads == 1
        assert pa.remote_bytes == 8

    def test_local_chunk(self):
        pa = PartitionedArray(list(range(10)), parts=3)
        assert list(pa.local_chunk(0)) == [0, 1, 2, 3]

    def test_interp_consumes_partitioned_array(self):
        """The reference interpreter reads PartitionedArray unchanged."""
        from repro.core import run_program
        prog = F.build(lambda xs: xs.map(lambda x: x * 2).sum(),
                       [F.InputSpec("xs", T.Coll(T.INT), True)])
        pa = PartitionedArray([1, 2, 3, 4, 5], parts=2)
        (out,), _ = run_program(prog, {"xs": pa})
        assert out == 30


@pytest.fixture(scope="module")
def kmeans_sim():
    matrix, _ = gaussian_clusters(600, 8, k=4)
    clusters = matrix[:4]
    compiled = compile_program(kmeans_shared_program(), "distributed")
    inputs = {"matrix": matrix, "clusters": clusters}
    return compiled, inputs, matrix, clusters


class TestSimulator:
    def test_results_are_functionally_correct(self, kmeans_sim):
        compiled, inputs, matrix, clusters = kmeans_sim
        res = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP)
        assert deep_eq(res.results[0], kmeans_oracle(matrix, clusters))

    def test_time_is_positive_and_decomposed(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        res = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP)
        assert res.total_seconds > 0
        assert res.loops
        assert abs(sum(l.time_s for l in res.loops) - res.total_seconds) < 1e-12

    def test_more_cores_is_faster(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        t = {}
        for c in (1, 12, 48):
            res = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                           ExecOptions(cores=c, scale=800.0))
            t[c] = res.total_seconds
        assert t[1] > t[12] > t[48]

    def test_sequential_option(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        seq = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                       ExecOptions(sequential=True, scale=800.0))
        par = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                       ExecOptions(scale=800.0))
        assert seq.total_seconds > par.total_seconds

    def test_numa_aware_beats_pin_only_at_four_sockets(self, kmeans_sim):
        """Fig. 7: partitioning adds bandwidth beyond one socket."""
        compiled, inputs, *_ = kmeans_sim
        aware = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                         ExecOptions(cores=48))
        pin = simulate(compiled, inputs, NUMA_BOX, DMLL_PIN_ONLY,
                       ExecOptions(cores=48))
        assert aware.total_seconds <= pin.total_seconds

    def test_spark_profile_is_slower(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        dmll = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP,
                        ExecOptions(cores=48))
        spark = simulate(compiled, inputs, NUMA_BOX, SPARK,
                         ExecOptions(cores=48))
        assert spark.total_seconds > 3 * dmll.total_seconds

    def test_cluster_distribution_scales(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        one = simulate(compiled, inputs, EC2_CLUSTER, DMLL_CPP,
                       ExecOptions(cores=1, scale=800.0)).total_seconds
        # 20 machines x 4 cores beats 1 core even with comm overheads
        full = simulate(compiled, inputs, EC2_CLUSTER, DMLL_CPP,
                        ExecOptions(scale=800.0)).total_seconds
        assert full < one

    def test_gpu_execution(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        gpu = simulate(compiled, inputs, GPU_CLUSTER, DMLL_CPP,
                       ExecOptions(use_gpu=True, gpu_transposed=True))
        assert gpu.total_seconds > 0
        assert deep_eq(gpu.results[0],
                       simulate(compiled, inputs, GPU_CLUSTER,
                                DMLL_CPP).results[0])

    def test_gpu_transpose_helps(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        plain = simulate(compiled, inputs, GPU_CLUSTER, DMLL_CPP,
                         ExecOptions(use_gpu=True, gpu_transposed=False))
        transposed = simulate(compiled, inputs, GPU_CLUSTER, DMLL_CPP,
                              ExecOptions(use_gpu=True, gpu_transposed=True))
        assert transposed.total_seconds < plain.total_seconds

    def test_breakdown_renders(self, kmeans_sim):
        compiled, inputs, *_ = kmeans_sim
        res = simulate(compiled, inputs, NUMA_BOX, DMLL_CPP)
        text = res.breakdown()
        assert "total" in text and "ms" in text
