"""Trace analytics (DESIGN.md §12): critical-path extraction, exact
per-request latency decomposition, differential trace diff, and the
regression root-cause reports the observatory emits on gate failure.

The synthetic-tree tests pin the algorithms where the right answer is
computable by hand; the end-to-end tests drive real priced runs and
seeded serving simulations and hold the two hard guarantees: the
decomposition identity is exact (tolerance 0.0), and same-seed
``analyze --json`` output is byte-identical.
"""

import io
import json
import math
from contextlib import redirect_stdout

import pytest

from repro import tools
from repro.bench import get_bundle
from repro.obs import Span, Tracer
from repro.obs.analyze import (COMPONENTS, LoopDelta, decompose_timeline,
                               decomposition_summary, diff_loop_rows,
                               diff_span_trees, loop_rows_from_sim,
                               request_decomposition,
                               root_cause_from_records, root_cause_json)
from repro.obs.critical import critical_path, fleet_attribution
from repro.obs.history import RunRecord
from repro.obs.spans import RequestContext, RequestTimeline
from repro.serve import ServeSim

TOL = 1e-9


def run_cli(*argv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = tools.main(list(argv))
    return code, buf.getvalue()


# ---------------------------------------------------------------------------
# critical path: synthetic trees
# ---------------------------------------------------------------------------

def make_run(children):
    """A run span with (start, dur) loop children and a matching total."""
    total = max((s + d for s, d in children), default=0.0)
    root = Span("run", "run", 0.0, total)
    for i, (s, d) in enumerate(children):
        root.child(f"loop{i}", "loop", s, d)
    return root


class TestCriticalPath:
    def test_sequential_children_all_on_path(self):
        root = make_run([(0.0, 1.0), (1.0, 2.0), (3.0, 1.0)])
        cp = critical_path(root)
        names = [s.span.name for s in cp.steps]
        assert names == ["run", "loop0", "loop1", "loop2"]
        # leaves own their full duration; the parent has no self time
        assert cp.steps[0].self_s == pytest.approx(0.0, abs=TOL)
        assert cp.attributed_s == pytest.approx(cp.total_s, abs=TOL)

    def test_gap_is_parent_self_time(self):
        root = make_run([(0.0, 1.0), (2.0, 2.0)])  # hole in [1, 2)
        cp = critical_path(root)
        run_step = next(s for s in cp.steps if s.span.kind == "run")
        assert run_step.self_s == pytest.approx(1.0, abs=TOL)
        assert cp.attributed_s == pytest.approx(4.0, abs=TOL)

    def test_overlapping_children_pick_bounding_chain(self):
        # loopB ends last and bounds the end; loopA is fully shadowed
        root = Span("run", "run", 0.0, 4.0)
        root.child("loopA", "loop", 0.0, 2.0)
        root.child("loopB", "loop", 0.0, 4.0)
        cp = critical_path(root)
        names = [s.span.name for s in cp.steps]
        assert names == ["run", "loopB"]
        assert cp.attributed_s == pytest.approx(4.0, abs=TOL)

    def test_deterministic_under_child_order(self):
        a = make_run([(0.0, 1.0), (1.0, 2.0), (3.0, 1.5)])
        b = make_run([(0.0, 1.0), (1.0, 2.0), (3.0, 1.5)])
        b.children.reverse()
        pa = [(s.span.name, s.self_s) for s in critical_path(a).steps]
        pb = [(s.span.name, s.self_s) for s in critical_path(b).steps]
        assert pa == pb

    def test_nested_self_time_attribution(self):
        # loop [0,4) with machine chunk [0,3): 1s of loop self time
        root = Span("run", "run", 0.0, 4.0)
        loop = root.child("loop", "loop", 0.0, 4.0)
        loop.child("loop/m0", "machine", 0.0, 3.0)
        cp = critical_path(root)
        loop_step = next(s for s in cp.steps if s.span.name == "loop")
        assert loop_step.self_s == pytest.approx(1.0, abs=TOL)
        assert cp.attributed_s == pytest.approx(4.0, abs=TOL)

    def test_kind_filter(self):
        root = Span("run", "run", 0.0, 4.0)
        loop = root.child("loop", "loop", 0.0, 4.0)
        loop.child("loop/m0", "machine", 0.0, 4.0)
        cp = critical_path(root, kinds=("loop",))
        assert [s.span.kind for s in cp.steps] == ["run", "loop"]
        # the machine child is excluded, so the loop owns its time
        assert cp.steps[-1].self_s == pytest.approx(4.0, abs=TOL)


class TestCriticalPathReal:
    def test_attribution_covers_total(self):
        tracer = Tracer()
        sim = get_bundle("kmeans").simulate(tracer=tracer)
        cp = critical_path(tracer.last_run)
        assert cp.total_s == pytest.approx(sim.total_seconds, abs=TOL)
        assert cp.attributed_s == pytest.approx(cp.total_s, rel=1e-9)
        # chronological and inside the run
        starts = [s.span.start_s for s in cp.steps]
        assert starts == sorted(starts)
        assert cp.render()  # renders without blowing up
        doc = cp.to_json()
        assert doc["steps"] and doc["total_s"] == cp.total_s

    def test_dominant_loop_is_most_expensive(self):
        tracer = Tracer()
        sim = get_bundle("kmeans").simulate(tracer=tracer)
        cp = critical_path(tracer.last_run)
        dom = cp.dominant(kind="loop")
        heaviest = max(sim.loops, key=lambda l: l.time_s)
        assert dom is not None and dom.span.name == heaviest.name


# ---------------------------------------------------------------------------
# exact latency decomposition
# ---------------------------------------------------------------------------

def timeline(**marks):
    tl = RequestTimeline(RequestContext.derive(0, 0))
    for stage, t in marks.items():
        tl.mark(stage, t)
    return tl


class TestDecomposition:
    def test_components_are_mark_intervals(self):
        tl = timeline(arrive=1.0, enqueue=1.0, seal=1.02, dispatch=1.02,
                      exec_start=1.025, complete=1.035)
        comps = decompose_timeline(tl)
        assert comps["admission_s"] == pytest.approx(0.0, abs=TOL)
        assert comps["batch_window_s"] == pytest.approx(0.02, abs=TOL)
        assert comps["stagger_s"] == pytest.approx(0.005, abs=TOL)
        assert comps["execution_s"] == pytest.approx(0.01, abs=TOL)
        assert comps["latency_s"] == tl.marks["complete"] - tl.marks["arrive"]

    def test_identity_exact_tol_zero(self):
        tl = timeline(arrive=0.0031, enqueue=0.0031, seal=0.0231,
                      dispatch=0.0231, exec_start=0.0231, complete=0.0268)
        comps = decompose_timeline(tl)
        assert sum(comps[c] for c in COMPONENTS) == comps["latency_s"]

    def test_identity_exact_adversarial_magnitudes(self):
        # remainder >> accumulated prefix: the regime where a naive
        # `latency - acc` remainder is not bit-exact without correction
        base = 1.0
        for eps in (2.0 ** -53, 2.0 ** -40, 1e-9):
            tl = timeline(arrive=base, enqueue=base + eps,
                          seal=base + eps, dispatch=base + eps,
                          exec_start=base + eps,
                          complete=base + math.pi / 3)
            comps = decompose_timeline(tl)
            assert sum(comps[c] for c in COMPONENTS) == comps["latency_s"]

    def test_missing_bounding_marks(self):
        assert decompose_timeline(timeline(arrive=0.0)) is None
        assert decompose_timeline(timeline(complete=1.0)) is None

    def test_missing_middle_marks_collapse_to_zero(self):
        comps = decompose_timeline(timeline(arrive=0.0, complete=0.5))
        assert comps["admission_s"] == 0.0
        assert comps["batch_window_s"] == 0.0
        assert comps["execution_s"] == 0.5
        assert sum(comps[c] for c in COMPONENTS) == comps["latency_s"]


class TestServeDecomposition:
    @pytest.fixture(scope="class")
    def served(self):
        tracer = Tracer()
        sim = ServeSim(["kmeans"], max_batch=4, max_wait_s=0.02,
                       backend="numpy", tracer=tracer)
        report = sim.run_closed(clients=4, requests=12, seed=3)
        return sim, report, tracer

    def test_every_request_decomposes_exactly(self, served):
        sim, report, _tracer = served
        rows = request_decomposition(sim.last_server)
        assert len(rows) == report.requests
        for r in rows:
            assert sum(r[c] for c in COMPONENTS) == r["latency_s"]
            assert all(r[c] >= 0.0 for c in COMPONENTS)

    def test_report_carries_decomposition_section(self, served):
        _sim, report, _tracer = served
        doc = report.to_json()
        assert doc["decomposition"]["requests"] == report.requests
        comps = doc["decomposition"]["components"]
        assert comps["latency_s"]["mean_s"] == pytest.approx(
            report.latency_mean_s, rel=1e-9)
        assert set(doc["decomposition"]["per_app"]) == {"kmeans"}
        assert doc["decomposition"]["per_machine"]
        # per-group counts partition the run
        assert sum(v["count"] for v in
                   doc["decomposition"]["per_machine"].values()) \
            == report.requests

    def test_untraced_run_has_no_decomposition(self):
        sim = ServeSim(["kmeans"], max_batch=4, max_wait_s=0.02,
                       backend="numpy")
        report = sim.run_closed(clients=4, requests=8, seed=3)
        assert report.decomposition is None
        assert decomposition_summary(sim.last_server) is None
        assert "decomposition" not in report.to_json()

    def test_fleet_attribution(self, served):
        _sim, report, tracer = served
        fleet = fleet_attribution(tracer.last_run)
        assert fleet.makespan_s == pytest.approx(report.makespan_s,
                                                 abs=TOL)
        # busy time matches the report's utilization accounting
        busy = {f"{m.name}[{m.machine}]": m.busy_s for m in fleet.machines}
        for name, util in report.machine_util.items():
            assert busy.get(name, 0.0) == pytest.approx(
                util * report.makespan_s, rel=1e-9)
        # the critical chain tiles the makespan: batch segments plus
        # arrival-bound waits
        on_path = sum(m.critical_s for m in fleet.machines)
        assert on_path + fleet.wait_s == pytest.approx(fleet.makespan_s,
                                                       rel=1e-9)
        assert all(m.critical_s <= m.busy_s + TOL for m in fleet.machines)
        assert fleet.render() and fleet.to_json()["machines"]


# ---------------------------------------------------------------------------
# differential diff
# ---------------------------------------------------------------------------

def rows(spec):
    """[(name, op, time, compute), ...] -> breakdown rows."""
    return [{"loop": n, "op": op, "workers": 4, "time_s": t,
             "compute_s": c, "memory_s": 0.0, "comm_s": t - c,
             "overhead_s": 0.0} for n, op, t, c in spec]


class TestDiff:
    def test_alignment_strips_symbol_ids(self):
        a = rows([("cs12", "MultiFold", 1.0, 0.8)])
        b = rows([("cs97", "MultiFold", 1.5, 1.3)])
        (d,) = diff_loop_rows(a, b)
        assert d.status == "both" and d.key == "cs#"
        assert d.delta_s == pytest.approx(0.5, abs=TOL)
        assert d.driver()[0] == "compute_s"

    def test_structural_change_reported_not_misaligned(self):
        a = rows([("cs1", "MultiFold", 1.0, 1.0),
                  ("xs2", "MultiCollect", 0.5, 0.5)])
        b = rows([("cs9", "MultiFold", 1.0, 1.0)])
        deltas = diff_loop_rows(a, b)
        by_status = {d.status: d for d in deltas}
        assert by_status["only_a"].key == "xs#"
        assert by_status["both"].delta_s == pytest.approx(0.0, abs=TOL)

    def test_repeated_stripped_names_pair_positionally(self):
        a = rows([("m1", "MultiCollect", 1.0, 1.0),
                  ("m2", "MultiCollect", 2.0, 2.0)])
        b = rows([("m7", "MultiCollect", 1.1, 1.1),
                  ("m8", "MultiCollect", 2.4, 2.4)])
        deltas = diff_loop_rows(a, b)
        assert sorted(round(d.delta_s, 6) for d in deltas) == [0.1, 0.4]

    def test_sorted_by_absolute_delta(self):
        a = rows([("a1", "F", 1.0, 1.0), ("b1", "F", 1.0, 1.0)])
        b = rows([("a2", "F", 1.1, 1.1), ("b2", "F", 3.0, 3.0)])
        deltas = diff_loop_rows(a, b)
        assert deltas[0].key == "b#"

    def test_span_tree_diff_across_processes(self):
        # two traced runs of the same app: loop names may carry
        # different symbol ids, but the diff must align and be ~zero
        t1, t2 = Tracer(), Tracer()
        get_bundle("q1").simulate(tracer=t1)
        get_bundle("q1").simulate(tracer=t2)
        deltas = diff_span_trees(t1.last_run, t2.last_run)
        assert deltas and all(d.status == "both" for d in deltas)
        assert all(abs(d.delta_s) < 1e-12 for d in deltas)


# ---------------------------------------------------------------------------
# root cause from history records
# ---------------------------------------------------------------------------

def record(app="kmeans", wall=0.02, sim_s=0.004, cycles=1000, digest="aaaa",
           fallbacks=0, ts=1.0, per_loop=None, decisions=None):
    extra = {"cluster": "numa-4x12"}
    if per_loop is not None:
        extra["per_loop"] = per_loop
    if decisions is not None:
        extra["decisions"] = decisions
    return RunRecord(app=app, backend="numpy", git_sha="abc1234",
                     wall_s=wall, sim_s=sim_s, cycles=cycles,
                     fallbacks=fallbacks, digest=digest, timestamp=ts,
                     extra=extra)


class TestRootCause:
    def test_needs_two_records(self):
        assert root_cause_from_records("kmeans", [record()]) is None

    def test_dominant_loop_and_machine_named(self):
        base_loops = rows([("bktred", "MultiFold", 0.003, 0.003),
                           ("mapidx", "MultiCollect", 0.001, 0.001)])
        hot_loops = rows([("bktred", "MultiFold", 0.009, 0.009),
                          ("mapidx", "MultiCollect", 0.001, 0.001)])
        recs = [record(ts=1.0, per_loop=base_loops),
                record(ts=2.0, sim_s=0.010, per_loop=hot_loops)]
        rc = root_cause_from_records("kmeans", recs)
        dom = rc.dominant()
        assert dom.key == "bktred" and dom.driver()[0] == "compute_s"
        text = rc.render()
        assert "dominant contributor: loop bktred" in text
        assert "on numa-4x12" in text
        assert "digest stable" in text
        doc = json.loads(root_cause_json(rc))
        assert doc["dominant"]["loop"] == "bktred"
        assert doc["cluster"] == "numa-4x12"

    def test_ledger_cross_reference_on_digest_drift(self):
        keys_a = ["fusion-vertical|cs#|applied|fused producer|x1",
                  "transform|xs#|applied|Fig3a|x1"]
        keys_b = ["fusion-vertical|cs#|applied|fused producer|x1",
                  "transform|xs#|rejected|guard failed|x1"]
        recs = [record(ts=1.0, digest="aaaa", decisions=keys_a,
                       per_loop=rows([("cs1", "F", 1.0, 1.0)])),
                record(ts=2.0, digest="bbbb", decisions=keys_b,
                       per_loop=rows([("cs2", "F", 1.2, 1.2)]))]
        rc = root_cause_from_records("kmeans", recs)
        assert rc.digest_drifted
        assert rc.ledger_only_baseline == ["transform|xs#|applied|Fig3a|x1"]
        assert rc.ledger_only_latest == \
            ["transform|xs#|rejected|guard failed|x1"]
        text = rc.render()
        assert "digest drifted aaaa -> bbbb" in text
        assert "+ transform|xs#|rejected|guard failed|x1" in text
        assert "--explain-diff" in text

    def test_baseline_is_rolling_median_record(self):
        # walls 10/20/30 -> median 20 -> that record is the baseline
        recs = [record(ts=1.0, wall=0.010, digest="d1"),
                record(ts=2.0, wall=0.030, digest="d2"),
                record(ts=3.0, wall=0.020, digest="d3"),
                record(ts=4.0, wall=0.040, digest="d3")]
        rc = root_cause_from_records("kmeans", recs)
        assert rc.baseline.digest == "d3" and rc.baseline.wall_s == 0.020

    def test_degrades_without_per_loop_telemetry(self):
        recs = [record(ts=1.0), record(ts=2.0)]
        rc = root_cause_from_records("kmeans", recs)
        assert rc.dominant() is None
        assert any("per-loop breakdown missing" in n for n in rc.notes)
        assert rc.render()


# ---------------------------------------------------------------------------
# forced regression end to end: inflate one loop, gate fails, report
# names the loop and its machine
# ---------------------------------------------------------------------------

class TestForcedRegression:
    def _record_run(self, tmp_path, monkeypatch, inflate=None, ts=1.0):
        from repro.obs.history import append_record, git_sha
        from repro.obs.provenance import strip_ids
        if inflate is not None:
            monkeypatch.setenv("REPRO_INFLATE_LOOP", inflate)
        else:
            monkeypatch.delenv("REPRO_INFLATE_LOOP", raising=False)
        bundle = get_bundle("kmeans")
        sim = bundle.simulate("opt")
        led = bundle.compiled("opt").provenance
        per_loop = [{"loop": ls.name, "key": strip_ids(ls.name),
                     "op": ls.op_name, "workers": ls.workers,
                     "time_s": ls.time_s, "compute_s": ls.compute_s,
                     "memory_s": ls.memory_s, "comm_s": ls.comm_s,
                     "overhead_s": ls.overhead_s} for ls in sim.loops]
        append_record(RunRecord(
            app="kmeans", backend="numpy", git_sha=git_sha(),
            wall_s=0.02, sim_s=sim.total_seconds, cycles=1000,
            fallbacks=0, digest=led.digest() if led else "",
            timestamp=ts,
            extra={"cluster": "numa-4x12", "per_loop": per_loop,
                   "decisions": led.normalized_keys() if led else []}),
            root=tmp_path)
        return sim

    def test_inflation_env_knob(self, monkeypatch):
        bundle = get_bundle("kmeans")
        monkeypatch.delenv("REPRO_INFLATE_LOOP", raising=False)
        base = bundle.simulate("opt")
        hot_name = max(base.loops, key=lambda l: l.time_s).name
        monkeypatch.setenv("REPRO_INFLATE_LOOP", f"{hot_name}:3.0")
        hot = bundle.simulate("opt")
        base_hot = next(l for l in base.loops if l.name == hot_name)
        infl_hot = next(l for l in hot.loops if l.name == hot_name)
        assert infl_hot.compute_s == pytest.approx(3.0 * base_hot.compute_s,
                                                   rel=1e-12)
        # only the targeted loop changed
        for b, h in zip(base.loops, hot.loops):
            if b.name != hot_name:
                assert h.time_s == b.time_s
        assert hot.total_seconds > base.total_seconds

    def test_gate_fails_and_report_names_loop_and_machine(
            self, tmp_path, monkeypatch, capsys):
        from repro.obs import regress
        base = self._record_run(tmp_path, monkeypatch, ts=1.0)
        self._record_run(tmp_path, monkeypatch, ts=2.0)
        hot_name = max(base.loops, key=lambda l: l.time_s).name
        self._record_run(tmp_path, monkeypatch,
                         inflate=f"{hot_name}:3.0", ts=3.0)
        out_dir = tmp_path / "reports"
        code = regress.main(["--history", str(tmp_path),
                             "--report-out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == regress.EXIT_FAIL
        assert "simulated-time regression" in out
        # the root-cause report names the loop and its machine
        assert f"dominant contributor: loop {hot_name}" in out
        assert "on numa-4x12" in out
        assert "digest stable" in out  # same compile, cost-only change
        report = json.loads(
            (out_dir / "root-cause-kmeans.json").read_text())
        assert report["dominant"]["loop"] == hot_name
        assert report["cluster"] == "numa-4x12"
        assert report["problems"]

    def test_unset_knob_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_INFLATE_LOOP", raising=False)
        bundle = get_bundle("q1")
        a = bundle.simulate("opt")
        b = bundle.simulate("opt")
        assert a.total_seconds == b.total_seconds
        assert [l.time_s for l in a.loops] == [l.time_s for l in b.loops]


# ---------------------------------------------------------------------------
# the analyze CLI
# ---------------------------------------------------------------------------

class TestAnalyzeCli:
    def test_critical_path_mode(self):
        code, out = run_cli("analyze", "kmeans", "--critical-path")
        assert code == 0
        assert "critical path: kmeans" in out
        assert "dominant loop:" in out

    def test_requests_mode_exact(self):
        code, out = run_cli("analyze", "kmeans", "--requests",
                            "--count", "8", "--clients", "4")
        assert code == 0
        assert "decomposition exact" in out
        assert "fleet attribution" in out

    def test_same_seed_json_byte_identical(self):
        args = ("analyze", "kmeans", "--requests", "--json",
                "--count", "8", "--clients", "4", "--seed", "7")
        code1, out1 = run_cli(*args)
        code2, out2 = run_cli(*args)
        assert code1 == code2 == 0
        assert out1 == out2
        doc = json.loads(out1)
        assert doc["exact"] is True
        assert len(doc["requests"]) == 8
        for r in doc["requests"]:
            assert sum(r[c] for c in COMPONENTS) == r["latency_s"]

    def test_diff_mode_with_history(self, tmp_path):
        from repro.obs.history import append_record
        append_record(record(ts=1.0,
                             per_loop=rows([("cs1", "F", 1.0, 1.0)])),
                      root=tmp_path)
        append_record(record(ts=2.0, sim_s=0.006,
                             per_loop=rows([("cs2", "F", 1.5, 1.5)])),
                      root=tmp_path)
        code, out = run_cli("analyze", "kmeans", "--diff", "prev",
                            "latest", "--history", str(tmp_path))
        assert code == 0
        assert "root-cause report: kmeans" in out
        assert "cs#" in out

    def test_diff_mode_bootstrap_is_informational(self, tmp_path):
        code, out = run_cli("analyze", "kmeans", "--diff", "prev",
                            "latest", "--history", str(tmp_path))
        assert code == 0
        assert "nothing to report" in out

    def test_diff_mode_bad_refs(self, tmp_path):
        from repro.obs.history import append_record
        append_record(record(ts=1.0), root=tmp_path)
        append_record(record(ts=2.0), root=tmp_path)
        code, _ = run_cli("analyze", "kmeans", "--diff", "oops",
                          "latest", "--history", str(tmp_path))
        assert code == 2

    def test_usage_errors(self):
        code, _ = run_cli("analyze")
        assert code == 2
        code, _ = run_cli("analyze", "not-an-app")
        assert code == 2


# ---------------------------------------------------------------------------
# zero cost when disabled
# ---------------------------------------------------------------------------

class TestZeroCost:
    def test_plain_sim_allocates_no_analytics_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_INFLATE_LOOP", raising=False)
        sim = get_bundle("kmeans").simulate("opt")
        assert all(l.detail is None for l in sim.loops)

    def test_regress_checker_unchanged_without_extras(self):
        # records without per_loop/decisions still pass the gate logic
        from repro.obs.regress import check_records
        recs = [RunRecord(app="a", backend="numpy", git_sha="x",
                          wall_s=0.01, sim_s=0.001, cycles=100,
                          fallbacks=0, digest="d", timestamp=float(i + 1))
                for i in range(4)]
        v = check_records("a", recs)
        assert v.ok
