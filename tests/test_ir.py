"""Unit tests for IR node mechanics: substitution, free symbols, refresh."""

from repro.core import types as T
from repro.core.ir import (Block, Const, Def, Program, Sym, def_index,
                           free_sym_set, fresh, inline_block, refresh_block,
                           subst_block, uses_in_block)
from repro.core.multiloop import MultiLoop, collect
from repro.core.ops import ArrayApply, Prim


def _add_block(extra: Sym) -> Block:
    """(i) => { t = add(i, extra); t }"""
    i = fresh(T.INT, "i")
    t = fresh(T.INT, "t")
    return Block((i,), (Def((t,), Prim("add", (i, extra))),), (t,))


def test_const_type_inference():
    assert Const(True).tpe == T.BOOL
    assert Const(3).tpe == T.INT
    assert Const(1.5).tpe == T.DOUBLE
    assert Const("s").tpe == T.STRING


def test_sym_identity():
    a = fresh(T.INT)
    b = fresh(T.INT)
    assert a != b
    assert a == Sym(a.id, T.INT, "other_name")  # identity is the id
    assert len({a, b, Sym(a.id, T.INT)}) == 2


def test_free_syms():
    outer = fresh(T.INT, "free")
    blk = _add_block(outer)
    assert free_sym_set(blk) == {outer}


def test_free_syms_shadowed_by_defs():
    i = fresh(T.INT, "i")
    t = fresh(T.INT, "t")
    u = fresh(T.INT, "u")
    blk = Block((i,), (Def((t,), Prim("add", (i, i))),
                       Def((u,), Prim("mul", (t, t)))), (u,))
    assert free_sym_set(blk) == set()


def test_subst_block_replaces_free_only():
    outer = fresh(T.INT, "free")
    repl = fresh(T.INT, "repl")
    blk = _add_block(outer)
    blk2 = subst_block(blk, {outer: repl})
    assert free_sym_set(blk2) == {repl}
    # param is never substituted
    blk3 = subst_block(blk, {blk.params[0]: repl})
    assert blk3 == blk


def test_refresh_block_freshens_everything():
    outer = fresh(T.INT, "free")
    blk = _add_block(outer)
    blk2 = refresh_block(blk)
    assert blk2.params[0] != blk.params[0]
    assert blk2.stmts[0].sym != blk.stmts[0].sym
    assert free_sym_set(blk2) == {outer}  # free syms preserved


def test_inline_block():
    outer = fresh(T.INT, "free")
    blk = _add_block(outer)
    arg = fresh(T.INT, "arg")
    stmts = []
    res = inline_block(blk, [arg], stmts)
    assert len(stmts) == 1
    assert isinstance(res, Sym)
    op = stmts[0].op
    assert isinstance(op, Prim) and op.name == "add"
    assert op.args == (arg, outer)


def test_def_index_and_uses():
    arr = fresh(T.Coll(T.INT), "arr")
    i = fresh(T.INT, "i")
    e = fresh(T.INT, "e")
    t = fresh(T.INT, "t")
    blk = Block((i,), (Def((e,), ArrayApply(arr, i)),
                       Def((t,), Prim("add", (e, e)))), (t,))
    idx = def_index(blk)
    assert idx[e].op == ArrayApply(arr, i)
    assert uses_in_block(blk, e) == 2
    assert uses_in_block(blk, arr) == 1


def test_multiloop_result_types_and_rebuild():
    arr = fresh(T.Coll(T.DOUBLE), "arr")
    i = fresh(T.INT, "i")
    e = fresh(T.DOUBLE, "e")
    value = Block((i,), (Def((e,), ArrayApply(arr, i)),), (e,))
    loop = MultiLoop(Const(10), (collect(value),))
    assert loop.result_types() == (T.Coll(T.DOUBLE),)
    rebuilt = loop.with_children(list(loop.inputs()), list(loop.blocks()))
    assert rebuilt == loop


def test_program_output_types():
    arr = fresh(T.Coll(T.DOUBLE), "arr")
    prog = Program((arr,), Block((), (), (arr,)))
    assert prog.output_types() == (T.Coll(T.DOUBLE),)
