"""Tests for the baseline frameworks: functional correctness against the
same oracles as DMLL, plus the structural overheads they are supposed to
exhibit."""

import pytest

from repro.apps.gda import gda_oracle
from repro.apps.gibbs import gibbs_oracle_sweep
from repro.apps.kmeans import kmeans_oracle
from repro.apps.logreg import logreg_oracle
from repro.apps.tpch import q1_oracle
from repro.apps.gene import gene_oracle
from repro.baselines import (DimmWittedEngine, PowerGraphEngine,
                             SparkContext, powergraph_pagerank,
                             powergraph_triangles, replication_factor)
from repro.baselines.spark_apps import (spark_gda, spark_gene, spark_kmeans_iteration,
                                        spark_logreg_iteration, spark_q1)
from repro.core.values import deep_eq
from repro.data.datasets import binary_labeled, gaussian_clusters, logistic_data
from repro.data.factor_graphs import grid_ising, random_states, random_uniforms
from repro.data.graphs import power_law_graph
from repro.data.tpch_gen import generate_lineitems
from repro.graph.optigraph import pagerank_oracle, triangle_oracle
from repro.runtime import EC2_CLUSTER, NUMA_BOX


class TestMiniSpark:
    def test_kmeans_iteration_matches_oracle(self):
        matrix, _ = gaussian_clusters(120, 5, k=3)
        clusters = matrix[:3]
        sc = SparkContext(EC2_CLUSTER)
        points = sc.parallelize(matrix).cache()
        new = spark_kmeans_iteration(sc, points, clusters)
        assert deep_eq(new, kmeans_oracle(matrix, clusters))

    def test_logreg_iteration_matches_oracle(self):
        x, y = logistic_data(80, 4)
        theta = [0.05] * 4
        sc = SparkContext(EC2_CLUSTER)
        data = sc.parallelize(list(zip(x, y))).cache()
        new = spark_logreg_iteration(sc, data, theta, 0.1)
        assert deep_eq(new, logreg_oracle(x, y, theta, 0.1))

    def test_q1_matches_oracle(self):
        rows = generate_lineitems(250)
        sc = SparkContext(EC2_CLUSTER)
        out = spark_q1(sc, sc.parallelize(rows))
        assert deep_eq(out, q1_oracle(rows))

    def test_gene_matches_oracle(self):
        rows = [(b % 20, b % 5, (b % 10) / 10.0, 0, 0) for b in range(150)]
        sc = SparkContext(EC2_CLUSTER)
        out = spark_gene(sc, sc.parallelize(rows))
        oc, oq, og = gene_oracle(rows)
        assert deep_eq(out, {k: (oc[k], oq[k], og[k]) for k in oc})

    def test_gda_matches_oracle(self):
        x, y = binary_labeled(40, 3)
        sc = SparkContext(EC2_CLUSTER)
        phi, mu, sigma = spark_gda(sc, sc.parallelize(list(zip(x, y))), 3)
        ophi, omu, osigma = gda_oracle(x, y)
        assert deep_eq(phi, ophi) and deep_eq(mu, omu) and deep_eq(sigma, osigma)

    def test_shuffle_bytes_accounted(self):
        rows = generate_lineitems(200)
        sc = SparkContext(EC2_CLUSTER)
        spark_q1(sc, sc.parallelize(rows))
        assert sc.stats.shuffle_bytes > 0
        assert sc.stats.stages >= 1
        assert sc.stats.sim_seconds > 0

    def test_lazy_lineage_single_stage(self):
        sc = SparkContext(EC2_CLUSTER)
        rdd = sc.parallelize(range(100)).map(lambda x: x + 1) \
                .filter(lambda x: x % 2 == 0).map(lambda x: x * 3)
        before = sc.stats.stages
        out = rdd.collect()
        assert out == [(x + 1) * 3 for x in range(100) if (x + 1) % 2 == 0]
        assert sc.stats.stages == before + 1  # narrow chain fused in a stage


class TestMiniPowerGraph:
    G = power_law_graph(100, 3)

    def test_pagerank_matches_oracle(self):
        eng = PowerGraphEngine(self.G, NUMA_BOX)
        from repro.baselines.powergraph import PageRankProgram
        ranks = eng.run(PageRankProgram(), 1)
        assert deep_eq(ranks, pagerank_oracle(self.G, [1.0] * self.G.n))

    def test_triangles_match_oracle(self):
        count, stats = powergraph_triangles(self.G, NUMA_BOX)
        assert count == triangle_oracle(self.G)
        assert stats.sim_seconds > 0

    def test_replication_factor_bounds(self):
        r1 = replication_factor(self.G, 1)
        r4 = replication_factor(self.G, 4)
        assert r1 == 1.0
        assert 1.0 < r4 <= 4.0

    def test_cluster_run_charges_mirror_sync(self):
        from repro.runtime import GPU_CLUSTER
        _, stats = powergraph_pagerank(self.G, GPU_CLUSTER, 2)
        assert stats.mirror_sync_bytes > 0


class TestDimmWitted:
    FG = grid_ising(5)

    def test_sweep_matches_dmll_oracle(self):
        eng = DimmWittedEngine(self.FG, NUMA_BOX)
        states = random_states(self.FG.n_vars, 2, seed=1)
        rand = random_uniforms(self.FG.n_vars, 2, seed=2)
        out = eng.sweep(states, rand)
        assert out == gibbs_oracle_sweep(self.FG, states, rand)

    def test_socket_scaling_throughput(self):
        """Fig. 8e's metric is sampling throughput: replicas multiply the
        samples taken while sockets keep per-replica latency flat."""
        tp = {}
        for cores in (1, 12, 48):
            eng = DimmWittedEngine(self.FG, NUMA_BOX, cores=cores,
                                   scale=50_000.0)
            eng.run(sweeps=3)
            tp[cores] = (eng.stats.variable_samples
                         / eng.stats.sim_seconds)
        assert tp[1] < tp[12] < tp[48]
        # near-linear across sockets: 4 sockets ≈ 4x one socket
        assert tp[48] / tp[12] > 3.0

    def test_marginals_shape(self):
        eng = DimmWittedEngine(self.FG, NUMA_BOX, cores=12)
        marg = eng.run(sweeps=4)
        assert len(marg) == self.FG.n_vars
        assert all(0.0 <= p <= 1.0 for p in marg)


class TestHandOpt:
    def test_costs_positive_and_scale(self):
        from repro.baselines import handopt as H
        small = H.kmeans_iteration(1000, 10, 4)
        big = H.kmeans_iteration(10000, 10, 4)
        assert 0 < small.cycles < big.cycles
        assert small.seconds(NUMA_BOX) < big.seconds(NUMA_BOX)

    def test_q1_hashmap_penalty(self):
        from repro.baselines import handopt as H
        c = H.tpch_q1(1000)
        # the std::unordered_map probe dominates the per-row cost
        assert c.cycles / 1000 > H.STD_HASHMAP_CYCLES
