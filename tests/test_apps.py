"""Integration tests: every remaining benchmark application against a
plain-Python oracle, uncompiled and fully compiled."""

import pytest

from repro.apps.gda import gda_oracle, gda_program
from repro.apps.gene import gene_oracle, gene_program
from repro.apps.gibbs import (gibbs_oracle_sweep, gibbs_sample,
                              gibbs_sweep_program)
from repro.apps.knn import knn_oracle, knn_program
from repro.apps.naive_bayes import nb_oracle, nb_program
from repro.core import run_program
from repro.core.values import Buckets, deep_eq
from repro.data.datasets import binary_labeled, gaussian_clusters
from repro.data.factor_graphs import grid_ising, random_states, random_uniforms
from repro.data.graphs import power_law_graph
from repro.data.tpch_gen import generate_lineitems
from repro.graph.optigraph import (pagerank_oracle, pagerank_pull_program,
                                   pagerank_push_program, pagerank_run,
                                   select_model, triangle_oracle,
                                   triangle_program)
from repro.pipeline import compile_program


class TestGDA:
    X, Y = binary_labeled(40, 3)
    IN = {"x": X, "y": Y}

    def test_uncompiled_matches_oracle(self):
        (phi, mu, sigma), _ = run_program(gda_program(), self.IN)
        ophi, omu, osigma = gda_oracle(self.X, self.Y)
        assert deep_eq(phi, ophi) and deep_eq(mu, omu) and deep_eq(sigma, osigma)

    def test_compiled_matches_oracle(self):
        compiled = compile_program(gda_program(), "distributed")
        (phi, mu, sigma), _ = compiled.run(self.IN)
        ophi, omu, osigma = gda_oracle(self.X, self.Y)
        assert deep_eq(phi, ophi) and deep_eq(mu, omu) and deep_eq(sigma, osigma)

    def test_conditional_reduce_applies(self):
        compiled = compile_program(gda_program(), "distributed")
        assert "conditional-reduce" in compiled.report.applied_rules

    def test_no_partitioning_warnings(self):
        compiled = compile_program(gda_program(), "distributed")
        assert compiled.warnings == []


class TestGene:
    ROWS = [(b % 50, b % 7, (b % 10) / 10.0, 1, b) for b in range(400)]

    def test_uncompiled_matches_oracle(self):
        (counts, qsums, gsums), _ = run_program(gene_program(),
                                                {"reads": self.ROWS})
        oc, oq, og = gene_oracle(self.ROWS)
        assert dict(counts.items()) == oc
        assert deep_eq(dict(qsums.items()), oq)
        assert dict(gsums.items()) == og

    def test_compiled_matches_oracle(self):
        compiled = compile_program(gene_program(), "distributed")
        (counts, qsums, gsums), _ = compiled.run({"reads": self.ROWS})
        oc, oq, og = gene_oracle(self.ROWS)
        assert dict(counts.items()) == oc
        assert deep_eq(dict(qsums.items()), oq)

    def test_soa_and_dfe_apply(self):
        compiled = compile_program(gene_program(), "distributed")
        assert "aos-to-soa" in compiled.report.applied_rules
        from repro.core.ops import InputSource
        labels = [d.op.label for d in compiled.program.body.stmts
                  if isinstance(d.op, InputSource)]
        # flowcell/position are never read: dead field elimination
        assert "reads.flowcell" not in labels
        assert "reads.position" not in labels


class TestKnn:
    TRAIN, LABELS = gaussian_clusters(60, 4, k=3)
    QUERY = TRAIN[0]
    IN = {"train": TRAIN, "labels": LABELS, "query": QUERY, "radius": 8.0}

    def test_uncompiled_matches_oracle(self):
        (label,), _ = run_program(knn_program(), self.IN)
        assert label == knn_oracle(self.TRAIN, self.LABELS, self.QUERY, 8.0)

    def test_compiled_matches_oracle(self):
        compiled = compile_program(knn_program(), "distributed")
        (label,), _ = compiled.run(self.IN)
        assert label == knn_oracle(self.TRAIN, self.LABELS, self.QUERY, 8.0)


class TestNaiveBayes:
    X, Y = binary_labeled(30, 3)
    IN = {"x": X, "y": Y, "num_classes": 2}

    def test_uncompiled_matches_oracle(self):
        (priors, means), _ = run_program(nb_program(), self.IN)
        op, om = nb_oracle(self.X, self.Y, 2)
        assert deep_eq(priors, op) and deep_eq(means, om)

    def test_compiled_matches_oracle(self):
        compiled = compile_program(nb_program(), "distributed")
        (priors, means), _ = compiled.run(self.IN)
        op, om = nb_oracle(self.X, self.Y, 2)
        assert deep_eq(priors, op) and deep_eq(means, om)


class TestPageRank:
    G = power_law_graph(80, 3)
    RANKS = [1.0] * 80
    IN = {"adj": G.adj, "ranks": RANKS, "degrees": G.degrees()}

    def test_pull_matches_oracle(self):
        (out,), _ = run_program(pagerank_pull_program(), self.IN)
        assert deep_eq(out, pagerank_oracle(self.G, self.RANKS))

    def test_push_matches_pull(self):
        (pull,), _ = run_program(pagerank_pull_program(), self.IN)
        (push,), _ = run_program(pagerank_push_program(), self.IN)
        assert deep_eq(pull, push)

    def test_select_model(self):
        # just the policy: cluster -> push, shared memory -> pull
        from repro.core.multiloop import GenKind, MultiLoop
        push = select_model("cluster")
        kinds = [g.kind for d in push.body.stmts
                 if isinstance(d.op, MultiLoop) for g in d.op.gens]
        assert GenKind.BUCKET_REDUCE in kinds

    def test_pull_compiles_with_remote_read_warning(self):
        compiled = compile_program(pagerank_pull_program(), "distributed")
        # neighbor reads are fundamentally data-dependent: the compiler
        # falls back to runtime data movement and warns (§4.2)
        assert compiled.warnings
        (out,), _ = compiled.run(self.IN)
        assert deep_eq(out, pagerank_oracle(self.G, self.RANKS))

    def test_iterative_driver_converges(self):
        ranks = pagerank_run(self.G, iterations=30)
        nxt = pagerank_oracle(self.G, ranks)
        assert deep_eq(ranks, nxt, tol=1e-3)


class TestTriangles:
    G = power_law_graph(60, 3)

    def test_uncompiled_matches_oracle(self):
        (count,), _ = run_program(triangle_program(), {"adj": self.G.adj})
        assert count == triangle_oracle(self.G)

    def test_compiled_matches_oracle(self):
        compiled = compile_program(triangle_program(), "distributed")
        (count,), _ = compiled.run({"adj": self.G.adj})
        assert count == triangle_oracle(self.G)

    def test_nonzero_triangles(self):
        assert triangle_oracle(self.G) > 0


class TestGibbs:
    FG = grid_ising(5)

    def test_sweep_matches_oracle(self):
        states = random_states(self.FG.n_vars, 2, seed=1)
        rand = random_uniforms(self.FG.n_vars, 2, seed=2)
        (out,), _ = run_program(gibbs_sweep_program(), {
            "nbr_vars": self.FG.nbr_vars, "nbr_weights": self.FG.nbr_weights,
            "states": states, "rand": rand})
        assert deep_eq(out, gibbs_oracle_sweep(self.FG, states, rand))

    def test_compiled_sweep_matches_oracle(self):
        compiled = compile_program(gibbs_sweep_program(), "distributed")
        states = random_states(self.FG.n_vars, 2, seed=1)
        rand = random_uniforms(self.FG.n_vars, 2, seed=2)
        (out,), _ = compiled.run({
            "nbr_vars": self.FG.nbr_vars, "nbr_weights": self.FG.nbr_weights,
            "states": states, "rand": rand})
        assert deep_eq(out, gibbs_oracle_sweep(self.FG, states, rand))

    def test_marginals_in_range(self):
        marg = gibbs_sample(self.FG, sweeps=4, replicas=2)
        assert len(marg) == self.FG.n_vars
        assert all(0.0 <= p <= 1.0 for p in marg)


class TestDataGenerators:
    def test_power_law_degree_skew(self):
        g = power_law_graph(300, 3)
        degs = sorted(g.degrees(), reverse=True)
        assert degs[0] > 4 * (sum(degs) / len(degs))  # heavy head

    def test_lineitem_group_mix(self):
        rows = generate_lineitems(2000)
        keys = {(r[5], r[6]) for r in rows}
        assert len(keys) == 4  # the four Q1 groups

    def test_grid_ising_shape(self):
        fg = grid_ising(4)
        assert fg.n_vars == 16
        assert fg.n_factors == 2 * 4 * 3  # side*(side-1) horizontal+vertical
