"""Tests for pipeline (vertical) and horizontal fusion — structure changes
plus semantic preservation on real inputs."""

from repro import frontend as F
from repro.core import run_program
from repro.core import types as T
from repro.core.multiloop import GenKind, MultiLoop
from repro.core.values import deep_eq
from repro.optim import cse, dce, fuse_horizontal, fuse_vertical


def ints(label="xs"):
    return F.InputSpec(label, T.Coll(T.INT), False)


XS = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]


def top_loops(prog):
    return [d for d in prog.body.stmts if isinstance(d.op, MultiLoop)]


def optimize(prog):
    return dce(fuse_vertical(cse(prog)))


def run_both(fn, specs, inputs, opt=optimize):
    prog = F.build(fn, specs)
    before, _ = run_program(prog, inputs)
    opt_prog = opt(prog)
    after, _ = run_program(opt_prog, inputs)
    assert deep_eq(before, after), f"fusion changed semantics: {before} vs {after}"
    return prog, opt_prog


class TestVerticalFusion:
    def test_map_map_fuses_to_one_loop(self):
        def fn(xs):
            return xs.map(lambda x: x + 1).map(lambda x: x * 2)
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        assert len(top_loops(prog)) == 2
        assert len(top_loops(opt)) == 1

    def test_map_reduce_fuses(self):
        def fn(xs):
            return xs.map(lambda x: x * x).sum()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        loops = top_loops(opt)
        assert len(loops) == 1
        assert loops[0].op.gens[0].kind is GenKind.REDUCE

    def test_filter_reduce_fuses_with_condition(self):
        def fn(xs):
            return xs.filter(lambda x: x > 3).sum()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        loops = top_loops(opt)
        assert len(loops) == 1
        g = loops[0].op.gens[0]
        assert g.kind is GenKind.REDUCE and g.cond is not None

    def test_filter_filter_composes_conditions(self):
        def fn(xs):
            return xs.filter(lambda x: x > 1).filter(lambda x: x < 6)
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        assert len(top_loops(opt)) == 1

    def test_map_groupby_fuses(self):
        def fn(xs):
            return xs.map(lambda x: x * 3).group_by(lambda x: x % 2)
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        loops = top_loops(opt)
        assert len(loops) == 1
        assert loops[0].op.gens[0].kind is GenKind.BUCKET_COLLECT

    def test_long_chain_fuses_completely(self):
        def fn(xs):
            return (xs.map(lambda x: x + 1)
                      .filter(lambda x: x % 2 == 0)
                      .map(lambda x: x * x)
                      .sum())
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        assert len(top_loops(prog)) == 4
        assert len(top_loops(opt)) == 1

    def test_multi_consumer_keeps_producer(self):
        def fn(xs):
            m = xs.map(lambda x: x + 1)
            return m.sum() + m.length()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        # producer must stay alive for the length() use
        kinds = [g.kind for d in top_loops(opt) for g in d.op.gens]
        assert GenKind.COLLECT in kinds

    def test_zip_with_fuses_both_sides(self):
        def fn(xs):
            a = xs.map(lambda x: x + 1)
            b = xs.map(lambda x: x * 2)
            return a.zip_with(b, lambda p, q: p + q).sum()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        assert len(top_loops(opt)) <= 2

    def test_flat_map_producer_not_fused(self):
        def fn(xs):
            return xs.flat_map(lambda x: F.array_lit([x, x], T.INT)).sum()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        # flatMap output size is data-dependent: consumer cannot be fused
        assert len(top_loops(opt)) == 2

    def test_fusion_inside_nested_bodies(self):
        def fn(xs, ys):
            return xs.map(lambda x: ys.map(lambda y: y * x).sum())
        prog, opt = run_both(fn, [ints("xs"), ints("ys")],
                             {"xs": XS, "ys": [1, 2, 3]})
        # the inner map+sum must fuse into a single nested reduce
        outer = top_loops(opt)[0]
        inner_loops = [d for d in outer.op.gens[0].value.stmts
                       if isinstance(d.op, MultiLoop)]
        assert len(inner_loops) == 1
        assert inner_loops[0].op.gens[0].kind is GenKind.REDUCE

    def test_filter_indices_then_reduce(self):
        """The k-means inner pattern: filter_indices + indexed reduce."""
        def fn(xs):
            idxs = xs.filter_indices(lambda x: x % 2 == 1)
            return idxs.map(lambda i: xs[i]).sum()
        prog, opt = run_both(fn, [ints()], {"xs": XS})
        assert len(top_loops(opt)) == 1


class TestFusionSoundness:
    """Regression tests: fusing with a *filtering* producer changes the
    index space, which must block any other use of the loop index."""

    def test_sibling_read_at_compacted_index(self):
        def fn(xs, ys):
            evens = xs.filter(lambda x: x % 2 == 0)
            # ys is read at the *compacted* index: fusing evens into this
            # loop and re-running it over the raw range would be wrong
            return evens.map_indices(lambda i: evens[i] * 10 + ys[i])
        run_both(fn, [ints("xs"), ints("ys")],
                 {"xs": XS, "ys": list(range(100, 100 + len(XS)))})

    def test_index_used_directly(self):
        def fn(xs):
            evens = xs.filter(lambda x: x % 2 == 0)
            return evens.map_indices(lambda i: evens[i] * 100 + i)
        run_both(fn, [ints()], {"xs": XS})

    def test_multi_column_filter_fuses_as_unit(self):
        """Columns split from one filtering traversal share an index space
        and may fuse together (the SoA + filter + groupBy pattern)."""
        from repro.optim import code_motion
        def fn(xs):
            big = xs.filter(lambda x: x > 2)
            a = big.map(lambda x: x + 1)
            b = big.map(lambda x: x * 2)
            return a.zip_with(b, lambda p, q: p + q).sum()
        run_both(fn, [ints()], {"xs": XS},
                 opt=lambda p: dce(fuse_vertical(code_motion(cse(p)))))

    def test_size_only_use_of_filter(self):
        def fn(xs):
            evens = xs.filter(lambda x: x % 2 == 0)
            # consumer ranges over len(evens) but reads something else
            return F.irange(evens.length()).map(lambda i: i * 2)
        run_both(fn, [ints()], {"xs": XS})


class TestHorizontalFusion:
    def test_two_reductions_merge(self):
        def fn(xs):
            return xs.sum() + xs.map_reduce(lambda x: 1, lambda a, b: a + b)
        # CSE first so both loops share one length symbol (pipeline order)
        prog = cse(F.build(fn, [ints()]))
        opt = fuse_horizontal(prog)
        merged = [d for d in top_loops(opt) if len(d.op.gens) == 2]
        assert len(merged) == 1
        (out,), _ = run_program(opt, {"xs": XS})
        assert out == sum(XS) + len(XS)

    def test_dependent_loops_do_not_merge(self):
        def fn(xs):
            m = xs.map(lambda x: x + 1)
            # same range (len(xs) != len(m) symbolically) but dependent anyway
            return m.map(lambda x: x * 2)
        prog = fuse_horizontal(F.build(fn, [ints()]))
        (out,), _ = run_program(prog, {"xs": XS})
        assert out == [(x + 1) * 2 for x in XS]
        assert all(len(d.op.gens) == 1 for d in top_loops(prog))

    def test_three_way_merge(self):
        def fn(xs):
            a = xs.sum()
            b = xs.map_reduce(lambda x: x * x, lambda p, q: p + q)
            c = xs.map_reduce(lambda x: 1, lambda p, q: p + q)
            return (a + b) + c
        prog = fuse_horizontal(cse(F.build(fn, [ints()])))
        merged = [d for d in top_loops(prog) if len(d.op.gens) == 3]
        assert len(merged) == 1
        (out,), _ = run_program(prog, {"xs": XS})
        assert out == sum(XS) + sum(x * x for x in XS) + len(XS)

    def test_full_pipeline_vertical_then_horizontal(self):
        def fn(xs):
            evens = xs.filter(lambda x: x % 2 == 0).sum()
            odds = xs.filter(lambda x: x % 2 == 1).sum()
            return evens + odds
        prog = F.build(fn, [ints()])
        opt = fuse_horizontal(dce(fuse_vertical(cse(prog))))
        (out,), _ = run_program(opt, {"xs": XS})
        assert out == sum(XS)
        merged = [d for d in top_loops(opt) if len(d.op.gens) == 2]
        assert len(merged) == 1  # single traversal computing both sums
