"""Direct unit tests for the static analyses: every stencil lattice case
(§4.2) and the Algorithm 1 partitioning dataflow (§4.1)."""

import pytest

from repro import frontend as F
from repro.analysis import (DataLayout, Stencil, analyze_program,
                            global_stencils, join_stencil,
                            partition_and_transform)
from repro.core import types as T
from repro.core.ir import def_index
from repro.core.multiloop import MultiLoop
from repro.pipeline import optimize


def build(fn, specs):
    return optimize(F.build(fn, specs), horizontal=False)


def loop_stencils(prog):
    """{loop sym name: {coll name: stencil}} for all top-level loops."""
    per_loop = analyze_program(prog)
    out = {}
    for ls in per_loop.values():
        out[ls.loop_sym.name] = {s.name: v for s, v in ls.reads.items()}
    return out


V = [F.vector_input("xs", partitioned=True)]
M = [F.matrix_input("m", partitioned=True)]


class TestStencilLattice:
    def test_interval_from_loop_index(self):
        prog = build(lambda xs: xs.map(lambda x: x + 1.0), V)
        st = loop_stencils(prog)
        assert st["map"]["xs"] is Stencil.INTERVAL

    def test_interval_joined_with_const_is_all(self):
        # analyzed pre-code-motion: xs read both at the index and at 0;
        # the conservative join of Interval and Const is All (broadcast)
        prog = F.build(lambda xs: xs.map(lambda x: x + xs[0]), V)
        st = loop_stencils(prog)
        assert st["map"]["xs"] is Stencil.ALL

    def test_const_only(self):
        # pre-code-motion (the optimizer would hoist the invariant read —
        # also a correct way to "broadcast the element")
        def fn(xs, ys):
            return xs.map(lambda x: x + ys[3])
        prog = F.build(fn, V + [F.vector_input("ys", partitioned=True)])
        st = loop_stencils(prog)
        assert st["map"]["ys"] is Stencil.CONST

    def test_all_from_nested_full_scan(self):
        def fn(xs, ys):
            return xs.map(lambda x: x * ys.sum())
        prog = build(fn, V + [F.vector_input("ys", partitioned=True)])
        # after code motion the ys.sum() is hoisted; force the dependent case
        def fn2(xs, ys):
            return xs.map(lambda x: ys.map_reduce(lambda y: y * x,
                                                  lambda a, b: a + b))
        prog2 = build(fn2, V + [F.vector_input("ys", partitioned=True)])
        st = loop_stencils(prog2)
        assert st["map"]["ys"] is Stencil.ALL

    def test_unknown_from_data_dependent_index(self):
        def fn(xs, idxs):
            return idxs.map(lambda i: xs[i])
        prog = build(fn, V + [F.InputSpec("idxs", T.Coll(T.INT), True)])
        st = loop_stencils(prog)
        assert st["map"]["xs"] is Stencil.UNKNOWN
        assert st["map"]["idxs"] is Stencil.INTERVAL

    def test_join_lattice(self):
        I, C, A, U = (Stencil.INTERVAL, Stencil.CONST, Stencil.ALL,
                      Stencil.UNKNOWN)
        assert join_stencil(I, I) is I
        assert join_stencil(C, C) is C
        assert join_stencil(I, C) is A
        assert join_stencil(I, A) is A
        assert join_stencil(A, U) is U
        assert join_stencil(I, U) is U

    def test_global_join_across_loops(self):
        def fn(xs, idxs):
            a = xs.map(lambda x: x + 1.0).sum()      # Interval
            b = idxs.map(lambda i: xs[i]).sum()       # Unknown
            return a + b
        prog = build(fn, V + [F.InputSpec("idxs", T.Coll(T.INT), True)])
        per_loop = analyze_program(prog)
        g = global_stencils(per_loop)
        xs_sym = prog.inputs[0]
        assert g[xs_sym] is Stencil.UNKNOWN


class TestPartitioning:
    def test_annotations_respected(self):
        def fn(xs, ys):
            return xs.sum() + ys.sum()
        prog = build(fn, [F.vector_input("xs", partitioned=True),
                          F.vector_input("ys", partitioned=False)])
        _, rep = partition_and_transform(prog, rules=())
        xs, ys = prog.inputs
        assert rep.layout(xs) is DataLayout.PARTITIONED
        assert rep.layout(ys) is DataLayout.LOCAL

    def test_collect_of_partitioned_is_partitioned(self):
        prog = build(lambda xs: xs.map(lambda x: x * 2.0), V)
        prog2, rep = partition_and_transform(prog, rules=())
        out_sym = prog2.body.results[0]
        assert rep.layout(out_sym) is DataLayout.PARTITIONED

    def test_reduce_of_partitioned_is_local(self):
        prog = build(lambda xs: xs.sum(), V)
        prog2, rep = partition_and_transform(prog, rules=())
        out_sym = prog2.body.results[0]
        assert rep.layout(out_sym) is DataLayout.LOCAL

    def test_local_only_loop_stays_local(self):
        def fn(xs, ys):
            return ys.map(lambda y: y + 1.0)
        prog = build(fn, [F.vector_input("xs", partitioned=True),
                          F.vector_input("ys", partitioned=False)])
        prog2, rep = partition_and_transform(prog, rules=())
        assert rep.layout(prog2.body.results[0]) is DataLayout.LOCAL

    def test_unknown_access_warns_without_rules(self):
        def fn(xs, idxs):
            return idxs.map(lambda i: xs[i]).sum()
        prog = build(fn, V + [F.InputSpec("idxs", T.Coll(T.INT), True)])
        _, rep = partition_and_transform(prog, rules=())
        assert any("falling back" in w for w in rep.warnings)

    def test_sequential_consumption_warns(self):
        from repro.core.ops import CollPrim
        def fn(xs, ys):
            # a top-level collection primitive consumes partitioned data
            return F.contains(xs, 3.0)
        prog = F.build(fn, [F.vector_input("xs", partitioned=True),
                            F.vector_input("ys", partitioned=False)])
        _, rep = partition_and_transform(prog, rules=())
        assert any("single location" in w for w in rep.warnings)

    def test_whitelist_allows_length(self):
        prog = F.build(lambda xs: xs.length(), V)
        _, rep = partition_and_transform(prog, rules=())
        assert rep.warnings == []

    def test_const_element_read_allowed(self):
        """x(0) at top level broadcasts one element (Const stencil)."""
        def fn(m):
            return m[0].length()
        prog = F.build(fn, M)
        _, rep = partition_and_transform(prog, rules=())
        assert rep.warnings == []

    def test_co_partitioning_detected(self):
        def fn(xs, ys):
            return xs.zip_with(ys, lambda a, b: a * b).sum()
        prog = build(fn, [F.vector_input("xs", partitioned=True),
                          F.vector_input("ys", partitioned=True)])
        _, rep = partition_and_transform(prog, rules=())
        infos = [i for i in rep.loops.values() if i.co_partitioned]
        assert infos and len(infos[0].co_partitioned) == 2

    def test_broadcast_recorded(self):
        # pre-code-motion so the Const read of theta stays in the loop
        def fn(xs, theta):
            return xs.map(lambda x: x * theta[0])
        prog = F.build(fn, [F.vector_input("xs", partitioned=True),
                            F.vector_input("theta", partitioned=True)])
        _, rep = partition_and_transform(prog, rules=())
        infos = [i for i in rep.loops.values() if i.broadcasts]
        assert infos  # theta is Const-read -> broadcast one element
