"""Tests for AoS→SoA + dead field elimination, and the TPC-H Q1 app that
exercises them end-to-end."""

from repro import frontend as F
from repro.apps.tpch import LINEITEM, q1_oracle, q1_program
from repro.core import run_program
from repro.core import types as T
from repro.core.multiloop import GenKind, MultiLoop
from repro.core.ops import InputSource
from repro.core.values import deep_eq
from repro.data.tpch_gen import generate_lineitems
from repro.optim import dce
from repro.optim.soa import aos_to_soa, soa_input_values
from repro.pipeline import compile_program

POINT = T.Struct("Point", (("x", T.DOUBLE), ("y", T.DOUBLE), ("tag", T.INT)))
PTS = [(1.0, 2.0, 7), (3.0, 4.0, 8), (5.0, 6.0, 9)]


def point_input():
    from repro.optim.soa import register_table_schema
    register_table_schema("pts", POINT)
    return F.table_input("pts", POINT, partitioned=True)


class TestSoA:
    def test_input_table_is_split(self):
        def fn(pts):
            return pts.map(lambda p: p.x + p.y)
        prog = F.build(fn, [point_input()])
        soa = aos_to_soa(prog)
        labels = [d.op.label for d in soa.body.stmts
                  if isinstance(d.op, InputSource)]
        assert "pts.x" in labels and "pts.y" in labels

    def test_semantics_preserved(self):
        def fn(pts):
            return pts.map(lambda p: p.x * p.y)
        prog = F.build(fn, [point_input()])
        soa = aos_to_soa(prog)
        inputs = soa_input_values(soa, {"pts": PTS})
        (out,), _ = run_program(soa, inputs)
        assert out == [x * y for x, y, _ in PTS]

    def test_dead_field_elimination(self):
        """Unread columns disappear after DCE (DFE, §5)."""
        def fn(pts):
            return pts.map(lambda p: p.x)
        prog = F.build(fn, [point_input()])
        soa = dce(aos_to_soa(prog))
        labels = [d.op.label for d in soa.body.stmts
                  if isinstance(d.op, InputSource)]
        assert "pts.x" in labels
        assert "pts.y" not in labels and "pts.tag" not in labels

    def test_escaping_struct_blocks_split(self):
        def fn(pts):
            return pts.map(lambda p: p)  # whole elements escape
        prog = F.build(fn, [point_input()])
        soa = aos_to_soa(prog)
        labels = [d.op.label for d in soa.body.stmts
                  if isinstance(d.op, InputSource)]
        assert labels == ["pts"]  # untouched

    def test_derived_struct_collection_split(self):
        """A Collect producing structs is split into one traversal with a
        generator per field."""
        def fn(pts):
            mid = pts.map(lambda p: F.pair(p.x + 1.0, p.y * 2.0))
            return mid.map(lambda q: q.fst + q.snd)
        prog = F.build(fn, [point_input()])
        soa = aos_to_soa(prog)
        multi = [d for d in soa.body.stmts
                 if isinstance(d.op, MultiLoop) and len(d.op.gens) > 1]
        assert multi, "derived struct collection was not split"
        inputs = soa_input_values(soa, {"pts": PTS})
        (out,), _ = run_program(soa, inputs)
        assert out == [(x + 1.0) + (y * 2.0) for x, y, _ in PTS]

    def test_length_uses_allowed(self):
        def fn(pts):
            return pts.map(lambda p: p.x).sum() + pts.length().to_double()
        prog = F.build(fn, [point_input()])
        soa = aos_to_soa(prog)
        inputs = soa_input_values(soa, {"pts": PTS})
        (out,), _ = run_program(soa, inputs)
        assert out == sum(x for x, _, _ in PTS) + len(PTS)


class TestTpchQ1:
    ROWS = generate_lineitems(300)

    def _check(self, result):
        oracle = q1_oracle(self.ROWS)
        assert len(result) == len(oracle)
        # result rows follow group first-seen order; match via count+sums
        for key, row in zip(self._keys(), result):
            assert deep_eq(tuple(row), oracle[key])

    def _keys(self):
        fields = LINEITEM.field_names()
        fi = {n: i for i, n in enumerate(fields)}
        seen = []
        for r in self.ROWS:
            if r[fi["shipdate"]] > 10000:
                continue
            k = r[fi["returnflag"]] * 256 + r[fi["linestatus"]]
            if k not in seen:
                seen.append(k)
        return seen

    def test_uncompiled_matches_oracle(self):
        (out,), _ = run_program(q1_program(), {"lineitems": self.ROWS})
        self._check(out)

    def test_compiled_distributed_matches_oracle(self):
        compiled = compile_program(q1_program(), "distributed")
        (out,), _ = compiled.run({"lineitems": self.ROWS})
        self._check(out)

    def test_optimizations_applied(self):
        compiled = compile_program(q1_program(), "distributed")
        assert "aos-to-soa" in compiled.report.applied_rules
        assert "groupby-reduce" in compiled.report.applied_rules

    def test_single_traversal_after_fusion(self):
        """All eight aggregates fold in one pass over the table columns."""
        compiled = compile_program(q1_program(), "distributed")
        loops = [d for d in compiled.program.body.stmts
                 if isinstance(d.op, MultiLoop)]
        bucket_loops = [d for d in loops
                        if any(g.kind is GenKind.BUCKET_REDUCE
                               for g in d.op.gens)]
        assert len(bucket_loops) == 1
        assert sum(1 for g in bucket_loops[0].op.gens
                   if g.kind is GenKind.BUCKET_REDUCE) >= 6

    def test_no_warnings(self):
        compiled = compile_program(q1_program(), "distributed")
        assert compiled.warnings == []
