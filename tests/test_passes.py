"""PassManager behaviors: tracing, the shared rule log (regression for the
dropped ``applied_log``), differential checking, and the DCE input
re-attachment fix."""

from collections import Counter

import pytest

from repro import frontend as F
from repro.apps.kmeans import kmeans_grouped_program, kmeans_shared_program
from repro.core import run_program
from repro.core import types as T
from repro.core.ir import Block, Const, Def, Program, fresh
from repro.core.multiloop import MultiLoop, collect, reduce_gen
from repro.core.ops import ArrayApply, ArrayLength, InputSource, Prim
from repro.core.values import deep_eq
from repro.core.verify import IRVerificationError, verify_program
from repro.optim.dce import dce
from repro.passes import (Pass, PassManager, PassSemanticsError,
                          function_pass, program_counts, standard_passes,
                          trace_table)
from repro.pipeline import CompiledProgram, compile_program, optimize

MAT = [[1.0, 2.0], [8.0, 9.0], [1.2, 1.8], [7.5, 9.5], [0.8, 2.2]]
INPUTS = {"matrix": MAT, "clusters": MAT[:2]}


class TestTrace:
    def test_trace_lists_every_pass_with_counts(self):
        compiled = compile_program(kmeans_shared_program(), "distributed")
        assert len(compiled.trace) > 10
        for t in compiled.trace:
            assert t.name and t.phase
            assert t.stmts_before >= 0 and t.stmts_after >= 0
            assert t.loops_before >= 0 and t.loops_after >= 0
            assert t.wall_ms >= 0.0
        # the pipeline's named phases all appear
        phases = {t.phase for t in compiled.trace}
        assert {"soa", "opt-1", "opt-2", "partition", "finalize",
                "report"} <= phases

    def test_trace_table_renders(self):
        compiled = compile_program(kmeans_shared_program(), "distributed")
        table = trace_table(compiled.trace)
        assert "fuse-vertical" in table and "stmts" in table

    def test_program_counts(self):
        prog = kmeans_shared_program()
        stmts, loops = program_counts(prog)
        assert stmts > 0 and 0 < loops <= stmts


class TestSharedRuleLog:
    """Regression: ``compile_program`` used to drop ``applied_log`` in its
    second and final ``optimize()`` calls, so rules applied there never
    reached ``report.applied_rules``. All phases now log into one shared
    PassManager trace."""

    def test_grouped_kmeans_reports_every_rule_exactly_once(self):
        compiled = compile_program(kmeans_grouped_program(), "distributed")
        trace_rules = Counter(r for t in compiled.trace for r in t.rules)
        assert Counter(compiled.report.applied_rules) == trace_rules
        assert compiled.report.applied_rules.count("groupby-reduce") == 1

    def test_gpu_trace_includes_rules_from_every_phase(self):
        compiled = compile_program(kmeans_grouped_program(), "gpu")
        rules = compiled.report.applied_rules
        assert "groupby-reduce" in rules          # opt-1 phase
        assert "bucket-row-to-column-reduce" in rules  # gpu phase
        assert Counter(rules) == Counter(
            r for t in compiled.trace for r in t.rules)

    def test_later_optimize_phases_keep_logging(self):
        """The old bug: an ``optimize()`` call without ``applied_log``
        silently discarded its applications. Through a shared manager,
        every phase's applications land in the trace."""
        pm = PassManager()
        optimize(kmeans_grouped_program(), horizontal=False,
                 pm=pm, phase="first")
        optimize(kmeans_grouped_program(), horizontal=False,
                 pm=pm, phase="second")
        per_phase = Counter(t.phase for t in pm.traces if t.rules)
        assert per_phase["first"] == 1 and per_phase["second"] == 1
        assert pm.applied_rules().count("groupby-reduce") == 2

    def test_applied_log_backcompat(self):
        log = []
        optimize(kmeans_grouped_program(), horizontal=False, applied_log=log)
        assert "groupby-reduce" in log


class TestVerifyKnob:
    def test_verifier_catches_broken_pass(self):
        breaker = Pass("break-ir", lambda prog, log: Program(
            prog.inputs,
            Block(prog.body.params, prog.body.stmts,
                  (fresh(T.INT, "dangling"),))))
        pm = PassManager(verify=True)
        with pytest.raises(IRVerificationError, match="break-ir"):
            pm.run_pass(kmeans_shared_program(), breaker, phase="x")

    def test_verify_off_lets_broken_ir_through(self):
        breaker = Pass("break-ir", lambda prog, log: Program(
            prog.inputs,
            Block(prog.body.params, prog.body.stmts,
                  (fresh(T.INT, "dangling"),))))
        pm = PassManager(verify=False)
        pm.run_pass(kmeans_shared_program(), breaker, phase="x")  # no raise


class TestDifferentialCheck:
    def test_clean_pipeline_passes(self):
        compiled = compile_program(kmeans_shared_program(), "distributed",
                                   differential_inputs=INPUTS)
        (out,), _ = run_program(compiled.program,
                                compiled.prepare_inputs(INPUTS))
        before, _ = run_program(kmeans_shared_program(), INPUTS)
        assert deep_eq((out,), before)

    def test_names_first_semantics_breaking_pass(self):
        def fn(xs):
            return xs.map(lambda x: x + 3).sum()
        prog = F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)])

        def clobber(p, log):
            # semantically different but structurally valid: +3 -> +4
            def fx(xs):
                return xs.map(lambda x: x + 4).sum()
            return F.build(fx, [F.InputSpec("xs", T.Coll(T.INT), True)])

        pm = PassManager(verify=True,
                         differential_inputs={"xs": [1, 2, 3]})
        std = standard_passes()
        prog = pm.run_pass(prog, std["cse"], phase="ok")
        with pytest.raises(PassSemanticsError) as ei:
            pm.run_pass(prog, Pass("evil-rewrite", clobber), phase="bad")
        assert ei.value.pass_name == "evil-rewrite"
        assert ei.value.phase == "bad"


def _dead_input_program():
    """A program input bound by one generator of a two-output loop, where
    that generator (and the loop's size dependency) are otherwise dead."""
    n = fresh(T.INT, "n")
    size = Def((n,), Prim("add", (Const(2), Const(2))))
    i, j = fresh(T.INT, "i"), fresh(T.INT, "j")
    dead_gen = collect(Block((i,), (), (i,)))
    live_gen = collect(Block((j,), (), (j,)))
    dead_sym = fresh(T.Coll(T.INT), "dead_input")
    live_sym = fresh(T.Coll(T.INT), "live")
    loop = Def((dead_sym, live_sym), MultiLoop(n, (dead_gen, live_gen)))
    ln = fresh(T.INT, "ln")
    use = Def((ln,), ArrayLength(live_sym))
    body = Block((), (size, loop, use), (ln,))
    return Program((dead_sym,), body)


class TestDceInputReattachment:
    def test_single_sym_dead_input_kept(self):
        def fn(xs, ys):
            return xs.sum()
        prog = F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True),
                            F.InputSpec("ys", T.Coll(T.INT), False)])
        out = dce(prog)
        verify_program(out)
        defined = {s for d in out.body.stmts for s in d.syms}
        assert all(s in defined for s in out.inputs)

    def test_multi_sym_dead_input_reattached(self):
        prog = _dead_input_program()
        out = dce(prog)
        verify_program(out)
        defined = {s for d in out.body.stmts for s in d.syms}
        assert prog.inputs[0] in defined
        # the re-attached generator must not resurrect the live def twice
        assert sum(1 for d in out.body.stmts
                   for s in d.syms if s == prog.inputs[0]) == 1
        (r_before,), _ = run_program(prog, {})
        (r_after,), _ = run_program(out, {})
        assert r_before == r_after

    def test_entirely_dead_loop_input_with_deps(self):
        """The size dependency of the dead loop is resurrected too, in
        def-before-use order (the old code prepended single-sym defs only
        and would have produced ill-formed IR here)."""
        prog = _dead_input_program()
        # make *both* generators dead: result is a constant
        c = fresh(T.INT, "c")
        konst = Def((c,), Prim("add", (Const(1), Const(1))))
        body = Block((), prog.body.stmts[:2] + (konst,), (c,))
        prog2 = Program(prog.inputs, body)
        out = dce(prog2)
        verify_program(out)
        defined = {s for d in out.body.stmts for s in d.syms}
        assert prog2.inputs[0] in defined


class TestCompiledProgramSurface:
    def test_trace_field_defaults_empty(self):
        from repro.analysis.partitioning import PartitionReport
        cp = CompiledProgram(kmeans_shared_program(), PartitionReport())
        assert cp.trace == []

    def test_all_targets_expose_trace(self):
        for target in ("cpu", "distributed", "gpu"):
            compiled = compile_program(kmeans_shared_program(), target)
            names = [t.name for t in compiled.trace]
            assert "aos-to-soa" in names and "fuse-horizontal" in names
