"""The SLO engine (DESIGN.md §10): declarative specs, error budgets,
sliding-window burn rates, and the ``slo-report`` CLI gate.

The engine consumes plain response-shaped records (``finish_s``,
``latency_s``, ``fallback_reason``), so most tests score synthetic
traffic where the right answer is computable by hand; the CLI tests
drive real simulated serving runs end to end.
"""

import io
import json
from contextlib import redirect_stdout
from dataclasses import dataclass
from typing import Optional

import pytest

from repro import tools
from repro.obs import (BurnWindow, SLOObjective, SLOReport, SLOSpec,
                       evaluate_slo)


@dataclass
class FakeResponse:
    finish_s: float
    latency_s: float
    fallback_reason: Optional[str] = None


def responses(latencies, spacing_s=0.01, fallbacks=()):
    out = []
    for i, lat in enumerate(latencies):
        out.append(FakeResponse(finish_s=(i + 1) * spacing_s, latency_s=lat,
                                fallback_reason=("x" if i in fallbacks
                                                 else None)))
    return out


def spec(target=0.9, threshold_ms=50.0, window_s=0.05, kind="latency"):
    objs = [{"name": "obj", "kind": kind, "target": target,
             "threshold_ms": threshold_ms}]
    return SLOSpec.from_json({"name": "t", "window_s": window_s,
                              "objectives": objs})


# ---------------------------------------------------------------------------
# spec parsing and validation
# ---------------------------------------------------------------------------

class TestSpec:
    def test_from_json_round_trip(self):
        s = SLOSpec.from_json({
            "name": "interactive", "window_s": 0.1,
            "objectives": [
                {"name": "p99", "kind": "latency", "target": 0.99,
                 "threshold_ms": 80},
                {"name": "avail", "kind": "availability", "target": 0.995},
            ]})
        assert s.name == "interactive" and s.window_s == 0.1
        p99, avail = s.objectives
        assert p99.threshold_s == pytest.approx(0.08)
        assert p99.budget == pytest.approx(0.01)
        assert avail.kind == "availability"
        assert avail.threshold_s is None

    def test_load(self):
        s = SLOSpec.load("examples/slo_serving.json")
        assert {o.kind for o in s.objectives} == {"latency", "availability"}

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            SLOSpec.from_json({"name": "empty", "objectives": []})
        with pytest.raises(ValueError):
            spec(target=1.5)
        with pytest.raises(ValueError):
            spec(target=0.9, threshold_ms=None)  # latency needs threshold
        with pytest.raises(ValueError):
            SLOObjective("x", "throughput", 0.9)
        with pytest.raises(ValueError):
            spec(window_s=0.0)
        with pytest.raises(ValueError):
            SLOSpec.from_json([])

    def test_describe(self):
        s = spec(target=0.99, threshold_ms=80.0)
        assert "99%" in s.objectives[0].describe()
        assert "80 ms" in s.objectives[0].describe()


# ---------------------------------------------------------------------------
# evaluation: budgets and burn rates
# ---------------------------------------------------------------------------

class TestEvaluate:
    def test_all_good_within_budget(self):
        rep = evaluate_slo(spec(), responses([0.01] * 20))
        assert rep.ok
        (r,) = rep.results
        assert (r.total, r.bad) == (20, 0)
        assert r.error_rate == 0.0
        assert r.budget_consumed == 0.0
        assert r.max_burn_rate == 0.0

    def test_budget_exhaustion_violates(self):
        # 10% budget; 4/20 bad = 20% error rate = 2x the budget
        lats = [0.01] * 16 + [0.2] * 4
        rep = evaluate_slo(spec(target=0.9), responses(lats))
        assert not rep.ok
        (r,) = rep.results
        assert r.bad == 4
        assert r.budget_consumed == pytest.approx(2.0)
        assert r.to_json()["status"] == "violated"

    def test_availability_objective_counts_fallbacks(self):
        rep = evaluate_slo(spec(target=0.9, kind="availability"),
                           responses([0.01] * 10, fallbacks={0, 1, 2}))
        (r,) = rep.results
        assert r.bad == 3
        assert not rep.ok  # 30% fallback rate vs 10% budget

    def test_burn_rate_spike_detected_inside_budget(self):
        # 2/40 bad overall (5% < 10% budget: within budget) but both bad
        # responses land in one 50 ms window -> local burn >> 1x
        lats = [0.01] * 40
        lats[10] = lats[11] = 0.2
        rep = evaluate_slo(spec(target=0.9), responses(lats))
        (r,) = rep.results
        assert rep.ok
        assert r.max_burn_rate > 1.0
        worst = r.worst_window
        assert worst is not None and worst.bad == 2
        # the worst window actually contains the spike finish times
        assert worst.t0_s <= 0.11 <= worst.t1_s

    def test_burn_window_math(self):
        w = BurnWindow(0.0, 0.05, total=10, bad=2)
        assert w.burn_rate(0.1) == pytest.approx(2.0)
        assert BurnWindow(0, 1, 0, 0).burn_rate(0.1) == 0.0

    def test_empty_run_is_ok(self):
        rep = evaluate_slo(spec(), [])
        assert rep.ok
        (r,) = rep.results
        assert (r.total, r.bad) == (0, 0)
        assert r.windows == []

    def test_json_and_render(self):
        rep = evaluate_slo(spec(), responses([0.01] * 5))
        doc = rep.to_json()
        assert doc["status"] == "ok"
        assert doc["objectives"][0]["budget"] == pytest.approx(0.1)
        text = rep.render()
        assert "SLO report" in text and "ok" in text
        assert isinstance(rep, SLOReport)


# ---------------------------------------------------------------------------
# burn-rate edge cases: degenerate windows and single-sample runs
# ---------------------------------------------------------------------------

class TestBurnEdgeCases:
    def test_window_longer_than_run(self):
        # window 10 s over a 50 ms run: one window swallows the whole
        # timeline, so the local burn equals the global budget burn
        rep = evaluate_slo(spec(target=0.9, window_s=10.0),
                           responses([0.01, 0.01, 0.2, 0.01, 0.01]))
        (r,) = rep.results
        assert len(r.windows) == 1
        w = r.windows[0]
        assert (w.total, w.bad) == (5, 1)
        assert w.t1_s >= max(0.01 * (i + 1) for i in range(5))
        assert r.max_burn_rate == pytest.approx(r.budget_consumed)
        assert r.worst_window is w

    def test_zero_request_windows_skipped(self):
        # two bursts separated by a long silent gap: windows over the
        # gap hold zero requests and must be skipped, not scored as
        # zero-burn evidence (which would dilute max_burn_rate)
        rs = responses([0.01, 0.01], spacing_s=0.01)
        rs += [FakeResponse(finish_s=1.0 + i * 0.01, latency_s=0.2)
               for i in range(2)]
        rep = evaluate_slo(spec(target=0.9, window_s=0.05), rs)
        (r,) = rep.results
        assert r.windows and all(w.total > 0 for w in r.windows)
        # the silent second is not covered by any retained window
        assert not any(w.t0_s > 0.1 and w.t1_s < 1.0 for w in r.windows)
        # the late all-bad burst still dominates the burn signal
        assert r.max_burn_rate == pytest.approx(1.0 / r.objective.budget)
        assert r.worst_window.bad == 2

    def test_zero_total_window_burns_nothing(self):
        assert BurnWindow(0.0, 0.05, total=0, bad=0).burn_rate(0.01) == 0.0

    def test_single_sample_availability_ok(self):
        rep = evaluate_slo(spec(target=0.99, kind="availability"),
                           responses([0.01]))
        (r,) = rep.results
        assert (r.total, r.bad) == (1, 0)
        assert rep.ok and r.max_burn_rate == 0.0
        assert r.worst_window is not None and r.worst_window.total == 1

    def test_single_sample_availability_fallback_violates(self):
        rep = evaluate_slo(spec(target=0.99, kind="availability"),
                           responses([0.01], fallbacks={0}))
        (r,) = rep.results
        assert (r.total, r.bad) == (1, 1)
        assert not rep.ok
        assert r.error_rate == 1.0
        # one bad sample against a 1% budget: a 100x burn, finite
        assert r.max_burn_rate == pytest.approx(100.0)
        doc = r.to_json()
        assert doc["status"] == "violated"
        assert doc["worst_window"]["bad"] == 1

    def test_single_sample_latency_threshold_boundary(self):
        # exactly at threshold is good; strictly above is bad
        at = evaluate_slo(spec(threshold_ms=50.0), responses([0.05]))
        above = evaluate_slo(spec(threshold_ms=50.0), responses([0.0500001]))
        assert at.results[0].bad == 0
        assert above.results[0].bad == 1


# ---------------------------------------------------------------------------
# the slo-report CLI (the CI gate)
# ---------------------------------------------------------------------------

class TestSLOReportCLI:
    def run(self, *argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = tools.main(list(argv))
        return code, buf.getvalue()

    def test_passing_spec_exits_zero(self, tmp_path):
        out_json = tmp_path / "slo.json"
        code, out = self.run("slo-report", "q1", "--requests", "6",
                             "--clients", "2", "--seed", "1",
                             "--spec", "examples/slo_serving.json",
                             "--out", str(out_json))
        assert code == 0
        assert "SLO report" in out
        doc = json.loads(out_json.read_text())
        assert doc["status"] == "ok"

    def test_violated_spec_exits_one(self, tmp_path):
        # a threshold no simulated request can meet exhausts the budget
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps({
            "name": "impossible",
            "objectives": [{"name": "p-tight", "kind": "latency",
                            "target": 0.99, "threshold_ms": 1e-6}]}))
        code, out = self.run("slo-report", "q1", "--requests", "6",
                             "--clients", "2", "--seed", "1",
                             "--spec", str(strict))
        assert code == 1
        assert "VIOLATED" in out

    def test_json_output(self):
        code, out = self.run("slo-report", "q1", "--requests", "4",
                             "--clients", "2", "--json",
                             "--spec", "examples/slo_serving.json")
        assert code == 0
        assert json.loads(out)["status"] == "ok"

    def test_usage_errors(self, tmp_path):
        assert self.run("slo-report",
                        "--spec", "examples/slo_serving.json")[0] == 2
        assert self.run("slo-report", "q1", "--spec", "nosuchfile.json")[0] \
            == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "objectives": []}')
        assert self.run("slo-report", "q1", "--spec", str(bad))[0] == 2
