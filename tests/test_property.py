"""Property-based tests (hypothesis): compiler invariants on randomized
programs and data.

The central invariant is semantic preservation: for any program built from
random pipelines of parallel patterns and any input data,
``interp(compile(p)) == interp(p)``. Plus structural invariants of the
runtime data structures (directories, buckets) and the cost model.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import frontend as F
from repro.core import run_program
from repro.core import types as T
from repro.core.values import Buckets, deep_eq
from repro.optim import cse, dce, fuse_horizontal, fuse_vertical
from repro.pipeline import compile_program, optimize
from repro.runtime import Directory

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

ints_data = st.lists(st.integers(min_value=-50, max_value=50),
                     min_size=0, max_size=30)
pos_ints = st.lists(st.integers(min_value=0, max_value=60),
                    min_size=1, max_size=30)


# ---------------------------------------------------------------------------
# Random pipeline programs
# ---------------------------------------------------------------------------

#: each op is (name, how it extends a staged pipeline)
_OPS = [
    ("map_add", lambda r: r.map(lambda x: x + 3)),
    ("map_mul", lambda r: r.map(lambda x: x * 2)),
    ("filter_even", lambda r: r.filter(lambda x: x % 2 == 0)),
    ("filter_pos", lambda r: r.filter(lambda x: x > 0)),
    ("map_abs", lambda r: r.map(lambda x: abs(x))),
]

_SINKS = [
    ("sum", lambda r: r.sum()),
    ("count", lambda r: r.count()),
    ("collect", lambda r: r),
    ("group_sum", lambda r: r.group_by_reduce(lambda x: x % 3, lambda x: x,
                                              lambda a, b: a + b)),
    ("group_by", lambda r: r.group_by(lambda x: x % 2)),
]

pipeline_strategy = st.tuples(
    st.lists(st.sampled_from(_OPS), min_size=0, max_size=4),
    st.sampled_from(_SINKS))


def build_pipeline(ops, sink):
    def fn(xs):
        r = xs
        for _, op in ops:
            r = op(r)
        return sink[1](r)
    return F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)])


class TestSemanticPreservation:
    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_optimize_preserves_pipelines(self, spec, data):
        ops, sink = spec
        prog = build_pipeline(ops, sink)
        before, _ = run_program(prog, {"xs": data})
        after, _ = run_program(optimize(prog), {"xs": data})
        assert deep_eq(before, after)

    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_full_distributed_compile_preserves_pipelines(self, spec, data):
        ops, sink = spec
        prog = build_pipeline(ops, sink)
        before, _ = run_program(prog, {"xs": data})
        compiled = compile_program(prog, "distributed")
        after, _ = compiled.run({"xs": data})
        assert deep_eq(before, after)

    @given(st.lists(st.sampled_from(_OPS), min_size=1, max_size=3),
           ints_data, ints_data)
    @settings(**SETTINGS)
    def test_two_input_programs(self, ops, xs, ys):
        def fn(a, b):
            r = a
            for _, op in ops:
                r = op(r)
            return r.sum() + b.sum()
        prog = F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True),
                            F.InputSpec("ys", T.Coll(T.INT), False)])
        inputs = {"xs": xs, "ys": ys}
        before, _ = run_program(prog, inputs)
        after, _ = run_program(optimize(prog), inputs)
        assert deep_eq(before, after)

    @given(st.lists(st.lists(st.floats(min_value=-10, max_value=10,
                                       allow_nan=False),
                             min_size=3, max_size=3),
                    min_size=1, max_size=12))
    @settings(**SETTINGS)
    def test_interchange_preserves_row_sums(self, rows):
        """Column-to-Row / Row-to-Column reversibility on real matrices."""
        from repro.transforms import ColumnToRowReduce, RowToColumnReduce
        from repro.transforms.common import apply_rule_once
        from repro.core.ir import Program

        def fn(m):
            return F.irange(3).map(
                lambda j: m.map_reduce(lambda r: r[j], lambda a, b: a + b))
        prog = optimize(F.build(fn, [F.matrix_input("m", True)]),
                        horizontal=False)
        before, _ = run_program(prog, {"m": rows})
        b1 = apply_rule_once(prog.body, ColumnToRowReduce())
        assert b1 is not None
        c2r = dce(Program(prog.inputs, b1))
        mid, _ = run_program(c2r, {"m": rows})
        b2 = apply_rule_once(c2r.body, RowToColumnReduce())
        assert b2 is not None
        back, _ = run_program(dce(Program(c2r.inputs, b2)), {"m": rows})
        assert deep_eq(before, mid, tol=1e-6)
        assert deep_eq(mid, back, tol=1e-6)


class TestOptimizationInvariants:
    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_fusion_never_increases_loop_count(self, spec, data):
        from repro.core.multiloop import MultiLoop
        ops, sink = spec
        prog = build_pipeline(ops, sink)
        n_before = sum(1 for d in prog.body.stmts
                       if isinstance(d.op, MultiLoop))
        opt = dce(fuse_horizontal(fuse_vertical(cse(prog))))
        n_after = sum(1 for d in opt.body.stmts
                      if isinstance(d.op, MultiLoop))
        assert n_after <= n_before

    @given(pipeline_strategy)
    @settings(**SETTINGS)
    def test_compile_is_idempotent_on_results(self, spec):
        ops, sink = spec
        data = list(range(-5, 15))
        prog = build_pipeline(ops, sink)
        once_ = optimize(prog)
        twice = optimize(once_)
        a, _ = run_program(once_, {"xs": data})
        b, _ = run_program(twice, {"xs": data})
        assert deep_eq(a, b)


class TestRuntimeInvariants:
    @given(st.integers(min_value=0, max_value=2000),
           st.integers(min_value=1, max_value=64))
    @settings(**SETTINGS)
    def test_directory_partitions_exactly(self, length, parts):
        d = Directory.even(length, parts)
        ranges = d.ranges()
        # ranges are contiguous, ordered, and cover [0, length) exactly
        assert ranges[0][0] == 0
        assert ranges[-1][1] == length
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        total = sum(hi - lo for lo, hi in ranges)
        assert total == length
        # every index has exactly one owner, consistent with its range
        for i in range(0, length, max(1, length // 10)):
            p = d.owner(i)
            lo, hi = d.range_of(p)
            assert lo <= i < hi

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-9, 9)),
                    min_size=0, max_size=40))
    @settings(**SETTINGS)
    def test_buckets_match_dict_semantics(self, pairs):
        b = Buckets(default=0)
        expect = {}
        order = []
        for k, v in pairs:
            pos = b.get_or_create(k, 0)
            b.values[pos] += v
            if k not in expect:
                order.append(k)
            expect[k] = expect.get(k, 0) + v
        assert dict(b.items()) == expect
        assert b.keys == order          # first-seen order
        for k in expect:
            assert b.lookup(k) == expect[k]
        assert b.lookup(999) == 0


class TestCostModelInvariants:
    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=5, deadline=None)
    def test_scale_is_monotone(self, factor):
        """Doubling the modeled dataset never makes simulated time smaller."""
        from repro.apps.kmeans import kmeans_shared_program
        from repro.data.datasets import gaussian_clusters
        from repro.runtime import (DMLL_CPP, NUMA_BOX, ExecOptions,
                                   Simulator, capture_run)
        matrix, _ = gaussian_clusters(60, 4, k=3)
        compiled = compile_program(kmeans_shared_program(), "distributed")
        cap = capture_run(compiled, {"matrix": matrix,
                                     "clusters": matrix[:3]})
        t1 = Simulator(compiled, NUMA_BOX, DMLL_CPP,
                       ExecOptions(scale=100.0)).price(cap).total_seconds
        t2 = Simulator(compiled, NUMA_BOX, DMLL_CPP,
                       ExecOptions(scale=100.0 * factor)).price(cap).total_seconds
        assert t2 >= t1
