"""Coverage for the CLI inspector, the pretty printer, and end-to-end
driver behaviors (iterative convergence) not covered elsewhere."""

import io
from contextlib import redirect_stdout

import pytest

from repro import tools
from repro.apps.kmeans import kmeans
from repro.apps.logreg import logreg
from repro.core import pretty
from repro.data.datasets import gaussian_clusters, logistic_data


def run_cli(*argv) -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = tools.main(list(argv))
    assert rc == 0
    return buf.getvalue()


class TestCli:
    def test_list(self):
        out = run_cli("--list")
        assert "kmeans" in out and "pagerank" in out

    def test_staged_ir(self):
        out = run_cli("kmeans", "--stage", "staged")
        assert "MultiLoop" in out and "BucketReduce" not in out

    def test_compiled_ir_shows_transform(self):
        out = run_cli("kmeans")
        assert "BucketReduce" in out  # the Fig. 5 form

    def test_report(self):
        out = run_cli("q1", "--report")
        assert "groupby-reduce" in out
        assert "Partitioned" in out

    def test_emit_backends(self):
        assert "__global__" in run_cli("logreg", "--target", "gpu",
                                       "--emit", "cuda")
        assert "#include" in run_cli("gene", "--emit", "cpp")
        assert "object" in run_cli("gene", "--emit", "scala")

    def test_no_transforms_flag(self):
        out = run_cli("kmeans", "--no-transforms", "--report")
        assert "conditional-reduce" not in out

    def test_unknown_app(self):
        assert tools.main(["nope"]) == 2

    def test_staged_honors_emit(self):
        """Regression: --stage staged used to silently ignore --emit and
        always print IR."""
        assert "#include" in run_cli("q1", "--stage", "staged",
                                     "--emit", "cpp")
        assert "__global__" in run_cli("kmeans", "--stage", "staged",
                                       "--emit", "cuda")
        assert "object" in run_cli("gene", "--stage", "staged",
                                   "--emit", "scala")

    def test_staged_rejects_trace_flags(self):
        assert tools.main(["kmeans", "--stage", "staged", "--trace"]) == 2
        assert tools.main(["kmeans", "--stage", "staged",
                           "--verify-each"]) == 2

    def test_trace_flag_prints_pass_table(self):
        out = run_cli("kmeans", "--trace")
        assert "fuse-vertical" in out and "aos-to-soa" in out
        assert "passes," in out and "ms total" in out

    def test_trace_combines_with_report(self):
        out = run_cli("kmeans-grouped", "--report", "--trace")
        assert "groupby-reduce" in out and "fuse-horizontal" in out

    def test_verify_each_flag(self):
        out = run_cli("logreg", "--verify-each", "--trace", "--target",
                      "gpu")
        assert "gpu-rules" in out


class TestPrettyPrinter:
    def test_round_trips_structures(self):
        from repro import frontend as F
        from repro.core import types as T

        def fn(xs):
            g = xs.filter(lambda x: x > 0).group_by(lambda x: x % 2)
            return g.map(lambda b: F.where(b.count() > 1,
                                           lambda: b.sum(), lambda: 0))
        prog = F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)])
        text = pretty(prog)
        # all structural features render
        for marker in ("BucketCollect", "cond", "value", "if", "then",
                       "else", "return"):
            assert marker in text, marker


class TestIterativeDrivers:
    def test_kmeans_converges_on_separated_clusters(self):
        matrix, labels = gaussian_clusters(120, 4, k=3, spread=0.3)
        centers = kmeans(matrix, k=3, iterations=8)
        # every point should sit close to its assigned center
        import math
        for row in matrix[:30]:
            best = min(sum((a - b) ** 2 for a, b in zip(row, c))
                       for c in centers)
            assert math.sqrt(best) < 3.0

    def test_logreg_separates(self):
        x, y = logistic_data(150, 4)
        theta = logreg(x, y, alpha=0.3, iterations=25)
        correct = 0
        for xi, yi in zip(x, y):
            score = sum(t * v for t, v in zip(theta, xi))
            correct += int((score > 0) == (yi > 0.5))
        assert correct / len(x) > 0.8
