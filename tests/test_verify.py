"""The structural IR verifier: accepts every well-formed program the
compiler produces (staged, every PassManager intermediate, final, for all
three targets) and rejects deliberately corrupted programs."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import frontend as F
from repro.core import types as T
from repro.core.ir import Block, Const, Def, Program, fresh
from repro.core.multiloop import MultiLoop, collect, loop_def
from repro.core.ops import InputSource, Prim
from repro.core.verify import IRVerificationError, verify_program
from repro.pipeline import compile_program
from repro.tools import _APPS

SETTINGS = dict(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

_OPS = [
    lambda r: r.map(lambda x: x + 3),
    lambda r: r.map(lambda x: x * 2),
    lambda r: r.filter(lambda x: x % 2 == 0),
    lambda r: r.filter(lambda x: x > 0),
]

_SINKS = [
    lambda r: r.sum(),
    lambda r: r.count(),
    lambda r: r,
    lambda r: r.group_by_reduce(lambda x: x % 3, lambda x: x,
                                lambda a, b: a + b),
]

pipeline_strategy = st.tuples(
    st.lists(st.sampled_from(_OPS), min_size=0, max_size=4),
    st.sampled_from(_SINKS))


def build_pipeline(spec):
    ops, sink = spec

    def fn(xs):
        r = xs
        for op in ops:
            r = op(r)
        return sink(r)

    return F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)])


class TestAcceptsCompilerOutput:
    @pytest.mark.parametrize("app", sorted(_APPS))
    def test_staged_apps_verify(self, app):
        verify_program(_APPS[app]())

    @pytest.mark.parametrize("app", sorted(_APPS))
    @pytest.mark.parametrize("target", ["cpu", "distributed", "gpu"])
    def test_every_pass_boundary_verifies(self, app, target):
        """verify=True re-checks the IR after *every* pass; a failure
        anywhere in the pipeline raises from inside the PassManager."""
        compiled = compile_program(_APPS[app](), target, verify=True)
        verify_program(compiled.program)
        assert compiled.trace, "PassManager produced no trace"

    @given(pipeline_strategy, st.sampled_from(["cpu", "distributed", "gpu"]))
    @settings(**SETTINGS)
    def test_random_pipelines_verify_at_every_pass(self, spec, target):
        prog = build_pipeline(spec)
        verify_program(prog)
        compiled = compile_program(prog, target, verify=True)
        verify_program(compiled.program)


def _int_input(name="xs"):
    s = fresh(T.Coll(T.INT), name)
    return s, Def((s,), InputSource(T.Coll(T.INT), name, True))


class TestRejectsCorruptPrograms:
    def test_duplicate_def(self):
        s, d = _int_input()
        prog = Program((s,), Block((), (d, d), (s,)))
        with pytest.raises(IRVerificationError, match="defined twice"):
            verify_program(prog)

    def test_undefined_sym(self):
        s, d = _int_input()
        ghost = fresh(T.INT, "ghost")
        out = fresh(T.INT, "out")
        bad = Def((out,), Prim("add", (ghost, Const(1))))
        prog = Program((s,), Block((), (d, bad), (out,)))
        with pytest.raises(IRVerificationError, match="read before definition"):
            verify_program(prog)

    def test_dangling_result(self):
        s, d = _int_input()
        prog = Program((s,), Block((), (d,), (fresh(T.INT, "dangling"),)))
        with pytest.raises(IRVerificationError, match="out-of-scope"):
            verify_program(prog)

    def test_multiloop_sym_arity(self):
        s, d = _int_input()
        i = fresh(T.INT, "i")
        j = fresh(T.INT, "j")
        two_gen = MultiLoop(Const(3), (collect(Block((i,), (), (i,))),
                                       collect(Block((j,), (), (j,)))))
        only_one = fresh(T.Coll(T.INT), "l")
        prog = Program((s,), Block((), (d, Def((only_one,), two_gen)),
                                   (only_one,)))
        with pytest.raises(IRVerificationError, match="generator"):
            verify_program(prog)

    def test_nested_block_reads_undefined(self):
        s, d = _int_input()
        ghost = fresh(T.INT, "ghost")
        i = fresh(T.INT, "i")
        v = fresh(T.INT, "v")
        body = Block((i,), (Def((v,), Prim("add", (i, ghost))),), (v,))
        ld = loop_def(Const(3), [collect(body)])
        prog = Program((s,), Block((), (d, ld), (ld.syms[0],)))
        with pytest.raises(IRVerificationError, match="read before definition"):
            verify_program(prog)

    def test_generator_body_cannot_read_own_loop_output(self):
        """A generator block sees the scope *before* its loop's outputs."""
        s, d = _int_input()
        i = fresh(T.INT, "i")
        out = fresh(T.Coll(T.INT), "l")
        v = fresh(T.INT, "v")
        from repro.core.ops import ArrayApply
        body = Block((i,), (Def((v,), ArrayApply(out, i)),), (v,))
        loop = MultiLoop(Const(3), (collect(body),))
        prog = Program((s,), Block((), (d, Def((out,), loop)), (out,)))
        with pytest.raises(IRVerificationError, match="read before definition"):
            verify_program(prog)

    @given(pipeline_strategy, st.integers(min_value=0, max_value=2))
    @settings(**SETTINGS)
    def test_random_corruptions_rejected(self, spec, mode):
        prog = build_pipeline(spec)
        stmts = prog.body.stmts
        if mode == 0:    # duplicate an existing def
            bad = Block(prog.body.params, stmts + (stmts[0],),
                        prog.body.results)
        elif mode == 1:  # read a symbol that is never defined
            out = fresh(T.INT, "out")
            bad = Block(prog.body.params,
                        stmts + (Def((out,), Prim(
                            "add", (fresh(T.INT, "ghost"), Const(1)))),),
                        prog.body.results)
        else:            # dangle the program result
            bad = Block(prog.body.params, stmts,
                        (fresh(T.INT, "dangling"),))
        with pytest.raises(IRVerificationError):
            verify_program(Program(prog.inputs, bad))
