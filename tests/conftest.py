"""Test-suite-wide configuration.

Per-pass IR verification is opt-in in production (``DEFAULT_VERIFY`` is
False — it costs a full IR walk per pass) but on for the whole test
suite: every ``compile_program``/``optimize`` call in any test checks
the structural invariants at every pass boundary.
"""

import repro.pipeline as pipeline

pipeline.DEFAULT_VERIFY = True
