"""Test-suite-wide configuration.

Per-pass IR verification is opt-in in production (``DEFAULT_VERIFY`` is
False — it costs a full IR walk per pass) but on for the whole test
suite: every ``compile_program``/``optimize`` call in any test checks
the structural invariants at every pass boundary.

Execution backend: setting ``REPRO_BACKEND=numpy`` in the environment
routes every ``CompiledProgram.run`` / ``capture_run`` in the suite
through the vectorized backend (``repro.backend.resolve_backend`` reads
the variable) — the CI matrix runs one leg per backend. The header line
below makes the active backend visible in the pytest report.
"""

import repro.pipeline as pipeline

pipeline.DEFAULT_VERIFY = True


def pytest_report_header(config):
    from repro.backend import resolve_backend
    return f"repro execution backend: {resolve_backend()}"
