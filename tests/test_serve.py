"""The serving layer (DESIGN.md §9): compiled-program cache, lane-packed
batching, placement, and the seeded serving simulator.

The load-bearing contract is the differential one: a lane-packed batch
of N identical requests is served by ONE vectorized execution whose
results and ``ExecStats`` are bit-identical to what each request would
get from its own sequential run — batching may change wall-clock and
nothing else, the same bar the NumPy backend itself holds against the
reference interpreter.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro import tools
from repro.backend import run_program_numpy
from repro.core.values import deep_eq
from repro.obs import MetricsRegistry, Tracer
from repro.obs.check import validate_file
from repro.serve import (POLICIES, AdmissionQueue, ProgramCache,
                         ProgramServer, Request, ServeSim, ServedApp,
                         make_machines, make_payload, payload_digest)

DIFF_APPS = ["kmeans", "logreg", "q1"]

STAT_FIELDS = ["total_cycles", "elements_read", "bytes_read",
               "elements_emitted", "bytes_alloc", "loops_executed",
               "loop_iterations"]


def assert_stats_equal(ref, got):
    for f in STAT_FIELDS:
        assert getattr(ref, f) == getattr(got, f), (
            f"stats field {f}: sequential={getattr(ref, f)!r} "
            f"batched={getattr(got, f)!r}")
    assert dict(ref.op_counts) == dict(got.op_counts)
    assert ref.def_records == got.def_records


def serve_batch(app, n, max_batch=None, **kwargs):
    served = ServedApp.from_bundle(app)
    kwargs.setdefault("max_wait_s", 0.05)
    kwargs.setdefault("backend", "numpy")
    server = ProgramServer([served], max_batch=max_batch or n, **kwargs)
    for _ in range(n):
        server.submit(app, at=0.0)
    return server, server.run()


# ---------------------------------------------------------------------------
# the differential acceptance bar
# ---------------------------------------------------------------------------

class TestLanePackedDifferential:
    @pytest.mark.parametrize("app", DIFF_APPS)
    def test_batch_bit_identical_to_sequential(self, app):
        n = 4
        server, responses = serve_batch(app, n)
        assert len(responses) == n
        assert all(r.lane_packed and r.batch_size == n for r in responses)
        assert server.fallbacks == []

        # the sequential truth: each request run alone, fresh, on the
        # same compiled program
        entry = server.cache.get(app)
        prepared = entry.compiled.prepare_inputs(
            server.apps[app].default_inputs)
        for r in responses:
            seq_results, seq_stats, seq_fb = run_program_numpy(
                entry.compiled.program, prepared)
            assert seq_fb == []
            assert deep_eq(seq_results, r.results, tol=0.0)
            assert_stats_equal(seq_stats, r.stats)

    def test_batch_is_one_execution(self, monkeypatch):
        # N lane-packed requests must cost ONE functional execution
        from repro.runtime import executor as rexec
        calls = []
        real = rexec.capture_run

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr("repro.serve.scheduler.capture_run", counting)
        _, responses = serve_batch("q1", 6)
        assert len(responses) == 6
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# payload grouping
# ---------------------------------------------------------------------------

class TestPayloads:
    def test_digest_is_content_addressed(self):
        a = payload_digest({"xs": [1, 2, 3], "k": 2.5})
        assert a == payload_digest({"k": 2.5, "xs": [1, 2, 3]})
        assert a != payload_digest({"xs": [1, 2, 4], "k": 2.5})
        assert payload_digest({"x": 1}) != payload_digest({"x": 1.0})

    def test_salted_payloads_do_not_pack(self):
        served = ServedApp.from_bundle("q1")
        server = ProgramServer([served], max_batch=2, max_wait_s=0.001,
                               backend="numpy")
        server.submit("q1", server.payload_for("q1", "a"), at=0.0)
        server.submit("q1", server.payload_for("q1", "a"), at=0.0)
        server.submit("q1", server.payload_for("q1", "b"), at=0.0)
        responses = server.run()
        by_batch = {}
        for r in responses:
            by_batch.setdefault(r.batch_id, []).append(r)
        sizes = sorted(len(v) for v in by_batch.values())
        assert sizes == [1, 2]

    def test_admission_queue_fifo_and_window(self):
        q = AdmissionQueue()
        p = make_payload({"x": 1})
        for i, at in enumerate([0.0, 0.001, 0.002]):
            q.push(Request(i, "a", p, at))
        # batch not full, window not expired
        assert q.next_ready(0.002, max_batch=4, max_wait_s=0.01) is None
        # window expires relative to the OLDEST request
        key = q.next_ready(0.0101, max_batch=4, max_wait_s=0.01)
        assert key == ("a", p.key)
        assert [r.rid for r in q.take(key, 2)] == [0, 1]
        assert len(q) == 1


# ---------------------------------------------------------------------------
# batching window behavior through the server
# ---------------------------------------------------------------------------

class TestBatching:
    def test_max_batch_splits_requests(self):
        server, responses = serve_batch("q1", 5, max_batch=2,
                                        max_wait_s=0.001)
        sizes = {}
        for r in responses:
            sizes[r.batch_id] = r.batch_size
        assert sorted(sizes.values()) == [1, 2, 2]

    def test_max_wait_delays_lone_request(self):
        served = ServedApp.from_bundle("q1")
        server = ProgramServer([served], max_batch=8, max_wait_s=0.005,
                               backend="numpy")
        server.submit("q1", at=0.0)
        (r,) = server.run()
        # a lone request dispatches at its wait deadline, not instantly
        assert r.start_s == pytest.approx(0.005)
        assert r.queue_wait_s == pytest.approx(0.005)
        assert not r.lane_packed  # nobody joined its lanes

    def test_zero_wait_dispatches_immediately(self):
        served = ServedApp.from_bundle("q1")
        server = ProgramServer([served], max_batch=8, max_wait_s=0.0,
                               backend="numpy")
        server.submit("q1", at=0.0)
        (r,) = server.run()
        assert r.start_s == 0.0


# ---------------------------------------------------------------------------
# fallback semantics (recorded, never silent — like the backend's)
# ---------------------------------------------------------------------------

class TestFallback:
    def test_reference_backend_serves_per_request(self):
        server, responses = serve_batch("q1", 3, backend="reference")
        assert all(not r.lane_packed for r in responses)
        assert all(r.fallback_reason for r in responses)
        assert all(r.backend == "reference" for r in responses)
        assert len(server.fallbacks) == 1
        assert server.fallbacks[0].requests == 3
        # per-request execution: finishes are staggered, not shared
        finishes = sorted(r.finish_s for r in responses)
        assert finishes[0] < finishes[1] < finishes[2]
        # results are exactly the reference interpreter's (bitwise —
        # the fallback IS a reference execution, not an approximation)
        from repro.core import run_program
        entry = server.cache.get("q1")
        prepared = entry.compiled.prepare_inputs(
            server.apps["q1"].default_inputs)
        seq_results, _ = run_program(entry.compiled.program, prepared)
        for r in responses:
            assert deep_eq(seq_results, r.results, tol=0.0)

    def test_numpy_failure_falls_back_to_reference(self, monkeypatch):
        served = ServedApp.from_bundle("q1")
        server = ProgramServer([served], max_batch=2, max_wait_s=0.0,
                               backend="numpy")

        def boom(app, variant, payload):
            raise RuntimeError("lane explosion")

        monkeypatch.setattr(server, "_capture", boom)
        server.submit("q1", at=0.0)
        (r,) = server.run()
        assert r.backend == "reference"
        assert "lane explosion" in r.fallback_reason
        assert len(server.fallbacks) == 1
        assert "lane explosion" in server.fallbacks[0].reason


# ---------------------------------------------------------------------------
# the compiled-program cache
# ---------------------------------------------------------------------------

class TestProgramCache:
    def test_compiles_once_and_counts_hits(self):
        served = ServedApp.from_bundle("q1")
        calls = []

        def factory():
            calls.append(1)
            return served.factory()

        cache = ProgramCache({"q1": factory})
        e1 = cache.get("q1")
        e2 = cache.get("q1")
        assert e1 is e2 and len(calls) == 1
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert e1.hits == 1 and e1.compile_s > 0

    def test_digest_pinned_lookup(self):
        cache = ProgramCache({"q1": ServedApp.from_bundle("q1").factory})
        entry = cache.get("q1")
        assert len(entry.digest) == 16
        assert cache.lookup("q1", entry.digest) is entry
        assert cache.lookup("q1", "0" * 16) is None

    def test_unknown_app_and_variant_error(self):
        cache = ProgramCache({"q1": ServedApp.from_bundle("q1").factory})
        with pytest.raises(KeyError):
            cache.get("nosuchapp")
        with pytest.raises(KeyError):
            cache.get("q1", "nosuchvariant")


# ---------------------------------------------------------------------------
# placement across machines
# ---------------------------------------------------------------------------

class TestPlacement:
    def test_make_machines_parses_spec(self):
        ms = make_machines("numa*2,gpunode")
        assert [m.name for m in ms] == ["numa", "numa", "gpunode"]
        assert [m.index for m in ms] == [0, 1, 2]
        assert ms[2].use_gpu and ms[2].variant == "gpu"
        with pytest.raises(ValueError):
            make_machines("warpdrive")
        with pytest.raises(ValueError):
            make_machines("")

    def test_make_machines_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="not an integer"):
            make_machines("numa*x")
        with pytest.raises(ValueError, match="count must be >= 1"):
            make_machines("numa*0")
        with pytest.raises(ValueError, match="count must be >= 1"):
            make_machines("numa*-2")
        # the offending part is named so "a*0,b*x" is debuggable
        with pytest.raises(ValueError, match="numa\\*0"):
            make_machines("gpunode,numa*0")

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_policies_spread_salted_load(self, policy):
        served = ServedApp.from_bundle("q1")
        server = ProgramServer([served], make_machines("numa*2"),
                               max_batch=1, max_wait_s=0.0, policy=policy,
                               backend="numpy")
        # salted payloads can't pack, so 4 ready singleton groups exist
        # at t=0 — with 2 idle machines both must be used
        for i in range(4):
            server.submit("q1", server.payload_for("q1", f"s{i}"), at=0.0)
        server.run()
        used = [m for m in server.machines if m.batches > 0]
        assert len(used) == 2

    def test_heterogeneous_apps_multiplex(self):
        apps = [ServedApp.from_bundle("kmeans"), ServedApp.from_bundle("q1")]
        server = ProgramServer(apps, make_machines("numa*2"), max_batch=2,
                               max_wait_s=0.001, backend="numpy")
        for i in range(4):
            server.submit("kmeans" if i % 2 == 0 else "q1", at=0.0)
        responses = server.run()
        assert {r.request.app for r in responses} == {"kmeans", "q1"}
        # kmeans and q1 never share a batch (different programs)
        for r in responses:
            mates = [x for x in responses if x.batch_id == r.batch_id]
            assert {x.request.app for x in mates} == {r.request.app}


# ---------------------------------------------------------------------------
# the seeded serving simulator
# ---------------------------------------------------------------------------

class TestServeSim:
    def test_same_seed_same_tail(self):
        def run():
            sim = ServeSim(["q1"], machines="numa", max_batch=4,
                           max_wait_s=0.002, backend="numpy", payloads=2)
            rep = sim.run_closed(clients=4, requests=12, think_s=0.001,
                                 seed=7)
            return rep
        a, b = run(), run()
        assert a.latency_p99_s == b.latency_p99_s
        assert a.throughput_rps == b.throughput_rps
        assert a.latencies_s == b.latencies_s

    def test_different_seed_different_schedule(self):
        sim = ServeSim(["q1"], machines="numa", max_batch=4,
                       max_wait_s=0.002, backend="numpy", payloads=3)
        a = sim.run_open(rate_rps=500, requests=16, seed=1)
        b = sim.run_open(rate_rps=500, requests=16, seed=2)
        assert a.latencies_s != b.latencies_s

    def test_open_loop_reports_and_metrics(self):
        m = MetricsRegistry()
        sim = ServeSim(["q1"], machines="numa", max_batch=4,
                       max_wait_s=0.005, backend="numpy", metrics=m)
        rep = sim.run_open(rate_rps=400, requests=10, seed=3)
        assert rep.requests == 10
        assert rep.throughput_rps > 0
        assert rep.latency_p50_s <= rep.latency_p95_s <= rep.latency_p99_s
        assert m.counter("serve.requests", app="q1") == 10.0
        hist = rep.latency_histogram()
        assert sum(hist["counts"]) == 10

    def test_closed_loop_keeps_clients_in_flight(self):
        sim = ServeSim(["q1"], machines="numa", max_batch=8,
                       max_wait_s=0.001, backend="numpy")
        rep = sim.run_closed(clients=3, requests=9, think_s=0.0, seed=0)
        assert rep.requests == 9
        server = sim.last_server
        clients = [r.request.client for r in server.responses]
        assert sorted(set(clients)) == [0, 1, 2]

    def test_shared_cache_across_runs(self):
        sim = ServeSim(["q1"], backend="numpy")
        sim.run_closed(clients=2, requests=4, seed=0)
        sim.run_closed(clients=2, requests=4, seed=1)
        assert sim.cache.stats()["misses"] == 1  # compiled exactly once

    def test_trace_validates(self, tmp_path):
        from repro.obs import write_chrome_trace
        tr = Tracer()
        sim = ServeSim(["q1"], backend="numpy", tracer=tr)
        sim.run_closed(clients=2, requests=6, seed=0)
        path = tmp_path / "serve.json"
        write_chrome_trace(str(path), tr.last_run)
        assert validate_file(str(path)) == []

    def test_latency_breakdowns(self):
        sim = ServeSim(["kmeans", "q1"], machines="numa*2",
                       backend="numpy", max_batch=2)
        rep = sim.run_open(rate_rps=400, requests=12, seed=5)
        assert set(rep.latency_by_app) == {"kmeans", "q1"}
        assert sum(st["count"] for st in rep.latency_by_app.values()) == 12
        assert sum(st["count"]
                   for st in rep.latency_by_machine.values()) == 12
        for st in rep.latency_by_app.values():
            assert st["p50_s"] <= st["p95_s"] <= st["p99_s"]
        doc = rep.to_json()
        # existing top-level keys stay stable; breakdowns are additive
        for key in ("requests", "batches", "makespan_s", "throughput_rps",
                    "latency_p99_s", "latency_histogram"):
            assert key in doc
        assert set(doc["latency_by_machine"]) <= {"numa[0]", "numa[1]"}

    def test_traffic_rejects_nonpositive_requests(self):
        from repro.serve import ClosedLoop, OpenLoop
        with pytest.raises(ValueError, match="requests must be >= 1"):
            OpenLoop(["q1"], rate_rps=100.0, requests=0)
        with pytest.raises(ValueError, match="requests must be >= 1"):
            ClosedLoop(["q1"], clients=2, requests=-3)
        sim = ServeSim(["q1"], backend="numpy")
        with pytest.raises(ValueError):
            sim.run_closed(clients=2, requests=0, seed=0)

    def test_responses_name_their_machine(self):
        sim = ServeSim(["q1"], machines="numa*2", backend="numpy")
        sim.run_open(rate_rps=500, requests=8, seed=2)
        for r in sim.last_server.responses:
            assert r.machine in ("numa[0]", "numa[1]")


# ---------------------------------------------------------------------------
# request tracing: deterministic per-request spans and flow links
# ---------------------------------------------------------------------------

class TestServeTracing:
    def traced_run(self, seed=4, requests=16):
        tr = Tracer()
        sim = ServeSim(["kmeans"], machines="numa*2", backend="numpy",
                       max_batch=4, tracer=tr)
        rep = sim.run_open(rate_rps=400, requests=requests, seed=seed)
        return tr, sim, rep

    def test_same_seed_byte_identical_trace(self):
        from repro.obs import chrome_trace_events
        a = chrome_trace_events(self.traced_run()[0])
        b = chrome_trace_events(self.traced_run()[0])
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_tracer_off_results_identical(self):
        def outcome(tracer):
            sim = ServeSim(["kmeans"], machines="numa*2", backend="numpy",
                           max_batch=4, tracer=tracer)
            sim.run_open(rate_rps=400, requests=16, seed=4)
            return [(r.request.rid, r.start_s, r.finish_s, r.batch_id,
                     r.batch_size, r.machine, r.lane_packed, r.backend)
                    for r in sim.last_server.responses]
        assert outcome(None) == outcome(Tracer())

    def test_request_spans_and_flow_links(self, tmp_path):
        from repro.obs import write_chrome_trace
        tr, sim, rep = self.traced_run()
        path = tmp_path / "serve.json"
        write_chrome_trace(str(path), tr)
        assert validate_file(str(path)) == []
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        reqs = [e for e in events if e.get("cat") == "request"]
        assert len(reqs) == rep.requests
        # every request span names its trace identity and served batch
        batch_ids = {e["args"]["batch_id"] for e in events
                     if e.get("cat") == "batch"}
        for e in reqs:
            assert e["pid"] == 2 and e["tid"] == e["args"]["rid"]
            assert len(e["args"]["trace_id"]) == 32
            assert len(e["args"]["span_id"]) == 16
            assert e["args"]["batch_id"] in batch_ids
        # N requests -> one flow start each, finishing on a batch slice
        starts = [e for e in events if e.get("ph") == "s"]
        ends = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == rep.requests == len(ends)
        assert {e["id"] for e in starts} == {e["args"]["flow_id"]
                                             for e in reqs}

    def test_timeline_lifecycle_monotonic(self):
        tr, sim, rep = self.traced_run()
        server = sim.last_server
        for r in server.responses:
            tl = server.timeline_of(r.request.rid)
            marks = dict(tl.ordered())
            assert (marks["arrive"] <= marks["enqueue"] <= marks["seal"]
                    <= marks["dispatch"] <= marks["exec_start"]
                    <= marks["complete"])
            assert marks["arrive"] == r.request.arrival_s
            assert marks["complete"] == r.finish_s

    def test_request_ctx_matches_derivation(self):
        from repro.obs import RequestContext
        tr, sim, rep = self.traced_run(seed=9)
        for r in sim.last_server.responses:
            assert r.request.ctx == RequestContext.derive(9, r.request.rid)

    def test_batch_spans_carry_loop_children(self):
        tr, sim, rep = self.traced_run()
        batches = [sp for sp, _ in tr.last_run.walk() if sp.kind == "batch"]
        assert batches
        lane_packed = [b for b in batches if b.attrs.get("lane_packed")
                       or b.attrs.get("fallback") is None]
        assert lane_packed
        for b in lane_packed:
            loops = [c for c in b.children if c.kind == "loop"]
            assert loops
            # loops tile the batch span on the serving machine's track
            cursor = b.start_s
            for sp in loops:
                assert sp.start_s == pytest.approx(cursor, abs=1e-9)
                assert sp.attrs["machine"] == b.attrs["machine"]
                cursor = sp.end_s

    def test_untraced_server_allocates_no_request_state(self):
        sim = ServeSim(["q1"], backend="numpy")
        sim.run_closed(clients=2, requests=6, seed=0)
        server = sim.last_server
        assert server._timelines == {} and server._sims == {}
        assert all(r.request.ctx is None for r in server.responses)


# ---------------------------------------------------------------------------
# the serve-sim CLI
# ---------------------------------------------------------------------------

class TestServeCLI:
    def run(self, *argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = tools.main(list(argv))
        return code, buf.getvalue()

    def test_closed_loop_smoke(self, tmp_path):
        lat = tmp_path / "lat.json"
        trace = tmp_path / "trace.json"
        code, out = self.run("serve-sim", "q1", "--clients", "2",
                             "--requests", "6", "--batch", "2",
                             "--seed", "1", "--latency-out", str(lat),
                             "--trace-out", str(trace))
        assert code == 0
        assert "throughput" in out and "latency p99" in out
        doc = json.loads(lat.read_text())
        assert doc["requests"] == 6
        assert "latency_histogram" in doc
        assert validate_file(str(trace)) == []

    def test_json_report(self):
        code, out = self.run("serve-sim", "q1", "--requests", "4",
                             "--clients", "2", "--json")
        assert code == 0
        assert json.loads(out)["requests"] == 4

    def test_observability_outputs(self, tmp_path):
        flame = tmp_path / "flame.txt"
        prom = tmp_path / "metrics.prom"
        code, out = self.run("serve-sim", "q1", "--requests", "6",
                             "--clients", "2", "--seed", "1",
                             "--flame-out", str(flame),
                             "--metrics-out", str(prom),
                             "--slo", "examples/slo_serving.json")
        assert code == 0
        assert "SLO report" in out and "VIOLATED" not in out
        lines = flame.read_text().strip().splitlines()
        assert lines and all(int(l.rsplit(" ", 1)[1]) > 0 for l in lines)
        text = prom.read_text()
        assert "# TYPE serve_requests counter" in text
        assert text.endswith("# EOF\n")

    def test_slo_attached_to_latency_json(self, tmp_path):
        lat = tmp_path / "lat.json"
        code, _ = self.run("serve-sim", "q1", "--requests", "6",
                           "--clients", "2",
                           "--slo", "examples/slo_serving.json",
                           "--latency-out", str(lat))
        assert code == 0
        doc = json.loads(lat.read_text())
        assert doc["slo"]["status"] == "ok"
        assert {o["name"] for o in doc["slo"]["objectives"]} == \
            {"latency-p99", "availability"}

    def test_usage_errors(self):
        assert self.run("serve-sim")[0] == 2
        assert self.run("serve-sim", "nosuchapp")[0] == 2
        assert self.run("serve-sim", "q1", "--requests", "0")[0] == 2
        assert self.run("serve-sim", "q1", "--machines", "warpdrive")[0] == 2
