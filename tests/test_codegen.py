"""Structural tests for the three code generators: the target-specific
lowering decisions of §3.1/§3.2 must be visible in the emitted source."""

import pytest

from repro import frontend as F
from repro.apps.kmeans import kmeans_shared_program
from repro.apps.logreg import logreg_program
from repro.codegen import generate_cpp, generate_cuda, generate_scala
from repro.core import types as T
from repro.pipeline import compile_program


@pytest.fixture(scope="module")
def kmeans_cpu():
    return compile_program(kmeans_shared_program(), "distributed").program


@pytest.fixture(scope="module")
def kmeans_gpu():
    return compile_program(kmeans_shared_program(), "gpu").program


def simple_prog():
    def fn(xs):
        return xs.filter(lambda x: x > 1.0).map(lambda x: x * 2.0).sum()
    return F.build(fn, [F.vector_input("xs", partitioned=True)])


class TestCpp:
    def test_emits_compilable_looking_code(self, kmeans_cpu):
        src = generate_cpp(kmeans_cpu)
        assert "#include <vector>" in src
        assert "for (int64_t" in src
        assert src.count("{") == src.count("}")

    def test_collect_appends(self):
        src = generate_cpp(compile_program(simple_prog(), "cpu").program)
        # fused filter+map+reduce: a conditional reduce, no push_back left
        assert "if (" in src
        assert "seen" in src  # first-element reduce protocol

    def test_bucket_uses_hash(self, kmeans_cpu):
        src = generate_cpp(kmeans_cpu)
        assert "hash-accumulated" in src

    def test_struct_definitions_emitted(self):
        from repro.apps.tpch import q1_program
        prog = q1_program()  # uncompiled: structs still present
        src = generate_cpp(prog)
        assert "struct" in src


class TestCuda:
    def test_kernels_emitted(self, kmeans_cpu):
        src = generate_cuda(kmeans_cpu)
        assert "__global__" in src
        assert "blockIdx.x" in src

    def test_vector_reduce_flagged_without_r2c(self, kmeans_cpu):
        # CPU-compiled k-means reduces vectors: the CUDA backend warns
        src = generate_cuda(kmeans_cpu)
        assert "WARNING: vector-typed reduction" in src

    def test_r2c_removes_vector_reduce_warning(self, kmeans_gpu):
        src = generate_cuda(kmeans_gpu)
        assert "WARNING: vector-typed reduction" not in src

    def test_scalar_reduce_uses_shared_memory(self):
        prog = compile_program(logreg_program(), "gpu").program
        src = generate_cuda(prog)
        assert "shared_tree_reduce" in src

    def test_conditional_collect_two_phase(self):
        def fn(xs):
            return xs.filter(lambda x: x > 1.0)
        prog = F.build(fn, [F.vector_input("xs", partitioned=True)])
        src = generate_cuda(prog)
        assert "exclusive_scan" in src  # two-phase collect, §3.1

    def test_buckets_sorted_on_gpu(self, kmeans_gpu):
        src = generate_cuda(kmeans_gpu)
        assert "sort" in src


class TestScala:
    def test_while_loops(self, kmeans_cpu):
        src = generate_scala(kmeans_cpu)
        assert "while (" in src
        assert "case class" not in src  # SoA'd/fused program has no structs

    def test_case_classes_for_structs(self):
        from repro.apps.tpch import q1_program
        src = generate_scala(q1_program())
        assert "final case class LineItem" in src

    def test_balanced_braces(self, kmeans_cpu):
        src = generate_scala(kmeans_cpu)
        assert src.count("{") == src.count("}")


class TestAllTargets:
    def test_all_apps_generate_without_error(self):
        from repro.apps import (gda_program, gene_program, nb_program,
                                q1_program)
        from repro.graph import pagerank_pull_program, triangle_program
        for mk in (gda_program, gene_program, nb_program, q1_program,
                   pagerank_pull_program, triangle_program):
            prog = compile_program(mk(), "distributed").program
            for gen in (generate_cpp, generate_cuda, generate_scala):
                src = gen(prog)
                assert len(src) > 100
