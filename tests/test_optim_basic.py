"""Unit tests for CSE, DCE, and code motion — including semantic
preservation on executed programs."""

from repro import frontend as F
from repro.core import run_program
from repro.core import types as T
from repro.core.multiloop import MultiLoop
from repro.core.values import deep_eq
from repro.optim import code_motion, cse, dce


def ints(label="xs"):
    return F.InputSpec(label, T.Coll(T.INT), False)


def n_loops(prog):
    def count(block):
        c = 0
        for d in block.stmts:
            if isinstance(d.op, MultiLoop):
                c += 1
            for b in d.op.blocks():
                c += count(b)
        return c
    return count(prog.body)


def n_stmts(prog):
    def count(block):
        c = len(block.stmts)
        for d in block.stmts:
            for b in d.op.blocks():
                c += count(b)
        return c
    return count(prog.body)


XS = [3, 1, 4, 1, 5, 9, 2, 6]


def check_preserves(fn, specs, inputs, opt):
    prog = F.build(fn, specs)
    before, _ = run_program(prog, inputs)
    after, _ = run_program(opt(prog), inputs)
    assert deep_eq(before, after)


class TestDCE:
    def test_removes_unused_loop(self):
        def fn(xs):
            _dead = xs.map(lambda x: x * 2)
            return xs.sum()
        prog = F.build(fn, [ints()])
        assert n_loops(prog) == 2
        prog2 = dce(prog)
        assert n_loops(prog2) == 1
        (out,), _ = run_program(prog2, {"xs": XS})
        assert out == sum(XS)

    def test_keeps_inputs(self):
        def fn(xs, ys):
            return xs.sum()
        prog = F.build(fn, [ints("xs"), ints("ys")])
        prog2 = dce(prog)
        present = {s for d in prog2.body.stmts for s in d.syms}
        assert set(prog.inputs) <= present

    def test_removes_dead_stmts_in_bodies(self):
        def fn(xs):
            def body(x):
                _dead = x * 100
                return x + 1
            return xs.map(body)
        prog = F.build(fn, [ints()])
        prog2 = dce(prog)
        assert n_stmts(prog2) < n_stmts(prog)
        check_preserves(fn, [ints()], {"xs": XS}, dce)

    def test_multi_output_def_kept_if_any_live(self):
        # horizontal-fusion-style multi-output defs must survive DCE when
        # only one output is used
        from repro.optim import fuse_horizontal
        def fn(xs):
            a = xs.sum()
            b = xs.map_reduce(lambda x: x * x, lambda p, q: p + q)
            return a
        prog = fuse_horizontal(F.build(fn, [ints()]))
        prog2 = dce(prog)
        (out,), _ = run_program(prog2, {"xs": XS})
        assert out == sum(XS)


class TestCSE:
    def test_merges_identical_prims(self):
        def fn(xs):
            a = xs.length()
            b = xs.length()
            return a + b
        prog = F.build(fn, [ints()])
        prog2 = cse(prog)
        lens = [d for d in prog2.body.stmts if d.op.op_name() == "ArrayLength"]
        assert len(lens) == 1
        (out,), _ = run_program(prog2, {"xs": XS})
        assert out == 2 * len(XS)

    def test_cse_inside_blocks(self):
        def fn(xs):
            return xs.map(lambda x: x * x + x * x)
        prog = cse(F.build(fn, [ints()]))
        (out,), _ = run_program(prog, {"xs": XS})
        assert out == [2 * x * x for x in XS]

    def test_cse_preserves_semantics(self):
        def fn(xs):
            return xs.map(lambda x: (x + 1) * (x + 1)).sum()
        check_preserves(fn, [ints()], {"xs": XS}, cse)


class TestCodeMotion:
    def test_hoists_invariant_computation(self):
        def fn(xs, ys):
            # ys.sum() is invariant in the map body
            return xs.map(lambda x: x + ys.sum())
        prog = F.build(fn, [ints("xs"), ints("ys")])
        assert len([d for d in prog.body.stmts if isinstance(d.op, MultiLoop)]) == 1
        prog2 = code_motion(prog)
        top_loops = [d for d in prog2.body.stmts if isinstance(d.op, MultiLoop)]
        assert len(top_loops) == 2  # the inner sum is now at top level
        (out,), _ = run_program(prog2, {"xs": XS, "ys": [1, 2, 3]})
        assert out == [x + 6 for x in XS]

    def test_does_not_hoist_dependent_code(self):
        def fn(xs):
            return xs.map(lambda x: x * 2 + 1)
        prog = code_motion(F.build(fn, [ints()]))
        (out,), _ = run_program(prog, {"xs": XS})
        assert out == [x * 2 + 1 for x in XS]

    def test_multilevel_hoist(self):
        def fn(xs, ys):
            return xs.map(lambda x: ys.map(lambda y: y + ys.sum()).sum() + x)
        check_preserves(fn, [ints("xs"), ints("ys")],
                        {"xs": XS, "ys": [1, 2]}, code_motion)
