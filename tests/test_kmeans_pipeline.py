"""End-to-end compiler tests on the paper's running examples: the Fig. 1 →
Fig. 4/5 k-means story and the §3.2 logistic-regression interchange."""

import pytest

from repro.analysis import DataLayout, Stencil, analyze_program
from repro.apps.kmeans import (kmeans_grouped_program, kmeans_oracle,
                               kmeans_shared_program)
from repro.apps.logreg import logreg_oracle, logreg_program
from repro.core import run_program
from repro.core.multiloop import GenKind, MultiLoop
from repro.core.values import deep_eq
from repro.pipeline import compile_program, optimize

MAT = [[1.0, 2.0], [8.0, 9.0], [1.2, 1.8], [7.5, 9.5], [0.8, 2.2], [8.2, 8.8]]
CLUSTERS = [[1.0, 2.0], [8.0, 9.0]]
INPUTS = {"matrix": MAT, "clusters": CLUSTERS}


def top_loop_kinds(prog):
    return [tuple(g.kind for g in d.op.gens)
            for d in prog.body.stmts if isinstance(d.op, MultiLoop)]


class TestKmeansShared:
    def test_uncompiled_matches_oracle(self):
        (out,), _ = run_program(kmeans_shared_program(), INPUTS)
        assert deep_eq(out, kmeans_oracle(MAT, CLUSTERS))

    def test_conditional_reduce_fires(self):
        compiled = compile_program(kmeans_shared_program(), "distributed")
        assert "conditional-reduce" in compiled.report.applied_rules

    def test_compiled_matches_oracle(self):
        compiled = compile_program(kmeans_shared_program(), "distributed")
        (out,), _ = run_program(compiled.program, INPUTS)
        assert deep_eq(out, kmeans_oracle(MAT, CLUSTERS))

    def test_fig5_structure_single_traversal(self):
        """After transformation + fusion, the sums and counts bucket-reduces
        and the assignment map collapse into one traversal of the matrix."""
        compiled = compile_program(kmeans_shared_program(), "distributed")
        kinds = top_loop_kinds(compiled.program)
        merged = [ks for ks in kinds if GenKind.BUCKET_REDUCE in ks]
        assert merged, f"no bucket-reduce traversal found: {kinds}"
        # both ss and cs live in one multiloop (horizontal fusion)
        assert any(ks.count(GenKind.BUCKET_REDUCE) == 2 for ks in kinds), kinds

    def test_no_warnings_after_transformation(self):
        compiled = compile_program(kmeans_shared_program(), "distributed")
        assert compiled.warnings == []

    def test_matrix_partitioned_interval(self):
        """Fig. 4/5: matrix stays partitioned and is only read at Interval
        stencils after the rewrite."""
        compiled = compile_program(kmeans_shared_program(), "distributed")
        prog, report = compiled.program, compiled.report
        matrix_sym = prog.inputs[0]
        assert report.layout(matrix_sym) is DataLayout.PARTITIONED
        for ls in compiled.stencils.values():
            if matrix_sym in ls.reads:
                assert ls.reads[matrix_sym] is Stencil.INTERVAL

    def test_gpu_compile_matches_oracle(self):
        compiled = compile_program(kmeans_shared_program(), "gpu")
        (out,), _ = run_program(compiled.program, INPUTS)
        assert deep_eq(out, kmeans_oracle(MAT, CLUSTERS))


class TestKmeansGrouped:
    def test_uncompiled_matches_oracle_by_key(self):
        (out,), _ = run_program(kmeans_grouped_program(), INPUTS)
        oracle = kmeans_oracle(MAT, CLUSTERS)
        assert len(out) == 2
        # grouped result is in first-seen order; compare as sets of vectors
        assert sorted(map(tuple, out)) == sorted(map(tuple, oracle))

    def test_groupby_reduce_fires(self):
        compiled = compile_program(kmeans_grouped_program(), "distributed")
        assert "groupby-reduce" in compiled.report.applied_rules

    def test_compiled_matches_uncompiled(self):
        plain, _ = run_program(kmeans_grouped_program(), INPUTS)
        compiled = compile_program(kmeans_grouped_program(), "distributed")
        opt, _ = run_program(compiled.program, INPUTS)
        assert deep_eq(plain, opt)

    def test_both_formulations_agree_after_compilation(self):
        """§3.2: 'we end up with the exact same optimized code as the result
        of applying the GroupBy-Reduce rule to the groupBy formulation'."""
        a = compile_program(kmeans_shared_program(), "distributed")
        b = compile_program(kmeans_grouped_program(), "distributed")
        (ra,), _ = run_program(a.program, INPUTS)
        (rb,), _ = run_program(b.program, INPUTS)
        assert sorted(map(tuple, ra)) == sorted(map(tuple, rb))
        # both end in a fused traversal with bucket reduces over the matrix
        ka = [ks for ks in top_loop_kinds(a.program) if GenKind.BUCKET_REDUCE in ks]
        kb = [ks for ks in top_loop_kinds(b.program) if GenKind.BUCKET_REDUCE in ks]
        assert ka and kb


class TestLogReg:
    X = [[1.0, 2.0, 0.5], [0.5, 1.0, 1.5], [2.0, 0.2, 1.0], [1.5, 1.5, 0.1]]
    Y = [1.0, 0.0, 1.0, 0.0]
    IN = {"x": X, "y": Y, "theta": [0.1, -0.2, 0.3], "alpha": 0.1}

    def test_uncompiled_matches_oracle(self):
        (out,), _ = run_program(logreg_program(), self.IN)
        assert deep_eq(out, logreg_oracle(self.X, self.Y,
                                          self.IN["theta"], 0.1))

    def test_column_to_row_fires(self):
        compiled = compile_program(logreg_program(), "distributed")
        assert "column-to-row-reduce" in compiled.report.applied_rules

    def test_compiled_matches_oracle(self):
        compiled = compile_program(logreg_program(), "distributed")
        (out,), _ = run_program(compiled.program, self.IN)
        assert deep_eq(out, logreg_oracle(self.X, self.Y,
                                          self.IN["theta"], 0.1))

    def test_x_read_interval_after_transform(self):
        compiled = compile_program(logreg_program(), "distributed")
        x_sym = compiled.program.inputs[0]
        reads = [ls.reads[x_sym] for ls in compiled.stencils.values()
                 if x_sym in ls.reads]
        assert reads and all(s is Stencil.INTERVAL for s in reads)

    def test_gpu_compile_matches_oracle(self):
        compiled = compile_program(logreg_program(), "gpu")
        (out,), _ = run_program(compiled.program, self.IN)
        assert deep_eq(out, logreg_oracle(self.X, self.Y,
                                          self.IN["theta"], 0.1))

    def test_no_transform_flag_leaves_program_broadcasting(self):
        compiled = compile_program(logreg_program(), "distributed",
                                   apply_nested_transforms=False)
        assert compiled.report.applied_rules == []
        # without C2R the partitioned matrix is broadcast: a warning fires
        assert compiled.warnings
