"""Unit tests for the DMLL type system."""

import pytest

from repro.core import types as T


def test_scalar_sizes():
    assert T.BOOL.byte_size == 1
    assert T.INT.byte_size == 4
    assert T.DOUBLE.byte_size == 8
    assert T.UNIT.byte_size == 0


def test_coll_nesting():
    m = T.Coll(T.Coll(T.DOUBLE))
    assert T.is_collection(m)
    assert T.element_type(m) == T.Coll(T.DOUBLE)
    assert T.element_type(T.element_type(m)) == T.DOUBLE


def test_element_type_rejects_scalar():
    with pytest.raises(TypeError):
        T.element_type(T.INT)


def test_struct_fields():
    s = T.Struct("Point", (("x", T.DOUBLE), ("y", T.DOUBLE), ("tag", T.INT)))
    assert s.field_type("x") == T.DOUBLE
    assert s.field_type("tag") == T.INT
    assert s.field_names() == ("x", "y", "tag")
    assert s.byte_size == 8 + 8 + 4
    with pytest.raises(KeyError):
        s.field_type("z")


def test_tuple_type():
    t = T.tuple_type(T.DOUBLE, T.INT)
    assert t.field_names() == ("_0", "_1")
    assert t.field_type("_1") == T.INT


def test_zero_values():
    assert T.zero_value(T.INT) == 0
    assert T.zero_value(T.DOUBLE) == 0.0
    assert T.zero_value(T.BOOL) is False
    assert T.zero_value(T.Coll(T.INT)) == []
    tup = T.tuple_type(T.DOUBLE, T.INT)
    assert T.zero_value(tup) == (0.0, 0)


def test_keyed_coll():
    kc = T.KeyedColl(T.INT, T.DOUBLE)
    assert T.element_type(kc) == T.DOUBLE
    assert T.is_collection(kc)


def test_numeric_promotion():
    assert T.join_numeric(T.INT, T.INT) == T.INT
    assert T.join_numeric(T.INT, T.DOUBLE) == T.DOUBLE
    assert T.join_numeric(T.LONG, T.INT) == T.LONG
    assert T.is_numeric(T.DOUBLE)
    assert not T.is_numeric(T.BOOL)
