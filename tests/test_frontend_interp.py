"""Integration tests: every frontend pattern against a plain-Python oracle.

These pin down the Fig. 2b semantics of each generator as exposed through
the collections DSL.
"""

import pytest

from repro import frontend as F
from repro.core import run_program
from repro.core import types as T
from repro.core.values import Buckets, deep_eq


def run1(fn, specs, inputs):
    prog = F.build(fn, specs)
    (result,), _ = run_program(prog, inputs)
    return result


def ints(label="xs", partitioned=False):
    return F.InputSpec(label, T.Coll(T.INT), partitioned)


def doubles(label="xs", partitioned=False):
    return F.InputSpec(label, T.Coll(T.DOUBLE), partitioned)


XS = [5, 2, 7, 4, 1, 9, 2]


class TestCollect:
    def test_map(self):
        out = run1(lambda xs: xs.map(lambda x: x * x + 1), [ints()], {"xs": XS})
        assert out == [x * x + 1 for x in XS]

    def test_map_empty(self):
        out = run1(lambda xs: xs.map(lambda x: x + 1), [ints()], {"xs": []})
        assert out == []

    def test_map_indices(self):
        out = run1(lambda xs: xs.map_indices(lambda i: i * 2), [ints()], {"xs": XS})
        assert out == [i * 2 for i in range(len(XS))]

    def test_filter(self):
        out = run1(lambda xs: xs.filter(lambda x: x > 3), [ints()], {"xs": XS})
        assert out == [x for x in XS if x > 3]

    def test_filter_indices(self):
        out = run1(lambda xs: xs.filter_indices(lambda x: x == 2), [ints()], {"xs": XS})
        assert out == [i for i, x in enumerate(XS) if x == 2]

    def test_flat_map(self):
        def fn(xs):
            return xs.flat_map(lambda x: F.array_lit([x, x + 10], T.INT))
        out = run1(fn, [ints()], {"xs": [1, 2]})
        assert out == [1, 11, 2, 12]

    def test_zip_with(self):
        def fn(xs, ys):
            return xs.zip_with(ys, lambda a, b: a * b)
        prog = F.build(fn, [ints("xs"), ints("ys")])
        (out,), _ = run_program(prog, {"xs": [1, 2, 3], "ys": [4, 5, 6]})
        assert out == [4, 10, 18]

    def test_chained_maps(self):
        out = run1(lambda xs: xs.map(lambda x: x + 1).map(lambda x: x * 2),
                   [ints()], {"xs": XS})
        assert out == [(x + 1) * 2 for x in XS]


class TestReduce:
    def test_sum(self):
        assert run1(lambda xs: xs.sum(), [ints()], {"xs": XS}) == sum(XS)

    def test_sum_empty_returns_zero(self):
        assert run1(lambda xs: xs.sum(), [ints()], {"xs": []}) == 0

    def test_reduce_max(self):
        out = run1(lambda xs: xs.reduce(lambda a, b: F.fmax(a, b)),
                   [ints()], {"xs": XS})
        assert out == max(XS)

    def test_map_reduce(self):
        out = run1(lambda xs: xs.map_reduce(lambda x: x * x, lambda a, b: a + b),
                   [ints()], {"xs": XS})
        assert out == sum(x * x for x in XS)

    def test_count(self):
        assert run1(lambda xs: xs.count(), [ints()], {"xs": XS}) == len(XS)

    def test_min_index(self):
        assert run1(lambda xs: xs.min_index(), [ints()], {"xs": XS}) == XS.index(min(XS))

    def test_min_index_tie_takes_first(self):
        assert run1(lambda xs: xs.min_index(), [ints()], {"xs": [3, 1, 1, 5]}) == 1

    def test_vector_sum(self):
        """Reducing collections — 'sum of vectors' from §3.2."""
        m = F.InputSpec("m", T.Coll(T.Coll(T.DOUBLE)), False)
        rows = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
        out = run1(lambda m: m.sum_rows(), [m], {"m": rows})
        assert out == [9.0, 12.0]

    def test_vector_sum_single_row(self):
        m = F.InputSpec("m", T.Coll(T.Coll(T.DOUBLE)), False)
        out = run1(lambda m: m.sum_rows(), [m], {"m": [[7.0, 8.0]]})
        assert out == [7.0, 8.0]


class TestBuckets:
    def test_group_by(self):
        out = run1(lambda xs: xs.group_by(lambda x: x % 3), [ints()], {"xs": XS})
        assert isinstance(out, Buckets)
        expected = {}
        for x in XS:
            expected.setdefault(x % 3, []).append(x)
        assert dict(out.items()) == expected

    def test_group_by_key_order_is_first_seen(self):
        out = run1(lambda xs: xs.group_by(lambda x: x % 3), [ints()], {"xs": XS})
        first_seen = list(dict.fromkeys(x % 3 for x in XS))
        assert out.keys == first_seen == [2, 1, 0]

    def test_group_by_value(self):
        out = run1(lambda xs: xs.group_by_value(lambda x: x % 2, lambda x: x * 10),
                   [ints()], {"xs": XS})
        expected = {}
        for x in XS:
            expected.setdefault(x % 2, []).append(x * 10)
        assert dict(out.items()) == expected

    def test_group_by_reduce(self):
        out = run1(lambda xs: xs.group_by_reduce(
            lambda x: x % 3, lambda x: x, lambda a, b: a + b),
            [ints()], {"xs": XS})
        expected = {}
        for x in XS:
            expected[x % 3] = expected.get(x % 3, 0) + x
        assert dict(out.items()) == expected

    def test_bucket_map(self):
        """groupBy(...).map(group => group.sum) — the §3.2 aggregation."""
        def fn(xs):
            return xs.group_by(lambda x: x % 3).map(lambda g: g.sum())
        out = run1(fn, [ints()], {"xs": XS})
        sums = {}
        order = []
        for x in XS:
            k = x % 3
            if k not in sums:
                order.append(k)
            sums[k] = sums.get(k, 0) + x
        assert out == [sums[k] for k in order]

    def test_bucket_lookup_missing_key_returns_zero(self):
        def fn(xs):
            grp = xs.group_by_reduce(lambda x: x, lambda x: x, lambda a, b: a + b)
            return grp.lookup(99)
        assert run1(fn, [ints()], {"xs": [1, 2]}) == 0

    def test_bucket_keys(self):
        def fn(xs):
            return xs.group_by(lambda x: x % 2).keys()
        assert run1(fn, [ints()], {"xs": [4, 3, 8]}) == [0, 1]


class TestControl:
    def test_where_value_branches(self):
        out = run1(lambda xs: xs.map(lambda x: F.where(x > 3, x, -x)),
                   [ints()], {"xs": XS})
        assert out == [x if x > 3 else -x for x in XS]

    def test_where_thunks_stage_lazily(self):
        out = run1(lambda xs: xs.map(
            lambda x: F.where(x > 3, lambda: x * 100, lambda: x)),
            [ints()], {"xs": XS})
        assert out == [x * 100 if x > 3 else x for x in XS]

    def test_python_bool_coercion_raises(self):
        with pytest.raises(Exception):
            F.build(lambda xs: xs.map(lambda x: x + 1 if x > 2 else x),
                    [ints()])


class TestStructs:
    def test_pair_and_fields(self):
        def fn(xs):
            return xs.map(lambda x: F.pair(x, x * 2).snd)
        assert run1(fn, [ints()], {"xs": [1, 2]}) == [2, 4]

    def test_struct_type_access(self):
        pt = T.Struct("P", (("a", T.INT), ("b", T.INT)))
        def fn(xs):
            return xs.map(lambda x: F.struct(pt, a=x, b=x + 1).b)
        assert run1(fn, [ints()], {"xs": [5]}) == [6]


class TestNested:
    def test_nested_loop_logreg_shape(self):
        """Range(0,cols).map { j => Range(0,rows).sum { i => x(i)(j) } }"""
        m = F.InputSpec("m", T.Coll(T.Coll(T.DOUBLE)), False)

        def fn(m):
            cols = m[0].length()
            return F.irange(cols).map(
                lambda j: m.map_reduce(lambda row: row[j], lambda a, b: a + b))

        rows = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
        out = run1(fn, [m], {"m": rows})
        assert out == [9.0, 12.0]

    def test_math_functions(self):
        import math
        out = run1(lambda xs: xs.map(lambda x: F.fexp(x.to_double())),
                   [ints()], {"xs": [0, 1]})
        assert deep_eq(out, [1.0, math.e])
